//! # tdmd — Traffic-Diminishing Middlebox Deployment
//!
//! Facade crate re-exporting the full public API of the TDMD
//! reproduction (ICPP'20: "Optimizing Flow Bandwidth Consumption with
//! Traffic-diminishing Middlebox Placement"):
//!
//! * [`graph`] — graph substrate (CSR digraph, trees, LCA, generators)
//! * [`traffic`] — flow model and CAIDA-like workload generation
//! * [`core`] — TDMD instance, objective and placement algorithms
//! * [`online`] — event-driven incremental placement under flow churn
//! * [`sim`] — link-level replay simulator and experiment runner
//! * [`chain`] — service-chain extension (ordered multi-type
//!   middleboxes with traffic-changing effects)
//!
//! See the `examples/` directory for end-to-end usage.

pub use tdmd_chain as chain;
pub use tdmd_core as core;
pub use tdmd_graph as graph;
pub use tdmd_online as online;
pub use tdmd_sim as sim;
pub use tdmd_traffic as traffic;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use tdmd_core::prelude::*;
    pub use tdmd_graph::prelude::*;
    pub use tdmd_sim::prelude::*;
    pub use tdmd_traffic::prelude::*;
}
