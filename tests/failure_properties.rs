//! Property tests of the failure layer: under any seeded schedule of
//! flow churn, middlebox failures and recoveries,
//!
//! * **safety** — no event ever leaves a flow assigned to a failed
//!   vertex, the deployment never contains a failed vertex, and the
//!   budget is respected; and
//! * **recovery transparency** — once every failed vertex has
//!   recovered, a forced replan lands bitwise on the from-scratch GTP
//!   deployment of the same snapshot (failures leave no residue).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd::core::objective::bandwidth_of;
use tdmd::graph::generators::random::erdos_renyi_connected;
use tdmd::graph::traversal::bfs_path;
use tdmd::graph::{DiGraph, NodeId};
use tdmd::online::{Event, FlowKey, HopPricer, OnlineEngine, PathPricer, RepairPolicy};
use tdmd::sim::chaos::{run_chaos, ChaosConfig, ChaosMode};
use tdmd::sim::prelude::{DynamicScenario, FlowSpan};
use tdmd::traffic::Flow;

/// Interprets a seeded op tape against the engine's live state,
/// producing only valid events: arrivals use fresh keys and BFS
/// paths, departures name active keys, failures hit non-failed
/// vertices, recoveries failed ones. Inapplicable ops are skipped.
fn random_valid_events(g: &DiGraph, seed: u64, len: usize) -> Vec<Event> {
    let n = g.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_key: FlowKey = 0;
    let mut active: Vec<FlowKey> = Vec::new();
    let mut failed: Vec<NodeId> = Vec::new();
    let mut out = Vec::new();
    while out.len() < len {
        match rng.gen_range(0..6u32) {
            // Arrivals twice as likely so streams stay populated.
            0 | 1 => {
                let src = rng.gen_range(0..n) as NodeId;
                let dst = rng.gen_range(0..n) as NodeId;
                if src == dst {
                    continue;
                }
                let Some(path) = bfs_path(g, src, dst) else {
                    continue;
                };
                if path.len() < 2 {
                    continue;
                }
                let key = next_key;
                next_key += 1;
                active.push(key);
                out.push(Event::FlowArrived {
                    key,
                    rate: rng.gen_range(1..=9),
                    path,
                });
            }
            2 => {
                if active.is_empty() {
                    continue;
                }
                let key = active.swap_remove(rng.gen_range(0..active.len()));
                out.push(Event::FlowDeparted { key });
            }
            3 | 4 => {
                let v = rng.gen_range(0..n) as NodeId;
                if failed.contains(&v) {
                    continue;
                }
                failed.push(v);
                out.push(Event::VertexDown { vertex: v });
            }
            _ => {
                if failed.is_empty() {
                    continue;
                }
                let v = failed.swap_remove(rng.gen_range(0..failed.len()));
                out.push(Event::MiddleboxRecovered { vertex: v });
            }
        }
    }
    out
}

/// Safety invariants that must hold after *every* applied event.
fn assert_safe(e: &OnlineEngine<HopPricer>, k: usize) {
    assert!(e.deployment().len() <= k, "budget respected");
    for &v in e.deployment().vertices() {
        assert!(!e.is_failed(v), "deployed vertex {v} is failed");
    }
    for f in e.state().active_flows() {
        if let Some((v, _)) = f.assigned {
            assert!(
                e.deployment().contains(v),
                "flow {} assigned to undeployed vertex {v}",
                f.key
            );
            assert!(!e.is_failed(v), "flow {} assigned to failed {v}", f.key);
        }
    }
    assert!(
        (e.objective() - e.exact_objective()).abs() < 1e-6,
        "running objective drifted from the exact sum"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole acceptance property: safety after every event, and
    /// bitwise oracle equivalence after full recovery + forced replan.
    #[test]
    fn failure_schedules_are_safe_and_leave_no_residue(
        seed in any::<u64>(),
        n in 4usize..14,
        len in 1usize..40,
        k in 1usize..4,
        policy_ix in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let policy = [
            RepairPolicy::default(),
            RepairPolicy::local_only(2),
            RepairPolicy::forced_replan(),
        ][policy_ix];
        let mut engine = OnlineEngine::new(
            g.clone(), 0.5, k, HopPricer::default(), policy,
        ).unwrap();
        for ev in random_valid_events(&g, seed ^ 0xFA11, len) {
            engine.apply(&ev).unwrap();
            assert_safe(&engine, k);
        }
        // Recover every failed vertex, re-checking safety per event.
        for v in engine.failed_vertices() {
            engine.apply(&Event::MiddleboxRecovered { vertex: v }).unwrap();
            assert_safe(&engine, k);
        }
        prop_assert_eq!(engine.failed_count(), 0);
        // Recovery transparency: whenever the oracle is solvable, a
        // forced replan now matches the from-scratch GTP solve
        // bitwise. (An infeasible budget makes replan_now a no-op for
        // any engine history, failure-scarred or not.)
        if engine.active_count() > 0 {
            let inst = engine.snapshot_instance().unwrap();
            if let Ok(oracle) = HopPricer::default().solve_oracle(&inst) {
                prop_assert!(engine.replan_now());
                prop_assert_eq!(engine.deployment(), &oracle, "failure residue");
                prop_assert_eq!(
                    engine.exact_objective(),
                    bandwidth_of(&inst, &oracle),
                    "objective residue"
                );
            }
        }
    }

    /// The chaos harness's seeded schedules uphold the same contract
    /// end to end: every failure recovers, the timeline never exceeds
    /// the budget, and the degraded-time integral is consistent with
    /// the per-point census.
    #[test]
    fn chaos_harness_runs_are_consistent(
        seed in any::<u64>(),
        n in 4usize..12,
        n_flows in 1usize..8,
        mtbf_us in 100u64..2_000,
        targeted in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let mut spans = Vec::new();
        while spans.len() < n_flows {
            let src = rng.gen_range(0..n) as NodeId;
            let dst = rng.gen_range(0..n) as NodeId;
            if src == dst { continue; }
            let Some(path) = bfs_path(&g, src, dst) else { continue };
            if path.len() < 2 { continue; }
            let start_us = rng.gen_range(0..5_000u64);
            spans.push(FlowSpan {
                start_us,
                end_us: start_us + rng.gen_range(1..5_000u64),
                flow: Flow::new(spans.len() as u32, rng.gen_range(1..=9), path),
            });
        }
        let scn = DynamicScenario { graph: g, lambda: 0.5, k: 2, spans };
        let mode = if targeted {
            ChaosMode::Targeted { period_us: mtbf_us, mttr_us: mtbf_us / 2 + 1 }
        } else {
            ChaosMode::Independent { mtbf_us, mttr_us: mtbf_us / 2 + 1 }
        };
        let report = run_chaos(
            &scn, RepairPolicy::default(), &ChaosConfig { mode, seed },
        ).unwrap();
        prop_assert_eq!(report.failures, report.recoveries);
        prop_assert_eq!(
            report.repair_latency_us.len() as u64, report.failures,
            "one latency sample per failure"
        );
        if let Some(last) = report.points.last() {
            prop_assert_eq!(last.failed_vertices, 0, "ends recovered");
        }
        for p in &report.points {
            prop_assert!(p.middleboxes <= scn.k);
            prop_assert!(p.degraded_flows <= p.active_flows);
            prop_assert!(p.bandwidth >= 0.0);
        }
        if report.points.iter().all(|p| p.degraded_flows == 0) {
            prop_assert_eq!(report.degraded_flow_us, 0);
        }
    }
}
