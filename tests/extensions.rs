//! Integration tests for the model extensions (weighted links,
//! capacitated middleboxes, local search, branch and bound, dynamic
//! timelines, trace pipeline) through the public facade.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd::core::algorithms::branch_bound::branch_and_bound;
use tdmd::core::algorithms::dp::{dp_optimal, dp_optimal_weighted};
use tdmd::core::algorithms::exhaustive::exhaustive_optimal;
use tdmd::core::algorithms::gtp::gtp_budgeted;
use tdmd::core::algorithms::local_search::gtp_with_local_search;
use tdmd::core::capacitated::{allocate_capacitated, gtp_capacitated};
use tdmd::core::objective::bandwidth_of;
use tdmd::core::weighted::{gtp_weighted, WeightedIndex};
use tdmd::core::Instance;
use tdmd::graph::generators::random::erdos_renyi_connected;
use tdmd::graph::generators::trees::random_tree;
use tdmd::graph::{GraphBuilder, RootedTree};
use tdmd::sim::timeline::{simulate_replanned, simulate_static, DynamicScenario, FlowSpan};
use tdmd::traffic::distribution::RateDistribution;
use tdmd::traffic::trace::{aggregate_flows, rates_from_trace, synthesize_trace, TraceConfig};
use tdmd::traffic::{tree_workload, Flow, WorkloadConfig};

fn random_tree_instance(seed: u64, n: usize, flows: usize, k: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = random_tree(n, &mut rng);
    let t = RootedTree::from_digraph(&g, 0).unwrap();
    let cfg =
        WorkloadConfig::with_count(flows).distribution(RateDistribution::Uniform { lo: 1, hi: 6 });
    let fl = tree_workload(&g, &t, &cfg, &mut rng);
    Instance::new(g, fl, 0.5, k).unwrap()
}

#[test]
fn branch_and_bound_certifies_gtp_ls_quality() {
    for seed in 0..8u64 {
        let inst = random_tree_instance(seed, 11, 5, 3);
        let (_, opt, stats) = branch_and_bound(&inst, 3, 10_000_000).unwrap();
        // Cross-validate the two exact solvers.
        let (_, ex) = exhaustive_optimal(&inst, 3, u128::MAX).unwrap();
        assert!((opt - ex).abs() < 1e-9, "seed {seed}");
        // And DP (trees) agrees with both.
        let dp = dp_optimal(&inst).unwrap().bandwidth;
        assert!((opt - dp).abs() < 1e-9, "seed {seed}");
        // Local search never ends above the optimum by more than the
        // greedy bound suggests; sanity: >= optimum always.
        let ls = bandwidth_of(&inst, &gtp_with_local_search(&inst, 3).unwrap());
        assert!(ls >= opt - 1e-9, "seed {seed}");
        assert!(stats.expanded > 0);
    }
}

#[test]
fn weighted_pipeline_on_unit_weights_equals_hop_pipeline() {
    let inst = random_tree_instance(42, 14, 8, 4);
    let hop = gtp_budgeted(&inst, 4).unwrap();
    let wtd = gtp_weighted(&inst, 4).unwrap();
    let index = WeightedIndex::new(&inst);
    assert_eq!(index.bandwidth_of(&inst, &wtd), bandwidth_of(&inst, &hop));
    assert_eq!(
        dp_optimal_weighted(&inst).unwrap().bandwidth,
        dp_optimal(&inst).unwrap().bandwidth
    );
}

#[test]
fn weighted_dp_lower_bounds_weighted_gtp_on_weighted_trees() {
    // Build trees with random edge weights.
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_tree(10, &mut rng);
        let mut b = GraphBuilder::new(10);
        for (u, v, _) in base.to_edge_list() {
            if u < v {
                b.add_bidirectional_weighted(u, v, rng.gen_range(1..20));
            }
        }
        let g = b.build();
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        let flows = tree_workload(&g, &t, &WorkloadConfig::with_count(5), &mut rng);
        let inst = Instance::new(g, flows, 0.5, 3).unwrap();
        let index = WeightedIndex::new(&inst);
        let dp = dp_optimal_weighted(&inst).unwrap();
        let greedy = gtp_weighted(&inst, 3).unwrap();
        assert!(
            dp.bandwidth <= index.bandwidth_of(&inst, &greedy) + 1e-9,
            "seed {seed}"
        );
        // DP's recovered plan achieves its claimed weighted value.
        assert!((index.bandwidth_of(&inst, &dp.deployment) - dp.bandwidth).abs() < 1e-9);
    }
}

#[test]
fn capacity_sweep_interpolates_between_extremes() {
    let inst = random_tree_instance(7, 12, 8, 4);
    let uncapped = bandwidth_of(&inst, &gtp_budgeted(&inst, 4).unwrap());
    for cap in [8usize, 4, 3, 2] {
        match gtp_capacitated(&inst, 4, cap) {
            Ok((d, alloc, b)) => {
                assert!(alloc.is_complete(), "cap {cap}");
                assert!(d.len() <= 4);
                // Served flows respect the per-box capacity.
                let mut counts = std::collections::HashMap::new();
                for v in alloc.assigned.iter().flatten() {
                    *counts.entry(*v).or_insert(0usize) += 1;
                }
                assert!(counts.values().all(|&c| c <= cap), "cap {cap}");
                assert!(
                    b >= uncapped - 1e-9,
                    "cap {cap} cannot beat the uncapped greedy"
                );
                if cap >= 8 {
                    assert!((b - uncapped).abs() < 1e-9, "loose cap must match uncapped");
                }
            }
            // The greedy's coverage guard is capacity-blind, so it may
            // miss tight-but-feasible caps — never loose ones.
            Err(_) => assert!(cap < 8, "loose caps must succeed"),
        }
    }
}

#[test]
fn capacitated_allocation_is_exact_on_bottlenecks() {
    // Star: center 0, leaves 1..5, flows from each leaf to 0. One box
    // at the center with capacity 3 serves only 3 of 5.
    let mut b = GraphBuilder::new(6);
    for leaf in 1..6u32 {
        b.add_bidirectional(0, leaf);
    }
    let g = b.build();
    let flows: Vec<Flow> = (1..6u32)
        .map(|v| Flow::new(v - 1, v as u64, vec![v, 0]))
        .collect();
    let inst = Instance::new(g, flows, 0.5, 1).unwrap();
    let d = tdmd::core::Deployment::from_vertices(6, [0]);
    assert!(
        allocate_capacitated(&inst, &d, 3).is_none(),
        "5 flows > capacity 3"
    );
    // Capacity 5 serves everything — at the destination, so no gain.
    let (_, bw) = allocate_capacitated(&inst, &d, 5).unwrap();
    assert_eq!(bw, inst.unprocessed_bandwidth());
}

#[test]
fn timeline_static_plan_is_evaluated_consistently() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = random_tree(12, &mut rng);
    let t = RootedTree::from_digraph(&g, 0).unwrap();
    let flows = tree_workload(&g, &t, &WorkloadConfig::with_count(10), &mut rng);
    let spans: Vec<FlowSpan> = flows
        .into_iter()
        .enumerate()
        .map(|(i, f)| FlowSpan {
            start_us: (i as u64) * 10,
            end_us: (i as u64) * 10 + 55,
            flow: Flow::new(0, f.rate, f.path),
        })
        .collect();
    let scn = DynamicScenario {
        graph: g,
        lambda: 0.5,
        k: 3,
        spans,
    };
    let stat = simulate_static(&scn, tdmd::core::algorithms::Algorithm::Gtp, 9).unwrap();
    let re = simulate_replanned(&scn, tdmd::core::algorithms::Algorithm::Dp, 9).unwrap();
    assert_eq!(stat.len(), re.len());
    for (s, r) in stat.iter().zip(&re) {
        assert_eq!(s.time_us, r.time_us);
        assert_eq!(s.active_flows, r.active_flows);
        // Optimal replanning beats any frozen plan.
        assert!(r.bandwidth <= s.bandwidth + 1e-9, "t={}", s.time_us);
    }
}

#[test]
fn trace_to_placement_end_to_end() {
    let mut rng = StdRng::seed_from_u64(21);
    let cfg = TraceConfig {
        flows: 120,
        duration_us: 60_000_000,
        ..TraceConfig::default()
    };
    let trace = synthesize_trace(&cfg, &mut rng);
    let rates = rates_from_trace(&aggregate_flows(&trace), cfg.bytes_per_unit);
    assert_eq!(rates.len(), 120);
    let g = erdos_renyi_connected(20, 0.2, &mut rng);
    let wl =
        WorkloadConfig::with_count(30).distribution(RateDistribution::Empirical { samples: rates });
    let flows = tdmd::traffic::general_workload(&g, &[0, 1], &wl, &mut rng);
    let inst = Instance::new(g, flows, 0.3, 6).unwrap();
    let plan = gtp_budgeted(&inst, 6).unwrap();
    tdmd::sim::prelude::validate_deployment(&inst, &plan).unwrap();
}
