//! End-to-end pipelines through the facade: topology generation →
//! workload → placement → replay validation → experiment aggregation
//! → serialization, at reduced scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd::core::algorithms::Algorithm;
use tdmd::core::Instance;
use tdmd::graph::generators::ark::ark_like;
use tdmd::graph::generators::trees::random_tree;
use tdmd::graph::io::TopologyDoc;
use tdmd::graph::RootedTree;
use tdmd::sim::prelude::validate_deployment;
use tdmd::sim::{run_comparison, TrialConfig};
use tdmd::traffic::{general_workload, tree_workload, WorkloadConfig};
use tdmd_experiments::figures;
use tdmd_experiments::scenarios::Scenario;

fn quick() -> TrialConfig {
    TrialConfig {
        trials: 2,
        seed: 1234,
        resample_limit: 10,
        parallel: false,
    }
}

#[test]
fn tree_pipeline_five_algorithms() {
    let make = |rng: &mut StdRng| {
        let g = random_tree(14, rng);
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        let flows = tree_workload(&g, &t, &WorkloadConfig::with_density(0.4), rng);
        Instance::new(g, flows, 0.5, 5).unwrap()
    };
    let stats = run_comparison(make, &Algorithm::tree_suite(), &quick());
    assert_eq!(stats.len(), 5);
    let get = |n: &str| {
        stats
            .iter()
            .find(|s| s.algorithm == n)
            .unwrap()
            .mean_bandwidth
    };
    assert!(get("DP") <= get("HAT") + 1e-9);
    assert!(get("DP") <= get("GTP") + 1e-9);
    assert!(get("DP") <= get("Best-effort") + 1e-9);
    assert!(get("DP") <= get("Random") + 1e-9);
    assert!(
        stats.iter().all(|s| s.trials == 2),
        "no trial should be dropped on trees"
    );
}

#[test]
fn general_pipeline_three_algorithms() {
    let make = |rng: &mut StdRng| {
        let g = ark_like(20, 4, rng);
        let flows = general_workload(&g, &[0, 1], &WorkloadConfig::with_density(0.4), rng);
        Instance::new(g, flows, 0.5, 8).unwrap()
    };
    let stats = run_comparison(make, &Algorithm::general_suite(), &quick());
    let get = |n: &str| {
        stats
            .iter()
            .find(|s| s.algorithm == n)
            .unwrap()
            .mean_bandwidth
    };
    assert!(get("GTP") <= get("Random") + 1e-9);
}

#[test]
fn every_algorithm_survives_replay_validation() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = random_tree(16, &mut rng);
    let t = RootedTree::from_digraph(&g, 0).unwrap();
    let flows = tree_workload(&g, &t, &WorkloadConfig::with_count(10), &mut rng);
    let inst = Instance::new(g, flows, 0.3, 6).unwrap();
    for alg in Algorithm::tree_suite() {
        let d = alg
            .run(&inst, &mut rng)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        validate_deployment(&inst, &d).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
    }
}

#[test]
fn figure_results_serialize_and_reload() {
    let base = Scenario {
        size: 10,
        density: 0.3,
        k: 4,
        ..Scenario::tree_default()
    };
    let fig = figures::fig09::run_at(&quick(), base);
    let json = serde_json::to_string(&fig).unwrap();
    let back: tdmd_experiments::FigureResult = serde_json::from_str(&json).unwrap();
    // serde_json may round-trip f64 off by one ULP; compare fields
    // with a tolerance instead of structural equality.
    assert_eq!(back.name, fig.name);
    assert_eq!(back.series.len(), fig.series.len());
    for (a, b) in back.series.iter().zip(&fig.series) {
        assert_eq!(a.algorithm, b.algorithm);
        for (p, q) in a.points.iter().zip(&b.points) {
            assert_eq!(p.x, q.x);
            assert!((p.bandwidth - q.bandwidth).abs() < 1e-9);
            assert!((p.time_ms - q.time_ms).abs() < 1e-9);
            assert_eq!(p.trials, q.trials);
        }
    }
    let csv = fig.to_csv();
    // 5 algorithms x 6 sweep points + header.
    assert_eq!(csv.lines().count(), 5 * 6 + 1);
}

#[test]
fn topologies_round_trip_through_json() {
    let mut rng = StdRng::seed_from_u64(6);
    let g = ark_like(18, 3, &mut rng);
    let doc = TopologyDoc::from_graph(&g, "ark-18");
    let back = TopologyDoc::from_json(&doc.to_json()).unwrap().to_graph();
    assert_eq!(back, g);
    // The reloaded topology supports the whole pipeline.
    let flows = general_workload(&back, &[0], &WorkloadConfig::with_count(8), &mut rng);
    let inst = Instance::new(back, flows, 0.5, 5).unwrap();
    let d = tdmd::core::algorithms::gtp::gtp_budgeted(&inst, 5).unwrap();
    validate_deployment(&inst, &d).unwrap();
}

#[test]
fn derive_k_mode_covers_all_flows_on_general_graphs() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = ark_like(24, 4, &mut rng);
    let flows = general_workload(&g, &[0, 1, 2], &WorkloadConfig::with_density(0.4), &mut rng);
    let inst = Instance::new(g, flows, 0.5, 0).unwrap();
    let d = tdmd::core::algorithms::gtp::gtp_derive_k(&inst).unwrap();
    assert!(tdmd::core::feasibility::is_feasible(&inst, &d));
    // Thm. 3 setting: the derived k is at most the vertex count and at
    // least the greedy cover size.
    assert!(d.len() <= inst.node_count());
}
