//! Property-based tests of the paper's structural claims: Theorem 2
//! (monotone submodularity of the decrement), Lemma 1 (envelope),
//! DP optimality (certified against exhaustive search), heuristic
//! dominance, allocation optimality, replay consistency and the
//! equivalence of the three GTP variants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd::core::algorithms::best_effort::best_effort;
use tdmd::core::algorithms::dp::dp_optimal;
use tdmd::core::algorithms::exhaustive::exhaustive_optimal;
use tdmd::core::algorithms::gtp::{gtp_budgeted, gtp_lazy, gtp_parallel};
use tdmd::core::algorithms::hat::hat;
use tdmd::core::objective::{
    allocate, bandwidth_of, best_hops, decrement, lemma1_bounds, marginal_decrement,
};
use tdmd::core::{Deployment, Instance};
use tdmd::graph::generators::random::erdos_renyi_connected;
use tdmd::graph::generators::trees::random_tree;
use tdmd::graph::traversal::bfs_path;
use tdmd::graph::{NodeId, RootedTree};
use tdmd::sim::replay;
use tdmd::traffic::distribution::RateDistribution;
use tdmd::traffic::{tree_workload, Flow, WorkloadConfig};

/// Random small tree instance (seed-driven so strategies stay simple).
fn tree_instance(seed: u64, n: usize, n_flows: usize, lambda: f64, k: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = random_tree(n, &mut rng);
    let t = RootedTree::from_digraph(&g, 0).expect("tree");
    let cfg = WorkloadConfig::with_count(n_flows)
        .distribution(RateDistribution::Uniform { lo: 1, hi: 9 });
    let flows = tree_workload(&g, &t, &cfg, &mut rng);
    Instance::new(g, flows, lambda, k).expect("valid")
}

/// Random small general instance over a connected ER graph.
fn general_instance(seed: u64, n: usize, n_flows: usize, lambda: f64, k: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi_connected(n, 0.25, &mut rng);
    let mut flows = Vec::new();
    let mut id = 0u32;
    while flows.len() < n_flows {
        let src = rng.gen_range(0..n) as NodeId;
        let dst = rng.gen_range(0..n) as NodeId;
        if src == dst {
            continue;
        }
        if let Some(path) = bfs_path(&g, src, dst) {
            flows.push(Flow::new(id, rng.gen_range(1..=9), path));
            id += 1;
        }
    }
    Instance::new(g, flows, lambda, k).expect("valid")
}

/// Random deployment of `k` vertices.
fn random_deployment(seed: u64, n: usize, k: usize) -> Deployment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    Deployment::from_vertices(n, (0..k).map(|_| rng.gen_range(0..n) as NodeId))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2, monotonicity: adding middleboxes never shrinks d(P).
    #[test]
    fn decrement_is_monotone(seed in any::<u64>(), n in 3usize..16, k in 1usize..5) {
        let inst = general_instance(seed, n, 6, 0.5, k);
        let small = random_deployment(seed, n, k);
        let mut big = small.clone();
        let extra = (seed % n as u64) as NodeId;
        big.insert(extra);
        prop_assert!(decrement(&inst, &big) >= decrement(&inst, &small) - 1e-9);
    }

    /// Theorem 2, submodularity: marginal gains shrink as P grows.
    #[test]
    fn decrement_is_submodular(seed in any::<u64>(), n in 3usize..16) {
        let inst = general_instance(seed, n, 6, 0.5, 3);
        let p_small = random_deployment(seed, n, 2);
        let mut p_big = p_small.clone();
        p_big.insert((seed % n as u64) as NodeId);
        p_big.insert(((seed >> 8) % n as u64) as NodeId);
        let cur_small: Vec<u32> =
            best_hops(&inst, &p_small).into_iter().map(|l| l.unwrap_or(0)).collect();
        let cur_big: Vec<u32> =
            best_hops(&inst, &p_big).into_iter().map(|l| l.unwrap_or(0)).collect();
        for v in 0..n as NodeId {
            if p_big.contains(v) || p_small.contains(v) {
                continue;
            }
            prop_assert!(
                marginal_decrement(&inst, &cur_small, v)
                    >= marginal_decrement(&inst, &cur_big, v) - 1e-9,
                "gain grew at v={v}"
            );
        }
    }

    /// Lemma 1: 0 <= d(P) <= (1 - λ) Σ r|p| for any deployment.
    #[test]
    fn lemma1_envelope(seed in any::<u64>(), n in 3usize..16, k in 0usize..6,
                       lam_idx in 0usize..5) {
        let lambda = [0.0, 0.25, 0.5, 0.75, 1.0][lam_idx];
        let inst = general_instance(seed, n, 5, lambda, k.max(1));
        let d = random_deployment(seed, n, k);
        let (lo, hi) = lemma1_bounds(&inst);
        let val = decrement(&inst, &d);
        prop_assert!(val >= lo - 1e-9 && val <= hi + 1e-9, "{val} outside [{lo}, {hi}]");
    }

    /// The replay simulator and Eq. (1) agree on every deployment.
    #[test]
    fn replay_matches_analytic(seed in any::<u64>(), n in 3usize..16, k in 0usize..6) {
        let inst = general_instance(seed, n, 6, 0.5, k.max(1));
        let d = random_deployment(seed, n, k);
        let loads = replay(&inst, &d);
        let analytic = bandwidth_of(&inst, &d);
        prop_assert!((loads.total - analytic).abs() < 1e-9 * analytic.max(1.0));
    }

    /// Allocation optimality: each flow's assigned box maximizes the
    /// downstream hop count among deployed on-path vertices.
    #[test]
    fn allocation_is_nearest_source(seed in any::<u64>(), n in 3usize..16, k in 1usize..6) {
        let inst = general_instance(seed, n, 6, 0.5, k);
        let d = random_deployment(seed, n, k);
        let alloc = allocate(&inst, &d);
        for f in inst.flows() {
            let best = f
                .path
                .iter()
                .filter(|&&v| d.contains(v))
                .map(|&v| f.downstream_hops(v).unwrap())
                .max();
            match (alloc.assigned[f.id as usize], best) {
                (Some(v), Some(l)) => {
                    prop_assert_eq!(f.downstream_hops(v).unwrap(), l)
                }
                (None, None) => {}
                other => prop_assert!(false, "mismatch {:?}", other),
            }
        }
    }

    /// DP is optimal: certified against exhaustive search on small
    /// trees, and never beaten by any heuristic.
    #[test]
    fn dp_is_optimal_on_small_trees(seed in any::<u64>(), n in 2usize..11, k in 1usize..4) {
        let inst = tree_instance(seed, n, 4, 0.5, k);
        let dp = dp_optimal(&inst).unwrap();
        let (_, ex) = exhaustive_optimal(&inst, k, 1_000_000_000).unwrap();
        prop_assert!((dp.bandwidth - ex).abs() < 1e-9, "dp {} vs exhaustive {}", dp.bandwidth, ex);
        prop_assert!((bandwidth_of(&inst, &dp.deployment) - ex).abs() < 1e-9);
    }

    /// Heuristic dominance on trees: DP <= {HAT, GTP, Best-effort}.
    #[test]
    fn dp_lower_bounds_heuristics(seed in any::<u64>(), n in 3usize..14, k in 1usize..5) {
        let inst = tree_instance(seed, n, 5, 0.5, k);
        let dp = dp_optimal(&inst).unwrap().bandwidth;
        for (name, b) in [
            ("hat", hat(&inst, k).map(|d| bandwidth_of(&inst, &d))),
            ("gtp", gtp_budgeted(&inst, k).map(|d| bandwidth_of(&inst, &d))),
            ("best-effort", best_effort(&inst, k).map(|d| bandwidth_of(&inst, &d))),
        ] {
            // Trees are always feasible for k >= 1 (a root box covers
            // everything).
            let b = b.unwrap_or_else(|e| panic!("{name} failed: {e}"));
            prop_assert!(b >= dp - 1e-9, "{name} {b} beat DP {dp}");
        }
    }

    /// The three GTP implementations are interchangeable.
    #[test]
    fn gtp_variants_agree(seed in any::<u64>(), n in 3usize..16, k in 1usize..6) {
        let inst = general_instance(seed, n, 6, 0.5, k);
        let eager = gtp_budgeted(&inst, k);
        let lazy = gtp_lazy(&inst, k);
        let par = gtp_parallel(&inst, k);
        match (&eager, &lazy, &par) {
            (Ok(a), Ok(b), Ok(c)) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(a, c);
            }
            (Err(_), Err(_), Err(_)) => {}
            other => prop_assert!(false, "variants disagree on feasibility: {:?}", other),
        }
    }

    /// Feasible plans stay feasible and within budget across all
    /// algorithms on trees.
    #[test]
    fn all_tree_algorithms_respect_budget(seed in any::<u64>(), n in 3usize..14, k in 1usize..5) {
        let inst = tree_instance(seed, n, 5, 0.5, k);
        for d in [
            dp_optimal(&inst).unwrap().deployment,
            hat(&inst, k).unwrap(),
            gtp_budgeted(&inst, k).unwrap(),
            best_effort(&inst, k).unwrap(),
        ] {
            prop_assert!(d.len() <= k);
            prop_assert!(tdmd::core::feasibility::is_feasible(&inst, &d));
        }
    }
}
