//! Failure injection: infeasible budgets, degenerate workloads,
//! boundary λ values, malformed topologies — every error path of the
//! public API must fail loudly and precisely, never panic.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd::core::algorithms::dp::dp_optimal;
use tdmd::core::algorithms::exhaustive::exhaustive_optimal;
use tdmd::core::algorithms::gtp::gtp_budgeted;
use tdmd::core::algorithms::hat::hat;
use tdmd::core::algorithms::random::random_feasible;
use tdmd::core::error::TdmdError;
use tdmd::core::paper::{fig1_instance, fig5_graph, fig5_instance};
use tdmd::core::Instance;
use tdmd::graph::GraphBuilder;
use tdmd::traffic::Flow;

#[test]
fn zero_budget_with_flows_is_always_infeasible() {
    let inst = fig5_instance(0);
    assert_eq!(
        dp_optimal(&inst).unwrap_err(),
        TdmdError::Infeasible { budget: 0 }
    );
    assert_eq!(
        hat(&inst, 0).unwrap_err(),
        TdmdError::Infeasible { budget: 0 }
    );
    assert!(gtp_budgeted(&inst, 0).is_err());
    let mut rng = StdRng::seed_from_u64(1);
    assert!(random_feasible(&inst, 0, &mut rng, 50).is_err());
}

#[test]
fn budget_below_cover_number_fails_across_algorithms() {
    // Fig. 1 needs two middleboxes; k = 1 must fail everywhere.
    let inst = fig1_instance(1);
    assert!(gtp_budgeted(&inst, 1).is_err());
    assert_eq!(
        exhaustive_optimal(&inst, 1, 1_000_000).unwrap_err(),
        TdmdError::Infeasible { budget: 1 }
    );
    let mut rng = StdRng::seed_from_u64(2);
    assert!(random_feasible(&inst, 1, &mut rng, 100).is_err());
}

#[test]
fn lambda_out_of_range_is_rejected_at_construction() {
    let g = fig5_graph();
    let flows = vec![Flow::new(0, 1, vec![3, 1, 0])];
    for bad in [-0.5, 1.0001, f64::NAN, f64::INFINITY] {
        let err = Instance::new(g.clone(), flows.clone(), bad, 1).unwrap_err();
        assert!(matches!(err, TdmdError::BadLambda(_)), "lambda {bad}");
    }
}

#[test]
fn invalid_flow_paths_are_rejected_at_construction() {
    let g = fig5_graph();
    // 3 -> 0 is not an edge of the Fig. 5 tree.
    let err = Instance::new(g, vec![Flow::new(7, 1, vec![3, 0])], 0.5, 1).unwrap_err();
    assert_eq!(err, TdmdError::InvalidPath { flow: 7 });
}

#[test]
fn tree_algorithms_reject_general_topologies() {
    let inst = fig1_instance(3); // contains a cycle
    assert!(matches!(
        dp_optimal(&inst).unwrap_err(),
        TdmdError::NotATreeInstance(_)
    ));
    assert!(matches!(
        hat(&inst, 3).unwrap_err(),
        TdmdError::NotATreeInstance(_)
    ));
}

#[test]
fn tree_algorithms_reject_mixed_destinations() {
    let g = fig5_graph();
    let flows = vec![
        Flow::new(0, 2, vec![3, 1, 0]),
        Flow::new(1, 2, vec![6, 5, 2]),
    ];
    let inst = Instance::new(g, flows, 0.5, 3).unwrap();
    assert!(matches!(
        dp_optimal(&inst).unwrap_err(),
        TdmdError::NotATreeInstance(_)
    ));
    assert!(matches!(
        hat(&inst, 3).unwrap_err(),
        TdmdError::NotATreeInstance(_)
    ));
}

#[test]
fn empty_workloads_are_trivially_solved() {
    let g = fig5_graph();
    let inst = Instance::new(g, vec![], 0.5, 0).unwrap();
    assert_eq!(dp_optimal(&inst).unwrap().bandwidth, 0.0);
    assert!(hat(&inst, 0).unwrap().is_empty());
    let (d, b) = exhaustive_optimal(&inst, 0, 100).unwrap();
    assert!(d.is_empty());
    assert_eq!(b, 0.0);
}

#[test]
fn disconnected_topology_fails_tree_validation_not_construction() {
    let mut b = GraphBuilder::new(4);
    b.add_bidirectional(0, 1);
    b.add_bidirectional(2, 3);
    let g = b.build();
    let flows = vec![Flow::new(0, 1, vec![1, 0])];
    // Paths are valid on their component, so construction succeeds ...
    let inst = Instance::new(g, flows, 0.5, 1).unwrap();
    // ... but the tree DP refuses the disconnected skeleton.
    assert!(matches!(
        dp_optimal(&inst).unwrap_err(),
        TdmdError::NotATreeInstance(_)
    ));
    // The general-topology greedy is fine with it.
    assert!(gtp_budgeted(&inst, 1).is_ok());
}

#[test]
fn exhaustive_cap_trips_before_blowing_up() {
    let inst = fig5_instance(4);
    assert!(matches!(
        exhaustive_optimal(&inst, 4, 3).unwrap_err(),
        TdmdError::SearchSpaceTooLarge { .. }
    ));
}

#[test]
fn boundary_lambdas_run_end_to_end() {
    for lambda in [0.0, 1.0] {
        let inst = fig5_instance(3).with_lambda(lambda);
        let d = dp_optimal(&inst).unwrap();
        assert!(
            tdmd::core::feasibility::is_feasible(&inst, &d.deployment),
            "λ={lambda}"
        );
        let h = hat(&inst, 3).unwrap();
        assert!(
            tdmd::core::feasibility::is_feasible(&inst, &h),
            "λ={lambda}"
        );
        let g = gtp_budgeted(&inst, 3).unwrap();
        assert!(
            tdmd::core::feasibility::is_feasible(&inst, &g),
            "λ={lambda}"
        );
    }
}

#[test]
fn zero_rate_flows_are_rejected_everywhere() {
    // Eq. (4) requires coverage of every flow, but a zero-rate flow is
    // invisible to the DP's rate-based accounting — so the model
    // rejects it outright (the paper's flows carry positive traffic).
    let g = fig5_graph();
    let mut zero = Flow::new(0, 1, vec![3, 1, 0]);
    zero.rate = 0; // bypasses the constructor's assertion on purpose
    let err = Instance::new(g, vec![zero], 0.5, 2).unwrap_err();
    assert_eq!(err, TdmdError::InvalidPath { flow: 0 });
    // The constructor itself refuses too.
    let panicked = std::panic::catch_unwind(|| Flow::new(0, 0, vec![3, 1, 0])).is_err();
    assert!(panicked, "Flow::new must reject rate 0");
}
