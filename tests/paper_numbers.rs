//! Pins the implementation to every number the paper works out by
//! hand, exercised through the public facade API.

use tdmd::core::algorithms::dp::{dp_optimal, dp_tables};
use tdmd::core::algorithms::exhaustive::{exhaustive_optimal, DEFAULT_SUBSET_CAP};
use tdmd::core::algorithms::gtp::gtp_budgeted;
use tdmd::core::algorithms::hat::hat;
use tdmd::core::objective::{bandwidth_of, best_hops, lemma1_bounds, marginal_decrement};
use tdmd::core::paper::{fig1_instance, fig5_instance};
use tdmd::core::Deployment;

#[test]
fn fig1_optimal_bandwidths() {
    // Fig. 1(a): two middleboxes -> 12; Fig. 1(b): three -> 8.
    let inst2 = fig1_instance(2);
    let (_, b2) = exhaustive_optimal(&inst2, 2, DEFAULT_SUBSET_CAP).unwrap();
    assert_eq!(b2, 12.0);
    let inst3 = fig1_instance(3);
    let (_, b3) = exhaustive_optimal(&inst3, 3, DEFAULT_SUBSET_CAP).unwrap();
    assert_eq!(b3, 8.0);
    // And 8 is the Lemma-1 floor: λ · Σ r|p| = 0.5 · 16.
    let (_, dmax) = lemma1_bounds(&inst3);
    assert_eq!(inst3.unprocessed_bandwidth() - dmax, 8.0);
}

#[test]
fn table2_marginal_decrements() {
    let inst = fig1_instance(3);
    // Row d_∅ (1-based v1..v6): 0 0 3 1 4 3.
    let cur = vec![0u32; 4];
    let row: Vec<f64> = (0..6).map(|v| marginal_decrement(&inst, &cur, v)).collect();
    assert_eq!(row, vec![0.0, 0.0, 3.0, 1.0, 4.0, 3.0]);
    // Row d_{v5}: 0 0 1 1 — 3.
    let d = Deployment::from_vertices(6, [4]);
    let cur: Vec<u32> = best_hops(&inst, &d)
        .into_iter()
        .map(|l| l.unwrap_or(0))
        .collect();
    let row: Vec<f64> = (0..6).map(|v| marginal_decrement(&inst, &cur, v)).collect();
    assert_eq!(row[..4], [0.0, 0.0, 1.0, 1.0]);
    assert_eq!(row[5], 3.0);
    // Row d_{v5,v6}: 0 0 0 1 — —.
    let d = Deployment::from_vertices(6, [4, 5]);
    let cur: Vec<u32> = best_hops(&inst, &d)
        .into_iter()
        .map(|l| l.unwrap_or(0))
        .collect();
    let row: Vec<f64> = (0..6).map(|v| marginal_decrement(&inst, &cur, v)).collect();
    assert_eq!(row[..4], [0.0, 0.0, 0.0, 1.0]);
}

#[test]
fn gtp_walkthrough_matches_section4() {
    // k = 3: rounds pick v5, v6, v4 (paper's max marginal decrements).
    let d = gtp_budgeted(&fig1_instance(3), 3).unwrap();
    assert_eq!(d.vertices(), &[3, 4, 5]);
    // k = 2: "we can only deploy a middlebox on v2" -> {v2, v5}.
    let d = gtp_budgeted(&fig1_instance(2), 2).unwrap();
    assert_eq!(d.vertices(), &[1, 4]);
}

#[test]
fn fig6_f_table_row_of_the_root() {
    let inst = fig5_instance(4);
    let t = dp_tables(&inst).unwrap();
    assert_eq!(
        (1..=4).map(|k| t.f[0][k]).collect::<Vec<_>>(),
        vec![24.0, 16.5, 13.5, 12.0]
    );
}

#[test]
fn section5_hat_walkthrough() {
    // k >= 4: all four sources stay. k = 3: {v2, v7, v8}. k = 1: root.
    let inst = fig5_instance(4);
    assert_eq!(hat(&inst, 4).unwrap().vertices(), &[3, 4, 6, 7]);
    let inst = fig5_instance(3);
    assert_eq!(hat(&inst, 3).unwrap().vertices(), &[1, 6, 7]);
    let inst = fig5_instance(1);
    assert_eq!(hat(&inst, 1).unwrap().vertices(), &[0]);
    // k = 2 ties between {v2, v6} and {v1, v7}; both cost 16.5.
    let inst = fig5_instance(2);
    let d = hat(&inst, 2).unwrap();
    assert_eq!(bandwidth_of(&inst, &d), 16.5);
}

#[test]
fn dp_certified_optimal_by_exhaustive_on_fig5() {
    for k in 1..=4 {
        let inst = fig5_instance(k);
        let dp = dp_optimal(&inst).unwrap().bandwidth;
        let (_, ex) = exhaustive_optimal(&inst, k, DEFAULT_SUBSET_CAP).unwrap();
        assert_eq!(dp, ex, "k={k}");
    }
}

#[test]
fn spam_filter_intercepts_all_traffic_at_sources() {
    // §6.5: spam filters have λ = 0; placed at every source, nothing
    // is carried at all.
    let inst = fig5_instance(4).with_lambda(0.0);
    let d = Deployment::from_vertices(8, [3, 4, 6, 7]);
    assert_eq!(bandwidth_of(&inst, &d), 0.0);
}
