//! Determinism regression: the seeded quick protocol must reproduce
//! the committed golden snapshot bit for bit (bandwidths only —
//! execution times are machine-dependent). If this fails after an
//! intentional algorithm change, regenerate the snapshot with
//! `cargo run -p tdmd-experiments --bin gen_golden`.

use tdmd_experiments::figures::{fig09, quick_protocol};
use tdmd_experiments::scenarios::Scenario;

#[test]
fn quick_fig09_matches_the_golden_snapshot() {
    let golden: Vec<(String, Vec<f64>)> =
        serde_json::from_str(include_str!("golden/fig09_quick.json")).expect("golden parses");

    let base = Scenario {
        size: 12,
        density: 0.4,
        k: 4,
        ..Scenario::tree_default()
    };
    let fig = fig09::run_at(&quick_protocol(), base);
    assert_eq!(fig.series.len(), golden.len(), "algorithm count changed");
    for (s, (name, values)) in fig.series.iter().zip(&golden) {
        assert_eq!(&s.algorithm, name, "algorithm order changed");
        let got: Vec<f64> = s.points.iter().map(|p| p.bandwidth).collect();
        assert_eq!(
            &got, values,
            "{name}: seeded bandwidths drifted — if intentional, regenerate the golden"
        );
    }
}

#[test]
fn two_runs_agree_exactly() {
    let base = Scenario {
        size: 10,
        density: 0.3,
        k: 3,
        ..Scenario::tree_default()
    };
    let a = fig09::run_at(&quick_protocol(), base);
    let b = fig09::run_at(&quick_protocol(), base);
    for (sa, sb) in a.series.iter().zip(&b.series) {
        for (pa, pb) in sa.points.iter().zip(&sb.points) {
            assert_eq!(pa.bandwidth, pb.bandwidth);
            assert_eq!(pa.bandwidth_std, pb.bandwidth_std);
        }
    }
}
