//! Dynamic-workload timeline simulation.
//!
//! The paper places middleboxes for a static workload; production
//! networks see flows arrive and depart (the adaptive-provisioning
//! line of work it cites, Fei et al. [11]). This module simulates a
//! timeline of flow spans under two policies:
//!
//! * **static** — place once for the *union* workload, keep the plan;
//! * **replanned** — rerun the placement algorithm at every arrival /
//!   departure event on the then-active flows.
//!
//! Comparing the two quantifies how much bandwidth a static plan
//! leaves on the table — an extension experiment over the paper.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_core::algorithms::Algorithm;
use tdmd_core::error::TdmdError;
use tdmd_core::objective::bandwidth_of;
use tdmd_core::{Deployment, Instance};
use tdmd_graph::DiGraph;
use tdmd_traffic::Flow;

/// One flow's lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpan {
    /// Arrival time (inclusive), microseconds.
    pub start_us: u64,
    /// Departure time (exclusive), microseconds.
    pub end_us: u64,
    /// The flow (its id is only meaningful within this span list).
    pub flow: Flow,
}

/// A dynamic scenario: a fixed topology with flows coming and going.
#[derive(Debug, Clone)]
pub struct DynamicScenario {
    /// The topology.
    pub graph: DiGraph,
    /// Traffic-changing ratio λ.
    pub lambda: f64,
    /// Middlebox budget per (re)placement.
    pub k: usize,
    /// Flow lifetimes.
    pub spans: Vec<FlowSpan>,
}

/// The state of the network over one inter-event interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Interval start time.
    pub time_us: u64,
    /// Number of active flows.
    pub active_flows: usize,
    /// Total bandwidth consumption of the active flows under the
    /// policy's deployment.
    pub bandwidth: f64,
    /// Middleboxes in use.
    pub middleboxes: usize,
}

impl DynamicScenario {
    /// Sorted, deduplicated event times (arrivals and departures).
    fn event_times(&self) -> Vec<u64> {
        let mut ts: Vec<u64> = self
            .spans
            .iter()
            .flat_map(|s| [s.start_us, s.end_us])
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Flows active at time `t`, re-densified to fresh ids.
    fn active_at(&self, t: u64) -> Vec<Flow> {
        self.spans
            .iter()
            .filter(|s| s.start_us <= t && t < s.end_us)
            .enumerate()
            .map(|(i, s)| Flow::new(i as u32, s.flow.rate, s.flow.path.clone()))
            .collect()
    }

    /// The union workload (every flow that ever exists), densified.
    fn union_flows(&self) -> Vec<Flow> {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, s)| Flow::new(i as u32, s.flow.rate, s.flow.path.clone()))
            .collect()
    }

    fn instance(&self, flows: Vec<Flow>) -> Result<Instance, TdmdError> {
        Instance::new(self.graph.clone(), flows, self.lambda, self.k)
    }
}

/// Evaluates a fixed deployment over the timeline.
fn evaluate(
    scn: &DynamicScenario,
    deployment_for: &mut dyn FnMut(&Instance) -> Result<Deployment, TdmdError>,
) -> Result<Vec<TimelinePoint>, TdmdError> {
    let mut out = Vec::new();
    for t in scn.event_times() {
        let active = scn.active_at(t);
        if active.is_empty() {
            out.push(TimelinePoint {
                time_us: t,
                active_flows: 0,
                bandwidth: 0.0,
                middleboxes: 0,
            });
            continue;
        }
        let inst = scn.instance(active)?;
        let dep = deployment_for(&inst)?;
        out.push(TimelinePoint {
            time_us: t,
            active_flows: inst.flows().len(),
            bandwidth: bandwidth_of(&inst, &dep),
            middleboxes: dep.len(),
        });
    }
    Ok(out)
}

/// Static policy: place once for the union workload, evaluate the
/// frozen plan on every interval.
///
/// # Errors
/// Propagates placement failures ([`TdmdError::Infeasible`] etc.).
pub fn simulate_static(
    scn: &DynamicScenario,
    algorithm: Algorithm,
    seed: u64,
) -> Result<Vec<TimelinePoint>, TdmdError> {
    let union = scn.instance(scn.union_flows())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = algorithm.run(&union, &mut rng)?;
    evaluate(scn, &mut |_inst| Ok(plan.clone()))
}

/// Replanned policy: rerun the algorithm at every event on the active
/// flows.
///
/// # Errors
/// Propagates placement failures from any event.
pub fn simulate_replanned(
    scn: &DynamicScenario,
    algorithm: Algorithm,
    seed: u64,
) -> Result<Vec<TimelinePoint>, TdmdError> {
    let mut rng = StdRng::seed_from_u64(seed);
    evaluate(scn, &mut |inst| algorithm.run(inst, &mut rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_core::paper::fig5_graph;

    /// Fig. 5 tree with the four flows arriving/leaving in phases.
    fn scenario() -> DynamicScenario {
        let mk = |rate, path: Vec<u32>| Flow::new(0, rate, path);
        DynamicScenario {
            graph: fig5_graph(),
            lambda: 0.5,
            k: 2,
            spans: vec![
                FlowSpan {
                    start_us: 0,
                    end_us: 100,
                    flow: mk(2, vec![3, 1, 0]),
                },
                FlowSpan {
                    start_us: 20,
                    end_us: 80,
                    flow: mk(1, vec![7, 5, 2, 0]),
                },
                FlowSpan {
                    start_us: 40,
                    end_us: 120,
                    flow: mk(5, vec![6, 5, 2, 0]),
                },
                FlowSpan {
                    start_us: 60,
                    end_us: 90,
                    flow: mk(1, vec![4, 1, 0]),
                },
            ],
        }
    }

    #[test]
    fn event_grid_covers_all_transitions() {
        let scn = scenario();
        let pts = simulate_static(&scn, Algorithm::Dp, 1).unwrap();
        let times: Vec<u64> = pts.iter().map(|p| p.time_us).collect();
        assert_eq!(times, vec![0, 20, 40, 60, 80, 90, 100, 120]);
        // Active-flow counts follow the spans.
        let counts: Vec<usize> = pts.iter().map(|p| p.active_flows).collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn replanned_dp_never_loses_to_static_dp() {
        let scn = scenario();
        let stat = simulate_static(&scn, Algorithm::Dp, 1).unwrap();
        let re = simulate_replanned(&scn, Algorithm::Dp, 1).unwrap();
        for (s, r) in stat.iter().zip(&re) {
            assert!(
                r.bandwidth <= s.bandwidth + 1e-9,
                "t={}: replanned {} vs static {}",
                s.time_us,
                r.bandwidth,
                s.bandwidth
            );
        }
        // And it strictly wins somewhere on this scenario.
        assert!(re
            .iter()
            .zip(&stat)
            .any(|(r, s)| r.bandwidth < s.bandwidth - 1e-9));
    }

    #[test]
    fn empty_intervals_cost_nothing() {
        let scn = scenario();
        let pts = simulate_static(&scn, Algorithm::Gtp, 1).unwrap();
        let last = pts.last().unwrap();
        assert_eq!(last.active_flows, 0);
        assert_eq!(last.bandwidth, 0.0);
    }

    #[test]
    fn budget_respected_at_every_event() {
        let scn = scenario();
        for pts in [
            simulate_replanned(&scn, Algorithm::Dp, 1).unwrap(),
            simulate_replanned(&scn, Algorithm::Gtp, 1).unwrap(),
        ] {
            assert!(pts.iter().all(|p| p.middleboxes <= 2));
        }
    }

    #[test]
    fn no_spans_means_empty_timeline() {
        let scn = DynamicScenario {
            spans: vec![],
            ..scenario()
        };
        assert!(simulate_static(&scn, Algorithm::Dp, 1).unwrap().is_empty());
    }
}
