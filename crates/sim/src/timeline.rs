//! Dynamic-workload timeline simulation.
//!
//! The paper places middleboxes for a static workload; production
//! networks see flows arrive and depart (the adaptive-provisioning
//! line of work it cites, Fei et al. \[11\]). This module simulates a
//! timeline of flow spans under three policies:
//!
//! * **static** — place once for the *union* workload, keep the plan;
//! * **replanned** — rerun the placement algorithm at every arrival /
//!   departure event on the then-active flows, warm-started from the
//!   previous event's deployment (the incumbent plan is kept whenever
//!   it is feasible and beats the fresh solve);
//! * **incremental** — drive [`tdmd_online::OnlineEngine`] over the
//!   event stream, never solving from scratch except when its
//!   [`RepairPolicy`] triggers a drift replan.
//!
//! Comparing them quantifies how much bandwidth a static plan leaves
//! on the table, and how close bounded-work incremental repair gets to
//! per-event replanning — extension experiments over the paper.
//!
//! All policies report on the same interval grid (every span start and
//! end), produced by a single event sweep ([`DynamicScenario`]'s
//! interval accounting) so the per-policy timelines are directly
//! comparable point by point.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_core::algorithms::Algorithm;
use tdmd_core::error::TdmdError;
use tdmd_core::feasibility::is_feasible;
use tdmd_core::objective::bandwidth_of;
use tdmd_core::{Deployment, Instance};
use tdmd_graph::DiGraph;
use tdmd_online::{events_from_spans, Event, HopPricer, OnlineEngine, OnlineError};
use tdmd_traffic::Flow;

pub use tdmd_online::{FlowSpan, RepairPolicy};

/// A dynamic scenario: a fixed topology with flows coming and going.
#[derive(Debug, Clone)]
pub struct DynamicScenario {
    /// The topology.
    pub graph: DiGraph,
    /// Traffic-changing ratio λ.
    pub lambda: f64,
    /// Middlebox budget per (re)placement.
    pub k: usize,
    /// Flow lifetimes.
    pub spans: Vec<FlowSpan>,
}

/// The state of the network over one inter-event interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Interval start time.
    pub time_us: u64,
    /// Number of active flows.
    pub active_flows: usize,
    /// Total bandwidth consumption of the active flows under the
    /// policy's deployment.
    pub bandwidth: f64,
    /// Middleboxes in use.
    pub middleboxes: usize,
}

impl DynamicScenario {
    /// Sorted, deduplicated event times (arrivals and departures).
    fn event_times(&self) -> Vec<u64> {
        let mut ts: Vec<u64> = self
            .spans
            .iter()
            .flat_map(|s| [s.start_us, s.end_us])
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// One sweep over the event stream yielding, per interval start,
    /// the then-active flows re-densified to fresh ids (in span
    /// order). This is the single source of interval accounting shared
    /// by every policy — O(events · active) total instead of the
    /// per-policy O(events · spans) rescans it replaces.
    fn intervals(&self) -> Vec<(u64, Vec<Flow>)> {
        let events = events_from_spans(&self.spans);
        let mut active: BTreeSet<usize> = BTreeSet::new();
        let mut next = 0usize;
        let mut out = Vec::new();
        for t in self.event_times() {
            while next < events.len() && events[next].time_us <= t {
                match events[next].event {
                    Event::FlowArrived { key, .. } => {
                        active.insert(key as usize);
                    }
                    Event::FlowDeparted { key } => {
                        active.remove(&(key as usize));
                    }
                    // Spans lower only to arrivals/departures; failure
                    // events belong to the chaos harness's streams.
                    _ => {}
                }
                next += 1;
            }
            let flows = active
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let f = &self.spans[s].flow;
                    Flow::new(i as u32, f.rate, f.path.clone())
                })
                .collect();
            out.push((t, flows));
        }
        out
    }

    /// The union workload (every flow that is ever *active*),
    /// densified. Zero-length spans are excluded — under the
    /// half-open `[start, end)` convention they never exist, so they
    /// must not influence the static plan either.
    fn union_flows(&self) -> Vec<Flow> {
        self.spans
            .iter()
            .filter(|s| s.start_us < s.end_us)
            .enumerate()
            .map(|(i, s)| Flow::new(i as u32, s.flow.rate, s.flow.path.clone()))
            .collect()
    }

    fn instance(&self, flows: Vec<Flow>) -> Result<Instance, TdmdError> {
        Instance::new(self.graph.clone(), flows, self.lambda, self.k)
    }
}

/// Walks the interval grid, asking `deployment_for` for a plan on
/// every non-empty interval.
fn evaluate(
    scn: &DynamicScenario,
    deployment_for: &mut dyn FnMut(&Instance) -> Result<Deployment, TdmdError>,
) -> Result<Vec<TimelinePoint>, TdmdError> {
    let mut out = Vec::new();
    for (t, active) in scn.intervals() {
        if active.is_empty() {
            out.push(TimelinePoint {
                time_us: t,
                active_flows: 0,
                bandwidth: 0.0,
                middleboxes: 0,
            });
            continue;
        }
        let inst = scn.instance(active)?;
        let dep = deployment_for(&inst)?;
        out.push(TimelinePoint {
            time_us: t,
            active_flows: inst.flows().len(),
            bandwidth: bandwidth_of(&inst, &dep),
            middleboxes: dep.len(),
        });
    }
    Ok(out)
}

/// Static policy: place once for the union workload, evaluate the
/// frozen plan on every interval.
///
/// # Errors
/// Propagates placement failures ([`TdmdError::Infeasible`] etc.).
pub fn simulate_static(
    scn: &DynamicScenario,
    algorithm: Algorithm,
    seed: u64,
) -> Result<Vec<TimelinePoint>, TdmdError> {
    let union = scn.instance(scn.union_flows())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = algorithm.run(&union, &mut rng)?;
    evaluate(scn, &mut |_inst| Ok(plan.clone()))
}

/// Replanned policy with optional warm start (see
/// [`simulate_replanned`]).
fn simulate_replanned_with(
    scn: &DynamicScenario,
    algorithm: Algorithm,
    seed: u64,
    warm_start: bool,
) -> Result<Vec<TimelinePoint>, TdmdError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prev: Option<Deployment> = None;
    evaluate(scn, &mut |inst| {
        let incumbent = prev.clone().filter(|p| warm_start && is_feasible(inst, p));
        let chosen = match (algorithm.run(inst, &mut rng), incumbent) {
            // Keep the incumbent only when it strictly beats the
            // fresh solve — ties go to the fresh plan, so a
            // non-warm-started run is never better.
            (Ok(fresh), Some(p)) => {
                if bandwidth_of(inst, &p) < bandwidth_of(inst, &fresh) {
                    p
                } else {
                    fresh
                }
            }
            (Ok(fresh), None) => fresh,
            // The solver failed on this interval but the previous
            // plan still covers it: ride the incumbent.
            (Err(_), Some(p)) => p,
            (Err(e), None) => return Err(e),
        };
        prev = Some(chosen.clone());
        Ok(chosen)
    })
}

/// Replanned policy: rerun the algorithm at every event on the active
/// flows, warm-started from the previous event's deployment — the
/// incumbent plan is kept when it is still feasible and strictly
/// cheaper than the fresh solve (re-solving after a departure can
/// otherwise *lose* ground with a greedy algorithm), and rides
/// through intervals where the fresh solve fails.
///
/// # Errors
/// Propagates placement failures from any event with no feasible
/// incumbent to fall back on.
pub fn simulate_replanned(
    scn: &DynamicScenario,
    algorithm: Algorithm,
    seed: u64,
) -> Result<Vec<TimelinePoint>, TdmdError> {
    simulate_replanned_with(scn, algorithm, seed, true)
}

/// Incremental policy: drive an [`OnlineEngine`] (hop-count pricing)
/// over the event stream and report the maintained state on the same
/// interval grid as the other policies.
///
/// # Errors
/// [`TdmdError::BadLambda`] / [`TdmdError::InvalidPath`] when the
/// scenario's λ or a span's path is invalid for the topology.
pub fn simulate_incremental(
    scn: &DynamicScenario,
    policy: RepairPolicy,
) -> Result<Vec<TimelinePoint>, TdmdError> {
    let mut engine = OnlineEngine::new(
        scn.graph.clone(),
        scn.lambda,
        scn.k,
        HopPricer::default(),
        policy,
    )
    .map_err(lift)?;
    let events = events_from_spans(&scn.spans);
    let mut next = 0usize;
    let mut out = Vec::new();
    for t in scn.event_times() {
        while next < events.len() && events[next].time_us <= t {
            engine.apply(&events[next].event).map_err(lift)?;
            next += 1;
        }
        out.push(TimelinePoint {
            time_us: t,
            // The incremental engine's running sum can end a drained
            // stream at -0.0, which CSV sinks print as "-0".
            bandwidth: tdmd_obs::normalize_zero(engine.exact_objective()),
            active_flows: engine.active_count(),
            middleboxes: engine.deployment().len(),
        });
    }
    Ok(out)
}

/// Maps stream-layer errors onto the core error type.
pub(crate) fn lift(err: OnlineError) -> TdmdError {
    match err {
        OnlineError::BadLambda(l) => TdmdError::BadLambda(l),
        // Span keys are span indices, densified flow ids elsewhere.
        OnlineError::InvalidFlow { key }
        | OnlineError::DuplicateKey { key }
        | OnlineError::UnknownKey { key } => TdmdError::InvalidPath { flow: key as u32 },
        OnlineError::UnknownVertex { vertex }
        | OnlineError::AlreadyFailed { vertex }
        | OnlineError::NotFailed { vertex }
        | OnlineError::NoMiddleboxAt { vertex } => TdmdError::FailedVertex { vertex },
        OnlineError::BadBudget { reason } => TdmdError::BadReconfigBudget { reason },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_core::paper::fig5_graph;

    /// Fig. 5 tree with the four flows arriving/leaving in phases.
    fn scenario() -> DynamicScenario {
        let mk = |rate, path: Vec<u32>| Flow::new(0, rate, path);
        DynamicScenario {
            graph: fig5_graph(),
            lambda: 0.5,
            k: 2,
            spans: vec![
                FlowSpan {
                    start_us: 0,
                    end_us: 100,
                    flow: mk(2, vec![3, 1, 0]),
                },
                FlowSpan {
                    start_us: 20,
                    end_us: 80,
                    flow: mk(1, vec![7, 5, 2, 0]),
                },
                FlowSpan {
                    start_us: 40,
                    end_us: 120,
                    flow: mk(5, vec![6, 5, 2, 0]),
                },
                FlowSpan {
                    start_us: 60,
                    end_us: 90,
                    flow: mk(1, vec![4, 1, 0]),
                },
            ],
        }
    }

    #[test]
    fn event_grid_covers_all_transitions() {
        let scn = scenario();
        let pts = simulate_static(&scn, Algorithm::Dp, 1).unwrap();
        let times: Vec<u64> = pts.iter().map(|p| p.time_us).collect();
        assert_eq!(times, vec![0, 20, 40, 60, 80, 90, 100, 120]);
        // Active-flow counts follow the spans.
        let counts: Vec<usize> = pts.iter().map(|p| p.active_flows).collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn replanned_dp_never_loses_to_static_dp() {
        let scn = scenario();
        let stat = simulate_static(&scn, Algorithm::Dp, 1).unwrap();
        let re = simulate_replanned(&scn, Algorithm::Dp, 1).unwrap();
        for (s, r) in stat.iter().zip(&re) {
            assert!(
                r.bandwidth <= s.bandwidth + 1e-9,
                "t={}: replanned {} vs static {}",
                s.time_us,
                r.bandwidth,
                s.bandwidth
            );
        }
        // And it strictly wins somewhere on this scenario.
        assert!(re
            .iter()
            .zip(&stat)
            .any(|(r, s)| r.bandwidth < s.bandwidth - 1e-9));
    }

    #[test]
    fn warm_start_never_loses_to_cold_replanning() {
        let scn = scenario();
        for algo in [Algorithm::Gtp, Algorithm::Dp] {
            let warm = simulate_replanned_with(&scn, algo, 1, true).unwrap();
            let cold = simulate_replanned_with(&scn, algo, 1, false).unwrap();
            for (w, c) in warm.iter().zip(&cold) {
                assert!(
                    w.bandwidth <= c.bandwidth + 1e-9,
                    "t={}: warm {} vs cold {}",
                    w.time_us,
                    w.bandwidth,
                    c.bandwidth
                );
            }
        }
    }

    #[test]
    fn incremental_forced_replan_matches_cold_replanned_gtp() {
        let scn = scenario();
        let inc = simulate_incremental(&scn, RepairPolicy::forced_replan()).unwrap();
        let re = simulate_replanned_with(&scn, Algorithm::Gtp, 1, false).unwrap();
        assert_eq!(inc.len(), re.len());
        for (i, r) in inc.iter().zip(&re) {
            assert_eq!(i.time_us, r.time_us);
            assert_eq!(i.active_flows, r.active_flows);
            assert!(
                (i.bandwidth - r.bandwidth).abs() < 1e-9,
                "t={}: incremental {} vs replanned {}",
                i.time_us,
                i.bandwidth,
                r.bandwidth
            );
        }
    }

    #[test]
    fn incremental_local_repair_tracks_the_grid() {
        let scn = scenario();
        let pts = simulate_incremental(&scn, RepairPolicy::default()).unwrap();
        let counts: Vec<usize> = pts.iter().map(|p| p.active_flows).collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 3, 2, 1, 0]);
        assert!(pts.iter().all(|p| p.middleboxes <= scn.k));
    }

    #[test]
    fn empty_intervals_cost_nothing() {
        let scn = scenario();
        let pts = simulate_static(&scn, Algorithm::Gtp, 1).unwrap();
        let last = pts.last().unwrap();
        assert_eq!(last.active_flows, 0);
        assert_eq!(last.bandwidth, 0.0);
    }

    #[test]
    fn budget_respected_at_every_event() {
        let scn = scenario();
        for pts in [
            simulate_replanned(&scn, Algorithm::Dp, 1).unwrap(),
            simulate_replanned(&scn, Algorithm::Gtp, 1).unwrap(),
        ] {
            assert!(pts.iter().all(|p| p.middleboxes <= 2));
        }
    }

    #[test]
    fn no_spans_means_empty_timeline() {
        let scn = DynamicScenario {
            spans: vec![],
            ..scenario()
        };
        assert!(simulate_static(&scn, Algorithm::Dp, 1).unwrap().is_empty());
        assert!(simulate_incremental(&scn, RepairPolicy::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn zero_length_spans_never_activate() {
        let mut scn = scenario();
        scn.spans.push(FlowSpan {
            start_us: 50,
            end_us: 50,
            flow: Flow::new(0, 9, vec![6, 5, 2, 0]),
        });
        for pts in [
            simulate_static(&scn, Algorithm::Dp, 1).unwrap(),
            simulate_replanned(&scn, Algorithm::Gtp, 1).unwrap(),
            simulate_incremental(&scn, RepairPolicy::default()).unwrap(),
        ] {
            // The degenerate span contributes an interval boundary but
            // never a flow.
            let at_50 = pts.iter().find(|p| p.time_us == 50).unwrap();
            assert_eq!(at_50.active_flows, 3);
            // Total bandwidth is everywhere unaffected by the phantom
            // flow: the span set with it removed agrees point-for-point
            // on the shared times.
        }
        let with_phantom = simulate_static(&scn, Algorithm::Dp, 1).unwrap();
        scn.spans.pop();
        let without = simulate_static(&scn, Algorithm::Dp, 1).unwrap();
        for p in &without {
            let q = with_phantom
                .iter()
                .find(|q| q.time_us == p.time_us)
                .unwrap();
            assert_eq!(p.bandwidth, q.bandwidth);
        }
    }

    #[test]
    fn identical_arrival_timestamps_coexist() {
        let scn = DynamicScenario {
            graph: fig5_graph(),
            lambda: 0.5,
            k: 2,
            spans: vec![
                FlowSpan {
                    start_us: 10,
                    end_us: 30,
                    flow: Flow::new(0, 2, vec![3, 1, 0]),
                },
                FlowSpan {
                    start_us: 10,
                    end_us: 40,
                    flow: Flow::new(0, 5, vec![6, 5, 2, 0]),
                },
            ],
        };
        for pts in [
            simulate_replanned(&scn, Algorithm::Gtp, 1).unwrap(),
            simulate_incremental(&scn, RepairPolicy::default()).unwrap(),
        ] {
            let at_10 = pts.iter().find(|p| p.time_us == 10).unwrap();
            assert_eq!(at_10.active_flows, 2, "both arrivals land at t=10");
            assert!(at_10.bandwidth > 0.0);
        }
    }

    #[test]
    fn last_departure_leaves_a_consistent_empty_state() {
        // After the final flow departs the active instance is empty —
        // every policy must report a zero point rather than panic.
        let scn = scenario();
        for pts in [
            simulate_replanned(&scn, Algorithm::Gtp, 1).unwrap(),
            simulate_incremental(&scn, RepairPolicy::forced_replan()).unwrap(),
            simulate_incremental(&scn, RepairPolicy::local_only(4)).unwrap(),
        ] {
            let last = pts.last().unwrap();
            assert_eq!(last.time_us, 120);
            assert_eq!(last.active_flows, 0);
            assert_eq!(last.bandwidth, 0.0);
            assert_eq!(last.middleboxes, 0, "budget fully reclaimed");
        }
    }

    #[test]
    fn invalid_span_paths_surface_as_errors() {
        let mut scn = scenario();
        // v3 → v7 is not an edge of the Fig. 5 tree.
        scn.spans.push(FlowSpan {
            start_us: 0,
            end_us: 10,
            flow: Flow::new(0, 1, vec![2, 6, 0]),
        });
        assert!(matches!(
            simulate_incremental(&scn, RepairPolicy::default()),
            Err(TdmdError::InvalidPath { .. })
        ));
        assert!(simulate_replanned(&scn, Algorithm::Gtp, 1).is_err());
    }
}
