//! Cross-validation of the analytic objective against the replay
//! simulator, plus the Lemma-1 envelope checks. Run on every
//! experiment result in debug builds and available to tests.

use crate::replay::replay;
use tdmd_core::objective::{bandwidth_of, decrement, lemma1_bounds};
use tdmd_core::{Deployment, Instance};

/// Everything that can go wrong when a deployment's accounting is
/// inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// Replay and Eq. (1) disagree.
    ReplayMismatch {
        /// Replay total.
        simulated: f64,
        /// Analytic total.
        analytic: f64,
    },
    /// The decrement left the Lemma-1 envelope.
    DecrementOutOfBounds {
        /// Observed decrement.
        value: f64,
        /// Envelope maximum.
        max: f64,
    },
    /// The deployment exceeds the instance budget.
    OverBudget {
        /// Deployed boxes.
        used: usize,
        /// Allowed boxes.
        budget: usize,
    },
    /// A flow crossed no middlebox.
    Unserved {
        /// How many flows are uncovered.
        flows: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::ReplayMismatch {
                simulated,
                analytic,
            } => {
                write!(f, "replay total {simulated} != analytic {analytic}")
            }
            ValidationError::DecrementOutOfBounds { value, max } => {
                write!(f, "decrement {value} outside [0, {max}]")
            }
            ValidationError::OverBudget { used, budget } => {
                write!(f, "{used} middleboxes exceed budget {budget}")
            }
            ValidationError::Unserved { flows } => write!(f, "{flows} flows unserved"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a deployment end to end: budget, coverage, replay vs
/// analytic objective, Lemma-1 envelope.
pub fn validate_deployment(
    instance: &Instance,
    deployment: &Deployment,
) -> Result<(), ValidationError> {
    if deployment.len() > instance.k() {
        return Err(ValidationError::OverBudget {
            used: deployment.len(),
            budget: instance.k(),
        });
    }
    let loads = replay(instance, deployment);
    if loads.unserved_flows > 0 {
        return Err(ValidationError::Unserved {
            flows: loads.unserved_flows,
        });
    }
    let analytic = bandwidth_of(instance, deployment);
    if (loads.total - analytic).abs() > 1e-6 * analytic.max(1.0) {
        return Err(ValidationError::ReplayMismatch {
            simulated: loads.total,
            analytic,
        });
    }
    let d = decrement(instance, deployment);
    let (lo, hi) = lemma1_bounds(instance);
    if d < lo - 1e-9 || d > hi + 1e-9 {
        return Err(ValidationError::DecrementOutOfBounds { value: d, max: hi });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_core::paper::fig1_instance;

    #[test]
    fn valid_plans_pass() {
        let inst = fig1_instance(2);
        validate_deployment(&inst, &Deployment::from_vertices(6, [4, 1])).unwrap();
        let inst = fig1_instance(3);
        validate_deployment(&inst, &Deployment::from_vertices(6, [3, 4, 5])).unwrap();
    }

    #[test]
    fn over_budget_detected() {
        let inst = fig1_instance(1);
        let err = validate_deployment(&inst, &Deployment::from_vertices(6, [4, 1])).unwrap_err();
        assert_eq!(err, ValidationError::OverBudget { used: 2, budget: 1 });
    }

    #[test]
    fn unserved_detected() {
        let inst = fig1_instance(2);
        let err = validate_deployment(&inst, &Deployment::from_vertices(6, [4])).unwrap_err();
        assert_eq!(err, ValidationError::Unserved { flows: 3 });
    }
}
