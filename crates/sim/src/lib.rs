//! # tdmd-sim — link-level replay simulator and experiment runner
//!
//! The analytic objective (Eq. 1) says what a deployment *should*
//! cost; this crate independently verifies it by *replaying* every
//! flow hop by hop over the topology ([`replay`]), accounting the
//! occupied bandwidth on each directed link, and then drives the
//! paper's evaluation protocol ([`runner`]): seeded multi-trial
//! sweeps, per-algorithm wall-clock timing, mean ± std aggregation and
//! workload resampling on infeasibility (§6.1).

pub mod metrics;
pub mod replay;
pub mod runner;
pub mod timeline;
pub mod validate;

pub use replay::{replay, LinkLoads};
pub use runner::{run_comparison, AlgoStats, TrialConfig};

/// Convenience prelude.
pub mod prelude {
    pub use crate::metrics::LinkMetrics;
    pub use crate::replay::{replay, LinkLoads};
    pub use crate::runner::{run_comparison, AlgoStats, TrialConfig};
    pub use crate::timeline::{
        simulate_incremental, simulate_replanned, simulate_static, DynamicScenario, FlowSpan,
        RepairPolicy,
    };
    pub use crate::validate::validate_deployment;
}
