//! # tdmd-sim — link-level replay simulator and experiment runner
//!
//! The analytic objective (Eq. 1) says what a deployment *should*
//! cost; this crate independently verifies it by *replaying* every
//! flow hop by hop over the topology ([`mod@replay`]), accounting the
//! occupied bandwidth on each directed link, and then drives the
//! paper's evaluation protocol ([`runner`]): seeded multi-trial
//! sweeps, per-algorithm wall-clock timing, mean ± std aggregation and
//! workload resampling on infeasibility (§6.1).
//!
//! * [`mod@replay`] — hop-by-hop flow replay into per-link occupied
//!   bandwidth (the independent check of Eq. 1).
//! * [`metrics`] — aggregate link metrics (total/max/mean load,
//!   utilization, coverage feasibility) over a replay.
//! * [`runner`] — the seeded multi-trial experiment runner,
//!   Rayon-parallel over trials.
//! * [`validate`] — invariant checks (replay == analytic objective,
//!   Lemma-1 bounds, coverage).
//! * [`timeline`] — dynamic flow timelines replayed under the
//!   static / warm-started-replanned / incremental policies.
//! * [`chaos`] — seeded fault injection over the online engine:
//!   independent MTBF/MTTR schedules and a targeted
//!   kill-the-biggest-box adversary, with degraded-time and
//!   repair-latency reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod metrics;
pub mod race;
pub mod replay;
pub mod runner;
pub mod timeline;
pub mod validate;

pub use replay::{replay, LinkLoads};
pub use runner::{run_comparison, AlgoStats, TrialConfig};

/// Convenience prelude.
pub mod prelude {
    pub use crate::chaos::{
        independent_failure_schedule, run_chaos, ChaosConfig, ChaosMode, ChaosPoint, ChaosReport,
    };
    pub use crate::metrics::{jain_fairness, LinkMetrics};
    pub use crate::race::{
        adversarial_shards, batch_race_with, run_race, shard_race_with, Divergence, RaceConfig,
        RaceReport,
    };
    pub use crate::replay::{replay, LinkLoads};
    pub use crate::runner::{run_comparison, AlgoStats, TrialConfig};
    pub use crate::timeline::{
        simulate_incremental, simulate_replanned, simulate_static, DynamicScenario, FlowSpan,
        RepairPolicy,
    };
    pub use crate::validate::validate_deployment;
}
