//! Multi-trial experiment runner implementing the paper's protocol
//! (§6.1–6.2): every data point is the mean ± std over several seeded
//! trials; workloads whose instance is infeasible for some algorithm
//! are regenerated ("we choose to regenerate a traffic distribution");
//! each algorithm's wall-clock execution time is recorded alongside
//! its bandwidth objective.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use tdmd_core::algorithms::Algorithm;
use tdmd_core::objective::bandwidth_of;
use tdmd_core::Instance;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Number of successful trials to aggregate.
    pub trials: usize,
    /// Base RNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// How many workload regenerations to attempt per trial before
    /// giving the trial up.
    pub resample_limit: usize,
    /// Run trials on the Rayon pool. Keep `false` when the measured
    /// execution times matter (parallel trials contend for cores).
    pub parallel: bool,
}

impl Default for TrialConfig {
    fn default() -> Self {
        Self {
            trials: 10,
            seed: 0xC0FFEE,
            resample_limit: 25,
            parallel: false,
        }
    }
}

/// Aggregated outcome of one algorithm across trials.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoStats {
    /// Display name.
    pub algorithm: &'static str,
    /// Mean total bandwidth consumption.
    pub mean_bandwidth: f64,
    /// Std-dev of the bandwidth (the paper's error bars).
    pub std_bandwidth: f64,
    /// Mean execution time in milliseconds.
    pub mean_time_ms: f64,
    /// Std-dev of the execution time.
    pub std_time_ms: f64,
    /// Number of trials that contributed.
    pub trials: usize,
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// One trial: regenerate workloads until every algorithm yields a
/// feasible plan, then return each algorithm's `(bandwidth, time_ms)`.
fn one_trial<F>(
    make_instance: &F,
    algorithms: &[Algorithm],
    seed: u64,
    resample_limit: usize,
) -> Option<Vec<(f64, f64)>>
where
    F: Fn(&mut StdRng) -> Instance,
{
    let mut rng = StdRng::seed_from_u64(seed);
    'resample: for _ in 0..resample_limit {
        let instance = make_instance(&mut rng);
        let mut row = Vec::with_capacity(algorithms.len());
        for alg in algorithms {
            let mut alg_rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
            let sw = tdmd_obs::Stopwatch::start();
            let result = alg.run(&instance, &mut alg_rng);
            let elapsed_ms = sw.elapsed_ms();
            match result {
                Ok(dep) => {
                    debug_assert!(
                        crate::validate::validate_deployment(&instance, &dep).is_ok(),
                        "algorithm {} produced an inconsistent plan",
                        alg.name()
                    );
                    row.push((bandwidth_of(&instance, &dep), elapsed_ms));
                }
                Err(_) => continue 'resample,
            }
        }
        return Some(row);
    }
    None
}

/// Runs every algorithm over `cfg.trials` seeded trials of the
/// instance family produced by `make_instance` and aggregates the
/// paper's two metrics.
pub fn run_comparison<F>(
    make_instance: F,
    algorithms: &[Algorithm],
    cfg: &TrialConfig,
) -> Vec<AlgoStats>
where
    F: Fn(&mut StdRng) -> Instance + Sync,
{
    let rows: Vec<Vec<(f64, f64)>> = if cfg.parallel {
        (0..cfg.trials)
            .into_par_iter()
            .filter_map(|t| {
                one_trial(
                    &make_instance,
                    algorithms,
                    cfg.seed + t as u64,
                    cfg.resample_limit,
                )
            })
            .collect()
    } else {
        (0..cfg.trials)
            .filter_map(|t| {
                one_trial(
                    &make_instance,
                    algorithms,
                    cfg.seed + t as u64,
                    cfg.resample_limit,
                )
            })
            .collect()
    };
    algorithms
        .iter()
        .enumerate()
        .map(|(i, alg)| {
            let bws: Vec<f64> = rows.iter().map(|r| r[i].0).collect();
            let ts: Vec<f64> = rows.iter().map(|r| r[i].1).collect();
            let (mb, sb) = mean_std(&bws);
            let (mt, st) = mean_std(&ts);
            AlgoStats {
                algorithm: alg.name(),
                mean_bandwidth: mb,
                std_bandwidth: sb,
                mean_time_ms: mt,
                std_time_ms: st,
                trials: rows.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::generators::trees::random_tree;
    use tdmd_graph::RootedTree;
    use tdmd_traffic::{tree_workload, WorkloadConfig};

    fn make_tree_instance(rng: &mut StdRng) -> Instance {
        let g = random_tree(16, rng);
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        let flows = tree_workload(&g, &t, &WorkloadConfig::with_count(12), rng);
        Instance::new(g, flows, 0.5, 4).unwrap()
    }

    #[test]
    fn comparison_orders_algorithms_correctly() {
        let cfg = TrialConfig {
            trials: 6,
            seed: 7,
            ..Default::default()
        };
        let stats = run_comparison(make_tree_instance, &Algorithm::tree_suite(), &cfg);
        assert_eq!(stats.len(), 5);
        let by_name: std::collections::HashMap<_, _> =
            stats.iter().map(|s| (s.algorithm, s)).collect();
        let dp = by_name["DP"].mean_bandwidth;
        let hat = by_name["HAT"].mean_bandwidth;
        let gtp = by_name["GTP"].mean_bandwidth;
        let rnd = by_name["Random"].mean_bandwidth;
        assert!(dp <= hat + 1e-9, "DP {dp} must lower-bound HAT {hat}");
        assert!(dp <= gtp + 1e-9, "DP {dp} must lower-bound GTP {gtp}");
        assert!(dp <= rnd + 1e-9);
        assert!(stats.iter().all(|s| s.trials == 6));
    }

    #[test]
    fn parallel_and_sequential_agree_on_bandwidth() {
        let base = TrialConfig {
            trials: 4,
            seed: 11,
            ..Default::default()
        };
        let seq = run_comparison(make_tree_instance, &[Algorithm::Gtp], &base);
        let par = run_comparison(
            make_tree_instance,
            &[Algorithm::Gtp],
            &TrialConfig {
                parallel: true,
                ..base
            },
        );
        assert_eq!(seq[0].mean_bandwidth, par[0].mean_bandwidth);
        assert_eq!(seq[0].std_bandwidth, par[0].std_bandwidth);
    }

    #[test]
    fn stats_are_deterministic_under_seed() {
        let cfg = TrialConfig {
            trials: 3,
            seed: 21,
            ..Default::default()
        };
        let a = run_comparison(make_tree_instance, &[Algorithm::Hat], &cfg);
        let b = run_comparison(make_tree_instance, &[Algorithm::Hat], &cfg);
        assert_eq!(a[0].mean_bandwidth, b[0].mean_bandwidth);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn impossible_instances_yield_zero_trials() {
        // k = 0 with flows: every algorithm fails, every trial is
        // given up after the resample limit.
        let make = |rng: &mut StdRng| {
            let g = random_tree(8, rng);
            let t = RootedTree::from_digraph(&g, 0).unwrap();
            let flows = tree_workload(&g, &t, &WorkloadConfig::with_count(4), rng);
            Instance::new(g, flows, 0.5, 0).unwrap()
        };
        let cfg = TrialConfig {
            trials: 2,
            seed: 3,
            resample_limit: 3,
            ..Default::default()
        };
        let stats = run_comparison(make, &[Algorithm::Dp], &cfg);
        assert_eq!(stats[0].trials, 0);
    }
}
