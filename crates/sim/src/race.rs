//! Schedule-perturbation race harness: adversarial reruns of the two
//! parallel/batched kernels against their sequential oracles.
//!
//! The determinism story of this workspace rests on two contracts:
//!
//! * [`gtp_sharded_with`] is **bitwise identical** to [`gtp_budgeted`]
//!   for *every* shard width — the sharded gain accumulation merges in
//!   a deterministic sequential fold, so the chunking is a wall-clock
//!   knob, never a semantic one;
//! * [`OnlineEngine::apply_batch`] under a forced-replan policy is
//!   **bitwise identical** to one-by-one [`OnlineEngine::apply`] for
//!   *every* partition of the event stream into batches.
//!
//! Unit and property tests exercise these on friendly inputs; this
//! module attacks them. [`run_race`] sweeps *adversarial* shard widths
//! (1, primes, `n−1`, `n`, `> n`, `usize::MAX`), re-runs each width on
//! several concurrently racing OS threads (so a data race or
//! accumulation-order dependence gets real scheduler pressure to
//! surface under), and replays seeded churn streams under randomized
//! batch partitions — hard-failing on the first bitwise divergence
//! from the sequential oracle.
//!
//! The kernels under test are injected as closures
//! ([`shard_race_with`], [`batch_race_with`]), so the harness itself
//! is testable: the saboteur tests below hand it a deliberately
//! perturbed runner and assert the divergence is caught. CI wires the
//! production closures via `cargo xtask race` → `tdmd race`.
//!
//! Everything here is seeded: a reported divergence names the seed,
//! the perturbation, and both fingerprints, and replays exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::algorithms::gtp::{gtp_budgeted, gtp_sharded_with};
use tdmd_core::objective::bandwidth_of;
use tdmd_core::{Deployment, HopCount, Instance, TdmdError};
use tdmd_graph::generators::random::erdos_renyi_connected;
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_online::{Event, FlowKey, HopPricer, OnlineEngine, OnlineError, RepairPolicy};
use tdmd_traffic::Flow;

/// Tuning for [`run_race`]: how many seeded scenarios, how large, and
/// how much concurrency pressure per perturbation.
#[derive(Debug, Clone)]
pub struct RaceConfig {
    /// Scenario seeds; each seed generates one topology plus one
    /// static workload (shard race) and one churn stream (batch race).
    pub seeds: Vec<u64>,
    /// Vertices per generated topology.
    pub nodes: usize,
    /// Flows in the static shard-race workload.
    pub flows: usize,
    /// Events in the churn stream for the batch race.
    pub events: usize,
    /// Random batch partitions tried per churn stream.
    pub partitions: usize,
    /// Concurrent replicas racing each shard width on real OS threads.
    pub threads: usize,
}

impl Default for RaceConfig {
    /// The CI profile: 4 scenarios, 12-vertex topologies, 32 flows,
    /// 48-event streams, 6 partitions, 4 racing threads. Small enough
    /// for a debug-build test, adversarial enough to have caught every
    /// nondeterminism bug this repo has had (map-iteration merges,
    /// accumulation-order drift).
    fn default() -> Self {
        Self {
            seeds: vec![1, 2, 3, 4],
            nodes: 12,
            flows: 32,
            events: 48,
            partitions: 6,
            threads: 4,
        }
    }
}

/// One bitwise divergence between a perturbed run and its oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which contract broke: `"shard"` or `"batch"`.
    pub arena: &'static str,
    /// Scenario seed that reproduces it.
    pub seed: u64,
    /// The perturbation applied (shard width, partition seed, …).
    pub perturbation: String,
    /// Oracle-vs-observed fingerprints, or the error the run died with.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} seed={}] {}: {}",
            self.arena, self.seed, self.perturbation, self.detail
        )
    }
}

/// Outcome of a [`run_race`] sweep.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Perturbed shard-width runs compared against the oracle.
    pub shard_trials: usize,
    /// Batch-partition replays compared against the oracle.
    pub batch_trials: usize,
    /// Every bitwise divergence found (empty means the contracts held).
    pub divergences: Vec<Divergence>,
}

impl RaceReport {
    /// True when every perturbed run matched its oracle bitwise.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Human-readable summary; one line per divergence after the
    /// verdict line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "race: {} — {} shard trials, {} batch trials, {} divergence(s)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.shard_trials,
            self.batch_trials,
            self.divergences.len()
        );
        for d in &self.divergences {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }
}

/// The adversarial shard-width schedule for an `n`-candidate instance:
/// degenerate (1), coprime-to-everything primes, the off-by-one edges
/// `n−1`/`n`/`n+1`, oversized, and `usize::MAX` (one chunk). Widths
/// are deduplicated and never zero.
pub fn adversarial_shards(n: usize) -> Vec<usize> {
    let mut s = vec![
        1,
        2,
        3,
        5,
        7,
        n.saturating_sub(1).max(1),
        n.max(1),
        n + 1,
        2 * n.max(1),
        usize::MAX,
    ];
    s.sort_unstable();
    s.dedup();
    s
}

fn deployment_fingerprint(instance: &Instance, d: &Deployment) -> String {
    format!(
        "vertices={:?} bandwidth_bits={:#018x}",
        d.vertices(),
        bandwidth_of(instance, d).to_bits()
    )
}

/// Races `runner` against the sequential [`gtp_budgeted`] oracle: for
/// every width in `shards`, `threads` replicas run concurrently on
/// real OS threads and each result is compared bitwise (vertex set and
/// objective bits) against the oracle. Returns the divergences found
/// and the number of perturbed runs.
///
/// `runner(instance, k, shard)` is the kernel under test — production
/// passes [`gtp_sharded_with`]; saboteur tests pass a perturbed
/// closure to prove the harness catches injected nondeterminism.
pub fn shard_race_with<F>(
    instance: &Instance,
    k: usize,
    seed: u64,
    shards: &[usize],
    threads: usize,
    runner: F,
) -> (usize, Vec<Divergence>)
where
    F: Fn(&Instance, usize, usize) -> Result<Deployment, TdmdError> + Sync,
{
    let mut divergences = Vec::new();
    let mut trials = 0usize;
    let oracle = match gtp_budgeted(instance, k) {
        Ok(d) => d,
        Err(e) => {
            divergences.push(Divergence {
                arena: "shard",
                seed,
                perturbation: "oracle".to_string(),
                detail: format!("sequential oracle failed: {e}"),
            });
            return (trials, divergences);
        }
    };
    let runner = &runner;
    for &shard in shards {
        // All replicas of one width race concurrently: a merge that
        // depends on thread interleaving (shared accumulator, pool
        // reuse) sees genuine scheduler pressure here, not just a
        // loop.
        // `None` marks a replica whose thread panicked.
        let results: Vec<Option<Result<Deployment, TdmdError>>> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..threads.max(1))
                .map(|_| s.spawn(move || runner(instance, k, shard)))
                .collect();
            handles.into_iter().map(|h| h.join().ok()).collect()
        })
        .unwrap_or_default();
        for (replica, result) in results.into_iter().enumerate() {
            trials += 1;
            let perturbation = format!("shard={shard} replica={replica}");
            match result {
                Some(Ok(d)) if d == oracle => {}
                Some(Ok(d)) => divergences.push(Divergence {
                    arena: "shard",
                    seed,
                    perturbation,
                    detail: format!(
                        "oracle {} != perturbed {}",
                        deployment_fingerprint(instance, &oracle),
                        deployment_fingerprint(instance, &d)
                    ),
                }),
                Some(Err(e)) => divergences.push(Divergence {
                    arena: "shard",
                    seed,
                    perturbation,
                    detail: format!("perturbed run failed: {e}"),
                }),
                None => divergences.push(Divergence {
                    arena: "shard",
                    seed,
                    perturbation,
                    detail: "replica thread panicked".to_string(),
                }),
            }
        }
    }
    (trials, divergences)
}

/// Engine fingerprint compared bitwise across the batch race: the
/// deployment, the active-flow count, and both objectives' raw bits
/// (`exact_objective` from scratch, `objective` as maintained — the
/// maintained one is the accumulation-order canary).
#[derive(Debug, Clone, PartialEq)]
struct EngineFingerprint {
    deployment: Deployment,
    active: usize,
    exact_bits: u64,
    maintained_bits: u64,
}

impl EngineFingerprint {
    fn of(e: &OnlineEngine<HopPricer>) -> Self {
        Self {
            deployment: e.deployment().clone(),
            active: e.active_count(),
            exact_bits: e.exact_objective().to_bits(),
            maintained_bits: e.objective().to_bits(),
        }
    }
}

impl std::fmt::Display for EngineFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vertices={:?} active={} exact_bits={:#018x} maintained_bits={:#018x}",
            self.deployment.vertices(),
            self.active,
            self.exact_bits,
            self.maintained_bits
        )
    }
}

fn fresh_engine(g: &DiGraph, k: usize) -> Result<OnlineEngine<HopPricer>, OnlineError> {
    OnlineEngine::new(
        g.clone(),
        0.5,
        k,
        HopPricer::default(),
        RepairPolicy::forced_replan(),
    )
}

/// Races `applier` against the one-by-one sequential oracle: the same
/// churn stream is replayed under `partitions` seeded random batch
/// partitions, and the end-state fingerprint (deployment, active
/// count, both objectives bitwise) must match the engine that applied
/// every event individually. Returns the divergences found and the
/// number of perturbed replays.
///
/// `applier(engine, batch)` is the kernel under test — production
/// passes [`OnlineEngine::apply_batch`]; saboteur tests pass a closure
/// that tampers with the batch to prove detection works.
pub fn batch_race_with<F>(
    g: &DiGraph,
    k: usize,
    seed: u64,
    events: &[Event],
    partitions: usize,
    mut applier: F,
) -> (usize, Vec<Divergence>)
where
    F: FnMut(&mut OnlineEngine<HopPricer>, &[Event]) -> Result<(), OnlineError>,
{
    let mut divergences = Vec::new();
    let mut trials = 0usize;
    let oracle = match fresh_engine(g, k).and_then(|mut e| {
        for ev in events {
            e.apply(ev)?;
        }
        Ok(EngineFingerprint::of(&e))
    }) {
        Ok(fp) => fp,
        Err(e) => {
            divergences.push(Divergence {
                arena: "batch",
                seed,
                perturbation: "oracle".to_string(),
                detail: format!("sequential oracle failed: {e}"),
            });
            return (trials, divergences);
        }
    };
    for p in 0..partitions {
        trials += 1;
        let part_seed = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(p as u64 + 1));
        let perturbation = format!("partition_seed={part_seed:#x}");
        let run = fresh_engine(g, k).and_then(|mut e| {
            for batch in random_partition(events, part_seed) {
                applier(&mut e, batch)?;
            }
            Ok(EngineFingerprint::of(&e))
        });
        match run {
            Ok(fp) if fp == oracle => {}
            Ok(fp) => divergences.push(Divergence {
                arena: "batch",
                seed,
                perturbation,
                detail: format!("oracle {oracle} != perturbed {fp}"),
            }),
            Err(e) => divergences.push(Divergence {
                arena: "batch",
                seed,
                perturbation,
                detail: format!("perturbed run failed: {e}"),
            }),
        }
    }
    (trials, divergences)
}

/// BFS shortest path `src → dst`; the connected generator guarantees
/// the walk terminates.
fn shortest_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let r = bfs(g, src);
    let mut path = vec![dst];
    let mut v = dst;
    while v != src {
        v = r.parent[v as usize];
        path.push(v);
    }
    path.reverse();
    path
}

/// A seeded static workload: `flows` shortest-path flows with uniform
/// rates in `1..=10` between distinct random endpoints.
fn static_workload(g: &DiGraph, seed: u64, flows: usize) -> Vec<Flow> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..flows)
        .map(|id| {
            let src = rng.gen_range(0..n);
            let mut dst = rng.gen_range(0..n);
            while dst == src {
                dst = rng.gen_range(0..n);
            }
            Flow::new(id as u32, rng.gen_range(1..=10), shortest_path(g, src, dst))
        })
        .collect()
}

/// A seeded mixed churn stream (arrivals, departures of live flows,
/// at most one failed vertex at a time) — the same event mix the
/// online-engine property tests pin semantics with.
fn mixed_events(g: &DiGraph, seed: u64, len: usize) -> Vec<Event> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<FlowKey> = Vec::new();
    let mut failed: Option<NodeId> = None;
    let mut next_key: FlowKey = 0;
    let mut out = Vec::new();
    for _ in 0..len {
        match rng.gen_range(0..8) {
            0..=3 => {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n);
                while dst == src {
                    dst = rng.gen_range(0..n);
                }
                out.push(Event::FlowArrived {
                    key: next_key,
                    rate: rng.gen_range(1..=10),
                    path: shortest_path(g, src, dst),
                });
                active.push(next_key);
                next_key += 1;
            }
            4..=5 if !active.is_empty() => {
                let i = rng.gen_range(0..active.len());
                out.push(Event::FlowDeparted {
                    key: active.swap_remove(i),
                });
            }
            6 if failed.is_none() => {
                let v = rng.gen_range(0..n);
                failed = Some(v);
                out.push(Event::VertexDown { vertex: v });
            }
            7 => {
                if let Some(v) = failed.take() {
                    out.push(Event::MiddleboxRecovered { vertex: v });
                }
            }
            _ => {}
        }
    }
    out
}

/// Splits `events` into a seeded random partition of non-empty
/// batches (lengths `1..=5`).
fn random_partition(events: &[Event], seed: u64) -> Vec<&[Event]> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut rest = events;
    while !rest.is_empty() {
        let take = rng.gen_range(1..=5usize).min(rest.len());
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out
}

/// Builds the seeded scenario for one seed: a connected topology plus
/// its static workload instance (`λ = 0.5`, budget `⌈n/2⌉`).
fn scenario(cfg: &RaceConfig, seed: u64) -> Result<(Instance, usize), TdmdError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi_connected(cfg.nodes, 0.3, &mut rng);
    let flows = static_workload(&g, seed ^ 0x5EED, cfg.flows);
    let k = cfg.nodes.div_ceil(2);
    Ok((Instance::new(g, flows, 0.5, k)?, k))
}

/// Runs the full schedule-perturbation sweep with the **production**
/// kernels: [`gtp_sharded_with`] against [`gtp_budgeted`] over
/// [`adversarial_shards`] on racing threads, and
/// [`OnlineEngine::apply_batch`] against one-by-one apply over seeded
/// partitions. A non-empty [`RaceReport::divergences`] is a
/// determinism-contract violation; `cargo xtask race` turns it into a
/// hard CI failure.
pub fn run_race(cfg: &RaceConfig) -> RaceReport {
    let mut report = RaceReport::default();
    for &seed in &cfg.seeds {
        match scenario(cfg, seed) {
            Ok((instance, k)) => {
                let shards = adversarial_shards(instance.node_count());
                let (trials, divs) = shard_race_with(
                    &instance,
                    k,
                    seed,
                    &shards,
                    cfg.threads,
                    |inst, k, shard| gtp_sharded_with(inst, k, shard, &HopCount),
                );
                report.shard_trials += trials;
                report.divergences.extend(divs);
            }
            Err(e) => report.divergences.push(Divergence {
                arena: "shard",
                seed,
                perturbation: "scenario".to_string(),
                detail: format!("scenario construction failed: {e}"),
            }),
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(cfg.nodes, 0.3, &mut rng);
        let events = mixed_events(&g, seed ^ 0xBA7C, cfg.events);
        // Budget n: with ≤ 1 failed vertex and ≥ 2-vertex paths the
        // replan oracle stays feasible at every prefix.
        let (trials, divs) =
            batch_race_with(&g, cfg.nodes, seed, &events, cfg.partitions, |e, batch| {
                e.apply_batch(batch)
            });
        report.batch_trials += trials;
        report.divergences.extend(divs);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RaceConfig {
        RaceConfig {
            seeds: vec![11, 12],
            nodes: 8,
            flows: 12,
            events: 24,
            partitions: 3,
            threads: 2,
        }
    }

    #[test]
    fn production_kernels_pass_the_race() {
        let report = run_race(&small_cfg());
        assert!(report.passed(), "{}", report.render());
        assert!(report.shard_trials > 0 && report.batch_trials > 0);
    }

    #[test]
    fn adversarial_shards_cover_the_edges() {
        let s = adversarial_shards(12);
        for w in [1, 11, 12, 13, 24, usize::MAX] {
            assert!(s.contains(&w), "missing width {w}");
        }
        assert!(s.iter().all(|&w| w >= 1));
        assert!(s.windows(2).all(|w| w[0] < w[1]), "not deduped/sorted");
    }

    /// The acceptance test for the harness itself: a runner whose
    /// merge is deliberately perturbed for one shard width (the
    /// deployment it returns has a vertex toggled) must be caught.
    #[test]
    fn injected_shard_nondeterminism_is_detected() {
        let cfg = small_cfg();
        let (instance, k) = scenario(&cfg, 11).unwrap();
        let shards = adversarial_shards(instance.node_count());
        let (_, divs) = shard_race_with(&instance, k, 11, &shards, 2, |inst, k, shard| {
            let mut d = gtp_sharded_with(inst, k, shard, &HopCount)?;
            if shard == 3 {
                // Emulate a racy merge: flip the membership of vertex
                // 0 in the result.
                if !d.remove(0) {
                    d.insert(0);
                }
            }
            Ok(d)
        });
        assert!(
            divs.iter()
                .any(|d| d.arena == "shard" && d.perturbation.contains("shard=3")),
            "perturbed shard width escaped detection: {divs:?}"
        );
        assert!(
            divs.iter().all(|d| d.perturbation.contains("shard=3")),
            "unperturbed widths must stay clean: {divs:?}"
        );
    }

    /// A batch applier that smuggles an extra arrival into multi-event
    /// batches diverges from the one-by-one oracle (the active count
    /// can never match) and must be caught.
    #[test]
    fn injected_batch_nondeterminism_is_detected() {
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(11);
        let g = erdos_renyi_connected(cfg.nodes, 0.3, &mut rng);
        let events = mixed_events(&g, 11 ^ 0xBA7C, cfg.events);
        let ghost_path = shortest_path(&g, 0, 1);
        let mut ghost_key: FlowKey = 1_000_000;
        let (_, divs) = batch_race_with(&g, cfg.nodes, 11, &events, 3, move |e, batch| {
            // Every replay smuggles one extra arrival before the first
            // batch, so the active count can never match the oracle.
            if ghost_key < 1_000_003 {
                e.apply_batch(&[Event::FlowArrived {
                    key: ghost_key,
                    rate: 1,
                    path: ghost_path.clone(),
                }])?;
                ghost_key += 1;
            }
            e.apply_batch(batch)
        });
        assert!(
            divs.iter().any(|d| d.arena == "batch"),
            "tampered batch stream escaped detection: {divs:?}"
        );
    }

    #[test]
    fn report_render_names_every_divergence() {
        let report = RaceReport {
            shard_trials: 3,
            batch_trials: 2,
            divergences: vec![Divergence {
                arena: "shard",
                seed: 7,
                perturbation: "shard=3 replica=1".to_string(),
                detail: "oracle x != perturbed y".to_string(),
            }],
        };
        assert!(!report.passed());
        let text = report.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("[shard seed=7] shard=3 replica=1"));
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let g1 = erdos_renyi_connected(8, 0.3, &mut r1);
        let g2 = erdos_renyi_connected(8, 0.3, &mut r2);
        assert_eq!(mixed_events(&g1, 9, 30), mixed_events(&g2, 9, 30));
        assert_eq!(static_workload(&g1, 9, 10), static_workload(&g2, 9, 10));
        let ev = mixed_events(&g1, 9, 30);
        assert_eq!(
            random_partition(&ev, 4)
                .iter()
                .map(|b| b.len())
                .collect::<Vec<_>>(),
            random_partition(&ev, 4)
                .iter()
                .map(|b| b.len())
                .collect::<Vec<_>>()
        );
    }
}
