//! Seeded fault-injection ("chaos") harness for the online engine.
//!
//! Replays a [`DynamicScenario`]'s flow churn through an
//! [`OnlineEngine`] while injecting middlebox failures from a seeded
//! schedule, and reports how the degradation-aware repair coped:
//! failures seen, flows orphaned, repair latency samples, and the
//! integral of degraded flows over time (degraded flow-microseconds).
//!
//! Two failure models ([`ChaosMode`]):
//!
//! * **Independent** — every vertex alternates up/down phases with
//!   exponentially distributed durations (mean MTBF / MTTR), the
//!   classic memoryless chaos model. Schedules are pre-generated
//!   ([`independent_failure_schedule`]) and merged into the flow
//!   stream, so a run is fully reproducible from its seed.
//! * **Targeted** — the adversarial model: every `period_us` the
//!   harness kills the deployed vertex carrying the highest primary
//!   load (the one whose loss orphans the most saved bandwidth),
//!   recovering it `mttr_us` later. Victim choice depends on the
//!   engine's live state, so these events are injected adaptively
//!   during the replay rather than pre-generated.
//!
//! Every schedule ends fully recovered, so a post-run forced replan
//! ([`OnlineEngine::replan_now`]) must land bitwise on the
//! from-scratch solve — the recovery-transparency property the
//! `failure_properties` suite pins.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::error::TdmdError;
use tdmd_graph::NodeId;
use tdmd_obs::StatsRecorder;
use tdmd_online::{
    events_from_spans, merge_events, obs_keys, Event, HopPricer, OnlineEngine, RepairPolicy,
    TimedEvent,
};

use crate::timeline::{lift, DynamicScenario};

/// How failures are injected into the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosMode {
    /// Independent per-vertex up/down phases with exponential
    /// durations (memoryless failures).
    Independent {
        /// Mean time between failures per vertex, µs.
        mtbf_us: u64,
        /// Mean time to recovery per failure, µs.
        mttr_us: u64,
    },
    /// Kill the deployed vertex with the highest primary load every
    /// period (worst-case adversary).
    Targeted {
        /// Kill period, µs.
        period_us: u64,
        /// Fixed time to recovery per kill, µs.
        mttr_us: u64,
    },
}

/// A seeded chaos run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Failure model.
    pub mode: ChaosMode,
    /// Seed for the failure schedule (flow churn comes from the
    /// scenario's spans and is unaffected).
    pub seed: u64,
}

/// Engine state right after one applied event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPoint {
    /// Event time, µs.
    pub time_us: u64,
    /// Active flows after the event.
    pub active_flows: usize,
    /// Active flows with no serving middlebox (full-rate accounting).
    pub degraded_flows: usize,
    /// Currently failed vertices.
    pub failed_vertices: usize,
    /// Objective (total bandwidth) of the maintained state.
    pub bandwidth: f64,
    /// Middleboxes deployed.
    pub middleboxes: usize,
}

/// Outcome of a chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Failure events applied.
    pub failures: u64,
    /// Recovery events applied.
    pub recoveries: u64,
    /// Flows orphaned by failures (re-pinned or degraded).
    pub flows_orphaned: u64,
    /// Orphaned flows left degraded at the instant of their failure.
    pub flows_degraded: u64,
    /// Integral of the degraded-flow count over time (flow·µs) — the
    /// degraded-seconds metric, in microsecond units.
    pub degraded_flow_us: u64,
    /// Ascending-sorted wall-clock µs of each post-failure repair pass
    /// (feed to [`tdmd_obs::percentile`]).
    pub repair_latency_us: Vec<f64>,
    /// Middleboxes moved by repair and replans across the run —
    /// degraded repair charges the same migration budget as churn
    /// repair, so under a tight [`RepairPolicy::budget`] this stays
    /// bounded by the bucket's refill schedule.
    pub boxes_moved: u64,
    /// Flow→middlebox reassignments caused by those moves
    /// (failure-induced orphaning itself is never charged).
    pub flows_reassigned: u64,
    /// Reconfigurations the migration budget deferred.
    pub budget_deferrals: u64,
    /// Total migration cost charged against the budget (token units).
    pub budget_spent: f64,
    /// Per-event timeline.
    pub points: Vec<ChaosPoint>,
}

/// Pre-generates an independent per-vertex failure schedule over
/// `[0, horizon_us)`: each vertex alternates an exponential up phase
/// (mean `mtbf_us`) and an exponential down phase (mean `mttr_us`),
/// emitting [`Event::VertexDown`] / [`Event::MiddleboxRecovered`]
/// pairs. A vertex still down at the horizon recovers exactly there,
/// so every schedule ends fully recovered. Deterministic in `seed`.
pub fn independent_failure_schedule(
    n_vertices: usize,
    horizon_us: u64,
    mtbf_us: u64,
    mttr_us: u64,
    seed: u64,
) -> Vec<TimedEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Exponential draw without a distr crate: −ln(u)·mean, u ∈ (0, 1].
    let mut exp = |mean: u64| -> u64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        ((-u.ln()) * mean.max(1) as f64).ceil().max(1.0) as u64
    };
    let mut out = Vec::new();
    for v in 0..n_vertices as NodeId {
        let mut t = exp(mtbf_us);
        while t < horizon_us {
            out.push(TimedEvent {
                time_us: t,
                event: Event::VertexDown { vertex: v },
            });
            let up = t.saturating_add(exp(mttr_us)).min(horizon_us);
            out.push(TimedEvent {
                time_us: up,
                event: Event::MiddleboxRecovered { vertex: v },
            });
            if up >= horizon_us {
                break;
            }
            t = up.saturating_add(exp(mtbf_us));
        }
    }
    // Establish the (time, class) order contract via the canonical
    // merge.
    merge_events(&out, &[])
}

/// The replay loop's accounting shell around the engine.
struct ChaosRun<'a> {
    engine: OnlineEngine<HopPricer, &'a StatsRecorder>,
    last_us: u64,
    degraded_flow_us: u64,
    points: Vec<ChaosPoint>,
}

impl ChaosRun<'_> {
    /// Integrates degraded-seconds up to `t`, applies the event, and
    /// records a timeline point.
    fn step(&mut self, t: u64, ev: &Event) -> Result<(), TdmdError> {
        let t = t.max(self.last_us);
        self.degraded_flow_us += self.engine.degraded_count() as u64 * (t - self.last_us);
        self.last_us = t;
        self.engine.apply(ev).map_err(lift)?;
        self.points.push(ChaosPoint {
            time_us: t,
            active_flows: self.engine.active_count(),
            degraded_flows: self.engine.degraded_count(),
            failed_vertices: self.engine.failed_count(),
            bandwidth: tdmd_obs::normalize_zero(self.engine.exact_objective()),
            middleboxes: self.engine.deployment().len(),
        });
        Ok(())
    }

    /// The targeted adversary's victim: the deployed vertex carrying
    /// the highest primary load (ties to the smaller id).
    fn victim(&self) -> Option<NodeId> {
        let mut best: Option<(NodeId, f64)> = None;
        for &v in self.engine.deployment().vertices() {
            let load = self.engine.state().primary_load(v);
            if best.is_none_or(|(_, bl)| load > bl) {
                best = Some((v, load));
            }
        }
        best.map(|(v, _)| v)
    }
}

/// Interleaves targeted kills and their recoveries with the flow
/// stream. Kills stop at the horizon; scheduled recoveries always
/// drain, so the run ends fully recovered.
fn run_targeted(
    run: &mut ChaosRun<'_>,
    flow_events: &[TimedEvent],
    period_us: u64,
    mttr_us: u64,
    horizon_us: u64,
) -> Result<(), TdmdError> {
    let period = period_us.max(1);
    let mut next_kill = period;
    let mut recoveries: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    let mut i = 0usize;
    loop {
        let flow_t = flow_events.get(i).map(|e| e.time_us);
        let rec_t = recoveries.peek().map(|&Reverse((t, _))| t);
        let kill_t = (flow_t.is_some() && next_kill < horizon_us).then_some(next_kill);
        // Earliest due action wins; recoveries beat kills beat flow
        // events at equal times (a kill at t must see post-recovery
        // state, an arrival at t the post-churn deployable set).
        let due = |t: Option<u64>, others: [Option<u64>; 2]| {
            t.is_some_and(|t| others.iter().flatten().all(|&o| t <= o))
        };
        if due(rec_t, [kill_t, flow_t]) {
            let Reverse((t, v)) = recoveries.pop().expect("peeked");
            run.step(t, &Event::MiddleboxRecovered { vertex: v })?;
        } else if due(kill_t, [rec_t, flow_t]) {
            let t = next_kill;
            next_kill += period;
            if let Some(v) = run.victim() {
                run.step(t, &Event::MiddleboxFailed { vertex: v })?;
                recoveries.push(Reverse((t.saturating_add(mttr_us.max(1)), v)));
            }
        } else if let Some(ev) = flow_events.get(i) {
            run.step(ev.time_us, &ev.event)?;
            i += 1;
        } else {
            break;
        }
    }
    Ok(())
}

/// Runs a seeded chaos replay of `scn` under `policy` and reports the
/// failure/repair telemetry.
///
/// # Errors
/// Propagates stream-layer rejections lifted onto [`TdmdError`]
/// (invalid span paths, bad λ); the seeded schedules themselves never
/// produce invalid failure events.
pub fn run_chaos(
    scn: &DynamicScenario,
    policy: RepairPolicy,
    cfg: &ChaosConfig,
) -> Result<ChaosReport, TdmdError> {
    let recorder = StatsRecorder::new();
    let engine = OnlineEngine::with_recorder(
        scn.graph.clone(),
        scn.lambda,
        scn.k,
        HopPricer::default(),
        policy,
        &recorder,
    )
    .map_err(lift)?;
    let flow_events = events_from_spans(&scn.spans);
    let horizon_us = flow_events.last().map_or(0, |e| e.time_us);
    let mut run = ChaosRun {
        engine,
        last_us: 0,
        degraded_flow_us: 0,
        points: Vec::new(),
    };
    match cfg.mode {
        ChaosMode::Independent { mtbf_us, mttr_us } => {
            let sched = independent_failure_schedule(
                scn.graph.node_count(),
                horizon_us,
                mtbf_us,
                mttr_us,
                cfg.seed,
            );
            for ev in merge_events(&flow_events, &sched) {
                run.step(ev.time_us, &ev.event)?;
            }
        }
        ChaosMode::Targeted { period_us, mttr_us } => {
            run_targeted(&mut run, &flow_events, period_us, mttr_us, horizon_us)?;
        }
    }
    let stats = *run.engine.stats();
    Ok(ChaosReport {
        failures: stats.failures,
        recoveries: stats.recoveries,
        flows_orphaned: stats.flows_orphaned,
        flows_degraded: stats.flows_degraded,
        degraded_flow_us: run.degraded_flow_us,
        repair_latency_us: recorder.sorted_samples(obs_keys::FAILURE_REPAIR_US),
        boxes_moved: stats.boxes_moved,
        flows_reassigned: stats.flows_reassigned,
        budget_deferrals: stats.budget_deferrals,
        budget_spent: stats.budget_spent,
        points: run.points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::FlowSpan;
    use tdmd_core::paper::fig5_graph;
    use tdmd_traffic::Flow;

    fn scenario() -> DynamicScenario {
        let mk = |rate, path: Vec<u32>| Flow::new(0, rate, path);
        DynamicScenario {
            graph: fig5_graph(),
            lambda: 0.5,
            k: 2,
            spans: vec![
                FlowSpan {
                    start_us: 0,
                    end_us: 1000,
                    flow: mk(2, vec![3, 1, 0]),
                },
                FlowSpan {
                    start_us: 200,
                    end_us: 800,
                    flow: mk(1, vec![7, 5, 2, 0]),
                },
                FlowSpan {
                    start_us: 400,
                    end_us: 1200,
                    flow: mk(5, vec![6, 5, 2, 0]),
                },
                FlowSpan {
                    start_us: 600,
                    end_us: 900,
                    flow: mk(1, vec![4, 1, 0]),
                },
            ],
        }
    }

    #[test]
    fn independent_schedule_is_seeded_and_balanced() {
        let a = independent_failure_schedule(8, 10_000, 1_000, 200, 42);
        let b = independent_failure_schedule(8, 10_000, 1_000, 200, 42);
        assert_eq!(a, b, "deterministic in the seed");
        let downs = a
            .iter()
            .filter(|e| matches!(e.event, Event::VertexDown { .. }))
            .count();
        let ups = a
            .iter()
            .filter(|e| matches!(e.event, Event::MiddleboxRecovered { .. }))
            .count();
        assert!(downs > 0, "a tight MTBF produces failures");
        assert_eq!(downs, ups, "every failure recovers by the horizon");
        assert!(a.windows(2).all(|w| w[0].time_us <= w[1].time_us));
        // Per vertex the schedule alternates down/up.
        for v in 0..8u32 {
            let mut down = false;
            for e in &a {
                match e.event {
                    Event::VertexDown { vertex } if vertex == v => {
                        assert!(!down, "double down at v{v}");
                        down = true;
                    }
                    Event::MiddleboxRecovered { vertex } if vertex == v => {
                        assert!(down, "recovery without failure at v{v}");
                        down = false;
                    }
                    _ => {}
                }
            }
            assert!(!down, "v{v} still down after the horizon");
        }
    }

    #[test]
    fn independent_chaos_run_ends_recovered_and_consistent() {
        let scn = scenario();
        let report = run_chaos(
            &scn,
            RepairPolicy::default(),
            &ChaosConfig {
                mode: ChaosMode::Independent {
                    mtbf_us: 300,
                    mttr_us: 100,
                },
                seed: 7,
            },
        )
        .unwrap();
        assert!(report.failures > 0, "tight MTBF injects failures");
        assert_eq!(report.failures, report.recoveries);
        let last = report.points.last().unwrap();
        assert_eq!(last.failed_vertices, 0, "schedule ends recovered");
        assert_eq!(last.active_flows, 0);
        assert_eq!(last.bandwidth, 0.0);
        assert!(report.points.iter().all(|p| p.middleboxes <= scn.k));
    }

    #[test]
    fn targeted_chaos_kills_and_recovers() {
        let scn = scenario();
        let report = run_chaos(
            &scn,
            RepairPolicy::default(),
            &ChaosConfig {
                mode: ChaosMode::Targeted {
                    period_us: 250,
                    mttr_us: 100,
                },
                seed: 0,
            },
        )
        .unwrap();
        assert!(report.failures > 0, "periodic kills fire");
        assert_eq!(report.failures, report.recoveries, "recoveries drain");
        assert!(
            report.flows_orphaned > 0,
            "killing the max-load box orphans its flows"
        );
        assert_eq!(report.points.last().unwrap().failed_vertices, 0);
    }

    #[test]
    fn degraded_seconds_accumulate_when_budget_cannot_cover() {
        // k = 1 with a targeted kill and a long MTTR: while the only
        // box is down and every alternative is the failed vertex
        // itself, flows ride degraded and the integral must be > 0.
        let scn = DynamicScenario {
            k: 1,
            spans: vec![FlowSpan {
                start_us: 0,
                end_us: 1000,
                // Two-vertex path: v1 is the only profitable site, so
                // killing it leaves nothing to re-pin to.
                flow: Flow::new(0, 2, vec![3, 1, 0]),
            }],
            ..scenario()
        };
        let report = run_chaos(
            &scn,
            RepairPolicy::local_only(0),
            &ChaosConfig {
                mode: ChaosMode::Targeted {
                    period_us: 100,
                    mttr_us: 400,
                },
                seed: 0,
            },
        )
        .unwrap();
        assert!(report.failures > 0);
        assert!(report.flows_degraded > 0, "no surviving on-path box");
        assert!(report.degraded_flow_us > 0, "degraded time integrates");
        assert_eq!(
            report.repair_latency_us.len() as u64,
            report.failures,
            "one repair-latency sample per failure"
        );
    }

    #[test]
    fn unlimited_budget_chaos_spends_nothing() {
        let report = run_chaos(
            &scenario(),
            RepairPolicy::default(),
            &ChaosConfig {
                mode: ChaosMode::Independent {
                    mtbf_us: 300,
                    mttr_us: 100,
                },
                seed: 7,
            },
        )
        .unwrap();
        assert!(report.boxes_moved > 0, "churn + failures move boxes");
        assert_eq!(report.budget_spent, 0.0, "unlimited moves are free");
        assert_eq!(report.budget_deferrals, 0);
    }

    #[test]
    fn degraded_repair_respects_the_migration_budget() {
        use tdmd_online::ReconfigBudget;
        let scn = scenario();
        let budget = ReconfigBudget::windowed(1.0, 4);
        let policy = RepairPolicy::budgeted(budget);
        let report = run_chaos(
            &scn,
            policy,
            &ChaosConfig {
                mode: ChaosMode::Targeted {
                    period_us: 150,
                    mttr_us: 100,
                },
                seed: 0,
            },
        )
        .unwrap();
        assert!(report.failures > 0, "targeted kills fire");
        // Amortized bound: spend never exceeds the initial burst plus
        // everything refilled over the run (flow costs are zero here).
        let events = report.points.len() as f64;
        let cap = budget.burst + budget.refill_per_event * events;
        assert!(
            report.budget_spent <= cap + 1e-9,
            "spent {} > amortized cap {}",
            report.budget_spent,
            cap
        );
        // The unbudgeted run moves strictly more boxes, so a tight
        // bucket must have deferred something.
        let free = run_chaos(
            &scn,
            RepairPolicy::default(),
            &ChaosConfig {
                mode: ChaosMode::Targeted {
                    period_us: 150,
                    mttr_us: 100,
                },
                seed: 0,
            },
        )
        .unwrap();
        assert!(
            report.boxes_moved < free.boxes_moved || report.budget_deferrals > 0,
            "a tight budget either moves less or records deferrals"
        );
    }

    #[test]
    fn empty_scenario_reports_nothing() {
        let scn = DynamicScenario {
            spans: vec![],
            ..scenario()
        };
        let report = run_chaos(
            &scn,
            RepairPolicy::default(),
            &ChaosConfig {
                mode: ChaosMode::Independent {
                    mtbf_us: 10,
                    mttr_us: 10,
                },
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(report.failures, 0);
        assert!(report.points.is_empty());
    }
}
