//! Hop-by-hop flow replay.
//!
//! Walks every flow along its path through a deployment: each edge
//! before the serving middlebox carries the initial rate `r_f`, each
//! edge at or after it carries `λ·r_f`, and unserved flows ride at
//! full rate end to end. The per-link loads are accumulated
//! independently of the analytic objective so the two can be checked
//! against each other ([`crate::validate`]).

use std::collections::HashMap;
use tdmd_core::objective::allocate;
use tdmd_core::{Deployment, Instance};
use tdmd_graph::NodeId;

/// Occupied bandwidth per directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoads {
    /// Load per directed edge `(u, v)`.
    pub per_link: HashMap<(NodeId, NodeId), f64>,
    /// Sum over all links — the total bandwidth consumption.
    pub total: f64,
    /// Number of flows that crossed no middlebox.
    pub unserved_flows: usize,
}

impl LinkLoads {
    /// Load on the directed link `u -> v` (0 if untouched).
    pub fn load(&self, u: NodeId, v: NodeId) -> f64 {
        self.per_link.get(&(u, v)).copied().unwrap_or(0.0)
    }

    /// The most heavily loaded link, if any flow was replayed.
    pub fn max_link(&self) -> Option<((NodeId, NodeId), f64)> {
        self.per_link
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&e, &l)| (e, l))
    }
}

/// Replays all flows of `instance` through `deployment`.
pub fn replay(instance: &Instance, deployment: &Deployment) -> LinkLoads {
    let lambda = instance.lambda();
    let alloc = allocate(instance, deployment);
    let mut per_link: HashMap<(NodeId, NodeId), f64> = HashMap::new();
    let mut total = 0.0;
    let mut unserved = 0usize;
    for f in instance.flows() {
        let serve_pos = match alloc.assigned[f.id as usize] {
            Some(v) => f.position_of(v).expect("assigned vertex lies on the path"),
            None => {
                unserved += 1;
                f.path.len() // never reached: full rate everywhere
            }
        };
        for (i, w) in f.path.windows(2).enumerate() {
            // The middlebox at position `serve_pos` processes the flow
            // before it leaves that vertex: edge i (from path[i] to
            // path[i+1]) is diminished iff i >= serve_pos.
            let rate = if i >= serve_pos {
                lambda * f.rate as f64
            } else {
                f.rate as f64
            };
            *per_link.entry((w[0], w[1])).or_insert(0.0) += rate;
            total += rate;
        }
    }
    LinkLoads {
        per_link,
        total,
        unserved_flows: unserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_core::objective::bandwidth_of;
    use tdmd_core::paper::{fig1_instance, fig5_instance};

    #[test]
    fn fig1_replay_matches_paper_totals() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::from_vertices(6, [4, 1]));
        assert_eq!(loads.total, 12.0);
        assert_eq!(loads.unserved_flows, 0);
        // f1 is processed at its source v5: both of its links carry 2.
        assert_eq!(loads.load(4, 2), 2.0);
        // Link v3 -> v1 only carries f1 (diminished).
        assert_eq!(loads.load(2, 0), 2.0);
    }

    #[test]
    fn fig1_replay_k3() {
        let inst = fig1_instance(3);
        let loads = replay(&inst, &Deployment::from_vertices(6, [3, 4, 5]));
        assert_eq!(loads.total, 8.0);
        // f2 + f4 both start at v6; both processed there.
        assert_eq!(loads.load(5, 2), 1.0);
        assert_eq!(loads.load(5, 1), 1.0);
    }

    #[test]
    fn unserved_flows_ride_full_rate() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::empty(6));
        assert_eq!(loads.unserved_flows, 4);
        assert_eq!(loads.total, inst.unprocessed_bandwidth());
        assert_eq!(loads.load(4, 2), 4.0);
    }

    #[test]
    fn replay_total_equals_analytic_bandwidth() {
        for k in 1..=4 {
            let inst = fig5_instance(k);
            for vs in [vec![0], vec![1, 5], vec![3, 4, 6, 7], vec![2, 5]] {
                let d = Deployment::from_vertices(8, vs.iter().copied());
                let loads = replay(&inst, &d);
                let analytic = bandwidth_of(&inst, &d);
                assert!(
                    (loads.total - analytic).abs() < 1e-9,
                    "replay {} vs analytic {} for {vs:?}",
                    loads.total,
                    analytic
                );
            }
        }
    }

    #[test]
    fn max_link_is_reported() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::empty(6));
        let ((_, _), l) = loads.max_link().unwrap();
        assert_eq!(l, 4.0, "f1's full-rate links dominate");
    }

    #[test]
    fn empty_instance_has_empty_loads() {
        let g = tdmd_core::paper::fig5_graph();
        let inst = Instance::new(g, vec![], 0.5, 1).unwrap();
        let loads = replay(&inst, &Deployment::empty(8));
        assert!(loads.per_link.is_empty());
        assert_eq!(loads.total, 0.0);
        assert!(loads.max_link().is_none());
    }
}
