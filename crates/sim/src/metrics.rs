//! Link-utilization metrics over a replay.

use crate::replay::LinkLoads;

/// Aggregate link metrics for a replayed deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkMetrics {
    /// Total occupied bandwidth (the paper's objective).
    pub total_bandwidth: f64,
    /// Highest single-link load.
    pub max_link_load: f64,
    /// Mean load over links that carry any traffic.
    pub mean_loaded_link: f64,
    /// Number of links carrying traffic.
    pub loaded_links: usize,
    /// Max link load / capacity (the congestion check the paper's
    /// over-provisioning assumption makes moot, §6.1).
    pub max_utilization: f64,
    /// Whether every flow was served by some deployed middlebox on
    /// its path (the coverage constraint held during replay).
    pub feasible: bool,
}

impl LinkMetrics {
    /// Computes metrics from a replay given the per-link capacity.
    pub fn from_loads(loads: &LinkLoads, link_capacity: u64) -> Self {
        let loaded_links = loads.per_link.len();
        let max_link_load = loads.per_link.values().copied().fold(0.0f64, f64::max);
        let mean_loaded_link = if loaded_links == 0 {
            0.0
        } else {
            loads.per_link.values().sum::<f64>() / loaded_links as f64
        };
        Self {
            total_bandwidth: loads.total,
            max_link_load,
            mean_loaded_link,
            loaded_links,
            max_utilization: if link_capacity == 0 {
                0.0
            } else {
                max_link_load / link_capacity as f64
            },
            feasible: loads.unserved_flows == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use tdmd_core::paper::fig1_instance;
    use tdmd_core::Deployment;

    #[test]
    fn metrics_summarize_fig1() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::from_vertices(6, [4, 1]));
        let m = LinkMetrics::from_loads(&loads, 100);
        assert_eq!(m.total_bandwidth, 12.0);
        assert!(m.feasible);
        assert_eq!(m.loaded_links, 6);
        assert!(m.max_link_load >= m.mean_loaded_link);
        assert!((m.max_utilization - m.max_link_load / 100.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_deployment_is_flagged() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::empty(6));
        let m = LinkMetrics::from_loads(&loads, 100);
        assert!(!m.feasible);
    }

    #[test]
    fn zero_capacity_does_not_divide_by_zero() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::from_vertices(6, [4, 1]));
        let m = LinkMetrics::from_loads(&loads, 0);
        assert_eq!(m.max_utilization, 0.0);
    }
}
