//! Link-utilization metrics over a replay, and the fairness index
//! used by the multi-tenant serve reports.

use crate::replay::LinkLoads;

/// Jain's fairness index `(Σxᵢ)² / (n · Σxᵢ²)` over per-tenant
/// allocations (e.g. served bandwidth): `1.0` when every tenant gets
/// the same amount, down to `1/n` when a single tenant gets
/// everything. Empty or all-zero allocations report `1.0` (a
/// vacuously fair split). Allocations are expected to be
/// non-negative (rates are unsigned upstream).
pub fn jain_fairness(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sq_sum: f64 = allocations.iter().map(|x| x * x).sum();
    if sq_sum.to_bits() == 0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq_sum)
}

/// Aggregate link metrics for a replayed deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkMetrics {
    /// Total occupied bandwidth (the paper's objective).
    pub total_bandwidth: f64,
    /// Highest single-link load.
    pub max_link_load: f64,
    /// Mean load over links that carry any traffic.
    pub mean_loaded_link: f64,
    /// Number of links carrying traffic.
    pub loaded_links: usize,
    /// Max link load / capacity (the congestion check the paper's
    /// over-provisioning assumption makes moot, §6.1).
    pub max_utilization: f64,
    /// Whether every flow was served by some deployed middlebox on
    /// its path (the coverage constraint held during replay).
    pub feasible: bool,
}

impl LinkMetrics {
    /// Computes metrics from a replay given the per-link capacity.
    pub fn from_loads(loads: &LinkLoads, link_capacity: u64) -> Self {
        let loaded_links = loads.per_link.len();
        let max_link_load = loads.per_link.values().copied().fold(0.0f64, f64::max);
        let mean_loaded_link = if loaded_links == 0 {
            0.0
        } else {
            loads.per_link.values().sum::<f64>() / loaded_links as f64
        };
        Self {
            total_bandwidth: loads.total,
            max_link_load,
            mean_loaded_link,
            loaded_links,
            max_utilization: if link_capacity == 0 {
                0.0
            } else {
                max_link_load / link_capacity as f64
            },
            feasible: loads.unserved_flows == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use tdmd_core::paper::fig1_instance;
    use tdmd_core::Deployment;

    #[test]
    fn metrics_summarize_fig1() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::from_vertices(6, [4, 1]));
        let m = LinkMetrics::from_loads(&loads, 100);
        assert_eq!(m.total_bandwidth, 12.0);
        assert!(m.feasible);
        assert_eq!(m.loaded_links, 6);
        assert!(m.max_link_load >= m.mean_loaded_link);
        assert!((m.max_utilization - m.max_link_load / 100.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_deployment_is_flagged() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::empty(6));
        let m = LinkMetrics::from_loads(&loads, 100);
        assert!(!m.feasible);
    }

    #[test]
    fn zero_capacity_does_not_divide_by_zero() {
        let inst = fig1_instance(2);
        let loads = replay(&inst, &Deployment::from_vertices(6, [4, 1]));
        let m = LinkMetrics::from_loads(&loads, 0);
        assert_eq!(m.max_utilization, 0.0);
    }

    #[test]
    fn jain_fairness_spans_its_range() {
        // Equal split is perfectly fair.
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        // One tenant hogging everything bottoms out at 1/n.
        let hog = jain_fairness(&[12.0, 0.0, 0.0]);
        assert!((hog - 1.0 / 3.0).abs() < 1e-12, "{hog}");
        // A mild skew lands strictly in between.
        let skew = jain_fairness(&[3.0, 2.0, 1.0]);
        assert!(skew > 1.0 / 3.0 && skew < 1.0, "{skew}");
        // The index is scale-invariant.
        let a = jain_fairness(&[1.0, 2.0, 3.0]);
        let b = jain_fairness(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
        // Degenerate inputs are vacuously fair.
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
