//! `cargo xtask lint` — the tdmd-audit static analysis pass.
//!
//! A zero-dependency, token-level lint over every workspace crate's
//! `src/` tree (no `syn`, no rustc plumbing — it must build instantly
//! and run before clippy in CI). Rules:
//!
//! * `unwrap-expect` — no `.unwrap()` / `.expect(` outside
//!   `#[cfg(test)]` regions.
//! * `float-eq` — no exact `==`/`!=` on cost/gain floats; the
//!   sanctioned idioms are `total_cmp`, `to_bits()` equality and
//!   epsilon bands.
//! * `as-cast` — no numeric `as` casts in the algorithm kernels
//!   (`crates/core/src/algorithms/`, `crates/online/src/`).
//! * `partial-cmp` — hand-written `partial_cmp` must delegate to a
//!   total order.
//! * `obs-keys` — telemetry keys emitted anywhere must round-trip
//!   through the `crates/obs/src/keys.rs` registry.
//!
//! Suppressions live in `crates/xtask/lint.toml`; every entry needs a
//! written `reason`, and stale entries fail the run. Diagnostics are
//! `file:line: [rule] message`; the exit code is non-zero on any
//! violation, so CI can gate on it.

#![forbid(unsafe_code)]

mod allowlist;
mod rules;
mod scrub;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match lint() {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("xtask: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

/// Runs the full lint pass; `Ok(true)` means clean.
fn lint() -> Result<bool, String> {
    let root = workspace_root()?;
    let files = load_workspace_sources(&root)?;
    let allow_path = root.join("crates/xtask/lint.toml");
    let allows = match std::fs::read_to_string(&allow_path) {
        Ok(text) => allowlist::parse(&text).map_err(|e| format!("{}:{e}", allow_path.display()))?,
        Err(_) => Vec::new(),
    };

    let violations = rules::run_all(&files);
    let mut used = vec![false; allows.len()];
    let mut active: Vec<&rules::Violation> = Vec::new();
    for v in &violations {
        let suppressed = allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.matches(v.rule, &v.path, &v.line_text));
        match suppressed {
            Some((i, _)) => used[i] = true,
            None => active.push(v),
        }
    }

    for v in &active {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }
    let mut stale = 0;
    for (a, used) in allows.iter().zip(&used) {
        if !used {
            stale += 1;
            println!(
                "crates/xtask/lint.toml:{}: [stale-allow] entry ({} @ {}) matches nothing — remove it",
                a.line, a.rule, a.path
            );
        }
    }

    let suppressed_count = used.iter().filter(|&&u| u).count();
    if active.is_empty() && stale == 0 {
        println!(
            "xtask lint: clean — {} files, 5 rules, {} justified suppressions",
            files.len(),
            suppressed_count
        );
        Ok(true)
    } else {
        println!(
            "xtask lint: {} violation(s), {} stale allowlist entr(ies)",
            active.len(),
            stale
        );
        Ok(false)
    }
}

/// Workspace root: the xtask manifest sits at `<root>/crates/xtask`.
fn workspace_root() -> Result<PathBuf, String> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map_err(|_| "CARGO_MANIFEST_DIR not set (run via `cargo xtask lint`)".to_string())?;
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .ok_or_else(|| format!("cannot locate workspace root from {}", manifest.display()))
}

/// Every `.rs` file under `crates/*/src`, loaded and pre-processed.
/// Test and bench *directories* are deliberately not walked — the
/// rules only govern library and binary code.
fn load_workspace_sources(root: &Path) -> Result<Vec<rules::SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(root, &src, &mut files)?;
        }
    }
    Ok(files)
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<rules::SourceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let raw = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rules::SourceFile::load(rel, raw));
        }
    }
    Ok(())
}
