//! `cargo xtask` — the tdmd workspace analyzer.
//!
//! Two subcommands:
//!
//! * `lint [--format json] [--out PATH]` — the tdmd-audit static
//!   analysis pass: a zero-dependency, multi-pass token-level analyzer
//!   over every workspace crate's `src/` tree (no `syn`, no rustc
//!   plumbing — it must build instantly and run before clippy in CI).
//!   All nine rules consume one shared comment/string/raw-string-aware
//!   lexer ([`lex`]), so none can fire inside a doc comment or string
//!   literal. Rules:
//!
//!   * `unwrap-expect` — no `.unwrap()` / `.expect(` outside
//!     `#[cfg(test)]` regions.
//!   * `float-eq` — no exact `==`/`!=` on cost/gain floats; the
//!     sanctioned idioms are `total_cmp`, `to_bits()` equality and
//!     epsilon bands.
//!   * `as-cast` — no numeric `as` casts in the algorithm kernels.
//!   * `partial-cmp` — hand-written `partial_cmp` must delegate to a
//!     total order.
//!   * `obs-keys` — telemetry keys emitted anywhere must round-trip
//!     through the `crates/obs/src/keys.rs` registry.
//!   * `map-iter-order` — no `HashMap`/`HashSet` in the
//!     determinism-governed crates (core, online, serve); their
//!     process-seeded iteration order breaks the bitwise
//!     sharded/batched ≡ sequential contracts.
//!   * `wall-clock` — no `Instant`/`SystemTime` inside solver crates;
//!     time comes from the event stream, latency from the obs
//!     `Stopwatch` at the boundaries.
//!   * `panic-path` — no panic-family macros or literal indexing in
//!     non-test, non-`debug_assertions`/audit regions of library
//!     crates; surface the typed error enums instead.
//!   * `dead-obs-key` — every registry key is emitted somewhere, and
//!     every float serialization site in the bench writer routes
//!     through `round_metric`.
//!
//!   Suppressions live in `crates/xtask/lint.toml`; every entry needs
//!   a written `reason`, and stale entries fail the run. Diagnostics
//!   are `file:line: [rule] message`; `--format json` writes the
//!   schema-stable `tdmd-lint/v1` report (violations, suppression
//!   provenance, stale entries) for the CI artifact. The exit code is
//!   non-zero on any violation or stale entry, so CI can gate on it.
//!
//! * `race` — the dynamic companion: forwards to `tdmd race`, the
//!   schedule-perturbation harness that reruns `gtp_sharded` and
//!   `OnlineEngine::apply_batch` under adversarial shard widths and
//!   batch partitions and hard-fails on any bitwise divergence from
//!   the sequential oracle. The static determinism lints certify the
//!   harness is meaningful (no hidden hash-order or wall-clock inputs
//!   the perturbations cannot reach).

#![forbid(unsafe_code)]

mod allowlist;
mod lex;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_lint_args(&args[1..]) {
            Ok(opts) => match lint(&opts) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("xtask: {e}");
                    ExitCode::from(2)
                }
            },
            Err(e) => {
                eprintln!("xtask: {e}");
                ExitCode::from(2)
            }
        },
        Some("race") => race(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask lint [--format json] [--out PATH] | cargo xtask race");
            ExitCode::from(2)
        }
    }
}

/// Options for `xtask lint`.
struct LintOpts {
    /// Emit the `tdmd-lint/v1` JSON report instead of plain
    /// diagnostics.
    json: bool,
    /// Where to write the report (default: stdout). Plain diagnostics
    /// always go to stdout regardless.
    out: Option<PathBuf>,
}

fn parse_lint_args(rest: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts {
        json: false,
        out: None,
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => {
                    return Err(format!(
                        "--format takes `json` or `text`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--out" => {
                let path = it
                    .next()
                    .ok_or_else(|| "--out requires a path".to_string())?;
                opts.out = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown lint flag '{other}'")),
        }
    }
    if opts.out.is_some() && !opts.json {
        return Err("--out only makes sense with --format json".to_string());
    }
    Ok(opts)
}

/// `xtask race`: delegate to the CLI's race command, which links the
/// solver crates (xtask itself is dependency-free by design). Builds
/// in release — the harness replays full solves and must not time out
/// in CI.
fn race(rest: &[String]) -> ExitCode {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.current_dir(&root)
        .args([
            "run",
            "--release",
            "-p",
            "tdmd-cli",
            "--bin",
            "tdmd",
            "--",
            "race",
        ])
        .args(rest);
    match cmd.status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask: failed to launch tdmd race: {e}");
            ExitCode::from(2)
        }
    }
}

/// One suppressed violation with its allowlist provenance, for the
/// JSON report.
struct Suppressed<'a> {
    violation: &'a rules::Violation,
    allow: &'a allowlist::Allow,
}

/// Runs the full lint pass; `Ok(true)` means clean.
fn lint(opts: &LintOpts) -> Result<bool, String> {
    let root = workspace_root()?;
    let files = load_workspace_sources(&root)?;
    let allow_path = root.join("crates/xtask/lint.toml");
    let allows = match std::fs::read_to_string(&allow_path) {
        Ok(text) => allowlist::parse(&text).map_err(|e| format!("{}:{e}", allow_path.display()))?,
        Err(_) => Vec::new(),
    };

    let violations = rules::run_all(&files);
    let mut used = vec![false; allows.len()];
    let mut active: Vec<&rules::Violation> = Vec::new();
    let mut suppressed: Vec<Suppressed> = Vec::new();
    for v in &violations {
        let hit = allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.matches(v.rule, &v.path, &v.line_text));
        match hit {
            Some((i, a)) => {
                used[i] = true;
                suppressed.push(Suppressed {
                    violation: v,
                    allow: a,
                });
            }
            None => active.push(v),
        }
    }
    let stale: Vec<&allowlist::Allow> = allows
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(a, _)| a)
        .collect();

    let clean = active.is_empty() && stale.is_empty();
    if opts.json {
        let report = json_report(files.len(), &active, &suppressed, &stale, clean);
        match &opts.out {
            Some(path) => {
                let abs = if path.is_absolute() {
                    path.clone()
                } else {
                    root.join(path)
                };
                std::fs::write(&abs, &report).map_err(|e| format!("{}: {e}", abs.display()))?;
                eprintln!("xtask lint: wrote {}", abs.display());
            }
            None => println!("{report}"),
        }
    }
    if !opts.json || opts.out.is_some() {
        for v in &active {
            println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        }
        for a in &stale {
            println!(
                "crates/xtask/lint.toml:{}: [stale-allow] entry ({} @ {}) matches nothing — remove it",
                a.line, a.rule, a.path
            );
        }
        if clean {
            println!(
                "xtask lint: clean — {} files, {} rules, {} justified suppressions",
                files.len(),
                rules::RULES.len(),
                suppressed.len()
            );
        } else {
            println!(
                "xtask lint: {} violation(s), {} stale allowlist entr(ies)",
                active.len(),
                stale.len()
            );
        }
    }
    Ok(clean)
}

// ------------------------------------------------------------------
// tdmd-lint/v1 JSON report
// ------------------------------------------------------------------

/// Minimal JSON string escaping (the crate is dependency-free).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the schema-stable `tdmd-lint/v1` report. Key order and
/// shape are pinned by `schema_golden` below and validated in CI —
/// downstream tooling may rely on every field named here.
fn json_report(
    files_scanned: usize,
    active: &[&rules::Violation],
    suppressed: &[Suppressed],
    stale: &[&allowlist::Allow],
    clean: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tdmd-lint/v1\",\n");
    s.push_str(&format!("  \"clean\": {clean},\n"));
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str("  \"rules\": [");
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(r));
    }
    s.push_str("],\n");

    s.push_str("  \"violations\": [");
    for (i, v) in active.iter().enumerate() {
        s.push_str(if i > 0 { ",\n    " } else { "\n    " });
        s.push_str(&format!(
            "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(v.rule),
            json_str(&v.path),
            v.line,
            json_str(&v.message)
        ));
    }
    s.push_str(if active.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str("  \"suppressed\": [");
    for (i, sup) in suppressed.iter().enumerate() {
        s.push_str(if i > 0 { ",\n    " } else { "\n    " });
        s.push_str(&format!(
            "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"allow_line\": {}, \"reason\": {}}}",
            json_str(sup.violation.rule),
            json_str(&sup.violation.path),
            sup.violation.line,
            sup.allow.line,
            json_str(&sup.allow.reason)
        ));
    }
    s.push_str(if suppressed.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str("  \"stale_allows\": [");
    for (i, a) in stale.iter().enumerate() {
        s.push_str(if i > 0 { ",\n    " } else { "\n    " });
        s.push_str(&format!(
            "{{\"rule\": {}, \"path\": {}, \"allow_line\": {}}}",
            json_str(&a.rule),
            json_str(&a.path),
            a.line
        ));
    }
    s.push_str(if stale.is_empty() { "]\n" } else { "\n  ]\n" });
    s.push('}');
    s
}

/// Workspace root: the xtask manifest sits at `<root>/crates/xtask`.
fn workspace_root() -> Result<PathBuf, String> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map_err(|_| "CARGO_MANIFEST_DIR not set (run via `cargo xtask lint`)".to_string())?;
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .ok_or_else(|| format!("cannot locate workspace root from {}", manifest.display()))
}

/// Every `.rs` file under `crates/*/src`, loaded and pre-processed.
/// Test and bench *directories* are deliberately not walked — the
/// rules only govern library and binary code.
fn load_workspace_sources(root: &Path) -> Result<Vec<rules::SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(root, &src, &mut files)?;
        }
    }
    Ok(files)
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<rules::SourceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let raw = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rules::SourceFile::load(rel, raw));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, path: &str, line: usize) -> rules::Violation {
        rules::Violation {
            path: path.to_string(),
            line,
            rule,
            message: format!("m \"{rule}\""),
            line_text: String::new(),
        }
    }

    /// Golden test pinning the `tdmd-lint/v1` schema: field names,
    /// nesting, and key order. CI validates emitted LINT.json against
    /// the same shape; changing this output is a schema bump.
    #[test]
    fn schema_golden() {
        let v = violation("float-eq", "crates/core/src/x.rs", 7);
        let sup_v = violation("unwrap-expect", "crates/graph/src/y.rs", 3);
        let allow = allowlist::Allow {
            rule: "unwrap-expect".to_string(),
            path: "crates/graph/src/y.rs".to_string(),
            contains: None,
            reason: "poison recovery".to_string(),
            line: 12,
        };
        let stale = allowlist::Allow {
            rule: "as-cast".to_string(),
            path: "crates/online/src/z.rs".to_string(),
            contains: None,
            reason: "old".to_string(),
            line: 20,
        };
        let report = json_report(
            42,
            &[&v],
            &[Suppressed {
                violation: &sup_v,
                allow: &allow,
            }],
            &[&stale],
            false,
        );
        let expected = "{\n  \"schema\": \"tdmd-lint/v1\",\n  \"clean\": false,\n  \"files_scanned\": 42,\n  \"rules\": [\"unwrap-expect\", \"float-eq\", \"as-cast\", \"partial-cmp\", \"obs-keys\", \"map-iter-order\", \"wall-clock\", \"panic-path\", \"dead-obs-key\"],\n  \"violations\": [\n    {\"rule\": \"float-eq\", \"file\": \"crates/core/src/x.rs\", \"line\": 7, \"message\": \"m \\\"float-eq\\\"\"}\n  ],\n  \"suppressed\": [\n    {\"rule\": \"unwrap-expect\", \"file\": \"crates/graph/src/y.rs\", \"line\": 3, \"allow_line\": 12, \"reason\": \"poison recovery\"}\n  ],\n  \"stale_allows\": [\n    {\"rule\": \"as-cast\", \"path\": \"crates/online/src/z.rs\", \"allow_line\": 20}\n  ]\n}";
        assert_eq!(report, expected);
    }

    #[test]
    fn empty_report_has_stable_shape() {
        let report = json_report(0, &[], &[], &[], true);
        assert!(report.starts_with("{\n  \"schema\": \"tdmd-lint/v1\""));
        assert!(report.contains("\"violations\": []"));
        assert!(report.contains("\"suppressed\": []"));
        assert!(report.contains("\"stale_allows\": []"));
        assert!(report.ends_with('}'));
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn lint_flag_parsing() {
        assert!(parse_lint_args(&[]).unwrap().out.is_none());
        let j = parse_lint_args(&["--format".into(), "json".into()]).unwrap();
        assert!(j.json);
        let o = parse_lint_args(&[
            "--format".into(),
            "json".into(),
            "--out".into(),
            "LINT.json".into(),
        ])
        .unwrap();
        assert_eq!(o.out.as_deref(), Some(Path::new("LINT.json")));
        assert!(parse_lint_args(&["--out".into(), "x".into()]).is_err());
        assert!(parse_lint_args(&["--format".into(), "yaml".into()]).is_err());
        assert!(parse_lint_args(&["--wat".into()]).is_err());
    }
}
