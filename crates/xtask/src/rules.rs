//! The nine tdmd-audit lint rules, all consuming the shared
//! [`crate::lex`] token stream — no rule ever re-scans raw source, so
//! none can match inside a string literal or a doc comment.
//!
//! Determinism rules (`map-iter-order`, `wall-clock`) police the
//! bitwise-reproducibility contracts the repo's property tests pin
//! (sharded GTP ≡ sequential, snapshot restore+replay ≡ never
//! stopping, batched apply ≡ one-by-one): a single `HashMap`
//! iteration or wall-clock read in a solver path breaks those
//! silently until a seed happens to expose it.

use crate::lex::{self, Kind, Token};

/// Every rule id, in reporting order. The allowlist validates its
/// `rule` keys against this list and the JSON report embeds it.
pub const RULES: &[&str] = &[
    "unwrap-expect",
    "float-eq",
    "as-cast",
    "partial-cmp",
    "obs-keys",
    "map-iter-order",
    "wall-clock",
    "panic-path",
    "dead-obs-key",
];

/// One rule hit, pointing at a repo-relative `file:line`.
#[derive(Debug)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The raw source line, for allowlist `contains` matching.
    pub line_text: String,
}

/// A loaded workspace source file: raw text, its token stream, and
/// the attribute-region masks the rules consult.
pub struct SourceFile {
    /// Repo-relative path (forward slashes).
    pub rel_path: String,
    /// Original contents.
    pub raw: String,
    /// The shared token stream ([`crate::lex`]).
    pub tokens: Vec<Token>,
    /// Per-line membership of exact `#[cfg(test)]` regions.
    pub test_mask: Vec<bool>,
    /// Per-line membership of `cfg` regions gated on
    /// `debug_assertions` or `feature = "audit"` — the runtime
    /// auditor's own layer, exempt from `panic-path` (its whole job
    /// is to panic on corrupted structure).
    pub debug_mask: Vec<bool>,
    /// Per-line membership of items carrying a `# Panics` doc
    /// contract — a documented panic is a published precondition, so
    /// `panic-path` exempts it (the rule polices *undocumented* abort
    /// paths).
    pub panics_doc_mask: Vec<bool>,
}

impl SourceFile {
    /// Lexes and pre-processes one file.
    pub fn load(rel_path: String, raw: String) -> Self {
        let tokens = lex::lex(&raw);
        let n_lines = raw.lines().count();
        let test_mask = lex::region_mask(n_lines, &lex::attr_regions(&tokens, lex::is_cfg_test));
        let debug_mask = lex::region_mask(
            n_lines,
            &lex::attr_regions(&tokens, lex::is_cfg_debug_or_audit),
        );
        let panics_doc_mask = lex::region_mask(n_lines, &lex::doc_panic_regions(&raw, &tokens));
        Self {
            rel_path,
            raw,
            tokens,
            test_mask,
            debug_mask,
            panics_doc_mask,
        }
    }

    fn in_test(&self, line0: usize) -> bool {
        self.test_mask.get(line0).copied().unwrap_or(false)
    }

    fn in_debug(&self, line0: usize) -> bool {
        self.debug_mask.get(line0).copied().unwrap_or(false)
    }

    fn raw_line(&self, line0: usize) -> &str {
        self.raw.lines().nth(line0).unwrap_or("")
    }

    /// Does any token on `line0` name one of `idents`?
    fn line_has_ident(&self, line0: usize, idents: &[&str]) -> bool {
        self.tokens
            .iter()
            .filter(|t| t.line == line0)
            .any(|t| t.kind == Kind::Ident && idents.contains(&t.text.as_str()))
    }
}

/// Runs every rule over `files` and returns all violations found.
pub fn run_all(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        unwrap_expect(f, &mut out);
        float_eq(f, &mut out);
        as_cast(f, &mut out);
        partial_cmp_rule(f, &mut out);
        map_iter_order(f, &mut out);
        wall_clock(f, &mut out);
        panic_path(f, &mut out);
        round_metric_routing(f, &mut out);
    }
    obs_keys(files, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

fn push(
    out: &mut Vec<Violation>,
    f: &SourceFile,
    line0: usize,
    rule: &'static str,
    message: String,
) {
    out.push(Violation {
        path: f.rel_path.clone(),
        line: line0 + 1,
        rule,
        message,
        line_text: f.raw_line(line0).to_string(),
    });
}

// --------------------------------------------------------------------
// unwrap-expect
// --------------------------------------------------------------------

/// Rule `unwrap-expect`: no `.unwrap()` / `.expect(` outside
/// `#[cfg(test)]` regions. Library code surfaces typed errors; a panic
/// is only acceptable where it is provably unreachable, and then only
/// via an allowlist entry with a written justification.
fn unwrap_expect(f: &SourceFile, out: &mut Vec<Violation>) {
    for w in f.tokens.windows(3) {
        if !w[0].is_punct(".") || !w[2].is_punct("(") {
            continue;
        }
        let name = match w[1].text.as_str() {
            "unwrap" | "expect" if w[1].kind == Kind::Ident => w[1].text.as_str(),
            _ => continue,
        };
        if f.in_test(w[1].line) {
            continue;
        }
        push(
            out,
            f,
            w[1].line,
            "unwrap-expect",
            format!("`.{name}(` in non-test code — return a typed error instead"),
        );
    }
}

// --------------------------------------------------------------------
// float-eq
// --------------------------------------------------------------------

/// Identifier fragments that mark a value as a cost/gain quantity for
/// the `float-eq` rule.
const FLOAT_NAME_FRAGMENTS: &[&str] = &[
    "gain",
    "cost",
    "obj",
    "saved",
    "load",
    "lambda",
    "bandwidth",
    "decrement",
    "drift",
];

/// Punctuation that ends an operand expression at bracket depth 0.
const OPERAND_STOPS: &[&str] = &[
    ",", ";", "{", "}", "=", "<", ">", "!", "&", "|", "+", "-", "*", "/", "%", "^", "?", "==",
    "!=", "<=", ">=", "&&", "||", "=>", "->", "return",
];

/// Rule `float-eq`: no `==` / `!=` on cost/gain floats. Exact
/// comparison of accumulated `f64`s silently breaks under reordering;
/// the sanctioned idioms are `total_cmp`, bitwise `to_bits()` equality
/// (for provably-copied values), or an epsilon band. Heuristic: for
/// each `==`/`!=` token, collect the two operand token runs (bounded
/// at depth 0 by [`OPERAND_STOPS`]) and flag the comparison when an
/// operand carries a float literal or its type-indicative identifier
/// (the trailing ident after stripping call/index groups, so
/// `xs.len()` reads as `len`, not `xs`) names a cost/gain quantity.
/// Token-level limits: a comparison of renamed float locals (no
/// fragment, no literal) escapes — the auditor's runtime checks are
/// the backstop.
fn float_eq(f: &SourceFile, out: &mut Vec<Violation>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let line0 = t.line;
        if f.in_test(line0) || f.line_has_ident(line0, &["to_bits", "total_cmp"]) {
            continue;
        }
        let left = operand_left(&f.tokens, i);
        let right = operand_right(&f.tokens, i);
        // Comparing against a string literal is never a float
        // comparison, whatever the other operand is named.
        let has_str = |r: &[Token]| r.iter().any(|t| t.kind == Kind::Str);
        if has_str(left) || has_str(right) {
            continue;
        }
        if let Some(why) = floaty_operand(left).or_else(|| floaty_operand(right)) {
            push(
                out,
                f,
                line0,
                "float-eq",
                format!("exact float comparison ({why}) — use total_cmp, to_bits or an epsilon"),
            );
        }
    }
}

/// The operand token run to the left of the operator at `op`.
fn operand_left(tokens: &[Token], op: usize) -> &[Token] {
    let line = tokens[op].line;
    let mut depth = 0usize;
    let mut j = op;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.line != line {
            break;
        }
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && (OPERAND_STOPS.contains(&t.text.as_str())) {
            break;
        }
        j -= 1;
    }
    &tokens[j..op]
}

/// The operand token run to the right of the operator at `op`.
fn operand_right(tokens: &[Token], op: usize) -> &[Token] {
    let line = tokens[op].line;
    let mut depth = 0usize;
    let mut k = op + 1;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.line != line {
            break;
        }
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && OPERAND_STOPS.contains(&t.text.as_str()) {
            break;
        }
        k += 1;
    }
    &tokens[op + 1..k]
}

/// Does this operand token run look like a cost/gain float? Returns
/// the evidence, or `None` for integers and unrelated names.
fn floaty_operand(run: &[Token]) -> Option<String> {
    if run.iter().any(|t| t.kind == Kind::Float) {
        return Some("a float literal operand".to_string());
    }
    // Strip trailing call/index groups so the type-indicative name is
    // the method (`xs.len()` → `len`), but indexing falls through to
    // the container (`f.gains[pos]` → `gains`).
    let mut end = run.len();
    while end > 0 && (run[end - 1].is_punct(")") || run[end - 1].is_punct("]")) {
        let (open, close) = if run[end - 1].is_punct(")") {
            ("(", ")")
        } else {
            ("[", "]")
        };
        let mut depth = 0usize;
        let mut j = end;
        while j > 0 {
            j -= 1;
            if run[j].is_punct(close) {
                depth += 1;
            } else if run[j].is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if depth != 0 {
            return None;
        }
        end = j;
    }
    let ident = run[..end].iter().rev().find(|t| t.kind == Kind::Ident)?;
    // Only the *trailing* ident counts; anything else between it and
    // the stripped groups (e.g. a `.`) is fine, but a non-trailing
    // position means the shape is something we don't understand.
    if run[..end].last().is_some_and(|t| t.kind != Kind::Ident) {
        return None;
    }
    let lower = ident.text.to_ascii_lowercase();
    if lower == "nan" || lower == "infinity" {
        return Some(format!(
            "`{}` is never `==` anything / a sentinel",
            ident.text
        ));
    }
    let hit = lower.split('_').any(|seg| {
        FLOAT_NAME_FRAGMENTS
            .iter()
            .any(|fr| seg == *fr || (seg.strip_suffix('s') == Some(fr)))
    });
    hit.then(|| format!("`{}` names a cost/gain float", ident.text))
}

// --------------------------------------------------------------------
// as-cast
// --------------------------------------------------------------------

/// Directories where rule `as-cast` forbids numeric `as` casts: the
/// hot algorithm kernels, where a silent truncation corrupts flow
/// indices. Use `u32::try_from` / `usize::from` helpers instead.
const AS_CAST_DIRS: &[&str] = &["crates/core/src/algorithms/", "crates/online/src/"];

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn as_cast(f: &SourceFile, out: &mut Vec<Violation>) {
    if !AS_CAST_DIRS.iter().any(|d| f.rel_path.starts_with(d)) {
        return;
    }
    for w in f.tokens.windows(2) {
        if w[0].is_ident("as")
            && w[1].kind == Kind::Ident
            && NUMERIC_TYPES.contains(&w[1].text.as_str())
            && !f.in_test(w[0].line)
        {
            push(
                out,
                f,
                w[0].line,
                "as-cast",
                format!(
                    "numeric `as {}` cast in an algorithm kernel — use a checked conversion",
                    w[1].text
                ),
            );
        }
    }
}

// --------------------------------------------------------------------
// partial-cmp
// --------------------------------------------------------------------

/// Rule `partial-cmp`: every hand-written `partial_cmp` must delegate
/// to a total order (`Ord::cmp` or `f64::total_cmp`) — the four ad-hoc
/// gain orderings this rule replaced each had their own NaN story, and
/// `BinaryHeap` silently misorders on an inconsistent `PartialOrd`.
fn partial_cmp_rule(f: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &f.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if !(toks[i].is_ident("fn") && toks[i + 1].is_ident("partial_cmp")) {
            continue;
        }
        if f.in_test(toks[i].line) {
            continue;
        }
        // Find the body: the matching `}` of the first `{`; a `;`
        // first means a trait signature with no body — skip.
        let mut j = i + 2;
        while j < toks.len() && !(toks[j].is_punct("{") || toks[j].is_punct(";")) {
            j += 1;
        }
        if j >= toks.len() || toks[j].is_punct(";") {
            continue;
        }
        let mut depth = 0usize;
        let mut end = j;
        while end < toks.len() {
            if toks[end].is_punct("{") {
                depth += 1;
            } else if toks[end].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        let body = &toks[j..end.min(toks.len())];
        let delegates = body
            .windows(2)
            .any(|w| (w[0].is_punct(".") && w[1].is_ident("cmp")) || w[0].is_ident("total_cmp"))
            || body.last().is_some_and(|t| t.is_ident("total_cmp"));
        if !delegates {
            push(
                out,
                f,
                toks[i].line,
                "partial-cmp",
                "partial_cmp not backed by a total order — delegate to Ord::cmp or total_cmp"
                    .to_string(),
            );
        }
    }
}

// --------------------------------------------------------------------
// map-iter-order
// --------------------------------------------------------------------

/// Directories rule `map-iter-order` governs: the crates whose output
/// the bitwise-reproducibility contracts cover (placement solvers,
/// the online engine, the serve session). `cli` / `experiments` /
/// `bench` are drivers and may hash freely.
const MAP_ITER_DIRS: &[&str] = &[
    "crates/core/src/",
    "crates/online/src/",
    "crates/serve/src/",
];

/// Rule `map-iter-order`: no `HashMap` / `HashSet` in the
/// determinism-governed crates — their iteration order is seeded per
/// process, so any iteration (or any future refactor that adds one)
/// perturbs float accumulation order and breaks the sharded/batched ≡
/// sequential contracts. `BTreeMap`/`BTreeSet` or a sorted `Vec` are
/// the sanctioned replacements; a keyed-lookup-only table that never
/// iterates needs an allowlist entry naming that fact. Test regions
/// are **not** exempt: proptest replay and the bitwise oracles compare
/// engine fingerprints inside tests too.
fn map_iter_order(f: &SourceFile, out: &mut Vec<Violation>) {
    if !MAP_ITER_DIRS.iter().any(|d| f.rel_path.starts_with(d)) {
        return;
    }
    for t in &f.tokens {
        if t.kind == Kind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                out,
                f,
                t.line,
                "map-iter-order",
                format!(
                    "`{}` in a determinism-governed crate — iteration order is \
                     process-seeded; use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            );
        }
    }
}

// --------------------------------------------------------------------
// wall-clock
// --------------------------------------------------------------------

/// Directories rule `wall-clock` governs: every library crate whose
/// results must be a pure function of its inputs. `obs` is excluded —
/// it *hosts* the sanctioned `Stopwatch` boundary — as are the
/// `cli`/`experiments`/`bench` drivers, which time at the edges.
const WALL_CLOCK_DIRS: &[&str] = &[
    "crates/core/src/",
    "crates/online/src/",
    "crates/chain/src/",
    "crates/graph/src/",
    "crates/traffic/src/",
    "crates/sim/src/",
    "crates/serve/src/",
];

/// Rule `wall-clock`: no `Instant::now` / `SystemTime` influence
/// inside solver kernels — time must come from the event stream
/// (virtual timestamps), never the host clock, or replays and
/// snapshot-restore stop being bitwise. Measure latency at the
/// boundaries through `tdmd_obs::Stopwatch`, which the recorder can
/// compile away.
fn wall_clock(f: &SourceFile, out: &mut Vec<Violation>) {
    if !WALL_CLOCK_DIRS.iter().any(|d| f.rel_path.starts_with(d)) {
        return;
    }
    for t in &f.tokens {
        if t.kind == Kind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && !f.in_test(t.line)
        {
            push(
                out,
                f,
                t.line,
                "wall-clock",
                format!(
                    "`{}` in a solver crate — results must not depend on the host \
                     clock; use event-stream time, or tdmd_obs::Stopwatch at the boundary",
                    t.text
                ),
            );
        }
    }
}

// --------------------------------------------------------------------
// panic-path
// --------------------------------------------------------------------

/// Library crates rule `panic-path` governs (binaries and drivers may
/// abort; a library must surface typed errors).
const PANIC_PATH_DIRS: &[&str] = &[
    "crates/core/src/",
    "crates/online/src/",
    "crates/obs/src/",
    "crates/graph/src/",
    "crates/traffic/src/",
    "crates/chain/src/",
    "crates/sim/src/",
    "crates/serve/src/",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Rule `panic-path`: no panic-family macros (`panic!`,
/// `unreachable!`, `todo!`, `unimplemented!`, the `assert!` family)
/// and no literal-index expressions (`xs[0]` — the classic
/// "first element exists" shape that panics on empty input) in
/// non-test, non-`debug_assertions`/audit regions of library crates.
/// Surface `TdmdError` / `OnlineError` / `AuditError` instead.
///
/// Sanctioned and exempt:
/// * items carrying a `# Panics` doc section — a documented panic is
///   a published precondition, not an accidental abort path;
/// * `debug_assert!` and `const _: () = assert!(…)` (compile-time);
/// * literal `w[0]`/`w[1]` within two lines of a
///   `.windows(`/`.chunks_exact(` call, whose chunk length is
///   guaranteed by the iterator;
/// * computed CSR indexing — its bounds are the runtime auditor's job
///   (`check_instance` / `check_engine`), which a static token scan
///   cannot re-prove.
fn panic_path(f: &SourceFile, out: &mut Vec<Violation>) {
    if !PANIC_PATH_DIRS.iter().any(|d| f.rel_path.starts_with(d)) {
        return;
    }
    let exempt = |line0: usize| {
        f.in_test(line0)
            || f.in_debug(line0)
            || f.panics_doc_mask.get(line0).copied().unwrap_or(false)
    };
    // Lines on which a fixed-chunk iterator is set up; literal indexes
    // on or just below such a line read a guaranteed-length window.
    let window_lines: Vec<usize> = f
        .tokens
        .windows(3)
        .filter(|w| {
            w[0].is_punct(".")
                && (w[1].is_ident("windows") || w[1].is_ident("chunks_exact"))
                && w[2].is_punct("(")
        })
        .map(|w| w[1].line)
        .collect();
    let windowed = |line0: usize| window_lines.iter().any(|&l| l <= line0 && line0 - l <= 2);
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind == Kind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && f.tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && !exempt(t.line)
            // `const _: () = assert!(…)` evaluates at compile time.
            && !(i > 0 && f.tokens[i - 1].is_punct("=") && f.line_has_ident(t.line, &["const"]))
        {
            push(
                out,
                f,
                t.line,
                "panic-path",
                format!(
                    "`{}!` in library code outside test/debug_assertions regions — \
                     return the crate's typed error (or document a `# Panics` contract)",
                    t.text
                ),
            );
        }
        // Literal indexing: `expr[0]` where expr is an ident or a
        // closed call/index group.
        if t.is_punct("[")
            && i > 0
            && (f.tokens[i - 1].kind == Kind::Ident
                || f.tokens[i - 1].is_punct(")")
                || f.tokens[i - 1].is_punct("]"))
            && f.tokens.get(i + 1).is_some_and(|n| n.kind == Kind::Int)
            && f.tokens.get(i + 2).is_some_and(|n| n.is_punct("]"))
            && !exempt(t.line)
            && !windowed(t.line)
        {
            push(
                out,
                f,
                t.line,
                "panic-path",
                format!(
                    "literal index `[{}]` assumes the collection's shape and panics \
                     when it is wrong — use first()/get() and surface a typed error",
                    f.tokens[i + 1].text
                ),
            );
        }
    }
}

// --------------------------------------------------------------------
// obs-keys + dead-obs-key
// --------------------------------------------------------------------

const REGISTRY: &str = "crates/obs/src/keys.rs";

/// Rule `obs-keys` (forward direction): the telemetry schema lives in
/// `crates/obs/src/keys.rs`. Every key emitted through
/// `Recorder::count` / `Recorder::sample` must be a registry value and
/// the registry must be self-consistent (every const listed in
/// `keys::ALL` and vice versa). The reverse direction — keys that
/// exist but are emitted nowhere — is rule `dead-obs-key`, so a dead
/// key and a rogue emission suppress independently.
fn obs_keys(files: &[SourceFile], out: &mut Vec<Violation>) {
    let Some(reg_file) = files.iter().find(|f| f.rel_path.ends_with(REGISTRY)) else {
        return; // nothing to check against (e.g. partial checkout)
    };
    let consts = parse_registry_consts(reg_file);
    let all_block = parse_all_block(reg_file);

    // Registry self-consistency: each const is listed in ALL and vice
    // versa.
    for (name, _, line0) in &consts {
        if !all_block.contains(name) {
            push(
                out,
                reg_file,
                *line0,
                "obs-keys",
                format!("const {name} is not listed in keys::ALL"),
            );
        }
    }
    for name in &all_block {
        if !consts.iter().any(|(n, _, _)| n == name) {
            let line0 = reg_file
                .tokens
                .iter()
                .find(|t| t.is_ident(name))
                .map_or(0, |t| t.line);
            push(
                out,
                reg_file,
                line0,
                "obs-keys",
                format!("keys::ALL lists {name}, which is not a registry const"),
            );
        }
    }

    // Forward: every literal handed to count()/sample() outside the
    // registry must be a registered value.
    let values: Vec<&str> = consts.iter().map(|(_, v, _)| v.as_str()).collect();
    for f in files {
        if f.rel_path.ends_with(REGISTRY) {
            continue;
        }
        for w in f.tokens.windows(4) {
            if w[0].is_punct(".")
                && (w[1].is_ident("count") || w[1].is_ident("sample"))
                && w[2].is_punct("(")
                && w[3].kind == Kind::Str
                && !f.in_test(w[1].line)
            {
                let value = w[3].str_content();
                if !values.contains(&value) {
                    push(
                        out,
                        f,
                        w[1].line,
                        "obs-keys",
                        format!(
                            "telemetry key \"{value}\" is not in the keys.rs registry — \
                             add it there and emit via the named const"
                        ),
                    );
                }
            }
        }
    }

    // Reverse (rule `dead-obs-key`): every registry const is
    // referenced outside keys.rs — a key emitted nowhere is dead
    // schema that bench consumers will read as silently-zero.
    for (name, _, line0) in &consts {
        let used = files
            .iter()
            .any(|f| !f.rel_path.ends_with(REGISTRY) && f.tokens.iter().any(|t| t.is_ident(name)));
        if !used {
            push(
                out,
                reg_file,
                *line0,
                "dead-obs-key",
                format!("registry key {name} is never referenced by emitting code"),
            );
        }
    }
}

/// `pub const NAME: &str = "value";` triples (name, value, 0-based
/// line), token-matched so commented-out consts cannot register.
fn parse_registry_consts(f: &SourceFile) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    let t = &f.tokens;
    for i in 0..t.len().saturating_sub(8) {
        if t[i].is_ident("pub")
            && t[i + 1].is_ident("const")
            && t[i + 2].kind == Kind::Ident
            && t[i + 3].is_punct(":")
            && t[i + 4].is_punct("&")
            && t[i + 5].is_ident("str")
            && t[i + 6].is_punct("=")
            && t[i + 7].kind == Kind::Str
        {
            out.push((
                t[i + 2].text.clone(),
                t[i + 7].str_content().to_string(),
                t[i + 2].line,
            ));
        }
    }
    out
}

/// Identifier list inside the `pub const ALL: &[&str] = [...]` block.
fn parse_all_block(f: &SourceFile) -> Vec<String> {
    let t = &f.tokens;
    let Some(at) = t
        .windows(3)
        .position(|w| w[0].is_ident("const") && w[1].is_ident("ALL") && w[2].is_punct(":"))
    else {
        return Vec::new();
    };
    // Find the `=`, then collect idents inside the bracket block.
    let Some(eq) = t[at..].iter().position(|x| x.is_punct("=")).map(|i| at + i) else {
        return Vec::new();
    };
    let Some(open) = t[eq..].iter().position(|x| x.is_punct("[")).map(|i| eq + i) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for x in &t[open + 1..] {
        if x.is_punct("]") {
            break;
        }
        if x.kind == Kind::Ident
            && x.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            out.push(x.text.clone());
        }
    }
    out
}

// --------------------------------------------------------------------
// dead-obs-key: round_metric routing
// --------------------------------------------------------------------

/// The committed-artifact serializer rule `dead-obs-key` also audits:
/// every float metric field written into a `BENCH_*.json` struct here
/// must route through `tdmd_obs::round_metric`, or the committed
/// artifacts churn on sub-ULP timing noise.
const SERIALIZATION_FILES: &[&str] = &["crates/cli/src/commands/bench.rs"];

/// Field-name shapes that carry wall/latency/throughput floats.
fn is_metric_field(name: &str) -> bool {
    name.ends_with("_us")
        || name.ends_with("_per_sec")
        || matches!(name, "p50" | "p90" | "p99" | "max" | "mean")
}

/// Rule `dead-obs-key` (serialization direction): in the bench
/// serializer, a struct-literal field named like a timing/throughput
/// metric whose value expression computes a float (a float literal,
/// an `f64` cast, a `percentile`/`elapsed_us` call) must wrap it in
/// `round_metric`. Integer timestamps (`end_us: start + hold`) carry
/// no float evidence and pass; `pub name: f64` declarations are
/// skipped by the leading-`pub` check.
fn round_metric_routing(f: &SourceFile, out: &mut Vec<Violation>) {
    if !SERIALIZATION_FILES.contains(&f.rel_path.as_str()) {
        return;
    }
    let t = &f.tokens;
    for i in 1..t.len().saturating_sub(1) {
        if !(t[i].kind == Kind::Ident && is_metric_field(&t[i].text) && t[i + 1].is_punct(":")) {
            continue;
        }
        // Skip declarations (`pub wall_us: f64`) and anything in
        // tests.
        if t[i - 1].is_ident("pub") || f.in_test(t[i].line) {
            continue;
        }
        // The value expression: tokens to the matching `,` / `}` at
        // depth 0.
        let mut depth = 0usize;
        let mut j = i + 2;
        let start = j;
        while j < t.len() {
            let x = &t[j];
            if x.is_punct("(") || x.is_punct("[") || x.is_punct("{") {
                depth += 1;
            } else if x.is_punct(")") || x.is_punct("]") || x.is_punct("}") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && x.is_punct(",") {
                break;
            }
            j += 1;
        }
        let expr = &t[start..j];
        if expr.iter().any(|x| x.is_ident("round_metric")) {
            continue;
        }
        // A bare type name is a (non-pub) declaration, not a value.
        if expr.len() == 1 && expr[0].kind == Kind::Ident {
            continue;
        }
        let float_evidence = expr.iter().any(|x| {
            x.kind == Kind::Float
                || x.is_ident("f64")
                || x.is_ident("percentile")
                || x.is_ident("percentile_opt")
                || x.is_ident("elapsed_us")
        });
        if float_evidence {
            push(
                out,
                f,
                t[i].line,
                "dead-obs-key",
                format!(
                    "float serialization site `{}` bypasses round_metric — committed \
                     bench artifacts must round at the boundary",
                    t[i].text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::load(path.to_string(), src.to_string())
    }

    fn rules_on(path: &str, src: &str) -> Vec<Violation> {
        run_all(&[file(path, src)])
    }

    fn rules_named<'a>(v: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
        v.iter().filter(|x| x.rule == rule).collect()
    }

    // ---------------------------------------------------- unwrap-expect

    #[test]
    fn unwrap_outside_tests_is_flagged_inside_tests_is_not() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n";
        let v = rules_on("crates/a/src/l.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, "unwrap-expect");
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { m.lock().unwrap_or_else(|p| p.into_inner()); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_in_doc_comment_or_string_is_not_flagged() {
        let v = rules_on(
            "crates/a/src/l.rs",
            "/// Call `.unwrap()` on it.\nfn a() { let s = \"x.unwrap()\"; let r = r#\"y.unwrap()\"#; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    // --------------------------------------------------------- float-eq

    #[test]
    fn float_eq_flags_gain_comparisons_but_not_bitwise() {
        let bad = rules_on("crates/a/src/l.rs", "fn a() { if gain == best { } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "float-eq");
        let lit = rules_on("crates/a/src/l.rs", "fn a() { if x == 0.0 { } }\n");
        assert_eq!(lit.len(), 1, "{lit:?}");
        let ok = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if gain.to_bits() == best.to_bits() { } }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let ints = rules_on("crates/a/src/l.rs", "fn a() { if i == j { } }\n");
        assert!(ints.is_empty(), "{ints:?}");
    }

    #[test]
    fn float_eq_is_operand_local_not_line_local() {
        // Integer comparison; the float literal sits past the `&&`
        // boundary in a different comparison.
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if volume == 0 && tie <= 0.0 { } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // `.len()` reads as integer even when the receiver names gains.
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if f.gains.len() != f.path.len() { } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // String comparison of a `cost`-named variable.
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if cost_model == \"weighted\" { } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // A call named after a gain is still flagged...
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if coverage_gain(inst, s, v) == n { } }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        // ...and so is indexing into a gains vector.
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if f.gains[pos] == second { } }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    // ---------------------------------------------------------- as-cast

    #[test]
    fn as_casts_only_flagged_in_kernel_dirs() {
        let src = "fn a(x: u64) -> usize { x as usize }\n";
        assert_eq!(rules_on("crates/core/src/algorithms/gtp.rs", src).len(), 1);
        assert_eq!(rules_on("crates/online/src/delta.rs", src).len(), 1);
        assert!(rules_on("crates/graph/src/digraph.rs", src).is_empty());
    }

    // ------------------------------------------------------ partial-cmp

    #[test]
    fn partial_cmp_must_delegate_to_a_total_order() {
        let bad = "impl PartialOrd for G { fn partial_cmp(&self, o: &Self) -> Option<Ordering> {\n\
                   self.0.partial_cmp(&o.0) } }\n";
        let v = rules_on("crates/a/src/l.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "partial-cmp");
        let good =
            "impl PartialOrd for G { fn partial_cmp(&self, o: &Self) -> Option<Ordering> {\n\
                    Some(self.cmp(o)) } }\n";
        assert!(rules_on("crates/a/src/l.rs", good).is_empty());
        // A signature with no body (trait declaration) is not flagged.
        let sig = "trait T { fn partial_cmp(&self, o: &Self) -> Option<Ordering>; }\n";
        assert!(rules_on("crates/a/src/l.rs", sig).is_empty());
    }

    // --------------------------------------------------- map-iter-order

    #[test]
    fn hash_collections_flagged_in_governed_dirs_even_in_tests() {
        let src = "use std::collections::HashMap;\nfn a() { let m: HashMap<u32, f64> = HashMap::new(); }\n";
        let v = rules_on("crates/core/src/cost.rs", src);
        assert_eq!(rules_named(&v, "map-iter-order").len(), 3, "{v:?}");
        // Test regions are NOT exempt for this rule.
        let in_test = "#[cfg(test)]\nmod t { fn b() { let m = std::collections::HashMap::<u32, u32>::new(); } }\n";
        let v = rules_on("crates/online/src/engine.rs", in_test);
        assert_eq!(rules_named(&v, "map-iter-order").len(), 1, "{v:?}");
        // Ungoverned crates may hash freely.
        assert!(rules_on("crates/graph/src/digraph.rs", src).is_empty());
        // Doc comments mentioning HashMap are fine.
        let doc = "/// Replaces the `HashMap` on the hot path.\nfn a() {}\n";
        assert!(rules_on("crates/online/src/delta.rs", doc).is_empty());
    }

    // ------------------------------------------------------- wall-clock

    #[test]
    fn wall_clock_sources_flagged_outside_tests() {
        let src = "fn a() { let t = std::time::Instant::now(); }\n";
        let v = rules_on("crates/core/src/algorithms/gtp.rs", src);
        assert_eq!(rules_named(&v, "wall-clock").len(), 1, "{v:?}");
        let sys = "fn a() { let t = SystemTime::now(); }\n";
        assert_eq!(
            rules_named(&rules_on("crates/online/src/engine.rs", sys), "wall-clock").len(),
            1
        );
        // Tests may time things; obs hosts the Stopwatch boundary.
        let in_test = "#[cfg(test)]\nmod t { fn b() { let t = Instant::now(); } }\n";
        assert!(rules_on("crates/sim/src/runner.rs", in_test).is_empty());
        assert!(rules_on("crates/obs/src/timer.rs", src).is_empty());
    }

    // ------------------------------------------------------- panic-path

    #[test]
    fn panic_macros_flagged_in_library_code() {
        let src = "fn a() { panic!(\"boom\"); }\nfn b() { unreachable!() }\n";
        let v = rules_on("crates/core/src/plan.rs", src);
        assert_eq!(rules_named(&v, "panic-path").len(), 2, "{v:?}");
        // assert! family too, but debug_assert! is legal.
        let asserts = "fn a() { assert!(x > 0); debug_assert!(x > 0); }\n";
        let v = rules_on("crates/online/src/budget.rs", asserts);
        assert_eq!(rules_named(&v, "panic-path").len(), 1, "{v:?}");
    }

    #[test]
    fn panic_path_exempts_test_and_audit_regions() {
        let src = "#[cfg(test)]\nmod t { fn a() { assert_eq!(1, 1); } }\n\
                   #[cfg(any(debug_assertions, feature = \"audit\", test))]\n\
                   fn enforce() { panic!(\"audit\"); }\n";
        let v = rules_on("crates/core/src/audit.rs", src);
        assert!(rules_named(&v, "panic-path").is_empty(), "{v:?}");
        // Drivers (cli) are not library crates.
        let cli = "fn main() { panic!(\"usage\"); }\n";
        assert!(rules_on("crates/cli/src/main.rs", cli).is_empty());
    }

    #[test]
    fn documented_panics_contracts_are_sanctioned() {
        let documented = "/// Builds it.\n///\n/// # Panics\n/// Panics on an empty chain.\n\
                          pub fn new(xs: Vec<u32>) -> Self {\n    assert!(!xs.is_empty());\n    Self { xs }\n}\n\
                          fn other() { assert!(true); }\n";
        let v = rules_on("crates/chain/src/spec.rs", documented);
        let hits = rules_named(&v, "panic-path");
        assert_eq!(hits.len(), 1, "{v:?}");
        assert_eq!(hits[0].line, 9, "only the undocumented assert: {hits:?}");
    }

    #[test]
    fn const_asserts_are_compile_time_and_exempt() {
        let src = "const _: () = assert!(std::mem::size_of::<usize>() >= 4);\n";
        assert!(rules_on("crates/core/src/num.rs", src).is_empty());
    }

    #[test]
    fn windows_iteration_indexes_are_guaranteed_in_bounds() {
        let same_line = "fn a(p: &[u32]) -> bool { p.windows(2).any(|w| w[0] == w[1]) }\n";
        assert!(rules_on("crates/graph/src/tree.rs", same_line).is_empty());
        let loop_body = "fn a(p: &[u32]) {\n    for w in p.windows(2) {\n        if w[0] > w[1] { }\n    }\n}\n";
        assert!(rules_on("crates/graph/src/tree.rs", loop_body).is_empty());
        // Three lines below the windows() call the guarantee no
        // longer applies.
        let far = "fn a(p: &[u32]) {\n    let it = p.windows(2);\n    let x = 1;\n    let y = 2;\n    let z = p[0];\n}\n";
        let v = rules_on("crates/graph/src/tree.rs", far);
        assert_eq!(rules_named(&v, "panic-path").len(), 1, "{v:?}");
    }

    #[test]
    fn literal_indexing_flagged_computed_indexing_is_not() {
        let lit = "fn a(xs: &[u32]) -> u32 { xs[0] }\n";
        let v = rules_on("crates/graph/src/tree.rs", lit);
        assert_eq!(rules_named(&v, "panic-path").len(), 1, "{v:?}");
        // Computed CSR indexing is the auditor's jurisdiction.
        let csr = "fn a(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
        assert!(rules_on("crates/graph/src/tree.rs", csr).is_empty());
        // Array *types* and literals are not indexing.
        let ty = "fn a() { let m: [u32; 3] = [1, 2, 3]; }\n";
        assert!(rules_on("crates/graph/src/tree.rs", ty).is_empty());
    }

    // ---------------------------------------------- obs-keys + dead key

    #[test]
    fn obs_keys_registry_and_emissions_are_cross_checked() {
        let registry = "pub const GOOD: &str = \"good\";\npub const DEAD: &str = \"dead\";\n\
                        pub const ALL: &[&str] = &[GOOD, DEAD];\n";
        let emitter =
            "fn e(r: &impl Recorder) { r.count(\"good\", 1); r.sample(\"rogue\", 2.0); GOOD; }\n";
        let v = run_all(&[
            file("crates/obs/src/keys.rs", registry),
            file("crates/online/src/engine.rs", emitter),
        ]);
        let rogue = rules_named(&v, "obs-keys");
        assert!(
            rogue.iter().any(|m| m.message.contains("\"rogue\"")),
            "unregistered emission must be flagged: {v:?}"
        );
        let dead = rules_named(&v, "dead-obs-key");
        assert!(
            dead.iter().any(|m| m.message.contains("DEAD")),
            "dead registry key must be flagged under dead-obs-key: {v:?}"
        );
        assert_eq!(rogue.len() + dead.len(), 2, "{v:?}");
    }

    #[test]
    fn all_block_and_const_listing_are_both_checked() {
        let registry = "pub const A: &str = \"a\";\npub const ALL: &[&str] = &[A, GHOST];\n\
                        pub const B: &str = \"b\";\n";
        let user = "fn e(r: &impl Recorder) { r.count(\"a\", 1); A; B; }\n";
        let v = run_all(&[
            file("crates/obs/src/keys.rs", registry),
            file("crates/core/src/engine.rs", user),
        ]);
        let msgs: Vec<&str> = v.iter().map(|x| x.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("GHOST")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("const B is not listed")),
            "{msgs:?}"
        );
    }

    // ---------------------------------------------- round_metric routing

    #[test]
    fn bench_float_fields_must_route_through_round_metric() {
        let src = "fn report(wall: f64) -> Out {\n\
                   Out { wall_us: round_metric(wall, 3), events_per_sec: wall / 1e6, end_us: start + hold.max(1) }\n\
                   }\n";
        let v = rules_on("crates/cli/src/commands/bench.rs", src);
        let hits = rules_named(&v, "dead-obs-key");
        assert_eq!(hits.len(), 1, "{v:?}");
        assert!(hits[0].message.contains("events_per_sec"), "{hits:?}");
        // Declarations are not serialization sites.
        let decl = "pub struct Out {\n    pub wall_us: f64,\n}\n";
        assert!(rules_on("crates/cli/src/commands/bench.rs", decl).is_empty());
        // Other files are out of scope for this sub-check.
        let other = "fn f() -> O { O { wall_us: w / 1e6 } }\n";
        assert!(rules_on("crates/cli/src/commands/stream.rs", other).is_empty());
    }
}
