//! The five tdmd-audit lint rules. All scanners work on scrubbed
//! source (comments and literal bodies blanked — see [`crate::scrub`])
//! so they cannot match inside strings or docs, and all skip exact
//! `#[cfg(test)]` regions where a rule exempts test code.

use crate::scrub;

/// One rule hit, pointing at a repo-relative `file:line`.
#[derive(Debug)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (`unwrap-expect`, `float-eq`, `as-cast`,
    /// `partial-cmp`, `obs-keys`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The raw source line, for allowlist `contains` matching.
    pub line_text: String,
}

/// A loaded workspace source file with its scrubbed mirror and
/// test-region mask.
pub struct SourceFile {
    /// Repo-relative path (forward slashes).
    pub rel_path: String,
    /// Original contents.
    pub raw: String,
    /// Comment/literal-blanked mirror (same byte offsets).
    pub scrubbed: String,
    /// Per-line `#[cfg(test)]` membership.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Loads and pre-processes one file.
    pub fn load(rel_path: String, raw: String) -> Self {
        let scrubbed = scrub::scrub(&raw);
        let test_mask = scrub::test_region_mask(&scrubbed);
        Self {
            rel_path,
            raw,
            scrubbed,
            test_mask,
        }
    }

    fn in_test(&self, line0: usize) -> bool {
        self.test_mask.get(line0).copied().unwrap_or(false)
    }

    fn raw_line(&self, line0: usize) -> &str {
        self.raw.lines().nth(line0).unwrap_or("")
    }
}

/// Runs every rule over `files` and returns all violations found.
pub fn run_all(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        unwrap_expect(f, &mut out);
        float_eq(f, &mut out);
        as_cast(f, &mut out);
        partial_cmp_rule(f, &mut out);
    }
    obs_keys(files, &mut out);
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

fn push(
    out: &mut Vec<Violation>,
    f: &SourceFile,
    line0: usize,
    rule: &'static str,
    message: String,
) {
    out.push(Violation {
        path: f.rel_path.clone(),
        line: line0 + 1,
        rule,
        message,
        line_text: f.raw_line(line0).to_string(),
    });
}

/// Rule `unwrap-expect`: no `.unwrap()` / `.expect(` outside
/// `#[cfg(test)]` regions. Library code surfaces typed errors; a panic
/// is only acceptable where it is provably unreachable, and then only
/// via an allowlist entry with a written justification.
fn unwrap_expect(f: &SourceFile, out: &mut Vec<Violation>) {
    for (l, line) in f.scrubbed.lines().enumerate() {
        if f.in_test(l) {
            continue;
        }
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                push(
                    out,
                    f,
                    l,
                    "unwrap-expect",
                    format!("`{needle}` in non-test code — return a typed error instead"),
                );
            }
        }
    }
}

/// Identifier fragments that mark a value as a cost/gain quantity for
/// the `float-eq` rule.
const FLOAT_NAME_FRAGMENTS: &[&str] = &[
    "gain",
    "cost",
    "obj",
    "saved",
    "load",
    "lambda",
    "bandwidth",
    "decrement",
    "drift",
];

/// Rule `float-eq`: no `==` / `!=` on cost/gain floats. Exact
/// comparison of accumulated `f64`s silently breaks under reordering;
/// the sanctioned idioms are `total_cmp`, bitwise `to_bits()` equality
/// (for provably-copied values), or an epsilon band. Heuristic: for
/// each `==`/`!=`, extract the two operand expressions (bounded by
/// `&&`, `||`, braces, commas and unbalanced brackets) and flag the
/// comparison when an operand carries a float literal or its
/// type-indicative identifier (the trailing name after stripping call
/// and index groups, so `xs.len()` reads as `len`, not `xs`) names a
/// cost/gain quantity. Token-level limits: a comparison of renamed
/// float locals (no fragment, no literal) escapes — the auditor's
/// runtime checks are the backstop.
fn float_eq(f: &SourceFile, out: &mut Vec<Violation>) {
    for (l, line) in f.scrubbed.lines().enumerate() {
        if f.in_test(l) {
            continue;
        }
        if line.contains("to_bits()") || line.contains("total_cmp") {
            continue;
        }
        let b = line.as_bytes();
        let mut i = 0;
        while i + 1 < b.len() {
            let two = &b[i..i + 2];
            let is_eq = two == b"==" && (i == 0 || !b"=!<>".contains(&b[i - 1]));
            let is_ne = two == b"!=";
            if !(is_eq || is_ne) {
                i += 1;
                continue;
            }
            let left = operand_left(line, i);
            let right = operand_right(line, i + 2);
            // Comparing against a string literal is never a float
            // comparison, whatever the other operand is named.
            let is_str = |e: &str| {
                let t = e.trim();
                t.starts_with('"') || t.ends_with('"')
            };
            if is_str(&left) || is_str(&right) {
                i += 2;
                continue;
            }
            let floaty = floaty_operand(&left).or_else(|| floaty_operand(&right));
            if let Some(why) = floaty {
                push(
                    out,
                    f,
                    l,
                    "float-eq",
                    format!(
                        "exact float comparison ({why}) — use total_cmp, to_bits or an epsilon"
                    ),
                );
            }
            i += 2;
        }
    }
}

/// Characters that end an operand expression at bracket depth 0.
const OPERAND_STOPS: &[u8] = b",;{}=<>!&|+-*/%^?";

/// The expression text to the left of an operator at byte `op_at`.
fn operand_left(line: &str, op_at: usize) -> String {
    let b = line.as_bytes();
    let mut depth = 0usize;
    let mut j = op_at;
    while j > 0 {
        let c = b[j - 1];
        match c {
            b')' | b']' => depth += 1,
            b'(' | b'[' if depth > 0 => depth -= 1,
            b'(' | b'[' => break,
            _ if depth == 0 && OPERAND_STOPS.contains(&c) => break,
            _ => {}
        }
        j -= 1;
    }
    line[j..op_at].to_string()
}

/// The expression text to the right of an operator ending at `from`.
fn operand_right(line: &str, from: usize) -> String {
    let b = line.as_bytes();
    let mut depth = 0usize;
    let mut k = from;
    while k < b.len() {
        let c = b[k];
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' if depth > 0 => depth -= 1,
            b')' | b']' => break,
            _ if depth == 0 && OPERAND_STOPS.contains(&c) => break,
            _ => {}
        }
        k += 1;
    }
    line[from..k].to_string()
}

/// Does this operand expression look like a cost/gain float? Returns
/// the evidence, or `None` for integers, strings and unrelated names.
fn floaty_operand(expr: &str) -> Option<String> {
    let t = expr.trim();
    if t.starts_with('"') || t.ends_with('"') {
        return None; // string comparison
    }
    if has_float_literal(t) {
        return Some("a float literal operand".to_string());
    }
    // Strip trailing call/index groups so the type-indicative name is
    // the method (`xs.len()` → `len`), but indexing falls through to
    // the container (`f.gains[pos]` → `gains`).
    let b = t.as_bytes();
    let mut end = b.len();
    loop {
        while end > 0 && b[end - 1] == b' ' {
            end -= 1;
        }
        if end == 0 || !(b[end - 1] == b')' || b[end - 1] == b']') {
            break;
        }
        let (open, close) = if b[end - 1] == b')' {
            (b'(', b')')
        } else {
            (b'[', b']')
        };
        let mut depth = 0usize;
        let mut j = end;
        while j > 0 {
            j -= 1;
            if b[j] == close {
                depth += 1;
            } else if b[j] == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if depth != 0 {
            break;
        }
        end = j;
    }
    let mut start = end;
    while start > 0 && (b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_') {
        start -= 1;
    }
    let ident = &t[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    let lower = ident.to_ascii_lowercase();
    if lower == "nan" || lower == "infinity" {
        return Some(format!("`{ident}` is never `==` anything / a sentinel"));
    }
    let hit = lower.split('_').any(|seg| {
        FLOAT_NAME_FRAGMENTS
            .iter()
            .any(|fr| seg == *fr || (seg.strip_suffix('s') == Some(fr)))
    });
    hit.then(|| format!("`{ident}` names a cost/gain float"))
}

/// Directories where rule `as-cast` forbids numeric `as` casts: the
/// hot algorithm kernels, where a silent truncation corrupts flow
/// indices. Use `u32::try_from` / `usize::from` helpers instead.
const AS_CAST_DIRS: &[&str] = &["crates/core/src/algorithms/", "crates/online/src/"];

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn as_cast(f: &SourceFile, out: &mut Vec<Violation>) {
    if !AS_CAST_DIRS.iter().any(|d| f.rel_path.starts_with(d)) {
        return;
    }
    for (l, line) in f.scrubbed.lines().enumerate() {
        if f.in_test(l) {
            continue;
        }
        let mut rest = line;
        while let Some(at) = rest.find(" as ") {
            let after = &rest[at + 4..];
            let ty: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if NUMERIC_TYPES.contains(&ty.as_str()) {
                push(
                    out,
                    f,
                    l,
                    "as-cast",
                    format!(
                        "numeric `as {ty}` cast in an algorithm kernel — use a checked conversion"
                    ),
                );
            }
            rest = after;
        }
    }
}

/// Rule `partial-cmp`: every hand-written `partial_cmp` must delegate
/// to a total order (`Ord::cmp` or `f64::total_cmp`) — the four ad-hoc
/// gain orderings this rule replaced each had their own NaN story, and
/// `BinaryHeap` silently misorders on an inconsistent `PartialOrd`.
fn partial_cmp_rule(f: &SourceFile, out: &mut Vec<Violation>) {
    let s = &f.scrubbed;
    let mut search = 0;
    while let Some(rel) = s[search..].find("fn partial_cmp") {
        let at = search + rel;
        // Word boundary: don't match longer names like
        // `fn partial_cmp_helper`.
        let next = s.as_bytes().get(at + "fn partial_cmp".len());
        if next.is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_') {
            search = at + "fn partial_cmp".len();
            continue;
        }
        let line0 = s.as_bytes()[..at].iter().filter(|&&c| c == b'\n').count();
        if f.in_test(line0) {
            search = at + "fn partial_cmp".len();
            continue;
        }
        // Find the fn body (skip signatures ending in `;`).
        let after = &s[at..];
        let body = after.find('{').and_then(|open| {
            if let Some(semi) = after.find(';') {
                if semi < open {
                    return None;
                }
            }
            let b = after.as_bytes();
            let mut depth = 0usize;
            for (i, &c) in b.iter().enumerate().skip(open) {
                match c {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(&after[open..=i]);
                        }
                    }
                    _ => {}
                }
            }
            None
        });
        if let Some(body) = body {
            if !(body.contains(".cmp(") || body.contains("total_cmp")) {
                push(
                    out,
                    f,
                    line0,
                    "partial-cmp",
                    "partial_cmp not backed by a total order — delegate to Ord::cmp or total_cmp"
                        .to_string(),
                );
            }
        }
        search = at + "fn partial_cmp".len();
    }
}

/// Rule `obs-keys`: the telemetry schema lives in
/// `crates/obs/src/keys.rs`. Every key emitted through
/// `Recorder::count` / `Recorder::sample` must be a registry value,
/// every registry constant must appear in `keys::ALL`, and every
/// registry constant must be referenced by emitting code — a key that
/// exists nowhere else is dead schema.
fn obs_keys(files: &[SourceFile], out: &mut Vec<Violation>) {
    const REGISTRY: &str = "crates/obs/src/keys.rs";
    let Some(reg_file) = files.iter().find(|f| f.rel_path.ends_with(REGISTRY)) else {
        return; // nothing to check against (e.g. partial checkout)
    };
    let consts = parse_registry_consts(&reg_file.raw);
    let all_block = parse_all_block(&reg_file.raw);

    // Registry self-consistency: each const is listed in ALL and vice
    // versa.
    for (name, _, line0) in &consts {
        if !all_block.contains(name) {
            push(
                out,
                reg_file,
                *line0,
                "obs-keys",
                format!("const {name} is not listed in keys::ALL"),
            );
        }
    }
    for name in &all_block {
        if !consts.iter().any(|(n, _, _)| n == name) {
            let line0 = find_line(&reg_file.raw, name).unwrap_or(0);
            push(
                out,
                reg_file,
                line0,
                "obs-keys",
                format!("keys::ALL lists {name}, which is not a registry const"),
            );
        }
    }

    // Forward: every literal handed to count()/sample() outside the
    // registry must be a registered value.
    let values: Vec<&str> = consts.iter().map(|(_, v, _)| v.as_str()).collect();
    for f in files {
        if f.rel_path.ends_with(REGISTRY) {
            continue;
        }
        for (l, line) in f.scrubbed.lines().enumerate() {
            if f.in_test(l) {
                continue;
            }
            for call in [".count(\"", ".sample(\""] {
                let Some(at) = line.find(call) else { continue };
                let raw_line = f.raw_line(l);
                let lit_start = at + call.len();
                let Some(rest) = raw_line.get(lit_start..) else {
                    continue;
                };
                let Some(end) = rest.find('"') else { continue };
                let value = &rest[..end];
                if !values.contains(&value) {
                    push(
                        out,
                        f,
                        l,
                        "obs-keys",
                        format!(
                            "telemetry key \"{value}\" is not in the keys.rs registry — \
                             add it there and emit via the named const"
                        ),
                    );
                }
            }
        }
    }

    // Reverse: every registry const is referenced outside keys.rs.
    for (name, _, line0) in &consts {
        let used = files
            .iter()
            .any(|f| !f.rel_path.ends_with(REGISTRY) && contains_word(&f.scrubbed, name));
        if !used {
            push(
                out,
                reg_file,
                *line0,
                "obs-keys",
                format!("registry key {name} is never referenced by emitting code"),
            );
        }
    }
}

/// `pub const NAME: &str = "value";` triples (name, value, 0-based line).
fn parse_registry_consts(raw: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (l, line) in raw.lines().enumerate() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, tail)) = rest.split_once(':') else {
            continue;
        };
        if !tail.contains("&str") {
            continue; // skip `ALL: &[&str]`
        }
        let Some(q1) = tail.find('"') else { continue };
        let Some(q2) = tail[q1 + 1..].find('"') else {
            continue;
        };
        out.push((
            name.trim().to_string(),
            tail[q1 + 1..q1 + 1 + q2].to_string(),
            l,
        ));
    }
    out
}

/// Identifier list inside the `pub const ALL` bracket block.
fn parse_all_block(raw: &str) -> Vec<String> {
    let Some(at) = raw.find("pub const ALL") else {
        return Vec::new();
    };
    let tail = &raw[at..];
    let (Some(open), Some(close)) = (tail.find('['), tail.find(']')) else {
        return Vec::new();
    };
    // The element type `&[&str]` also brackets — take the *last* `[`
    // before the first `]`'s matching content by re-finding from `=`.
    let eq = tail.find('=').unwrap_or(open);
    let body_open = tail[eq..].find('[').map(|i| eq + i).unwrap_or(open);
    let body_close = tail[body_open..]
        .find(']')
        .map(|i| body_open + i)
        .unwrap_or(close);
    identifiers(&tail[body_open..body_close])
        .filter(|id| id.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
        .map(str::to_string)
        .collect()
}

fn find_line(raw: &str, needle: &str) -> Option<usize> {
    raw.lines().position(|l| l.contains(needle))
}

/// Iterator over the identifiers in `s`.
fn identifiers(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty() && !w.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

/// Does `text` contain `word` bounded by non-identifier characters?
fn contains_word(text: &str, word: &str) -> bool {
    let mut search = 0;
    while let Some(rel) = text[search..].find(word) {
        let at = search + rel;
        let before_ok = at == 0
            || !text.as_bytes()[at - 1].is_ascii_alphanumeric() && text.as_bytes()[at - 1] != b'_';
        let after = at + word.len();
        let after_ok = after >= text.len()
            || !text.as_bytes()[after].is_ascii_alphanumeric() && text.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return true;
        }
        search = at + 1;
    }
    false
}

/// Is there a float literal (`digit . digit`) on the line?
fn has_float_literal(line: &str) -> bool {
    let b = line.as_bytes();
    (1..b.len().saturating_sub(1))
        .any(|i| b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::load(path.to_string(), src.to_string())
    }

    fn rules_on(path: &str, src: &str) -> Vec<Violation> {
        run_all(&[file(path, src)])
    }

    #[test]
    fn unwrap_outside_tests_is_flagged_inside_tests_is_not() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n";
        let v = rules_on("crates/a/src/l.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, "unwrap-expect");
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { m.lock().unwrap_or_else(|p| p.into_inner()); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_flags_gain_comparisons_but_not_bitwise() {
        let bad = rules_on("crates/a/src/l.rs", "fn a() { if gain == best { } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "float-eq");
        let lit = rules_on("crates/a/src/l.rs", "fn a() { if x == 0.0 { } }\n");
        assert_eq!(lit.len(), 1, "{lit:?}");
        let ok = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if gain.to_bits() == best.to_bits() { } }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let ints = rules_on("crates/a/src/l.rs", "fn a() { if i == j { } }\n");
        assert!(ints.is_empty(), "{ints:?}");
    }

    #[test]
    fn float_eq_is_operand_local_not_line_local() {
        // Integer comparison; the float literal sits past the `&&`
        // boundary in a different comparison.
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if volume == 0 && tie <= 0.0 { } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // `.len()` reads as integer even when the receiver names gains.
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if f.gains.len() != f.path.len() { } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // String comparison of a `cost`-named variable.
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if cost_model == \"weighted\" { } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
        // A call named after a gain is still flagged...
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if coverage_gain(inst, s, v) == n { } }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        // ...and so is indexing into a gains vector.
        let v = rules_on(
            "crates/a/src/l.rs",
            "fn a() { if f.gains[pos] == second { } }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn as_casts_only_flagged_in_kernel_dirs() {
        let src = "fn a(x: u64) -> usize { x as usize }\n";
        assert_eq!(rules_on("crates/core/src/algorithms/gtp.rs", src).len(), 1);
        assert_eq!(rules_on("crates/online/src/delta.rs", src).len(), 1);
        assert!(rules_on("crates/graph/src/digraph.rs", src).is_empty());
    }

    #[test]
    fn partial_cmp_must_delegate_to_a_total_order() {
        let bad = "impl PartialOrd for G { fn partial_cmp(&self, o: &Self) -> Option<Ordering> {\n\
                   self.0.partial_cmp(&o.0) } }\n";
        let v = rules_on("crates/a/src/l.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "partial-cmp");
        let good =
            "impl PartialOrd for G { fn partial_cmp(&self, o: &Self) -> Option<Ordering> {\n\
                    Some(self.cmp(o)) } }\n";
        assert!(rules_on("crates/a/src/l.rs", good).is_empty());
    }

    #[test]
    fn obs_keys_registry_and_emissions_are_cross_checked() {
        let registry = "pub const GOOD: &str = \"good\";\npub const DEAD: &str = \"dead\";\n\
                        pub const ALL: &[&str] = &[GOOD, DEAD];\n";
        let emitter =
            "fn e(r: &impl Recorder) { r.count(\"good\", 1); r.sample(\"rogue\", 2.0); GOOD; }\n";
        let v = run_all(&[
            file("crates/obs/src/keys.rs", registry),
            file("crates/online/src/engine.rs", emitter),
        ]);
        let msgs: Vec<&str> = v.iter().map(|x| x.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("\"rogue\"")),
            "unregistered emission must be flagged: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("DEAD")),
            "dead registry key must be flagged: {msgs:?}"
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }
}
