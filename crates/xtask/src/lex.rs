//! The shared workspace lexer every lint rule consumes.
//!
//! [`lex`] turns one Rust source file into a positioned token stream:
//! comments (line, doc, nested block) vanish, string/char literal
//! *contents* become opaque single tokens, and everything else —
//! identifiers, lifetimes, numbers, punctuation — carries its original
//! 0-based line. Rules therefore cannot match inside a string literal
//! or a doc comment *by construction*, which kills the false-positive
//! classes the old per-rule scrubbed-line scanners each re-fought.
//!
//! The lexer is deliberately not a parser: it recognizes exactly the
//! lexical shapes that matter for region masking and rule matching
//! (raw strings `r#".."#`, byte strings `b".."`, raw identifiers
//! `r#ident`, char-vs-lifetime disambiguation, float-vs-int literals
//! including exponents and suffixes) and leaves grammar to the rules,
//! which pattern-match short token windows.
//!
//! [`attr_regions`] derives line masks for attribute-gated items
//! (`#[cfg(test)]`, `#[cfg(any(debug_assertions, feature = "audit",
//! …))]`) by brace-matching over tokens, so nested test modules and
//! audit-gated blocks mask correctly even when a stray `}` sits in a
//! string literal somewhere above them.

/// What a token is — just enough classification for the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `as`, `HashMap`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, longest-matched (`==`, `!=`, `::`, `->`, `[`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: Kind,
    /// Verbatim source text (strings keep their delimiters).
    pub text: String,
    /// 0-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }

    /// For [`Kind::Str`] tokens: the literal's content with prefix,
    /// hashes and quotes stripped (escapes are left verbatim).
    pub fn str_content(&self) -> &str {
        let t = self.text.as_str();
        let t = t.strip_prefix('b').unwrap_or(t);
        let t = t.strip_prefix('r').unwrap_or(t);
        let t = t.trim_matches('#');
        t.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(t)
    }
}

/// Multi-character punctuation, longest first so `==` beats `=`.
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into a token stream. Comments disappear; literal
/// contents are opaque. Never fails — unrecognized bytes become
/// single-character [`Kind::Punct`] tokens, which no rule matches.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            // Line comments (including `///` and `//!` docs).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            // Nested block comments.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                out.push(Token {
                    kind: Kind::Str,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' if raw_or_byte_literal(b, i).is_some() => {
                let start = i;
                let start_line = line;
                // Skip the prefix (`r`, `b`, `br`).
                let kind = match raw_or_byte_literal(b, i) {
                    Some(RawKind::RawStr(prefix)) => {
                        i += prefix;
                        let mut hashes = 0usize;
                        while b.get(i) == Some(&b'#') {
                            hashes += 1;
                            i += 1;
                        }
                        i += 1; // opening quote
                        'scan: while i < b.len() {
                            if b[i] == b'"' && (1..=hashes).all(|h| b.get(i + h) == Some(&b'#')) {
                                i += 1 + hashes;
                                break 'scan;
                            }
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                        Kind::Str
                    }
                    Some(RawKind::ByteStr) => {
                        i += 1; // the `b`
                        let (end, nl) = scan_string(b, i);
                        line += nl;
                        i = end;
                        Kind::Str
                    }
                    Some(RawKind::ByteChar) => {
                        i += 1; // the `b`
                        i = scan_char(b, i);
                        Kind::Char
                    }
                    Some(RawKind::RawIdent) => {
                        i += 2; // `r#`
                        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                            i += 1;
                        }
                        Kind::Ident
                    }
                    None => unreachable!("guard checked raw_or_byte_literal"),
                };
                out.push(Token {
                    kind,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Char literal vs lifetime: `'x'` / `'\n'` are chars;
                // `'a` with no close quote right after is a lifetime.
                if b.get(i + 1) == Some(&b'\\') || b.get(i + 2) == Some(&b'\'') {
                    let end = scan_char(b, i);
                    out.push(Token {
                        kind: Kind::Char,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.push(Token {
                        kind: Kind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let (end, kind) = scan_number(b, i);
                out.push(Token {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: Kind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let p = PUNCTS
                    .iter()
                    .find(|p| rest.starts_with(**p))
                    .copied()
                    .map(str::len)
                    .unwrap_or_else(|| {
                        // Single char; step over full UTF-8 sequences.
                        rest.chars().next().map(char::len_utf8).unwrap_or(1)
                    });
                out.push(Token {
                    kind: Kind::Punct,
                    text: src[i..i + p].to_string(),
                    line,
                });
                i += p;
            }
        }
    }
    out
}

enum RawKind {
    /// `r"…"` (prefix 1) or `br"…"` (prefix 2), possibly with hashes.
    RawStr(usize),
    /// `b"…"`.
    ByteStr,
    /// `b'…'`.
    ByteChar,
    /// `r#ident`.
    RawIdent,
}

/// Classifies an `r`/`b` at `i` as a literal prefix, or `None` when it
/// is just the start (or middle) of an ordinary identifier.
fn raw_or_byte_literal(b: &[u8], i: usize) -> Option<RawKind> {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return None;
    }
    match b[i] {
        b'r' => match b.get(i + 1) {
            Some(&b'"') => Some(RawKind::RawStr(1)),
            Some(&b'#') => {
                // `r#"…"#` is a raw string; `r#ident` a raw identifier.
                let mut j = i + 1;
                while b.get(j) == Some(&b'#') {
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    Some(RawKind::RawStr(1))
                } else {
                    Some(RawKind::RawIdent)
                }
            }
            _ => None,
        },
        b'b' => match b.get(i + 1) {
            Some(&b'"') => Some(RawKind::ByteStr),
            Some(&b'\'') => Some(RawKind::ByteChar),
            Some(&b'r') if matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')) => {
                Some(RawKind::RawStr(2))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Scans a `"…"` literal starting at the opening quote; returns the
/// byte offset just past the closing quote and the newline count.
fn scan_string(b: &[u8], start: usize) -> (usize, usize) {
    let mut i = start + 1;
    let mut nl = 0usize;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A line-continuation escape still ends the physical
                // line — count it or every later token misaligns.
                if b.get(i + 1) == Some(&b'\n') {
                    nl += 1;
                }
                i += 2;
            }
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Scans a `'…'` char literal starting at the opening quote; returns
/// the offset just past the closing quote.
fn scan_char(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scans a numeric literal; floats are decimals with a fraction part,
/// a decimal exponent, or an explicit `f32`/`f64` suffix.
fn scan_number(b: &[u8], start: usize) -> (usize, Kind) {
    let mut i = start;
    let hex = b[i] == b'0' && matches!(b.get(i + 1), Some(&b'x') | Some(&b'X'));
    let mut float = false;
    if hex {
        i += 2;
        while i < b.len() && (b[i].is_ascii_hexdigit() || b[i] == b'_') {
            i += 1;
        }
    } else {
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
        // Fraction part — but `1..2` is a range and `1.max(2)` a call.
        if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
            float = true;
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
        // Exponent.
        if matches!(b.get(i), Some(&b'e') | Some(&b'E')) {
            let mut j = i + 1;
            if matches!(b.get(j), Some(&b'+') | Some(&b'-')) {
                j += 1;
            }
            if b.get(j).is_some_and(u8::is_ascii_digit) {
                float = true;
                i = j;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
            }
        }
    }
    // Type suffix (`u64`, `f64`, `usize`, …).
    let suffix_start = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    let suffix = &b[suffix_start..i];
    if suffix == b"f32" || suffix == b"f64" {
        float = true;
    }
    (i, if float { Kind::Float } else { Kind::Int })
}

/// One `#[…]` (or `#![…]`) attribute and the extent of the item it
/// gates, as 0-based line bounds.
#[derive(Debug)]
pub struct AttrRegion {
    /// First masked line (the attribute's own line).
    pub first_line: usize,
    /// Last masked line (the gated item's closing brace/semicolon —
    /// end of file for inner `#![…]` attributes).
    pub last_line: usize,
}

/// Finds every attribute whose bracketed tokens satisfy `pred` and
/// computes the line extent of the item each one gates: skip any
/// stacked attributes, then run to the matching `}` of the item's
/// first `{`, or to the first top-level `;` for brace-less items.
pub fn attr_regions(tokens: &[Token], pred: impl Fn(&[String]) -> bool) -> Vec<AttrRegion> {
    let mut out = Vec::new();
    let last_line = tokens.last().map_or(0, |t| t.line);
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct("#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = tokens.get(j).is_some_and(|t| t.is_punct("!"));
        if inner {
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
            i += 1;
            continue;
        }
        // Collect the bracketed predicate tokens.
        let mut depth = 0usize;
        let mut pred_tokens = Vec::new();
        let attr_end;
        loop {
            let Some(t) = tokens.get(j) else {
                return out; // unterminated attribute at EOF
            };
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    attr_end = j;
                    break;
                }
            }
            if depth >= 1 && !(depth == 1 && t.is_punct("[")) {
                pred_tokens.push(t.text.clone());
            }
            j += 1;
        }
        if !pred(&pred_tokens) {
            i = attr_end + 1;
            continue;
        }
        if inner {
            // `#![…]` gates the enclosing scope; approximate as
            // everything to end of file (inner attrs only appear at
            // the top of the files this workspace lints).
            out.push(AttrRegion {
                first_line: tokens[i].line,
                last_line,
            });
            i = attr_end + 1;
            continue;
        }
        // Skip stacked attributes between this one and the item.
        let mut k = attr_end + 1;
        while tokens.get(k).is_some_and(|t| t.is_punct("#"))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut d = 0usize;
            k += 1;
            while let Some(t) = tokens.get(k) {
                if t.is_punct("[") {
                    d += 1;
                } else if t.is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // Run to the item's end: matching `}` of the first `{`, or a
        // top-level `;` before any brace.
        let mut brace = 0usize;
        let mut end_line = tokens.get(k).map_or(tokens[i].line, |t| t.line);
        while let Some(t) = tokens.get(k) {
            end_line = t.line;
            if t.is_punct("{") {
                brace += 1;
            } else if t.is_punct("}") {
                brace = brace.saturating_sub(1);
                if brace == 0 {
                    break;
                }
            } else if t.is_punct(";") && brace == 0 {
                break;
            }
            k += 1;
        }
        out.push(AttrRegion {
            first_line: tokens[i].line,
            last_line: end_line,
        });
        i = attr_end + 1;
    }
    out
}

/// Per-line mask over `n_lines` marking every [`AttrRegion`].
pub fn region_mask(n_lines: usize, regions: &[AttrRegion]) -> Vec<bool> {
    let mut mask = vec![false; n_lines];
    for r in regions {
        for m in mask
            .iter_mut()
            .take(r.last_line.min(n_lines.saturating_sub(1)) + 1)
            .skip(r.first_line)
        {
            *m = true;
        }
    }
    mask
}

/// Regions covered by a `# Panics` doc contract: from the doc comment
/// line to the end of the item it documents. A documented panic is a
/// published API precondition, not an accidental abort path, so the
/// `panic-path` rule exempts these regions.
pub fn doc_panic_regions(raw: &str, tokens: &[Token]) -> Vec<AttrRegion> {
    let mut out = Vec::new();
    for (line0, line) in raw.lines().enumerate() {
        let t = line.trim_start();
        if !(t.starts_with("///") && t.contains("# Panics")) {
            continue;
        }
        // The documented item starts at the first token past the doc
        // block (doc comments produce no tokens); run to its matching
        // `}` or a top-level `;`, as for attribute regions.
        let Some(start) = tokens.iter().position(|x| x.line > line0) else {
            continue;
        };
        let mut brace = 0usize;
        let mut end_line = tokens[start].line;
        let mut k = start;
        while let Some(x) = tokens.get(k) {
            end_line = x.line;
            if x.is_punct("{") {
                brace += 1;
            } else if x.is_punct("}") {
                brace = brace.saturating_sub(1);
                if brace == 0 {
                    break;
                }
            } else if x.is_punct(";") && brace == 0 {
                break;
            }
            k += 1;
        }
        out.push(AttrRegion {
            first_line: line0,
            last_line: end_line,
        });
    }
    out
}

/// Does this attribute predicate read exactly `cfg(test)`?
pub fn is_cfg_test(pred: &[String]) -> bool {
    pred.len() == 4 && pred[0] == "cfg" && pred[1] == "(" && pred[2] == "test" && pred[3] == ")"
}

/// Is this a `cfg(…)` attribute whose predicate mentions
/// `debug_assertions` or `feature = "audit"` — i.e. code that only
/// exists in debug/audit builds (the runtime auditor's own layer)?
pub fn is_cfg_debug_or_audit(pred: &[String]) -> bool {
    if pred.first().map(String::as_str) != Some("cfg") {
        return false;
    }
    pred.iter().enumerate().any(|(i, t)| {
        t == "debug_assertions"
            || (t == "feature"
                && pred.get(i + 1).map(String::as_str) == Some("=")
                && pred.get(i + 2).is_some_and(|v| v.contains("audit")))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_produce_no_spurious_tokens() {
        let src = "let x = \"a.unwrap()\"; // .unwrap()\nlet y = 1; /* == 0.0 */\n";
        let toks = lex(src);
        assert!(!toks
            .iter()
            .any(|t| t.text.contains("unwrap") && t.kind != Kind::Str));
        assert!(!toks.iter().any(|t| t.is_punct("==")));
        // The string is one opaque token on line 0; `y` sits on line 1.
        assert_eq!(toks.iter().find(|t| t.is_ident("y")).unwrap().line, 1);
    }

    #[test]
    fn raw_strings_chars_and_lifetimes() {
        let src = "let r = r#\"x.unwrap()\"#; let c = '='; fn f<'a>(x: &'a str) {}";
        let toks = lex(src);
        let raw = toks.iter().find(|t| t.kind == Kind::Str).unwrap();
        assert_eq!(raw.str_content(), "x.unwrap()");
        assert!(!toks
            .iter()
            .any(|t| t.kind == Kind::Ident && t.text == "unwrap"));
        assert!(toks.iter().any(|t| t.kind == Kind::Char && t.text == "'='"));
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Lifetime).count(), 2);
    }

    #[test]
    fn multiline_strings_keep_line_numbers_aligned() {
        let src = "let s = \"one \\\ntwo\";\nx.unwrap();\n";
        let toks = lex(src);
        assert_eq!(toks.iter().find(|t| t.is_ident("unwrap")).unwrap().line, 2);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* outer /* inner */ still */ let live = 1;");
        assert!(toks.iter().any(|t| t.is_ident("live")));
        assert!(!toks.iter().any(|t| t.is_ident("outer")));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let toks =
            lex("let a = 1; let b = 1.5; let c = 1e-9; let d = 2f64; let e = 0x1e; let r = 1..2;");
        let kind_of = |name: &str| {
            let i = toks.iter().position(|t| t.is_ident(name)).unwrap();
            toks[i + 2].kind
        };
        assert_eq!(kind_of("a"), Kind::Int);
        assert_eq!(kind_of("b"), Kind::Float);
        assert_eq!(kind_of("c"), Kind::Float);
        assert_eq!(kind_of("d"), Kind::Float);
        assert_eq!(kind_of("e"), Kind::Int, "0x1e is hex, not an exponent");
        assert_eq!(kind_of("r"), Kind::Int, "1..2 is a range of ints");
        assert!(toks.iter().any(|t| t.is_punct("..")));
    }

    #[test]
    fn multichar_puncts_lex_greedily() {
        assert_eq!(
            texts("a == b != c :: d -> e"),
            vec!["a", "==", "b", "!=", "c", "::", "d", "->", "e"]
        );
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = lex("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.kind == Kind::Ident && t.text == "r#type"));
    }

    #[test]
    fn cfg_test_regions_cover_gated_items_only() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn live2() {}\n";
        let toks = lex(src);
        let mask = region_mask(6, &attr_regions(&toks, is_cfg_test));
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn stacked_attributes_and_braceless_items_mask_correctly() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse foo::bar;\nfn live() {}\n";
        let toks = lex(src);
        let mask = region_mask(4, &attr_regions(&toks, is_cfg_test));
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn cfg_any_with_test_is_not_cfg_test_but_is_debug_audit() {
        let src = "#[cfg(any(debug_assertions, feature = \"audit\", test))]\nfn audit() { x.unwrap(); }\n";
        let toks = lex(src);
        assert!(attr_regions(&toks, is_cfg_test).is_empty());
        let dbg = attr_regions(&toks, is_cfg_debug_or_audit);
        assert_eq!(dbg.len(), 1);
        assert_eq!((dbg[0].first_line, dbg[0].last_line), (0, 1));
    }

    #[test]
    fn a_stray_brace_in_a_string_does_not_break_masking() {
        let src = "const S: &str = \"}\";\n#[cfg(test)]\nmod t { fn x() {} }\nfn live() {}\n";
        let toks = lex(src);
        let mask = region_mask(4, &attr_regions(&toks, is_cfg_test));
        assert_eq!(mask, vec![false, true, true, false]);
    }

    #[test]
    fn inner_attributes_mask_to_end_of_file() {
        let src = "#![cfg(test)]\nfn a() {}\nfn b() {}\n";
        let toks = lex(src);
        let mask = region_mask(3, &attr_regions(&toks, is_cfg_test));
        assert_eq!(mask, vec![true, true, true]);
    }
}
