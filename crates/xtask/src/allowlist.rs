//! Hand-parsed `lint.toml` allowlist (the crate is dependency-free,
//! so no real TOML parser). Grammar, one entry per suppression:
//!
//! ```toml
//! [[allow]]
//! rule = "unwrap-expect"
//! path = "crates/core/src/algorithms/dp.rs"
//! contains = "child done"          # optional line-substring filter
//! reason = "postorder guarantees the child was computed first"
//! ```
//!
//! `reason` is mandatory — an unexplained suppression is itself a lint
//! violation — and entries that match nothing are reported as stale so
//! the allowlist can only shrink.

/// One `[[allow]]` entry.
#[derive(Debug)]
pub struct Allow {
    /// Rule id the entry suppresses (e.g. `unwrap-expect`).
    pub rule: String,
    /// Repo-relative path (matched exactly or by suffix).
    pub path: String,
    /// Optional substring the flagged line must contain.
    pub contains: Option<String>,
    /// Mandatory justification.
    pub reason: String,
    /// Line in lint.toml where the entry starts (for diagnostics).
    pub line: usize,
}

/// Parses `lint.toml` text. Returns entries or a `line: message`
/// parse/validation error.
pub fn parse(text: &str) -> Result<Vec<Allow>, String> {
    let mut entries: Vec<Allow> = Vec::new();
    let mut current: Option<Allow> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(done) = current.take() {
                validate(&done)?;
                entries.push(done);
            }
            current = Some(Allow {
                rule: String::new(),
                path: String::new(),
                contains: None,
                reason: String::new(),
                line: line_no,
            });
            continue;
        }
        let Some(entry) = current.as_mut() else {
            return Err(format!("{line_no}: expected [[allow]] before '{line}'"));
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("{line_no}: expected key = \"value\", got '{line}'"));
        };
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("{line_no}: value must be double-quoted: '{line}'"))?;
        match key.trim() {
            "rule" => entry.rule = value.to_string(),
            "path" => entry.path = value.to_string(),
            "contains" => entry.contains = Some(value.to_string()),
            "reason" => entry.reason = value.to_string(),
            other => return Err(format!("{line_no}: unknown key '{other}'")),
        }
    }
    if let Some(done) = current.take() {
        validate(&done)?;
        entries.push(done);
    }
    Ok(entries)
}

fn validate(a: &Allow) -> Result<(), String> {
    if a.rule.is_empty() || a.path.is_empty() {
        return Err(format!("{}: entry needs both rule and path", a.line));
    }
    if !crate::rules::RULES.contains(&a.rule.as_str()) {
        return Err(format!(
            "{}: unknown rule '{}' (known: {})",
            a.line,
            a.rule,
            crate::rules::RULES.join(", ")
        ));
    }
    if a.reason.trim().is_empty() {
        return Err(format!(
            "{}: entry for {} lacks a reason — unexplained suppressions are not allowed",
            a.line, a.path
        ));
    }
    Ok(())
}

impl Allow {
    /// Does this entry suppress a `rule` violation at `path` whose
    /// flagged line text is `line_text`?
    pub fn matches(&self, rule: &str, path: &str, line_text: &str) -> bool {
        self.rule == rule
            && (path == self.path || path.ends_with(&self.path))
            && self
                .contains
                .as_deref()
                .is_none_or(|frag| line_text.contains(frag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let toml = "# comment\n[[allow]]\nrule = \"unwrap-expect\"\n\
                    path = \"crates/a/src/x.rs\"\ncontains = \"lock()\"\n\
                    reason = \"poison recovery\"\n";
        let entries = parse(toml).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].matches("unwrap-expect", "crates/a/src/x.rs", "m.lock().unwrap()"));
        assert!(!entries[0].matches("unwrap-expect", "crates/a/src/x.rs", "v.pop().unwrap()"));
        assert!(!entries[0].matches("float-eq", "crates/a/src/x.rs", "m.lock().unwrap()"));
    }

    #[test]
    fn unknown_rule_id_is_rejected() {
        let toml = "[[allow]]\nrule = \"no-such-rule\"\npath = \"x.rs\"\nreason = \"r\"\n";
        assert!(parse(toml).unwrap_err().contains("unknown rule"));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let toml = "[[allow]]\nrule = \"float-eq\"\npath = \"x.rs\"\n";
        assert!(parse(toml).unwrap_err().contains("reason"));
    }

    #[test]
    fn stray_keys_and_unquoted_values_are_rejected() {
        assert!(parse("rule = \"x\"\n").unwrap_err().contains("[[allow]]"));
        assert!(parse("[[allow]]\nrule = x\n")
            .unwrap_err()
            .contains("quoted"));
        assert!(parse("[[allow]]\nbogus = \"x\"\n")
            .unwrap_err()
            .contains("bogus"));
    }
}
