//! Token-level source scrubbing: blank out comments and literal
//! contents while preserving byte offsets and line structure, so the
//! rule scanners never match inside a string or a doc comment, and a
//! reported offset maps back to the original `file:line`.

/// Returns `src` with comment bodies and string/char literal contents
/// replaced by spaces. Newlines are preserved everywhere (so line
/// numbers survive), string delimiters are kept (so scanners can still
/// see that a literal sits there), and all byte offsets are unchanged.
pub fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Rust block comments nest.
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        // Preserve an escaped newline (string line
                        // continuation) or line numbers drift.
                        out.push(b' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                // r"..", r#".."#, br".." , b"..": skip past the prefix,
                // count hashes, then blank until the matching close.
                out.push(b[i]);
                i += 1;
                if b.get(i) == Some(&b'r') || b.get(i) == Some(&b'"') || b.get(i) == Some(&b'#') {
                    if b[i] == b'r' {
                        out.push(b'r');
                        i += 1;
                    }
                    let mut hashes = 0;
                    while b.get(i) == Some(&b'#') {
                        out.push(b'#');
                        i += 1;
                        hashes += 1;
                    }
                    if b.get(i) == Some(&b'"') {
                        out.push(b'"');
                        i += 1;
                        'scan: while i < b.len() {
                            if b[i] == b'"' {
                                let close = (1..=hashes).all(|h| b.get(i + h) == Some(&b'#'));
                                if close {
                                    out.push(b'"');
                                    out.extend(std::iter::repeat_n(b'#', hashes));
                                    i += 1 + hashes;
                                    break 'scan;
                                }
                            }
                            out.push(blank(b[i]));
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals,
                // 'a (no close quote right after) is a lifetime.
                if b.get(i + 1) == Some(&b'\\') {
                    out.push(b'\'');
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            out.push(b' ');
                            out.push(blank(b[i + 1]));
                            i += 2;
                        } else {
                            out.push(blank(b[i]));
                            i += 1;
                        }
                    }
                    if i < b.len() {
                        out.push(b'\'');
                        i += 1;
                    }
                } else if b.get(i + 2) == Some(&b'\'') {
                    out.extend([b'\'', b' ', b'\'']);
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Everything we emitted is either a verbatim source byte (valid
    // UTF-8 in context) or an ASCII space/newline, so this cannot fail;
    // fall back to a lossy copy rather than panicking in a linter.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Is the `r`/`b` at `i` the start of a raw or byte string literal
/// (`r"`, `r#`, `br"`, `b"`) rather than the tail of an identifier?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(&b'"') | Some(&b'#')),
        b'b' => match b.get(i + 1) {
            Some(&b'"') => true,
            Some(&b'r') => matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Per-line mask of `#[cfg(test)]`-gated regions in scrubbed source:
/// `mask[line0]` is true when that (0-based) line sits inside an item
/// gated by an exact `#[cfg(test)]` attribute. Predicates like
/// `#[cfg(any(debug_assertions, feature = "audit", test))]` are NOT
/// exempted — code that also compiles outside tests must pass the
/// lint.
pub fn test_region_mask(scrubbed: &str) -> Vec<bool> {
    let n_lines = scrubbed.lines().count();
    let mut mask = vec![false; n_lines];
    let b = scrubbed.as_bytes();
    let mut search = 0;
    while let Some(rel) = scrubbed[search..].find("#[cfg(test)]") {
        let attr_at = search + rel;
        let mut i = attr_at + "#[cfg(test)]".len();
        // The gated item runs to its matching close brace, or to a
        // semicolon for brace-less items (`#[cfg(test)] use x;`).
        let mut depth = 0usize;
        let mut end = b.len();
        while i < b.len() {
            match b[i] {
                b'{' => depth += 1,
                b'}' => {
                    // A stray close brace before the item's own open
                    // brace ends the enclosing block — stop there.
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = i + 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let first_line = line_of(scrubbed, attr_at);
        let last_line = line_of(scrubbed, end.min(b.len().saturating_sub(1)));
        let stop = last_line.min(n_lines.saturating_sub(1));
        for m in mask[first_line..=stop].iter_mut() {
            *m = true;
        }
        search = end.max(attr_at + 1);
    }
    mask
}

/// 0-based line number of byte offset `at`.
fn line_of(s: &str, at: usize) -> usize {
    s.as_bytes()[..at.min(s.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"a.unwrap()\"; // .unwrap()\nlet y = 1; /* == 0.0 */\n";
        let s = scrub(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("=="));
        assert_eq!(s.lines().count(), src.lines().count());
        assert_eq!(s.len(), src.len());
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_survive() {
        let src = "let r = r#\"x.unwrap()\"#; let c = '=' ; fn f<'a>(x: &'a str) {}";
        let s = scrub(src);
        assert!(!s.contains("unwrap"));
        assert!(
            s.contains("let c = ' ' ;"),
            "char content must be blanked: {s}"
        );
        assert!(s.contains("<'a>"), "lifetimes must survive: {s}");
    }

    #[test]
    fn escaped_newlines_in_strings_keep_line_numbers_aligned() {
        // The literal spans lines 1-2 via a `\` continuation; the
        // unwrap sits on line 3 and must stay there after scrubbing.
        let src = "let s = \"one \\\ntwo\";\nx.unwrap();\n";
        let s = scrub(src);
        assert_eq!(s.lines().count(), src.lines().count(), "{s:?}");
        assert!(
            s.lines().nth(2).is_some_and(|l| l.contains(".unwrap()")),
            "{s:?}"
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = scrub("/* outer /* inner */ still */ let live = 1;");
        assert!(s.contains("let live = 1;"));
        assert!(!s.contains("outer"));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let s = scrub(r#"let x = "a\".unwrap()"; let live = 1;"#);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let live = 1;"));
    }

    #[test]
    fn test_regions_cover_gated_items_only() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn live2() {}\n";
        let mask = test_region_mask(&scrub(src));
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_any_with_test_is_not_exempt() {
        let src = "#[cfg(any(debug_assertions, test))]\nfn audit() { x.unwrap(); }\n";
        let mask = test_region_mask(&scrub(src));
        assert!(mask.iter().all(|&m| !m), "{mask:?}");
    }
}
