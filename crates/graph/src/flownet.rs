//! Minimum-cost maximum-flow on small networks.
//!
//! Substrate for the capacitated-middlebox extension in `tdmd-core`:
//! assigning flows to capacity-limited middleboxes is a transportation
//! problem, solved exactly by min-cost max-flow. The implementation is
//! successive shortest paths with SPFA (Bellman–Ford queue) distances,
//! which handles the negative costs that "gain maximization" encodes
//! and is comfortably fast at this repository's instance sizes
//! (hundreds of nodes, thousands of arcs).

/// Arc of the flow network (stored with its residual twin).
#[derive(Debug, Clone, Copy)]
struct Arc {
    to: u32,
    cap: i64,
    cost: i64,
    /// Index of the reverse arc.
    rev: u32,
}

/// A min-cost max-flow network builder/solver.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    adj: Vec<Vec<Arc>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of arcs (forward and residual) currently stored at `u`.
    /// The next [`FlowNetwork::add_arc`] from `u` will sit at this
    /// index — record it to read the arc's residual later.
    pub fn out_arc_count(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Adds a directed arc `u -> v` with capacity `cap` and unit cost
    /// `cost`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or negative capacity.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: i64, cost: i64) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "arc endpoint out of range"
        );
        assert!(cap >= 0, "capacity must be non-negative");
        let rev_u = self.adj[v].len() as u32;
        let rev_v = self.adj[u].len() as u32;
        self.adj[u].push(Arc {
            to: v as u32,
            cap,
            cost,
            rev: rev_u,
        });
        self.adj[v].push(Arc {
            to: u as u32,
            cap: 0,
            cost: -cost,
            rev: rev_v,
        });
    }

    /// Sends up to `limit` units from `s` to `t` at minimum total
    /// cost. Returns `(flow, cost)`.
    ///
    /// # Panics
    /// Panics if the residual network develops a negative cycle
    /// (impossible for networks built from non-negative-capacity arcs
    /// and any costs without initial negative cycles reachable with
    /// positive capacity — the capacitated-allocation encodings used
    /// here never do).
    pub fn min_cost_flow(&mut self, s: usize, t: usize, limit: i64) -> (i64, i64) {
        let n = self.adj.len();
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        while total_flow < limit {
            // SPFA shortest distances by cost.
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev: Vec<Option<(u32, u32)>> = vec![None; n]; // (node, arc idx)
            let mut relaxations = vec![0u32; n];
            let mut queue = std::collections::VecDeque::new();
            dist[s] = 0;
            queue.push_back(s as u32);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                let u = u as usize;
                in_queue[u] = false;
                for (i, a) in self.adj[u].iter().enumerate() {
                    if a.cap <= 0 || dist[u] == i64::MAX {
                        continue;
                    }
                    let nd = dist[u] + a.cost;
                    if nd < dist[a.to as usize] {
                        dist[a.to as usize] = nd;
                        prev[a.to as usize] = Some((u as u32, i as u32));
                        if !in_queue[a.to as usize] {
                            relaxations[a.to as usize] += 1;
                            assert!(
                                relaxations[a.to as usize] <= n as u32 + 1,
                                "negative cycle in residual network"
                            );
                            queue.push_back(a.to);
                            in_queue[a.to as usize] = true;
                        }
                    }
                }
            }
            if dist[t] == i64::MAX {
                break; // no augmenting path left
            }
            // Bottleneck along the path.
            let mut push = limit - total_flow;
            let mut v = t;
            while let Some((u, i)) = prev[v] {
                push = push.min(self.adj[u as usize][i as usize].cap);
                v = u as usize;
            }
            // Apply.
            let mut v = t;
            while let Some((u, i)) = prev[v] {
                let rev = self.adj[u as usize][i as usize].rev as usize;
                self.adj[u as usize][i as usize].cap -= push;
                self.adj[v][rev].cap += push;
                v = u as usize;
            }
            total_flow += push;
            total_cost += push * dist[t];
        }
        (total_flow, total_cost)
    }

    /// Remaining capacity of the `idx`-th arc added from `u`
    /// (counting only forward arcs in insertion order is up to the
    /// caller; exposed for assignment extraction).
    pub fn residual(&self, u: usize, arc_index: usize) -> i64 {
        self.adj[u][arc_index].cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5, 1);
        net.add_arc(1, 2, 3, 1);
        let (f, c) = net.min_cost_flow(0, 2, 10);
        assert_eq!(f, 3);
        assert_eq!(c, 6);
    }

    #[test]
    fn prefers_the_cheap_route() {
        // Two routes 0->3: cheap cap 1 (cost 1), expensive cap 5 (cost 10).
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1, 0);
        net.add_arc(1, 3, 1, 1);
        net.add_arc(0, 2, 5, 0);
        net.add_arc(2, 3, 5, 10);
        let (f, c) = net.min_cost_flow(0, 3, 3);
        assert_eq!(f, 3);
        assert_eq!(c, 1 + 2 * 10);
    }

    #[test]
    fn limit_caps_the_flow() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 100, 2);
        let (f, c) = net.min_cost_flow(0, 1, 7);
        assert_eq!(f, 7);
        assert_eq!(c, 14);
    }

    #[test]
    fn negative_costs_maximize_gain() {
        // Assignment encoded as negative costs: two jobs, two agents.
        // Gains: j0/a0 = 5, j0/a1 = 1, j1/a0 = 4, j1/a1 = 2.
        // Agents have capacity 1 ⇒ best total gain = 5 + 2 = 7.
        let (s, j0, j1, a0, a1, t) = (0, 1, 2, 3, 4, 5);
        let mut net = FlowNetwork::new(6);
        net.add_arc(s, j0, 1, 0);
        net.add_arc(s, j1, 1, 0);
        net.add_arc(j0, a0, 1, -5);
        net.add_arc(j0, a1, 1, -1);
        net.add_arc(j1, a0, 1, -4);
        net.add_arc(j1, a1, 1, -2);
        net.add_arc(a0, t, 1, 0);
        net.add_arc(a1, t, 1, 0);
        let (f, c) = net.min_cost_flow(s, t, 2);
        assert_eq!(f, 2);
        assert_eq!(c, -7);
    }

    #[test]
    fn disconnected_sink_gets_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 4, 1);
        let (f, c) = net.min_cost_flow(0, 2, 5);
        assert_eq!((f, c), (0, 0));
    }

    #[test]
    fn residuals_reflect_the_solution() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 5, 1);
        net.min_cost_flow(0, 1, 3);
        assert_eq!(net.residual(0, 0), 2, "5 cap - 3 sent");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, -1, 0);
    }
}
