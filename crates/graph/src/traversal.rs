//! Graph traversal: BFS shortest paths (unit weights), Dijkstra
//! (weighted), path reconstruction and connectivity checks.
//!
//! All routines allocate flat `Vec` state indexed by `NodeId` and use
//! `u32::MAX` sentinels rather than `Option` wrappers in hot arrays.

use crate::digraph::{DiGraph, NodeId};
use std::collections::{BinaryHeap, VecDeque};

/// Sentinel for "unreached" in distance/parent arrays.
pub const UNREACHED: u32 = u32::MAX;

/// Result of a single-source BFS.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Hop distance from the source (`UNREACHED` if unreachable).
    pub dist: Vec<u32>,
    /// BFS-tree parent (`UNREACHED` for the source and unreachable nodes).
    pub parent: Vec<u32>,
    /// The source vertex.
    pub source: NodeId,
}

impl BfsResult {
    /// True if `v` was reached from the source.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v as usize] != UNREACHED
    }

    /// Reconstructs the vertex path `source -> .. -> dst`, or `None`
    /// if `dst` is unreachable.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(dst) {
            return None;
        }
        let mut path = Vec::with_capacity(self.dist[dst as usize] as usize + 1);
        let mut cur = dst;
        path.push(cur);
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Single-source BFS over out-edges.
pub fn bfs(g: &DiGraph, src: NodeId) -> BfsResult {
    let n = g.node_count();
    let mut dist = vec![UNREACHED; n];
    let mut parent = vec![UNREACHED; n];
    let mut queue = VecDeque::with_capacity(n);
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    BfsResult {
        dist,
        parent,
        source: src,
    }
}

/// Hop distances from `src` (convenience wrapper over [`bfs`]).
pub fn bfs_distances(g: &DiGraph, src: NodeId) -> Vec<u32> {
    bfs(g, src).dist
}

/// Shortest (fewest-hops) vertex path from `src` to `dst`, or `None`.
pub fn bfs_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    bfs(g, src).path_to(dst)
}

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    /// Weighted distance from the source (`u64::MAX` if unreachable).
    pub dist: Vec<u64>,
    /// Shortest-path-tree parent (`UNREACHED` sentinel).
    pub parent: Vec<u32>,
    /// The source vertex.
    pub source: NodeId,
}

impl DijkstraResult {
    /// True if `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v as usize] != u64::MAX
    }

    /// Reconstructs the vertex path `source -> .. -> dst`.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(dst) {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Single-source Dijkstra over out-edges using the stored edge weights.
pub fn dijkstra(g: &DiGraph, src: NodeId) -> DijkstraResult {
    let n = g.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut parent = vec![UNREACHED; n];
    // Max-heap of (Reverse(dist), node) simulated by storing negated
    // priority via std Reverse.
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, NodeId)> = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push((std::cmp::Reverse(0), src));
    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        let nbrs = g.out_neighbors(u);
        let ws = g.out_weights(u);
        for (&v, &w) in nbrs.iter().zip(ws) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = u;
                heap.push((std::cmp::Reverse(nd), v));
            }
        }
    }
    DijkstraResult {
        dist,
        parent,
        source: src,
    }
}

/// True if every vertex is reachable from `src` following out-edges.
pub fn is_reachable_from(g: &DiGraph, src: NodeId) -> bool {
    bfs(g, src).dist.iter().all(|&d| d != UNREACHED)
}

/// True if the graph is connected when edges are treated as
/// undirected. Empty graphs count as connected.
pub fn is_connected_undirected(g: &DiGraph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0 as NodeId];
    seen[0] = true;
    let mut count = 1usize;
    while let Some(u) = stack.pop() {
        for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::GraphBuilder;

    /// 0 -1- 1 -1- 2, plus a heavy shortcut 0 -5- 2.
    fn weighted_line() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 1);
        b.add_weighted_edge(1, 2, 1);
        b.add_weighted_edge(0, 2, 5);
        b.build()
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_path_reconstruction() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 3);
        b.add_edge(3, 4);
        b.add_edge(4, 2); // longer route to 2
        let g = b.build();
        assert_eq!(bfs_path(&g, 0, 2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn bfs_unreachable_gives_none() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(bfs_path(&g, 0, 2), None);
        assert!(!bfs(&g, 0).reached(2));
    }

    #[test]
    fn bfs_respects_edge_direction() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        assert!(bfs(&g, 1).path_to(0).is_none());
    }

    #[test]
    fn dijkstra_prefers_light_path_over_few_hops() {
        let g = weighted_line();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2]);
        assert_eq!(r.path_to(2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let mut b = GraphBuilder::new(6);
        let edges = [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (3, 5)];
        for (u, v) in edges {
            b.add_bidirectional(u, v);
        }
        let g = b.build();
        let bd = bfs_distances(&g, 0);
        let dd = dijkstra(&g, 0).dist;
        for v in 0..6 {
            assert_eq!(bd[v] as u64, dd[v]);
        }
    }

    #[test]
    fn connectivity_checks() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        assert!(!is_connected_undirected(&g));
        assert!(!is_reachable_from(&g, 0));

        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert!(is_connected_undirected(&g));
        assert!(is_reachable_from(&g, 0));
        assert!(!is_reachable_from(&g, 2));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected_undirected(&GraphBuilder::new(0).build()));
    }
}
