//! K-shortest loopless paths (Yen's algorithm, unit weights).
//!
//! The paper fixes one path per flow; real deployments spread traffic
//! over several near-shortest routes (ECMP and friends). This module
//! supplies the candidate sets: the workload generator draws each
//! flow's active path from the k shortest loopless paths instead of
//! always the single BFS path, and the joint routing + placement
//! solver keeps the whole set so a placement round can re-activate
//! any of them.

use crate::digraph::{DiGraph, NodeId};
use crate::traversal::bfs;

/// Up to `k` shortest loopless paths from `src` to `dst` (fewest
/// hops; ties explored in deviation order). Returns vertex sequences
/// sorted by length; empty when `dst` is unreachable.
pub fn k_shortest_paths(g: &DiGraph, src: NodeId, dst: NodeId, k: usize) -> Vec<Vec<NodeId>> {
    if k == 0 {
        return Vec::new();
    }
    let Some(first) = bfs(g, src).path_to(dst) else {
        return Vec::new();
    };
    let mut found: Vec<Vec<NodeId>> = vec![first];
    // Candidate pool (length, path).
    let mut candidates: Vec<Vec<NodeId>> = Vec::new();
    while found.len() < k {
        let last = found.last().expect("at least the shortest path");
        // Deviate at every prefix of the last found path.
        for i in 0..last.len() - 1 {
            let spur = last[i];
            let root: Vec<NodeId> = last[..=i].to_vec();
            // Edges to ban: the next hop of every found path sharing
            // this root; vertices of the root (minus spur) are banned
            // to keep paths loopless.
            let mut banned_edges: Vec<(NodeId, NodeId)> = Vec::new();
            for p in &found {
                if p.len() > i && p[..=i] == root[..] && p.len() > i + 1 {
                    banned_edges.push((p[i], p[i + 1]));
                }
            }
            let banned_vertices: Vec<NodeId> = root[..i].to_vec();
            if let Some(spur_path) = restricted_bfs(g, spur, dst, &banned_edges, &banned_vertices) {
                let mut full = root.clone();
                full.extend_from_slice(&spur_path[1..]);
                if !found.contains(&full) && !candidates.contains(&full) {
                    candidates.push(full);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the shortest candidate (ties: lexicographic for
        // determinism).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.len().cmp(&b.len()).then_with(|| a.cmp(b)))
            .map(|(i, _)| i)
            .expect("non-empty");
        found.push(candidates.swap_remove(best));
    }
    found.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    found
}

/// BFS that avoids banned edges and vertices.
fn restricted_bfs(
    g: &DiGraph,
    src: NodeId,
    dst: NodeId,
    banned_edges: &[(NodeId, NodeId)],
    banned_vertices: &[NodeId],
) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut parent = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    for &v in banned_vertices {
        seen[v as usize] = true;
    }
    if seen[src as usize] {
        return None;
    }
    seen[src as usize] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        if u == dst {
            let mut path = vec![dst];
            let mut cur = dst;
            while cur != src {
                cur = parent[cur as usize];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &w in g.out_neighbors(u) {
            if seen[w as usize] || banned_edges.contains(&(u, w)) {
                continue;
            }
            seen[w as usize] = true;
            parent[w as usize] = u;
            queue.push_back(w);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::GraphBuilder;

    /// Diamond with a long detour: 0-1-3, 0-2-3, 0-4-5-3.
    fn diamond_plus() -> DiGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3), (0, 4), (4, 5), (5, 3)] {
            b.add_bidirectional(u, v);
        }
        b.build()
    }

    #[test]
    fn finds_all_distinct_routes_in_order() {
        let paths = k_shortest_paths(&diamond_plus(), 0, 3, 5);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].len(), 3);
        assert_eq!(paths[1].len(), 3);
        assert_eq!(paths[2], vec![0, 4, 5, 3]);
        // The two 2-hop routes are both present.
        assert!(paths[..2].contains(&vec![0, 1, 3]));
        assert!(paths[..2].contains(&vec![0, 2, 3]));
    }

    #[test]
    fn k_one_is_just_bfs() {
        let paths = k_shortest_paths(&diamond_plus(), 0, 3, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
    }

    #[test]
    fn paths_are_loopless_and_valid() {
        let g = diamond_plus();
        for p in k_shortest_paths(&g, 0, 3, 10) {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.len(), "loop in {p:?}");
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn unreachable_gives_empty() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        assert!(k_shortest_paths(&b.build(), 0, 2, 3).is_empty());
        assert!(k_shortest_paths(&diamond_plus(), 0, 3, 0).is_empty());
    }

    #[test]
    fn exhausts_when_fewer_than_k_exist() {
        // A path graph has exactly one loopless route.
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_bidirectional(i, i + 1);
        }
        let paths = k_shortest_paths(&b.build(), 0, 3, 7);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn deterministic_output() {
        let a = k_shortest_paths(&diamond_plus(), 0, 3, 3);
        let b = k_shortest_paths(&diamond_plus(), 0, 3, 3);
        assert_eq!(a, b);
    }
}
