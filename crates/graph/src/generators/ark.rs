//! Synthetic Ark-like measurement WAN.
//!
//! The paper evaluates on the CAIDA Archipelago (Ark) monitor
//! topology: a few dozen monitors spread over geographic regions,
//! loosely meshed through a backbone. The raw dataset is not
//! redistributable, so this generator reproduces the *shape*: monitors
//! form regional clusters, each cluster has a gateway, gateways form a
//! ring with random chords (the backbone), and a few monitors get
//! long-haul shortcut links. Sizes of 12–52 vertices — the paper's
//! sweep range — produce graphs visually and structurally similar to
//! Fig. 8.

use crate::digraph::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

/// Generates an Ark-like clustered WAN with `n` vertices spread over
/// `clusters` regions. Returns the graph; vertex `0` is always a
/// gateway (a natural choice of destination / tree root).
///
/// # Panics
/// Panics if `clusters == 0` or `n < clusters`.
pub fn ark_like<R: Rng + ?Sized>(n: usize, clusters: usize, rng: &mut R) -> DiGraph {
    assert!(clusters > 0, "need at least one cluster");
    assert!(n >= clusters, "need at least one vertex per cluster");
    let mut b = GraphBuilder::new(n);
    let mut present = std::collections::HashSet::new();
    let link = |b: &mut GraphBuilder,
                present: &mut std::collections::HashSet<(NodeId, NodeId)>,
                u: NodeId,
                v: NodeId| {
        if u != v && present.insert((u.min(v), u.max(v))) {
            b.add_bidirectional(u, v);
        }
    };
    // The first `clusters` vertices are gateways.
    let gateways: Vec<NodeId> = (0..clusters as NodeId).collect();
    // Backbone ring over gateways...
    if clusters > 1 {
        for i in 0..clusters {
            let u = gateways[i];
            let v = gateways[(i + 1) % clusters];
            link(&mut b, &mut present, u, v);
        }
        // ... plus random chords (~ one per four gateways).
        let chords = clusters / 4;
        for _ in 0..chords {
            let u = gateways[rng.gen_range(0..clusters)];
            let v = gateways[rng.gen_range(0..clusters)];
            link(&mut b, &mut present, u, v);
        }
    }
    // Monitors attach to a home gateway; ~20% also get a second link
    // inside the cluster or to a random other monitor (long-haul).
    for m in clusters..n {
        let m = m as NodeId;
        let home = gateways[rng.gen_range(0..clusters)];
        link(&mut b, &mut present, m, home);
        if rng.gen_bool(0.2) && m > clusters as NodeId {
            let other = rng.gen_range(0..m);
            link(&mut b, &mut present, m, other);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs_distances, is_connected_undirected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ark_is_connected_across_sizes() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [12usize, 22, 30, 52] {
            let g = ark_like(n, 5, &mut rng);
            assert_eq!(g.node_count(), n);
            assert!(is_connected_undirected(&g), "n={n}");
        }
    }

    #[test]
    fn gateways_are_hubs() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = ark_like(40, 4, &mut rng);
        let gateway_deg: usize = (0..4u32).map(|v| g.out_degree(v)).sum();
        let monitor_deg: usize = (4..40u32).map(|v| g.out_degree(v)).sum();
        // 36 monitors each contribute >= 1 link landing mostly on 4 gateways.
        assert!(
            gateway_deg * 9 > monitor_deg,
            "gateways should be much denser on average"
        );
    }

    #[test]
    fn diameter_is_small() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = ark_like(30, 5, &mut rng);
        let d = bfs_distances(&g, 0);
        assert!(
            d.iter().all(|&x| x <= 6),
            "clustered WAN should have a short diameter"
        );
    }

    #[test]
    fn single_cluster_is_a_star_plus_extras() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = ark_like(10, 1, &mut rng);
        assert!(is_connected_undirected(&g));
        assert!(
            g.out_degree(0) >= 9 - 2,
            "gateway 0 should anchor almost everything"
        );
    }

    #[test]
    fn minimum_size_equal_to_clusters() {
        let mut rng = StdRng::seed_from_u64(15);
        let g = ark_like(5, 5, &mut rng);
        assert_eq!(g.node_count(), 5);
        assert!(is_connected_undirected(&g));
    }

    #[test]
    #[should_panic(expected = "per cluster")]
    fn too_few_vertices_rejected() {
        let mut rng = StdRng::seed_from_u64(16);
        ark_like(3, 5, &mut rng);
    }
}
