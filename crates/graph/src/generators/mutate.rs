//! Topology-size mutation.
//!
//! §6.1 of the paper: "The topology size changes by randomly inserting
//! and deleting vertices in the network." These helpers grow or shrink
//! a topology to a target vertex count while preserving the structural
//! invariants each experiment needs (tree-ness with a fixed root, or
//! undirected connectivity for general topologies).

use crate::digraph::{DiGraph, GraphBuilder, NodeId};
use crate::traversal::is_connected_undirected;
use crate::tree::RootedTree;
use rand::Rng;

/// Grows or shrinks a tree to exactly `target` vertices.
///
/// * Growing attaches fresh leaves to uniformly random vertices.
/// * Shrinking removes uniformly random leaves (never the root).
///
/// Vertices are re-numbered densely; the root is always vertex 0 of
/// the result.
///
/// # Panics
/// Panics if `target == 0` or the input is not a tree rooted at `root`.
pub fn resize_tree<R: Rng + ?Sized>(
    g: &DiGraph,
    root: NodeId,
    target: usize,
    rng: &mut R,
) -> DiGraph {
    assert!(target > 0, "target size must be positive");
    let tree = RootedTree::from_digraph(g, root).expect("input must be a tree");
    let n = tree.node_count();
    // Represent as a parent vector over "alive" vertices, root first.
    // alive[i] = parent index into the current numbering (usize::MAX for root).
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut ids: Vec<NodeId> = tree.bfs_order().to_vec();
    let mut pos = vec![0usize; n];
    for (i, &v) in ids.iter().enumerate() {
        pos[v as usize] = i;
    }
    for (i, &v) in ids.iter().enumerate() {
        if let Some(p) = tree.parent(v) {
            parent[i] = pos[p as usize];
        }
    }
    let mut child_count = vec![0usize; n];
    for &p in &parent {
        if p != usize::MAX {
            child_count[p] += 1;
        }
    }
    // Shrink: repeatedly delete a random non-root leaf.
    while ids.len() > target {
        let leaves: Vec<usize> = (1..ids.len()).filter(|&i| child_count[i] == 0).collect();
        let pick = leaves[rng.gen_range(0..leaves.len())];
        let last = ids.len() - 1;
        child_count[parent[pick]] -= 1;
        // Swap-remove `pick` with `last`, fixing references to `last`.
        parent.swap(pick, last);
        child_count.swap(pick, last);
        ids.swap(pick, last);
        if pick != last {
            for p in parent.iter_mut().take(last) {
                if *p == last {
                    *p = pick;
                }
            }
        }
        parent.pop();
        child_count.pop();
        ids.pop();
    }
    // Grow: attach fresh leaves to uniformly random existing vertices.
    while ids.len() < target {
        let attach = rng.gen_range(0..ids.len());
        parent.push(attach);
        child_count[attach] += 1;
        child_count.push(0);
        ids.push(ids.len() as NodeId);
    }
    let mut b = GraphBuilder::new(parent.len());
    for (i, &p) in parent.iter().enumerate() {
        if p != usize::MAX {
            b.add_bidirectional(p as NodeId, i as NodeId);
        }
    }
    b.build()
}

/// Grows or shrinks a general topology to exactly `target` vertices
/// while keeping it connected (undirected).
///
/// * Growing adds a vertex linked to 1–3 random existing vertices.
/// * Shrinking removes a random vertex whose removal keeps the graph
///   connected (one always exists: any non-cut vertex).
///
/// Vertices are re-numbered densely.
///
/// # Panics
/// Panics if `target == 0` or the input is disconnected.
pub fn resize_general<R: Rng + ?Sized>(g: &DiGraph, target: usize, rng: &mut R) -> DiGraph {
    assert!(target > 0, "target size must be positive");
    assert!(is_connected_undirected(g), "input must be connected");
    let mut edges: Vec<(NodeId, NodeId)> = g
        .edges()
        .filter(|&(u, v, _)| u < v) // undirected view
        .map(|(u, v, _)| (u, v))
        .collect();
    let mut n = g.node_count();
    // Shrink.
    while n > target {
        // Try random vertices until one is removable without
        // disconnecting; a DFS-tree leaf always qualifies, so this
        // terminates quickly.
        let victim = loop {
            let v = rng.gen_range(0..n) as NodeId;
            let trial: Vec<(NodeId, NodeId, u64)> = edges
                .iter()
                .filter(|&&(a, b)| a != v && b != v)
                .flat_map(|&(a, b)| {
                    let a2 = if a > v { a - 1 } else { a };
                    let b2 = if b > v { b - 1 } else { b };
                    [(a2, b2, 1u64), (b2, a2, 1u64)]
                })
                .collect();
            let gg = DiGraph::from_edges(n - 1, &trial);
            if is_connected_undirected(&gg) {
                break v;
            }
        };
        edges = edges
            .iter()
            .filter(|&&(a, b)| a != victim && b != victim)
            .map(|&(a, b)| {
                let a2 = if a > victim { a - 1 } else { a };
                let b2 = if b > victim { b - 1 } else { b };
                (a2, b2)
            })
            .collect();
        n -= 1;
    }
    // Grow.
    while n < target {
        let new = n as NodeId;
        let links = rng.gen_range(1..=3usize).min(n);
        let mut chosen = std::collections::HashSet::new();
        while chosen.len() < links {
            chosen.insert(rng.gen_range(0..n) as NodeId);
        }
        for &t in &chosen {
            edges.push((t, new));
        }
        n += 1;
    }
    let full: Vec<(NodeId, NodeId, u64)> = edges
        .iter()
        .flat_map(|&(a, b)| [(a, b, 1u64), (b, a, 1u64)])
        .collect();
    DiGraph::from_edges(n, &full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::erdos_renyi_connected;
    use crate::generators::trees::random_tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tree_grows_to_target() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = random_tree(10, &mut rng);
        let g2 = resize_tree(&g, 0, 25, &mut rng);
        assert_eq!(g2.node_count(), 25);
        assert!(RootedTree::from_digraph(&g2, 0).is_ok());
    }

    #[test]
    fn tree_shrinks_to_target() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = random_tree(30, &mut rng);
        let g2 = resize_tree(&g, 0, 8, &mut rng);
        assert_eq!(g2.node_count(), 8);
        assert!(RootedTree::from_digraph(&g2, 0).is_ok());
    }

    #[test]
    fn tree_shrink_to_single_vertex() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = random_tree(12, &mut rng);
        let g2 = resize_tree(&g, 0, 1, &mut rng);
        assert_eq!(g2.node_count(), 1);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn tree_resize_noop() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = random_tree(15, &mut rng);
        let g2 = resize_tree(&g, 0, 15, &mut rng);
        assert_eq!(g2.node_count(), 15);
        assert!(RootedTree::from_digraph(&g2, 0).is_ok());
    }

    #[test]
    fn general_grows_and_stays_connected() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = erdos_renyi_connected(12, 0.2, &mut rng);
        let g2 = resize_general(&g, 40, &mut rng);
        assert_eq!(g2.node_count(), 40);
        assert!(is_connected_undirected(&g2));
        assert!(g2.is_bidirectional());
    }

    #[test]
    fn general_shrinks_and_stays_connected() {
        let mut rng = StdRng::seed_from_u64(25);
        let g = erdos_renyi_connected(40, 0.15, &mut rng);
        let g2 = resize_general(&g, 12, &mut rng);
        assert_eq!(g2.node_count(), 12);
        assert!(is_connected_undirected(&g2));
    }

    #[test]
    fn general_resize_down_to_one() {
        let mut rng = StdRng::seed_from_u64(26);
        let g = erdos_renyi_connected(6, 0.5, &mut rng);
        let g2 = resize_general(&g, 1, &mut rng);
        assert_eq!(g2.node_count(), 1);
    }
}
