//! BCube server-centric data center topology (Guo et al., SIGCOMM'09 —
//! ref \[14\] in the paper, cited for "tree-based tiered topologies").

use crate::digraph::{DiGraph, GraphBuilder, NodeId};

/// A `BCube(n, l)` topology: `n^(l+1)` servers and `(l+1)·n^l`
/// switches arranged in `l + 1` levels. Server `s` (written in base
/// `n` as `a_l .. a_1 a_0`) connects at level `i` to the switch
/// addressed by dropping digit `a_i`.
#[derive(Debug, Clone)]
pub struct BCube {
    /// The topology (bidirectional unit links).
    pub graph: DiGraph,
    /// Server vertex ids (`n^(l+1)` of them, numbered first).
    pub servers: Vec<NodeId>,
    /// Switch ids grouped by level (`l + 1` levels of `n^l` switches).
    pub switches: Vec<Vec<NodeId>>,
    /// Port count per switch.
    pub n: usize,
    /// Recursion level.
    pub l: usize,
}

/// Builds `BCube(n, l)`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn bcube(n: usize, l: usize) -> BCube {
    assert!(n >= 2, "BCube needs n >= 2 ports");
    let n_servers = n.pow(l as u32 + 1);
    let switches_per_level = n.pow(l as u32);
    let n_switches = (l + 1) * switches_per_level;
    let mut b = GraphBuilder::new(n_servers + n_switches);

    let servers: Vec<NodeId> = (0..n_servers as NodeId).collect();
    let mut switches = Vec::with_capacity(l + 1);
    for level in 0..=l {
        let base = n_servers + level * switches_per_level;
        let ids: Vec<NodeId> = (0..switches_per_level)
            .map(|i| (base + i) as NodeId)
            .collect();
        switches.push(ids);
    }
    // Server s with digits (a_l .. a_0) connects at level i to switch
    // index formed by the remaining digits.
    #[allow(clippy::needless_range_loop)] // digit arithmetic reads clearer on indices
    for s in 0..n_servers {
        for level in 0..=l {
            let digit_stride = n.pow(level as u32);
            let high = s / (digit_stride * n); // digits above level
            let low = s % digit_stride; // digits below level
            let switch_index = high * digit_stride + low;
            b.add_bidirectional(servers[s], switches[level][switch_index]);
        }
    }
    BCube {
        graph: b.build(),
        servers,
        switches,
        n,
        l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected_undirected;

    #[test]
    fn bcube_0_is_a_star() {
        let bc = bcube(4, 0);
        assert_eq!(bc.servers.len(), 4);
        assert_eq!(bc.switches.len(), 1);
        assert_eq!(bc.switches[0].len(), 1);
        let hub = bc.switches[0][0];
        assert_eq!(bc.graph.out_degree(hub), 4);
        assert!(is_connected_undirected(&bc.graph));
    }

    #[test]
    fn bcube_1_counts() {
        let bc = bcube(2, 1);
        assert_eq!(bc.servers.len(), 4);
        assert_eq!(bc.switches.iter().map(Vec::len).sum::<usize>(), 4);
        // Every server has l+1 = 2 switch links.
        for &s in &bc.servers {
            assert_eq!(bc.graph.out_degree(s), 2);
        }
        // Every switch has n = 2 server links.
        for level in &bc.switches {
            for &sw in level {
                assert_eq!(bc.graph.out_degree(sw), 2);
            }
        }
        assert!(is_connected_undirected(&bc.graph));
    }

    #[test]
    fn bcube_2_is_connected_and_sized() {
        let bc = bcube(3, 2);
        assert_eq!(bc.servers.len(), 27);
        assert_eq!(bc.switches.iter().map(Vec::len).sum::<usize>(), 27);
        assert!(is_connected_undirected(&bc.graph));
    }

    #[test]
    fn servers_at_same_switch_share_all_but_one_digit() {
        let bc = bcube(2, 1);
        // Level-0 switch 0 serves servers 0 and 1 (digits differ at a_0).
        let sw = bc.switches[0][0];
        let mut attached: Vec<_> = bc.graph.out_neighbors(sw).to_vec();
        attached.sort_unstable();
        assert_eq!(attached, vec![0, 1]);
        // Level-1 switch 0 serves servers 0 and 2 (differ at a_1).
        let sw = bc.switches[1][0];
        let mut attached: Vec<_> = bc.graph.out_neighbors(sw).to_vec();
        attached.sort_unstable();
        assert_eq!(attached, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn tiny_port_count_rejected() {
        bcube(1, 1);
    }
}
