//! Topology generators used by the paper's evaluation.
//!
//! The paper evaluates on the CAIDA Archipelago (Ark) measurement
//! topology and on tree/general sub-topologies reduced from it, with
//! topology-size sweeps produced "by randomly inserting and deleting
//! vertices in the network" (§6.1). The Ark dataset itself is not
//! redistributable, so [`ark`] synthesizes an Ark-like clustered WAN
//! (geographic monitor clusters attached to a meshed backbone); the
//! remaining modules provide the standard families the paper's
//! motivation cites: trees/streaming ([`trees`]), fat-tree \[3\]
//! ([`fattree`]), BCube \[14\] ([`mod@bcube`]), and generic random graphs
//! ([`random`]). [`mutate`] implements the size sweeps.
//!
//! All generators emit bidirectional unit-weight links, matching the
//! paper's link model.

pub mod ark;
pub mod bcube;
pub mod fattree;
pub mod mutate;
pub mod random;
pub mod trees;

pub use ark::ark_like;
pub use bcube::{bcube, BCube};
pub use fattree::{fat_tree, FatTree};
pub use mutate::{resize_general, resize_tree};
pub use random::{barabasi_albert, erdos_renyi_connected, waxman};
pub use trees::{balanced_kary_tree, complete_binary_tree, random_tree};
