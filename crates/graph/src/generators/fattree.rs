//! Fat-tree data center topology (Al-Fares et al., SIGCOMM'08 — ref
//! \[3\] in the paper). The paper motivates the tree setting with
//! "tree-based tiered topologies like Fat-tree"; this generator backs
//! the data-center example application.

use crate::digraph::{DiGraph, GraphBuilder, NodeId};

/// A k-ary fat-tree switch fabric plus its layer decomposition.
///
/// For even `k`: `(k/2)^2` core switches, `k` pods of `k/2`
/// aggregation and `k/2` edge switches each. Hosts are omitted —
/// middleboxes are placed on switches and flows originate at edge
/// switches, which matches the paper's model of servers hanging off
/// switches.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// The switch fabric (bidirectional unit links).
    pub graph: DiGraph,
    /// Core switch ids.
    pub core: Vec<NodeId>,
    /// Aggregation switch ids, grouped by pod.
    pub aggregation: Vec<Vec<NodeId>>,
    /// Edge switch ids, grouped by pod.
    pub edge: Vec<Vec<NodeId>>,
    /// The parameter `k`.
    pub k: usize,
}

impl FatTree {
    /// All edge switches across pods (typical flow sources).
    pub fn edge_switches(&self) -> Vec<NodeId> {
        self.edge.iter().flatten().copied().collect()
    }
}

/// Builds a `k`-ary fat-tree.
///
/// # Panics
/// Panics if `k` is odd or `< 2`.
pub fn fat_tree(k: usize) -> FatTree {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree requires even k >= 2"
    );
    let half = k / 2;
    let n_core = half * half;
    let n = n_core + k * k; // core + k pods * (half agg + half edge)
    let mut b = GraphBuilder::new(n);

    let core: Vec<NodeId> = (0..n_core as NodeId).collect();
    let mut aggregation = Vec::with_capacity(k);
    let mut edge = Vec::with_capacity(k);
    let mut next = n_core as NodeId;
    for _pod in 0..k {
        let aggs: Vec<NodeId> = (0..half).map(|i| next + i as NodeId).collect();
        next += half as NodeId;
        let edges: Vec<NodeId> = (0..half).map(|i| next + i as NodeId).collect();
        next += half as NodeId;
        // Complete bipartite agg <-> edge inside the pod.
        for &a in &aggs {
            for &e in &edges {
                b.add_bidirectional(a, e);
            }
        }
        // Each aggregation switch i connects to core group i.
        for (i, &a) in aggs.iter().enumerate() {
            for j in 0..half {
                let c = core[i * half + j];
                b.add_bidirectional(a, c);
            }
        }
        aggregation.push(aggs);
        edge.push(edges);
    }
    FatTree {
        graph: b.build(),
        core,
        aggregation,
        edge,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs_distances, is_connected_undirected};

    #[test]
    fn k4_fat_tree_counts() {
        let ft = fat_tree(4);
        assert_eq!(ft.core.len(), 4);
        assert_eq!(ft.aggregation.len(), 4);
        assert_eq!(ft.edge.len(), 4);
        assert_eq!(ft.graph.node_count(), 20);
        // k^2/2 agg-edge links per pod pair... total: k pods * (k/2)^2
        // agg-edge + k pods * (k/2)^2 agg-core = 2 * k * (k/2)^2 links.
        let undirected_links = 2 * 4 * 4;
        assert_eq!(ft.graph.edge_count(), 2 * undirected_links);
        assert!(is_connected_undirected(&ft.graph));
    }

    #[test]
    fn edge_switches_reach_everything_within_four_hops() {
        let ft = fat_tree(4);
        for &e in &ft.edge_switches() {
            let d = bfs_distances(&ft.graph, e);
            assert!(
                d.iter().all(|&x| x <= 4),
                "diameter from edge switch exceeded"
            );
        }
    }

    #[test]
    fn degrees_match_fat_tree_spec() {
        let ft = fat_tree(4);
        for &c in &ft.core {
            assert_eq!(
                ft.graph.out_degree(c),
                4,
                "core connects to one agg per pod"
            );
        }
        for aggs in &ft.aggregation {
            for &a in aggs {
                assert_eq!(ft.graph.out_degree(a), 4, "k/2 edge + k/2 core");
            }
        }
        for edges in &ft.edge {
            for &e in edges {
                assert_eq!(ft.graph.out_degree(e), 2, "k/2 aggregation uplinks");
            }
        }
    }

    #[test]
    fn k6_scales() {
        let ft = fat_tree(6);
        assert_eq!(ft.graph.node_count(), 9 + 36);
        assert!(is_connected_undirected(&ft.graph));
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_rejected() {
        fat_tree(3);
    }
}
