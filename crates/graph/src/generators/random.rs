//! Random general-topology generators: connected Erdős–Rényi,
//! Barabási–Albert preferential attachment, and Waxman geometric
//! graphs. These provide the irregular "general topology" instances of
//! the paper's §6.4 sweeps.

use crate::digraph::{DiGraph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Connected Erdős–Rényi-style graph: a uniformly random spanning tree
/// guarantees connectivity, then each remaining unordered pair gets a
/// link with probability `p`.
///
/// # Panics
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    assert!(n > 0, "graph needs at least one vertex");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut b = GraphBuilder::new(n);
    // Random spanning tree: random permutation, attach each vertex to a
    // random earlier one.
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    perm.shuffle(rng);
    let mut in_tree: Vec<(NodeId, NodeId)> = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n {
        let j = rng.gen_range(0..i);
        in_tree.push((perm[j], perm[i]));
    }
    let mut present = std::collections::HashSet::new();
    for &(u, v) in &in_tree {
        b.add_bidirectional(u, v);
        present.insert((u.min(v), u.max(v)));
    }
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if !present.contains(&(u, v)) && rng.gen_bool(p) {
                b.add_bidirectional(u, v);
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: start from a small clique
/// of `m` vertices; every new vertex attaches `m` links to existing
/// vertices chosen proportionally to degree.
///
/// # Panics
/// Panics if `m == 0` or `n < m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    assert!(m > 0, "attachment count must be positive");
    assert!(n >= m, "need at least m vertices");
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<NodeId> = Vec::new();
    // Seed clique on the first m vertices (single vertex if m == 1).
    for u in 0..m as NodeId {
        for v in (u + 1)..m as NodeId {
            b.add_bidirectional(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    if m == 1 {
        endpoints.push(0);
    }
    for new in m..n {
        let new = new as NodeId;
        let mut chosen = std::collections::HashSet::new();
        while chosen.len() < m.min(new as usize) {
            let &target = endpoints.choose(rng).expect("endpoint pool never empty");
            if target != new {
                chosen.insert(target);
            }
        }
        for &t in &chosen {
            b.add_bidirectional(new, t);
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Waxman random geometric graph on the unit square:
/// `P(u, v) = alpha * exp(-dist(u, v) / (beta * sqrt(2)))`, patched to
/// connectivity with a nearest-neighbor spanning pass. Returns the
/// graph and the generated coordinates.
///
/// # Panics
/// Panics if `n == 0`, or `alpha`/`beta` are not positive.
pub fn waxman<R: Rng + ?Sized>(
    n: usize,
    alpha: f64,
    beta: f64,
    rng: &mut R,
) -> (DiGraph, Vec<(f64, f64)>) {
    assert!(n > 0, "graph needs at least one vertex");
    assert!(
        alpha > 0.0 && beta > 0.0,
        "waxman parameters must be positive"
    );
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let max_dist = std::f64::consts::SQRT_2;
    let mut b = GraphBuilder::new(n);
    let mut present = std::collections::HashSet::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let (ux, uy) = coords[u];
            let (vx, vy) = coords[v];
            let d = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
            let p = (alpha * (-d / (beta * max_dist)).exp()).min(1.0);
            if rng.gen_bool(p) {
                b.add_bidirectional(u as NodeId, v as NodeId);
                present.insert((u, v));
            }
        }
    }
    // Connectivity patch: greedily link each non-first component to its
    // geometrically nearest already-connected vertex.
    let g = b.clone().build();
    let comp = components(&g);
    if comp.iter().any(|&c| c != 0) {
        let mut connected: Vec<usize> = (0..n).filter(|&v| comp[v] == 0).collect();
        let mut remaining: Vec<usize> = (1..).take_while(|c| comp.contains(c)).collect();
        remaining.sort_unstable();
        for c in remaining {
            let members: Vec<usize> = (0..n).filter(|&v| comp[v] == c).collect();
            let (mut best, mut best_d) = ((members[0], connected[0]), f64::INFINITY);
            for &u in &members {
                for &v in &connected {
                    let (ux, uy) = coords[u];
                    let (vx, vy) = coords[v];
                    let d = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
                    if d < best_d {
                        best_d = d;
                        best = (u, v);
                    }
                }
            }
            b.add_bidirectional(best.0 as NodeId, best.1 as NodeId);
            connected.extend_from_slice(&members);
        }
    }
    (b.build(), coords)
}

/// Undirected connected-component labels (0-based, in discovery order).
fn components(g: &DiGraph) -> Vec<usize> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n as NodeId {
        if comp[start as usize] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start as usize] = next;
        while let Some(u) = stack.pop() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected_undirected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_is_connected_for_any_p() {
        let mut rng = StdRng::seed_from_u64(3);
        for p in [0.0, 0.05, 0.3, 1.0] {
            let g = erdos_renyi_connected(30, p, &mut rng);
            assert!(is_connected_undirected(&g), "p={p}");
            assert!(g.is_bidirectional());
        }
    }

    #[test]
    fn er_p0_is_exactly_a_tree() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi_connected(25, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 2 * 24);
    }

    #[test]
    fn er_p1_is_complete() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_connected(10, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 10 * 9);
    }

    #[test]
    fn ba_degree_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = barabasi_albert(50, 2, &mut rng);
        assert!(is_connected_undirected(&g));
        // Every non-seed vertex got >= 2 undirected links.
        for v in 2..50u32 {
            assert!(g.out_degree(v) >= 2, "v={v}");
        }
    }

    #[test]
    fn ba_m1_is_a_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(30, 1, &mut rng);
        assert_eq!(g.edge_count(), 2 * 29);
        assert!(is_connected_undirected(&g));
    }

    #[test]
    fn ba_has_a_hub() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = barabasi_albert(200, 2, &mut rng);
        let max_deg = (0..200u32).map(|v| g.out_degree(v)).max().unwrap();
        assert!(
            max_deg >= 10,
            "preferential attachment should grow hubs, got {max_deg}"
        );
    }

    #[test]
    fn waxman_is_connected_and_geometric() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, coords) = waxman(40, 0.6, 0.25, &mut rng);
        assert_eq!(coords.len(), 40);
        assert!(is_connected_undirected(&g));
        assert!(g.is_bidirectional());
    }

    #[test]
    fn waxman_sparse_still_connected() {
        let mut rng = StdRng::seed_from_u64(10);
        // Tiny alpha: almost no organic links; the patch must connect.
        let (g, _) = waxman(30, 0.01, 0.05, &mut rng);
        assert!(is_connected_undirected(&g));
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let a = erdos_renyi_connected(20, 0.2, &mut StdRng::seed_from_u64(42));
        let b = erdos_renyi_connected(20, 0.2, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
