//! Tree generators: random recursive trees, complete binary trees and
//! balanced k-ary trees. Vertex 0 is always the root (the common
//! destination of all flows in the paper's tree setting).

use crate::digraph::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

/// Random recursive tree on `n` vertices: vertex `i` attaches to a
/// uniformly random vertex in `0..i`. Produces the irregular,
/// moderately deep trees typical of Ark tree reductions.
///
/// # Panics
/// Panics if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> DiGraph {
    assert!(n > 0, "tree needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i) as NodeId;
        b.add_bidirectional(parent, i as NodeId);
    }
    b.build()
}

/// Complete binary tree with `levels` levels (`2^levels - 1` vertices).
/// Level 1 is just the root.
///
/// # Panics
/// Panics if `levels == 0` or the size overflows.
pub fn complete_binary_tree(levels: u32) -> DiGraph {
    assert!(levels > 0, "need at least one level");
    let n = (1usize << levels) - 1;
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = ((i - 1) / 2) as NodeId;
        b.add_bidirectional(parent, i as NodeId);
    }
    b.build()
}

/// Balanced `arity`-ary tree on exactly `n` vertices, filled level by
/// level (a heap layout generalized to any arity).
///
/// # Panics
/// Panics if `n == 0` or `arity == 0`.
pub fn balanced_kary_tree(n: usize, arity: usize) -> DiGraph {
    assert!(n > 0, "tree needs at least one vertex");
    assert!(arity > 0, "arity must be positive");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = ((i - 1) / arity) as NodeId;
        b.add_bidirectional(parent, i as NodeId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected_undirected;
    use crate::tree::RootedTree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 22, 100] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.edge_count(), 2 * (n - 1), "n={n}");
            assert!(is_connected_undirected(&g));
            assert!(RootedTree::from_digraph(&g, 0).is_ok(), "n={n}");
        }
    }

    #[test]
    fn random_tree_is_seed_deterministic() {
        let g1 = random_tree(40, &mut StdRng::seed_from_u64(9));
        let g2 = random_tree(40, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn complete_binary_tree_shape() {
        let g = complete_binary_tree(3);
        assert_eq!(g.node_count(), 7);
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        assert_eq!(t.leaves().len(), 4);
        assert_eq!(t.depth(6), 2);
        assert_eq!(t.children(0), &[1, 2]);
    }

    #[test]
    fn complete_binary_tree_single_level() {
        let g = complete_binary_tree(1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn kary_tree_has_bounded_branching() {
        let g = balanced_kary_tree(14, 3);
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        for v in 0..14u32 {
            assert!(t.children(v).len() <= 3);
        }
        assert_eq!(t.children(0).len(), 3);
    }

    #[test]
    fn kary_arity_one_is_a_path() {
        let g = balanced_kary_tree(5, 1);
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        assert_eq!(t.leaves(), &[4]);
        assert_eq!(t.depth(4), 4);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn zero_vertices_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        random_tree(0, &mut rng);
    }
}
