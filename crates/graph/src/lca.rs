//! Lowest common ancestor queries.
//!
//! HAT (Alg. 2 of the paper) repeatedly merges pairs of middleboxes
//! into their LCA, so LCA queries sit on its hot path. [`Lca`]
//! preprocesses the Euler tour of a [`RootedTree`] into a sparse table
//! in `O(n log n)` and answers queries in `O(1)` (the classical
//! reduction of LCA to range-minimum, in the spirit of the
//! Schieber–Vishkin reference \[29\] the paper cites). [`NaiveLca`]
//! walks parent pointers and is kept as the oracle for tests.

use crate::digraph::NodeId;
use crate::tree::RootedTree;

/// Sparse-table LCA with `O(1)` queries.
#[derive(Debug, Clone)]
pub struct Lca {
    /// Euler tour of vertices.
    tour: Vec<NodeId>,
    /// First occurrence of each vertex in the tour.
    first: Vec<u32>,
    /// `table[j][i]` = index (into the tour) of the minimum-depth
    /// vertex in `tour[i .. i + 2^j]`.
    table: Vec<Vec<u32>>,
    /// Depth of each tour position.
    tdepth: Vec<u32>,
}

impl Lca {
    /// Preprocesses `tree` for constant-time LCA queries.
    pub fn new(tree: &RootedTree) -> Self {
        let (tour, first, tdepth) = tree.euler_tour();
        let m = tour.len();
        let levels = if m <= 1 {
            1
        } else {
            (usize::BITS - (m - 1).leading_zeros()) as usize + 1
        };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..m as u32).collect());
        let mut span = 1usize;
        while 2 * span <= m {
            let prev = &table[table.len() - 1];
            let mut row = Vec::with_capacity(m - 2 * span + 1);
            for i in 0..=(m - 2 * span) {
                let a = prev[i];
                let b = prev[i + span];
                row.push(if tdepth[a as usize] <= tdepth[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            span *= 2;
        }
        Self {
            tour,
            first,
            table,
            tdepth,
        }
    }

    /// Lowest common ancestor of `u` and `v`.
    pub fn query(&self, u: NodeId, v: NodeId) -> NodeId {
        if u == v {
            return u;
        }
        let (mut lo, mut hi) = (
            self.first[u as usize] as usize,
            self.first[v as usize] as usize,
        );
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let len = hi - lo + 1;
        let j = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let a = self.table[j][lo];
        let b = self.table[j][hi + 1 - (1 << j)];
        let best = if self.tdepth[a as usize] <= self.tdepth[b as usize] {
            a
        } else {
            b
        };
        self.tour[best as usize]
    }
}

/// Reference LCA that climbs parent pointers; `O(depth)` per query.
#[derive(Debug, Clone)]
pub struct NaiveLca<'a> {
    tree: &'a RootedTree,
}

impl<'a> NaiveLca<'a> {
    /// Wraps a tree for naive queries.
    pub fn new(tree: &'a RootedTree) -> Self {
        Self { tree }
    }

    /// Lowest common ancestor of `u` and `v` by depth-equalizing walks.
    pub fn query(&self, mut u: NodeId, mut v: NodeId) -> NodeId {
        while self.tree.depth(u) > self.tree.depth(v) {
            u = self.tree.parent(u).expect("non-root must have parent");
        }
        while self.tree.depth(v) > self.tree.depth(u) {
            v = self.tree.parent(v).expect("non-root must have parent");
        }
        while u != v {
            u = self.tree.parent(u).expect("reached root without meeting");
            v = self.tree.parent(v).expect("reached root without meeting");
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::GraphBuilder;
    use crate::generators::trees::random_tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig5() -> RootedTree {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6), (5, 7)] {
            b.add_bidirectional(u, v);
        }
        RootedTree::from_digraph(&b.build(), 0).unwrap()
    }

    #[test]
    fn paper_examples() {
        // "LCA of vertices v4 and v5 is v2 and LCA of v1 and v6 is v1"
        // (1-based in the paper; 0-based here).
        let t = fig5();
        let lca = Lca::new(&t);
        assert_eq!(lca.query(3, 4), 1);
        assert_eq!(lca.query(0, 5), 0);
    }

    #[test]
    fn vertex_is_its_own_descendant() {
        let t = fig5();
        let lca = Lca::new(&t);
        assert_eq!(lca.query(6, 6), 6);
        // Direct ancestor: LCA(v, ancestor) = ancestor.
        assert_eq!(lca.query(6, 5), 5);
        assert_eq!(lca.query(6, 2), 2);
        assert_eq!(lca.query(6, 0), 0);
    }

    #[test]
    fn cross_subtree_queries_hit_root() {
        let t = fig5();
        let lca = Lca::new(&t);
        assert_eq!(lca.query(3, 7), 0);
        assert_eq!(lca.query(4, 6), 0);
    }

    #[test]
    fn naive_agrees_on_fig5() {
        let t = fig5();
        let fast = Lca::new(&t);
        let naive = NaiveLca::new(&t);
        for u in 0..8u32 {
            for v in 0..8u32 {
                assert_eq!(fast.query(u, v), naive.query(u, v), "u={u} v={v}");
            }
        }
    }

    #[test]
    fn naive_agrees_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 3, 17, 64, 129] {
            let g = random_tree(n, &mut rng);
            let t = RootedTree::from_digraph(&g, 0).unwrap();
            let fast = Lca::new(&t);
            let naive = NaiveLca::new(&t);
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    assert_eq!(fast.query(u, v), naive.query(u, v), "n={n} u={u} v={v}");
                }
            }
        }
    }

    #[test]
    fn single_vertex_tree() {
        let g = GraphBuilder::new(1).build();
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        let lca = Lca::new(&t);
        assert_eq!(lca.query(0, 0), 0);
    }

    #[test]
    fn path_graph_lca_is_shallower_endpoint() {
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_bidirectional(i, i + 1);
        }
        let t = RootedTree::from_digraph(&b.build(), 0).unwrap();
        let lca = Lca::new(&t);
        assert_eq!(lca.query(2, 4), 2);
        assert_eq!(lca.query(1, 3), 1);
    }
}
