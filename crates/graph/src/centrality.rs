//! Vertex centrality measures.
//!
//! Betweenness centrality (Brandes' algorithm, unweighted) backs the
//! *centrality placement* baseline in `tdmd-core`: putting middleboxes
//! on the most-traversed vertices is the folk heuristic the paper's
//! greedy is implicitly compared against, and a common strawman in the
//! NFV-placement literature.

use crate::digraph::{DiGraph, NodeId};

/// Betweenness centrality of every vertex over directed shortest
/// paths (Brandes 2001, unweighted BFS variant). Endpoints are not
/// counted as intermediaries.
pub fn betweenness(g: &DiGraph) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    // Reusable per-source state.
    let mut stack: Vec<NodeId> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];

    for s in 0..n as NodeId {
        stack.clear();
        for p in preds.iter_mut() {
            p.clear();
        }
        sigma.fill(0.0);
        dist.fill(-1);
        delta.fill(0.0);
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.out_neighbors(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        // Accumulation in reverse BFS order.
        while let Some(w) = stack.pop() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                centrality[w as usize] += delta[w as usize];
            }
        }
    }
    centrality
}

/// Vertices sorted by descending betweenness (ties by smaller id).
pub fn by_betweenness(g: &DiGraph) -> Vec<NodeId> {
    let c = betweenness(g);
    let mut order: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
    order.sort_by(|&a, &b| c[b as usize].total_cmp(&c[a as usize]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::GraphBuilder;

    fn path_graph(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_bidirectional(i as NodeId, (i + 1) as NodeId);
        }
        b.build()
    }

    #[test]
    fn path_graph_center_dominates() {
        // P5: betweenness (directed both ways) of vertex i is
        // 2 * (i * (n-1-i)) pairs routed through it.
        let c = betweenness(&path_graph(5));
        assert_eq!(c, vec![0.0, 6.0, 8.0, 6.0, 0.0]);
    }

    #[test]
    fn star_center_carries_everything() {
        let mut b = GraphBuilder::new(5);
        for leaf in 1..5 {
            b.add_bidirectional(0, leaf);
        }
        let c = betweenness(&b.build());
        // 4 leaves: 4*3 = 12 ordered pairs all through the hub.
        assert_eq!(c[0], 12.0);
        assert!(c[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn shortest_path_multiplicity_splits_credit() {
        // 4-cycle: two equal shortest paths between opposite corners;
        // each intermediate gets half a pair per direction.
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_bidirectional(u, v);
        }
        let c = betweenness(&b.build());
        assert!(c.iter().all(|&x| (x - 1.0).abs() < 1e-12), "{c:?}");
    }

    #[test]
    fn ordering_is_deterministic() {
        let g = path_graph(6);
        let order = by_betweenness(&g);
        assert_eq!(order[0], 2, "ties toward the smaller id");
        assert_eq!(order[1], 3);
        assert!(order.ends_with(&[0, 5]));
    }

    #[test]
    fn empty_and_single_vertex() {
        assert!(betweenness(&GraphBuilder::new(0).build()).is_empty());
        assert_eq!(betweenness(&GraphBuilder::new(1).build()), vec![0.0]);
    }
}
