//! Graphviz DOT export.
//!
//! Renders topologies — and optionally a highlighted vertex set (a
//! middlebox deployment) — as `dot` digraphs, so experiment results
//! can be eyeballed the way the paper draws Figs. 1, 5 and 8.

use crate::digraph::{DiGraph, NodeId};

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotStyle {
    /// Vertices drawn filled (e.g. a middlebox deployment).
    pub highlighted: Vec<NodeId>,
    /// Vertices drawn as double circles (e.g. flow destinations).
    pub destinations: Vec<NodeId>,
    /// Collapse bidirectional edge pairs into one undirected edge.
    pub undirected_pairs: bool,
    /// Print edge weights when they differ from 1.
    pub show_weights: bool,
}

/// Renders `g` as a DOT digraph.
pub fn to_dot(g: &DiGraph, name: &str, style: &DotStyle) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{name}\" {{\n"));
    out.push_str("  node [shape=circle];\n");
    for v in 0..g.node_count() as NodeId {
        let mut attrs: Vec<String> = Vec::new();
        if style.highlighted.contains(&v) {
            attrs.push("style=filled".to_string());
            attrs.push("fillcolor=lightblue".to_string());
        }
        if style.destinations.contains(&v) {
            attrs.push("shape=doublecircle".to_string());
        }
        if attrs.is_empty() {
            out.push_str(&format!("  v{v};\n"));
        } else {
            out.push_str(&format!("  v{v} [{}];\n", attrs.join(", ")));
        }
    }
    for (u, v, w) in g.edges() {
        if style.undirected_pairs {
            // Emit each bidirectional pair once, as an undirected-look
            // edge; keep true one-way arcs as arrows.
            if g.has_edge(v, u) && u > v {
                continue;
            }
            let dir = if g.has_edge(v, u) { ", dir=none" } else { "" };
            if style.show_weights && w != 1 {
                out.push_str(&format!("  v{u} -> v{v} [label=\"{w}\"{dir}];\n"));
            } else if !dir.is_empty() {
                out.push_str(&format!("  v{u} -> v{v} [dir=none];\n"));
            } else {
                out.push_str(&format!("  v{u} -> v{v};\n"));
            }
        } else if style.show_weights && w != 1 {
            out.push_str(&format!("  v{u} -> v{v} [label=\"{w}\"];\n"));
        } else {
            out.push_str(&format!("  v{u} -> v{v};\n"));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::GraphBuilder;

    fn small() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_bidirectional(0, 1);
        b.add_weighted_edge(1, 2, 7);
        b.build()
    }

    #[test]
    fn renders_vertices_and_edges() {
        let dot = to_dot(&small(), "t", &DotStyle::default());
        assert!(dot.starts_with("digraph \"t\""));
        assert!(dot.contains("v0 -> v1;"));
        assert!(dot.contains("v1 -> v0;"));
        assert!(dot.contains("v1 -> v2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlights_and_destinations() {
        let style = DotStyle {
            highlighted: vec![1],
            destinations: vec![2],
            ..DotStyle::default()
        };
        let dot = to_dot(&small(), "t", &style);
        assert!(dot.contains("v1 [style=filled, fillcolor=lightblue];"));
        assert!(dot.contains("v2 [shape=doublecircle];"));
    }

    #[test]
    fn undirected_pairs_collapse() {
        let style = DotStyle {
            undirected_pairs: true,
            ..DotStyle::default()
        };
        let dot = to_dot(&small(), "t", &style);
        assert!(dot.contains("v0 -> v1 [dir=none];"));
        assert!(!dot.contains("v1 -> v0"), "pair collapsed: {dot}");
        assert!(dot.contains("v1 -> v2;"), "one-way arc kept as arrow");
    }

    #[test]
    fn weights_appear_on_request() {
        let style = DotStyle {
            show_weights: true,
            ..DotStyle::default()
        };
        let dot = to_dot(&small(), "t", &style);
        assert!(dot.contains("label=\"7\""));
        assert!(!dot.contains("label=\"1\""), "unit weights stay silent");
    }
}
