//! Rooted-tree view over a [`DiGraph`].
//!
//! The paper's tree-network setting routes every flow from a leaf
//! source up to the root, so the placement algorithms (DP, HAT) want
//! parents, depths, children lists, leaf sets and traversal orders
//! rather than raw adjacency. [`RootedTree`] extracts all of that once
//! from any graph whose undirected skeleton is a tree.

use crate::digraph::{DiGraph, NodeId};
use crate::traversal::UNREACHED;

/// Error returned when a graph is not a tree rooted at the requested
/// vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The undirected skeleton is disconnected.
    Disconnected,
    /// The undirected skeleton contains a cycle (too many edges).
    HasCycle,
    /// The root id is out of range.
    BadRoot,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Disconnected => write!(f, "graph is disconnected"),
            TreeError::HasCycle => write!(f, "graph has a cycle"),
            TreeError::BadRoot => write!(f, "root vertex out of range"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Immutable rooted tree with precomputed parents, children, depths,
/// BFS order and leaf set.
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<u32>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
    /// BFS order: every vertex appears after its parent.
    bfs_order: Vec<NodeId>,
    leaves: Vec<NodeId>,
}

impl RootedTree {
    /// Builds the rooted view of `g` at `root`, treating every edge as
    /// undirected. Fails if the skeleton is not a tree.
    pub fn from_digraph(g: &DiGraph, root: NodeId) -> Result<Self, TreeError> {
        let n = g.node_count();
        if (root as usize) >= n {
            return Err(TreeError::BadRoot);
        }
        let mut parent = vec![UNREACHED; n];
        let mut depth = vec![0u32; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[root as usize] = true;
        queue.push_back(root);
        // Count undirected edges while walking to detect cycles: a tree
        // reached from the root must discover each vertex exactly once.
        let mut extra_edge = false;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    parent[v as usize] = u;
                    depth[v as usize] = depth[u as usize] + 1;
                    children[u as usize].push(v);
                    queue.push_back(v);
                } else if v != u && parent[u as usize] != v && parent[v as usize] != u {
                    // An undirected edge to an already-seen vertex that
                    // is neither our parent nor our child closes a
                    // cycle. (Bidirectional graphs list each tree edge
                    // in both adjacency directions; the parent/child
                    // checks skip those duplicates.)
                    extra_edge = true;
                }
            }
        }
        if order.len() != n {
            return Err(TreeError::Disconnected);
        }
        if extra_edge {
            return Err(TreeError::HasCycle);
        }
        // Deduplicate child lists (bidirectional graphs repeat each
        // neighbor in both adjacency directions).
        for ch in &mut children {
            ch.sort_unstable();
            ch.dedup();
        }
        let leaves: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| children[v as usize].is_empty())
            .collect();
        Ok(Self {
            root,
            parent,
            children,
            depth,
            bfs_order: order,
            leaves,
        })
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v as usize];
        (p != UNREACHED).then_some(p)
    }

    /// Children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v as usize]
    }

    /// Depth of `v` (root has depth 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v as usize]
    }

    /// True if `v` has no children.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v as usize].is_empty()
    }

    /// All leaves, in increasing id order.
    #[inline]
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// BFS order from the root (parents precede children).
    #[inline]
    pub fn bfs_order(&self) -> &[NodeId] {
        &self.bfs_order
    }

    /// Post-order traversal (children precede parents) — the order the
    /// tree DP consumes vertices in.
    pub fn postorder(&self) -> Vec<NodeId> {
        // Reverse BFS order is a valid post-order for DP purposes
        // (every child appears before its parent), but produce a true
        // DFS post-order for predictable walks.
        let mut out = Vec::with_capacity(self.node_count());
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            if *idx < self.children[v as usize].len() {
                let c = self.children[v as usize][*idx];
                *idx += 1;
                stack.push((c, 0));
            } else {
                out.push(v);
                stack.pop();
            }
        }
        out
    }

    /// Vertices of the subtree rooted at `v` (DFS preorder).
    pub fn subtree(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend_from_slice(&self.children[u as usize]);
        }
        out
    }

    /// The path `v -> parent -> .. -> root`, inclusive.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Euler tour of the tree: `(tour, first_occurrence, tour_depth)`.
    /// Used by the sparse-table LCA.
    pub fn euler_tour(&self) -> (Vec<NodeId>, Vec<u32>, Vec<u32>) {
        let n = self.node_count();
        let mut tour = Vec::with_capacity(2 * n);
        let mut first = vec![u32::MAX; n];
        let mut tdepth = Vec::with_capacity(2 * n);
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            if *idx == 0 {
                if first[v as usize] == u32::MAX {
                    first[v as usize] = tour.len() as u32;
                }
                tour.push(v);
                tdepth.push(self.depth[v as usize]);
            }
            if *idx < self.children[v as usize].len() {
                let c = self.children[v as usize][*idx];
                *idx += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    tour.push(p);
                    tdepth.push(self.depth[p as usize]);
                }
            }
        }
        (tour, first, tdepth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::GraphBuilder;

    /// The paper's Fig. 5 binary tree: v1 root, v1-(v2,v3), v2-(v4,v5),
    /// v3-v6, v6-(v7,v8). Ids shifted to 0-based.
    pub(crate) fn fig5_tree() -> DiGraph {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6), (5, 7)] {
            b.add_bidirectional(u, v);
        }
        b.build()
    }

    #[test]
    fn builds_fig5_tree() {
        let t = RootedTree::from_digraph(&fig5_tree(), 0).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.parent(6), Some(5));
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(2), &[5]);
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(6), 3);
        assert_eq!(t.leaves(), &[3, 4, 6, 7]);
    }

    #[test]
    fn bfs_order_puts_parents_first() {
        let t = RootedTree::from_digraph(&fig5_tree(), 0).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 8];
            for (i, &v) in t.bfs_order().iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for v in 0..8u32 {
            if let Some(par) = t.parent(v) {
                assert!(pos[par as usize] < pos[v as usize]);
            }
        }
    }

    #[test]
    fn postorder_puts_children_first() {
        let t = RootedTree::from_digraph(&fig5_tree(), 0).unwrap();
        let po = t.postorder();
        assert_eq!(po.len(), 8);
        assert_eq!(*po.last().unwrap(), 0);
        let pos: Vec<usize> = {
            let mut p = vec![0; 8];
            for (i, &v) in po.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for v in 0..8u32 {
            for &c in t.children(v) {
                assert!(pos[c as usize] < pos[v as usize]);
            }
        }
    }

    #[test]
    fn subtree_and_path_to_root() {
        let t = RootedTree::from_digraph(&fig5_tree(), 0).unwrap();
        let mut sub = t.subtree(2);
        sub.sort_unstable();
        assert_eq!(sub, vec![2, 5, 6, 7]);
        assert_eq!(t.path_to_root(6), vec![6, 5, 2, 0]);
        assert_eq!(t.path_to_root(0), vec![0]);
    }

    #[test]
    fn rerooting_changes_structure() {
        let t = RootedTree::from_digraph(&fig5_tree(), 5).unwrap();
        assert_eq!(t.root(), 5);
        assert_eq!(t.parent(0), Some(2));
        assert!(t.is_leaf(1) || !t.children(1).is_empty());
        assert_eq!(t.depth(0), 2);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let b = GraphBuilder::new(3);
        let err = RootedTree::from_digraph(&b.build(), 0).unwrap_err();
        assert_eq!(err, TreeError::Disconnected);
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut b = GraphBuilder::new(3);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(1, 2);
        b.add_bidirectional(2, 0);
        let err = RootedTree::from_digraph(&b.build(), 0).unwrap_err();
        assert_eq!(err, TreeError::HasCycle);
    }

    #[test]
    fn bad_root_rejected() {
        let err = RootedTree::from_digraph(&fig5_tree(), 99).unwrap_err();
        assert_eq!(err, TreeError::BadRoot);
    }

    #[test]
    fn single_vertex_tree() {
        let g = GraphBuilder::new(1).build();
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        assert_eq!(t.leaves(), &[0]);
        assert!(t.is_leaf(0));
        assert_eq!(t.postorder(), vec![0]);
    }

    #[test]
    fn euler_tour_shape() {
        let t = RootedTree::from_digraph(&fig5_tree(), 0).unwrap();
        let (tour, first, tdepth) = t.euler_tour();
        assert_eq!(tour.len(), 2 * 8 - 1);
        assert_eq!(tour.len(), tdepth.len());
        assert_eq!(tour[0], 0);
        assert_eq!(*tour.last().unwrap(), 0);
        for v in 0..8u32 {
            assert_eq!(tour[first[v as usize] as usize], v);
        }
    }
}
