//! # tdmd-graph — graph substrate for the TDMD reproduction
//!
//! This crate provides everything the placement algorithms need from a
//! graph library, built from scratch so the whole reproduction is
//! self-contained:
//!
//! * [`DiGraph`] — a compact CSR-backed directed graph with forward and
//!   reverse adjacency, optional edge weights, and a mutable
//!   [`GraphBuilder`] front end.
//! * [`traversal`] — BFS shortest paths, Dijkstra, path extraction and
//!   connectivity checks.
//! * [`tree`] — a rooted-tree view ([`RootedTree`]) with depths,
//!   children lists, Euler tours and subtree utilities.
//! * [`lca`] — `O(n log n)` preprocessing / `O(1)` query lowest common
//!   ancestor via Euler tour + sparse-table RMQ, plus a naive reference
//!   implementation used by tests.
//! * [`generators`] — topology generators used by the paper's
//!   evaluation: random trees, complete binary trees, fat-tree, BCube,
//!   Erdős–Rényi, Barabási–Albert, Waxman and an Ark-like clustered
//!   WAN, plus size mutation helpers.
//! * [`io`] — serde-based JSON import/export.
//!
//! Vertices are dense `u32` ids (`NodeId`), so algorithm state lives in
//! flat `Vec`s rather than hash maps (see the perf-book guidance on
//! avoiding hashing when dense indexing works).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centrality;
pub mod digraph;
pub mod dot;
pub mod flownet;
pub mod generators;
pub mod io;
pub mod kpaths;
pub mod lca;
pub mod stats;
pub mod traversal;
pub mod tree;

pub use digraph::{DiGraph, EdgeId, GraphBuilder, NodeId};
pub use lca::{Lca, NaiveLca};
pub use tree::RootedTree;

/// Convenience prelude re-exporting the most used items.
pub mod prelude {
    pub use crate::digraph::{DiGraph, EdgeId, GraphBuilder, NodeId};
    pub use crate::lca::Lca;
    pub use crate::traversal::{bfs_distances, bfs_path, BfsResult};
    pub use crate::tree::RootedTree;
}
