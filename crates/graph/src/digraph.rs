//! Compact CSR (compressed sparse row) directed graph.
//!
//! The TDMD algorithms never mutate the topology while running, so the
//! graph is split into a mutable [`GraphBuilder`] and an immutable,
//! cache-friendly [`DiGraph`] produced by [`GraphBuilder::build`]. The
//! CSR layout stores all out-edges in one flat array indexed by a
//! per-vertex offset table; a mirrored reverse CSR serves in-edge
//! queries. This follows the perf-book guidance: flat `Vec`s and dense
//! integer ids instead of pointer-chasing adjacency structures.

use serde::{Deserialize, Serialize};

/// Dense vertex identifier. Vertices are `0..n`.
pub type NodeId = u32;

/// Dense edge identifier into the CSR arrays (order of insertion).
pub type EdgeId = u32;

/// Mutable edge-list front end; call [`GraphBuilder::build`] to freeze
/// into a [`DiGraph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, u64)>,
}

impl GraphBuilder {
    /// Creates a builder with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices currently declared.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a fresh vertex and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.n as NodeId;
        self.n += 1;
        id
    }

    /// Adds a directed edge `u -> v` with unit weight.
    ///
    /// # Panics
    /// Panics if `u` or `v` is not a declared vertex.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_weighted_edge(u, v, 1)
    }

    /// Adds a directed edge `u -> v` with the given weight.
    ///
    /// # Panics
    /// Panics if `u` or `v` is not a declared vertex.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: u64) {
        assert!((u as usize) < self.n, "edge source {u} out of range");
        assert!((v as usize) < self.n, "edge target {v} out of range");
        self.edges.push((u, v, w));
    }

    /// Adds the pair of directed edges `u -> v` and `v -> u`
    /// (the paper models every physical link as bidirectional).
    pub fn add_bidirectional(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Adds a weighted bidirectional link.
    pub fn add_bidirectional_weighted(&mut self, u: NodeId, v: NodeId, w: u64) {
        self.add_weighted_edge(u, v, w);
        self.add_weighted_edge(v, u, w);
    }

    /// Freezes the builder into an immutable CSR graph.
    pub fn build(self) -> DiGraph {
        DiGraph::from_edges(self.n, &self.edges)
    }
}

/// Immutable CSR-backed directed graph with forward and reverse
/// adjacency and per-edge weights.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    n: usize,
    /// Forward CSR: out-edges of `v` are `targets[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    /// Weight of each forward edge, aligned with `targets`.
    weights: Vec<u64>,
    /// Reverse CSR: in-edges of `v` are `rev_sources[rev_offsets[v]..rev_offsets[v + 1]]`.
    rev_offsets: Vec<u32>,
    rev_sources: Vec<NodeId>,
}

impl DiGraph {
    /// Builds a CSR graph from an edge list (source, target, weight).
    ///
    /// The edge list is canonicalized (sorted by source, then target)
    /// so that two graphs with the same edge *set* compare equal
    /// regardless of insertion order.
    ///
    /// # Panics
    /// Panics if an edge endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId, u64)]) -> Self {
        let mut edges = edges.to_vec();
        edges.sort_unstable();
        let edges = &edges[..];
        let m = edges.len();
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        for &(u, v, _) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            out_deg[u as usize] += 1;
            in_deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        let mut rev_offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + out_deg[v];
            rev_offsets[v + 1] = rev_offsets[v] + in_deg[v];
        }
        let mut targets = vec![0 as NodeId; m];
        let mut weights = vec![0u64; m];
        let mut rev_sources = vec![0 as NodeId; m];
        let mut cursor = offsets.clone();
        let mut rev_cursor = rev_offsets.clone();
        for &(u, v, w) in edges {
            let slot = cursor[u as usize] as usize;
            targets[slot] = v;
            weights[slot] = w;
            cursor[u as usize] += 1;
            let rslot = rev_cursor[v as usize] as usize;
            rev_sources[rslot] = u;
            rev_cursor[v as usize] += 1;
        }
        Self {
            n,
            offsets,
            targets,
            weights,
            rev_offsets,
            rev_sources,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n as NodeId
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Weights of the out-edges of `v`, aligned with
    /// [`DiGraph::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: NodeId) -> &[u64] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.rev_offsets[v as usize] as usize;
        let hi = self.rev_offsets[v as usize + 1] as usize;
        &self.rev_sources[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Undirected degree counting each incident directed edge once.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// True if the directed edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).contains(&v)
    }

    /// Iterator over all directed edges as `(source, target, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        (0..self.n).flat_map(move |u| {
            let lo = self.offsets[u] as usize;
            let hi = self.offsets[u + 1] as usize;
            (lo..hi).map(move |i| (u as NodeId, self.targets[i], self.weights[i]))
        })
    }

    /// Sum of all edge weights (the "total capacity" denominator of
    /// the paper's flow-density metric when weights model capacities).
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// True if every edge `u -> v` has a paired edge `v -> u`
    /// (the paper assumes all links are bidirectional).
    pub fn is_bidirectional(&self) -> bool {
        self.edges().all(|(u, v, _)| self.has_edge(v, u))
    }

    /// Returns the edge list, useful for rebuilding mutated topologies.
    pub fn to_edge_list(&self) -> Vec<(NodeId, NodeId, u64)> {
        self.edges().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn builder_counts_nodes_and_edges() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.node_count(), 2);
        let v = b.add_node();
        assert_eq!(v, 2);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        assert_eq!(b.edge_count(), 2);
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn csr_adjacency_is_correct() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(1), &[3]);
        assert_eq!(g.out_neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[NodeId]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn has_edge_and_edges_iterator() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all, vec![(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
    }

    #[test]
    fn bidirectional_helper_adds_both_arcs() {
        let mut b = GraphBuilder::new(2);
        b.add_bidirectional(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.is_bidirectional());
    }

    #[test]
    fn directed_graph_is_not_bidirectional() {
        assert!(!diamond().is_bidirectional());
    }

    #[test]
    fn weights_are_aligned_with_targets() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(0, 2, 20);
        let g = b.build();
        assert_eq!(g.out_weights(0), &[10, 20]);
        assert_eq!(g.total_weight(), 30);
    }

    #[test]
    fn edge_list_round_trip() {
        let g = diamond();
        let rebuilt = DiGraph::from_edges(g.node_count(), &g.to_edge_list());
        assert_eq!(g, rebuilt);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices_have_empty_adjacency() {
        let g = GraphBuilder::new(3).build();
        for v in 0..3 {
            assert!(g.out_neighbors(v).is_empty());
            assert!(g.in_neighbors(v).is_empty());
        }
    }
}
