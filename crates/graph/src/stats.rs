//! Topology statistics.
//!
//! Used to sanity-check the synthetic generators against the shapes
//! they stand in for (the Ark-like WAN should be small-diameter with
//! hub gateways; Barabási–Albert should be heavy-tailed; trees should
//! report their height), and exposed so experiments can log what they
//! actually ran on.

use crate::digraph::{DiGraph, NodeId};
use crate::traversal::{bfs_distances, UNREACHED};

/// Summary statistics of a topology (undirected view of degrees).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStats {
    /// Vertex count.
    pub nodes: usize,
    /// Directed edge count.
    pub directed_edges: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Eccentricity of vertex 0 (`None` if something is unreachable).
    pub ecc_from_zero: Option<u32>,
    /// Exact diameter over reachable pairs (`None` if disconnected).
    pub diameter: Option<u32>,
}

/// Computes summary statistics. Diameter is exact (all-pairs BFS), so
/// intended for the paper's 12–52-vertex scale, not for huge graphs.
pub fn topology_stats(g: &DiGraph) -> TopologyStats {
    let n = g.node_count();
    let degrees: Vec<usize> = (0..n as NodeId).map(|v| g.out_degree(v)).collect();
    let (min_degree, max_degree) = degrees
        .iter()
        .fold((usize::MAX, 0), |(lo, hi), &d| (lo.min(d), hi.max(d)));
    let mean_degree = if n == 0 {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / n as f64
    };
    let mut diameter = Some(0u32);
    let mut ecc_from_zero = None;
    for src in 0..n as NodeId {
        let dist = bfs_distances(g, src);
        let mut ecc = 0u32;
        let mut all_reached = true;
        for &d in &dist {
            if d == UNREACHED {
                all_reached = false;
            } else {
                ecc = ecc.max(d);
            }
        }
        if src == 0 {
            ecc_from_zero = all_reached.then_some(ecc);
        }
        diameter = match (diameter, all_reached) {
            (Some(cur), true) => Some(cur.max(ecc)),
            _ => None,
        };
    }
    if n == 0 {
        diameter = Some(0);
    }
    TopologyStats {
        nodes: n,
        directed_edges: g.edge_count(),
        min_degree: if n == 0 { 0 } else { min_degree },
        max_degree,
        mean_degree,
        ecc_from_zero,
        diameter,
    }
}

/// Degree histogram (out-degrees), index = degree.
pub fn degree_histogram(g: &DiGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 1];
    for v in 0..g.node_count() as NodeId {
        let d = g.out_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::GraphBuilder;
    use crate::generators::ark::ark_like;
    use crate::generators::random::barabasi_albert;
    use crate::generators::trees::complete_binary_tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_graph_stats() {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_bidirectional(i, i + 1);
        }
        let s = topology_stats(&b.build());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.directed_edges, 6);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.diameter, Some(3));
        assert_eq!(s.ecc_from_zero, Some(3));
    }

    #[test]
    fn binary_tree_diameter_is_twice_the_height() {
        let g = complete_binary_tree(4); // 15 vertices, height 3
        let s = topology_stats(&g);
        assert_eq!(s.diameter, Some(6));
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let s = topology_stats(&GraphBuilder::new(3).build());
        assert_eq!(s.diameter, None);
        assert_eq!(s.ecc_from_zero, None);
    }

    #[test]
    fn empty_graph_stats_do_not_panic() {
        let s = topology_stats(&GraphBuilder::new(0).build());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn ba_histogram_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = barabasi_albert(300, 2, &mut rng);
        let hist = degree_histogram(&g);
        // Most vertices sit at the minimum degree while a long tail
        // exists.
        let at_min: usize = hist.iter().take(4).sum();
        assert!(at_min > 150, "bulk at low degree, got {at_min}");
        assert!(hist.len() > 10, "a hub should exceed degree 10");
    }

    #[test]
    fn ark_is_small_diameter_relative_to_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = ark_like(52, 5, &mut rng);
        let s = topology_stats(&g);
        assert!(s.diameter.unwrap() <= 7, "clustered WAN diameter too large");
        assert!(s.max_degree >= 8, "gateways should be hubs");
    }
}
