//! Topology import/export.
//!
//! A minimal JSON document format so experiments can be saved,
//! shared and replayed: vertex count plus an undirected or directed
//! edge list. Uses serde throughout.

use crate::digraph::{DiGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Serializable topology document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyDoc {
    /// Number of vertices.
    pub nodes: usize,
    /// Directed edges as `(source, target, weight)`.
    pub edges: Vec<(NodeId, NodeId, u64)>,
    /// Free-form name (generator + parameters, dataset id, ...).
    #[serde(default)]
    pub name: String,
}

impl TopologyDoc {
    /// Captures a graph into a document.
    pub fn from_graph(g: &DiGraph, name: impl Into<String>) -> Self {
        Self {
            nodes: g.node_count(),
            edges: g.to_edge_list(),
            name: name.into(),
        }
    }

    /// Rebuilds the graph.
    pub fn to_graph(&self) -> DiGraph {
        DiGraph::from_edges(self.nodes, &self.edges)
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("topology doc serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::erdos_renyi_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn json_round_trip_preserves_graph() {
        let mut rng = StdRng::seed_from_u64(30);
        let g = erdos_renyi_connected(15, 0.2, &mut rng);
        let doc = TopologyDoc::from_graph(&g, "er-15");
        let parsed = TopologyDoc::from_json(&doc.to_json()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_graph(), g);
        assert_eq!(parsed.name, "er-15");
    }

    #[test]
    fn missing_name_defaults_to_empty() {
        let json = r#"{"nodes": 2, "edges": [[0, 1, 1]]}"#;
        let doc = TopologyDoc::from_json(json).unwrap();
        assert_eq!(doc.name, "");
        let g = doc.to_graph();
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(TopologyDoc::from_json("{not json").is_err());
    }
}
