//! Property tests of the graph substrate: CSR canonicalization, BFS
//! optimality, tree invariants, LCA laws and mutation safety.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_graph::generators::mutate::{resize_general, resize_tree};
use tdmd_graph::generators::random::erdos_renyi_connected;
use tdmd_graph::generators::trees::random_tree;
use tdmd_graph::traversal::{bfs, dijkstra, is_connected_undirected};
use tdmd_graph::{DiGraph, Lca, NaiveLca, NodeId, RootedTree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction canonicalizes edge order: any permutation of
    /// the edge list builds an equal graph.
    #[test]
    fn csr_is_insertion_order_invariant(seed in any::<u64>(), n in 2usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let mut edges = g.to_edge_list();
        edges.reverse();
        let rebuilt = DiGraph::from_edges(n, &edges);
        prop_assert_eq!(g, rebuilt);
    }

    /// BFS parents form shortest-path trees: dist(parent) + 1 == dist.
    #[test]
    fn bfs_parents_are_consistent(seed in any::<u64>(), n in 2usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.2, &mut rng);
        let r = bfs(&g, 0);
        for v in 1..n as NodeId {
            prop_assert!(r.reached(v));
            let p = r.parent[v as usize];
            prop_assert_eq!(r.dist[p as usize] + 1, r.dist[v as usize]);
            prop_assert!(g.has_edge(p, v));
        }
    }

    /// On unit weights, Dijkstra and BFS agree everywhere.
    #[test]
    fn dijkstra_equals_bfs_on_unit_weights(seed in any::<u64>(), n in 2usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.25, &mut rng);
        let b = bfs(&g, 0).dist;
        let d = dijkstra(&g, 0).dist;
        for v in 0..n {
            prop_assert_eq!(b[v] as u64, d[v]);
        }
    }

    /// Random trees really are trees with coherent depths and a full
    /// leaf/parent structure.
    #[test]
    fn random_trees_are_well_formed(seed in any::<u64>(), n in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_tree(n, &mut rng);
        prop_assert_eq!(g.edge_count(), 2 * (n - 1));
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        for v in 1..n as NodeId {
            let p = t.parent(v).unwrap();
            prop_assert_eq!(t.depth(v), t.depth(p) + 1);
            prop_assert!(t.children(p).contains(&v));
        }
        let leaf_count = t.leaves().len();
        prop_assert!(leaf_count >= 1);
        // Every vertex is in the subtree of the root.
        prop_assert_eq!(t.subtree(0).len(), n);
    }

    /// LCA laws: idempotent, symmetric, an ancestor of both arguments,
    /// and agrees with the naive climber.
    #[test]
    fn lca_laws(seed in any::<u64>(), n in 1usize..40, a in any::<u32>(), b in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_tree(n, &mut rng);
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        let fast = Lca::new(&t);
        let naive = NaiveLca::new(&t);
        let (a, b) = ((a as usize % n) as NodeId, (b as usize % n) as NodeId);
        let l = fast.query(a, b);
        prop_assert_eq!(l, naive.query(a, b));
        prop_assert_eq!(l, fast.query(b, a));
        prop_assert_eq!(fast.query(a, a), a);
        prop_assert!(t.path_to_root(a).contains(&l));
        prop_assert!(t.path_to_root(b).contains(&l));
    }

    /// Tree resizing hits the exact target and stays a tree.
    #[test]
    fn resize_tree_preserves_treeness(seed in any::<u64>(), n in 1usize..25, target in 1usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_tree(n, &mut rng);
        let g2 = resize_tree(&g, 0, target, &mut rng);
        prop_assert_eq!(g2.node_count(), target);
        prop_assert!(RootedTree::from_digraph(&g2, 0).is_ok());
    }

    /// General resizing hits the target and stays connected.
    #[test]
    fn resize_general_preserves_connectivity(seed in any::<u64>(), n in 2usize..20, target in 1usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let g2 = resize_general(&g, target, &mut rng);
        prop_assert_eq!(g2.node_count(), target);
        prop_assert!(is_connected_undirected(&g2));
        prop_assert!(g2.is_bidirectional());
    }
}
