//! [`ReconfigBudget`] — the migration-cost model that bounds how much
//! reconfiguration the repair policy may buy per event.
//!
//! The drift-replan story of [`crate::repair`] assumes reconfiguration
//! is free: adopting an oracle deployment can move every middlebox and
//! re-pin every flow in one event. Production migrations are not free
//! (Lukovszki–Rost–Schmid study exactly this bounded-reconfiguration
//! online setting), so the engine prices every *chargeable move*:
//!
//! * deploying or undeploying one middlebox costs
//!   [`ReconfigBudget::box_move_cost`] (a greedy add is 1 box, a swap
//!   is 2, an adopted replan is the symmetric difference of the old
//!   and new deployments);
//! * every flow whose middlebox assignment the move changes costs
//!   [`ReconfigBudget::flow_reassign_cost`].
//!
//! Free zero-load drops are exempt (no flow is touched), and
//! failure-induced orphaning is never charged — losing a box is not a
//! reconfiguration the engine chose.
//!
//! # Token-bucket semantics
//!
//! Spending is governed by an amortized token bucket: the bucket
//! starts full at [`ReconfigBudget::burst`], gains
//! [`ReconfigBudget::refill_per_event`] tokens per applied event
//! (clamped at `burst`), and a move is **admitted** only when the
//! current token level covers its a-priori box cost. The realized
//! flow-reassignment cost is only known after the move and is debited
//! post-hoc, so the level may overdraw below zero by at most the flow
//! cost of the last admitted move; further moves are blocked until the
//! refill clears the debt. Amortized over any window of `E` events the
//! spend is therefore bounded by `burst + E · refill_per_event` plus
//! one move's flow cost.
//!
//! A move that is *not* admitted is recorded as a **deferral**
//! ([`crate::RepairStats::budget_deferrals`]) and repair degrades
//! gracefully: an unaffordable replan falls back to budget-capped
//! local repair (greedy adds and swaps, each individually admitted),
//! and an unaffordable add/swap ends the repair pass for this event.
//!
//! # Hysteresis
//!
//! With a nonzero [`ReconfigBudget::hysteresis`] margin `m`, a swap
//! must beat the break-even point by `m ×` its migration cost: the
//! candidate's gain must exceed `victim load + m · 2 · box_move_cost`.
//! This suppresses churn-thrashing — swaps that barely pay for
//! themselves are not worth a migration.
//!
//! [`ReconfigBudget::unlimited`] (the [`RepairPolicy`](crate::RepairPolicy)
//! default) has an infinite bucket, zero costs and zero margin, and is
//! bitwise-identical to the pre-budget engine (property-tested in
//! `tests/budget_properties.rs`).

/// Migration-cost model and amortized reconfiguration budget of a
/// [`RepairPolicy`](crate::RepairPolicy).
///
/// # Example
///
/// Run an [`OnlineEngine`](crate::OnlineEngine) under a migration
/// budget: each box move costs one token, the bucket banks at most 4
/// tokens and refills half a token per event, and a swap must beat its
/// cost by a 10 % margin:
///
/// ```
/// use tdmd_graph::DiGraph;
/// use tdmd_online::{Event, HopPricer, OnlineEngine, ReconfigBudget, RepairPolicy};
///
/// let budget = ReconfigBudget::windowed(4.0, 8).with_hysteresis(0.1);
/// assert!(!budget.is_unlimited());
/// let policy = RepairPolicy { budget, ..RepairPolicy::default() };
///
/// let graph = DiGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
/// let mut engine =
///     OnlineEngine::new(graph, 0.5, 1, HopPricer::default(), policy)?;
/// engine.apply(&Event::FlowArrived { key: 1, rate: 4, path: vec![0, 1, 2] })?;
///
/// // The greedy add that deployed the box charged one token.
/// assert_eq!(engine.stats().boxes_moved, 1);
/// assert_eq!(engine.stats().budget_spent, 1.0);
/// assert!(engine.budget_tokens() <= 4.0);
/// # Ok::<(), tdmd_online::OnlineError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigBudget {
    /// Tokens charged per middlebox deployed or undeployed by a
    /// chargeable move (admission is gated on this a-priori cost).
    pub box_move_cost: f64,
    /// Tokens charged per flow whose assignment a chargeable move
    /// changes (debited post-hoc; may overdraw the bucket).
    pub flow_reassign_cost: f64,
    /// Tokens added to the bucket per applied event (the amortized
    /// reconfiguration rate).
    pub refill_per_event: f64,
    /// Token-bucket capacity — the largest reconfiguration burst a
    /// single event may buy. `f64::INFINITY` disables budgeting
    /// entirely ([`ReconfigBudget::is_unlimited`]).
    pub burst: f64,
    /// Hysteresis margin `m ≥ 0`: a swap is taken only when its gain
    /// exceeds the victim's load by more than `m ×` the swap's box
    /// cost. `0` restores the pre-budget break-even rule.
    pub hysteresis: f64,
}

impl Default for ReconfigBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl ReconfigBudget {
    /// No budget at all: infinite bucket, zero costs, zero margin —
    /// bitwise-identical to the pre-budget engine.
    pub fn unlimited() -> Self {
        Self {
            box_move_cost: 0.0,
            flow_reassign_cost: 0.0,
            refill_per_event: 0.0,
            burst: f64::INFINITY,
            hysteresis: 0.0,
        }
    }

    /// Strict per-event budget: `tokens` box-move tokens per event,
    /// nothing banked across events (`burst = refill = tokens`). Box
    /// moves cost 1 token, flow reassignments are free.
    pub fn per_event(tokens: f64) -> Self {
        Self {
            box_move_cost: 1.0,
            flow_reassign_cost: 0.0,
            refill_per_event: tokens,
            burst: tokens,
            hysteresis: 0.0,
        }
    }

    /// Amortized windowed budget: `tokens` box-move tokens per
    /// `window_events` events, bankable up to one full window
    /// (`refill = tokens / window`, `burst = tokens`). Box moves cost
    /// 1 token, flow reassignments are free.
    pub fn windowed(tokens: f64, window_events: u64) -> Self {
        Self {
            box_move_cost: 1.0,
            flow_reassign_cost: 0.0,
            refill_per_event: tokens / tdmd_core::num::approx_f64(window_events.max(1)),
            burst: tokens,
            hysteresis: 0.0,
        }
    }

    /// Sets the per-box and per-flow migration costs.
    #[must_use]
    pub fn with_costs(mut self, box_move_cost: f64, flow_reassign_cost: f64) -> Self {
        self.box_move_cost = box_move_cost;
        self.flow_reassign_cost = flow_reassign_cost;
        self
    }

    /// Sets the swap hysteresis margin.
    #[must_use]
    pub fn with_hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis;
        self
    }

    /// Whether this budget never constrains repair (infinite bucket).
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.burst.is_infinite()
    }

    /// Token level a fresh engine starts at (a full bucket).
    #[inline]
    pub fn initial_tokens(&self) -> f64 {
        self.burst
    }

    /// Validates the configuration: every field must be non-negative
    /// and non-NaN; costs, refill and margin must additionally be
    /// finite (only `burst` may be `∞`).
    ///
    /// # Errors
    /// A static description of the first offending field.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.box_move_cost.is_finite() || self.box_move_cost < 0.0 {
            return Err("box_move_cost must be finite and non-negative");
        }
        if !self.flow_reassign_cost.is_finite() || self.flow_reassign_cost < 0.0 {
            return Err("flow_reassign_cost must be finite and non-negative");
        }
        if !self.refill_per_event.is_finite() || self.refill_per_event < 0.0 {
            return Err("refill_per_event must be finite and non-negative");
        }
        if self.burst.is_nan() || self.burst < 0.0 {
            return Err("burst must be non-negative (INFINITY disables budgeting)");
        }
        if !self.hysteresis.is_finite() || self.hysteresis < 0.0 {
            return Err("hysteresis must be finite and non-negative");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_the_default_and_validates() {
        let b = ReconfigBudget::default();
        assert!(b.is_unlimited());
        assert_eq!(b, ReconfigBudget::unlimited());
        assert!(b.validate().is_ok());
        assert!(b.initial_tokens().is_infinite());
    }

    #[test]
    fn windowed_banks_one_window() {
        let b = ReconfigBudget::windowed(8.0, 16);
        assert!(!b.is_unlimited());
        assert_eq!(b.burst, 8.0);
        assert_eq!(b.refill_per_event, 0.5);
        assert_eq!(b.box_move_cost, 1.0);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn per_event_banks_nothing() {
        let b = ReconfigBudget::per_event(2.0);
        assert_eq!(b.burst, b.refill_per_event);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let b = ReconfigBudget::per_event(4.0)
            .with_costs(2.0, 0.25)
            .with_hysteresis(0.1);
        assert_eq!(b.box_move_cost, 2.0);
        assert_eq!(b.flow_reassign_cost, 0.25);
        assert_eq!(b.hysteresis, 0.1);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn bad_configurations_are_rejected() {
        assert!(ReconfigBudget::per_event(f64::NAN).validate().is_err());
        assert!(ReconfigBudget::per_event(-1.0).validate().is_err());
        assert!(ReconfigBudget::unlimited()
            .with_costs(f64::INFINITY, 0.0)
            .validate()
            .is_err());
        assert!(ReconfigBudget::unlimited()
            .with_costs(0.0, -0.5)
            .validate()
            .is_err());
        assert!(ReconfigBudget::unlimited()
            .with_hysteresis(-0.1)
            .validate()
            .is_err());
        let mut b = ReconfigBudget::per_event(1.0);
        b.burst = f64::NAN;
        assert!(b.validate().is_err());
    }
}
