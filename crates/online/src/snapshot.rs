//! Versioned engine state snapshots — the crash/restart story of the
//! `tdmd serve` daemon.
//!
//! A snapshot captures everything an [`OnlineEngine`] cannot re-derive
//! from its constructor arguments: the active flows with their
//! arrival-time pricing, the deployment, the failure mask, and the
//! repair telemetry (whose event counter drives the drift-sampling
//! schedule). The topology, pricer, repair policy and recorder are
//! *not* serialized — the caller supplies them again at restore time,
//! exactly like at construction. (The policy in particular may carry
//! `drift_eps = ∞`, which JSON cannot round-trip.)
//!
//! # The bitwise-restore contract
//!
//! [`OnlineEngine::snapshot`] takes `&mut self` because it
//! *canonicalizes* the live engine as it serializes it: the delta
//! state is rebuilt by re-inserting every active flow in arrival
//! order against the current deployment, and the CELF queue is
//! rebuilt with exact marginal-gain bounds. [`OnlineEngine::restore`]
//! builds the identical structures from the snapshot, so the restored
//! engine is *bitwise* interchangeable with the one that took the
//! snapshot: every future event stream applied to both produces
//! identical deployments, objectives (`exact_objective().to_bits()`)
//! and stats. Canonicalizing only the restored side would not be
//! enough — [`DeltaState`](crate::DeltaState) row order and the
//! float-summation order of its marginal gains depend on insertion
//! history, so the two sides must be normalized to the *same*
//! history.
//!
//! Canonicalization is behavior-preserving on the live side: the
//! rebuilt assignments are the same deterministic `(gain, smaller
//! id)` argmaxes, the rebuilt running sums equal
//! [`DeltaState::exact_objective`](crate::DeltaState::exact_objective)
//! (which is insertion-order-independent for a fixed seq order), and
//! the rebuilt queue holds exact bounds — a superset of the coherence
//! the auditor demands.
//!
//! [`OnlineEngine`]: crate::OnlineEngine
//! [`OnlineEngine::snapshot`]: crate::OnlineEngine::snapshot
//! [`OnlineEngine::restore`]: crate::OnlineEngine::restore

use serde::{Deserialize, Serialize};
use tdmd_graph::NodeId;

use crate::event::FlowKey;
use crate::repair::RepairStats;

/// Schema version written by [`crate::OnlineEngine::snapshot`];
/// [`crate::OnlineEngine::restore`] rejects any other value.
///
/// Version history:
/// * **1** — flows, deployment, failure mask, repair stats.
/// * **2** — adds the reconfiguration-budget state
///   ([`EngineSnapshot::budget_tokens`] and the budget fields of
///   [`RepairStats`]). Version-1 documents are *rejected*, not
///   upgraded: restoring one silently would zero-fill the live token
///   level and amortized spend, and `tdmd-serve` must never resume a
///   budgeted session with a refilled bucket.
pub const SNAPSHOT_VERSION: u32 = 2;

/// One active flow as serialized in a snapshot, in arrival order.
///
/// The arrival-time pricing (`gains`, `cost`) is stored verbatim
/// rather than re-derived from the pricer at restore time: bitwise
/// restore must reproduce the exact floats the live engine computed,
/// whatever pricer state produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotFlow {
    /// Stream-stable flow key.
    pub key: FlowKey,
    /// Rate `r_f`.
    pub rate: u64,
    /// Active path as a vertex sequence.
    pub path: Vec<NodeId>,
    /// Per-position serving gains (pricer output, fixed at arrival).
    pub gains: Vec<f64>,
    /// Unprocessed metric of the whole path.
    pub cost: f64,
}

/// A versioned, serializable capture of an
/// [`OnlineEngine`](crate::OnlineEngine)'s replayable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Vertex count of the topology the engine ran on — restore
    /// re-checks it against the supplied graph.
    pub node_count: u64,
    /// Traffic-changing ratio λ.
    pub lambda: f64,
    /// Middlebox budget `k`.
    pub k: u64,
    /// Active flows in arrival (seq) order — the order restore
    /// re-inserts them in.
    pub flows: Vec<SnapshotFlow>,
    /// Deployed vertices, ascending.
    pub deployment: Vec<NodeId>,
    /// Failed vertices, ascending.
    pub failed: Vec<NodeId>,
    /// Repair telemetry; `stats.events` resumes the drift-sampling
    /// schedule and the budget fields resume the amortized-spend
    /// accounting.
    pub stats: RepairStats,
    /// Reconfiguration token level at snapshot time. Stored as `0`
    /// when the engine ran under an unlimited budget (`∞` does not
    /// survive JSON); restore re-derives `∞` from the caller-supplied
    /// policy, so the round trip stays bitwise for both unlimited and
    /// finite budgets. `#[serde(default)]` lets version-1 documents
    /// *parse* — the version check then rejects them explicitly
    /// instead of a deserialization error.
    #[serde(default)]
    pub budget_tokens: f64,
}

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The snapshot's schema version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// Version found in the document.
        found: u32,
    },
    /// The supplied graph's vertex count disagrees with the snapshot.
    TopologyMismatch {
        /// Vertex count recorded in the snapshot.
        expected: u64,
        /// Vertex count of the supplied graph.
        found: u64,
    },
    /// λ outside `[0, 1]` (a corrupt document — the engine never
    /// accepts one).
    BadLambda(f64),
    /// A flow's path is degenerate, non-simple, off the supplied
    /// topology, its rate is zero, or its gains do not match its
    /// path length.
    InvalidFlow {
        /// Offending flow key.
        key: FlowKey,
    },
    /// Two flows share a key.
    DuplicateKey {
        /// Offending flow key.
        key: FlowKey,
    },
    /// A deployment/failed entry lies outside the topology.
    BadVertex {
        /// Offending vertex id.
        vertex: NodeId,
    },
    /// A vertex is both deployed and failed — the engine's core
    /// safety invariant forbids it.
    DeployedWhileFailed {
        /// Offending vertex id.
        vertex: NodeId,
    },
    /// More vertices deployed than the budget allows.
    OverBudget {
        /// Deployed-vertex count in the snapshot.
        deployed: u64,
        /// Budget `k` recorded in the snapshot.
        k: u64,
    },
    /// The reconfiguration-budget state is corrupt: a non-finite token
    /// level or spend (the engine serializes finite values only).
    BadBudgetState(
        /// Offending value.
        f64,
    ),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (want {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::TopologyMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot taken on {expected} vertices, graph has {found}"
                )
            }
            SnapshotError::BadLambda(l) => write!(f, "snapshot lambda {l} outside [0, 1]"),
            SnapshotError::InvalidFlow { key } => {
                write!(f, "snapshot flow {key}: invalid path, rate or gains")
            }
            SnapshotError::DuplicateKey { key } => {
                write!(f, "snapshot flow key {key} appears twice")
            }
            SnapshotError::BadVertex { vertex } => {
                write!(f, "snapshot vertex {vertex} is not in the topology")
            }
            SnapshotError::DeployedWhileFailed { vertex } => {
                write!(f, "snapshot vertex {vertex} is both deployed and failed")
            }
            SnapshotError::OverBudget { deployed, k } => {
                write!(
                    f,
                    "snapshot deploys {deployed} middleboxes over budget k = {k}"
                )
            }
            SnapshotError::BadBudgetState(x) => {
                write!(f, "snapshot budget state {x} is not finite")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}
