//! # tdmd-online — incremental placement under streaming flow churn
//!
//! The paper solves a *static* TDMD instance; this crate maintains a
//! deployment and its flow→middlebox assignment under a stream of
//! [`Event::FlowArrived`] / [`Event::FlowDeparted`] events without
//! recomputing from scratch (the Lukovszki–Rost–Schmid incremental
//! placement setting, applied to the traffic-diminishing objective).
//! A failure layer ([`Event::MiddleboxFailed`] / [`Event::VertexDown`]
//! / [`Event::MiddleboxRecovered`]) keeps the deployment safe under
//! middlebox-plane loss: orphaned flows are re-pinned or degraded, and
//! the repair policy re-spends the freed budget.
//!
//! * [`event`] — the churn + failure event stream and the serializable
//!   [`FlowSpan`] records a stream is replayed from.
//! * [`pricer`] — [`PathPricer`], the streaming face of PR 1's
//!   [`CostModel`](tdmd_core::CostModel): prices one path at arrival
//!   time, so hop-count, weighted-edge and chain pricing all get
//!   incremental maintenance through the same engine.
//! * [`delta`] — [`DeltaState`], the incrementally-maintained mirror
//!   of the static CSR flow index: per-vertex flow rows with O(1)
//!   removal, per-flow assignments, and the objective as a running
//!   sum. Arrivals, departures and candidate-path reroutes (a live
//!   flow switching to another candidate under the joint routing
//!   extension) touch only the flow's own old and new paths.
//! * [`queue`] — [`LazyQueue`], a CELF-style lazy priority queue whose
//!   cached marginal gains survive across events under epoch-stamped
//!   invalidation.
//! * [`engine`] / [`repair`] — [`OnlineEngine`] applies events and
//!   runs the pluggable [`RepairPolicy`]: greedy adds/drops, bounded
//!   swap repair, and a drift-triggered replan against a
//!   periodically-sampled from-scratch GTP solve — each move admitted
//!   against the policy's migration budget, so a replan the budget
//!   cannot cover is deferred to budget-capped local repair rather
//!   than adopted unconditionally.
//! * [`budget`] — [`ReconfigBudget`], the migration-cost model: per
//!   box-move and per flow-reassignment costs, an amortized
//!   token-bucket budget and a swap-hysteresis margin. The default
//!   [`ReconfigBudget::unlimited`] is bitwise the unbudgeted engine.
//! * [`snapshot`] — versioned engine state capture and restore
//!   ([`OnlineEngine::snapshot`] / [`OnlineEngine::restore`]) with a
//!   bitwise-restore contract: the restored engine is float-for-float
//!   interchangeable with the one that took the snapshot.
//!
//! # Example
//!
//! Drive the engine through an arrival, a vertex failure with repair,
//! a recovery and a departure:
//!
//! ```
//! use tdmd_graph::DiGraph;
//! use tdmd_online::{Event, HopPricer, OnlineEngine, RepairPolicy};
//!
//! let graph = DiGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
//! let mut engine =
//!     OnlineEngine::new(graph, 0.5, 1, HopPricer::default(), RepairPolicy::default())?;
//!
//! // A rate-4 flow over both hops: the single box lands at the
//! // source (gain 2 hops), so 4·2 − 0.5·4·2 = 4 units remain.
//! engine.apply(&Event::FlowArrived { key: 1, rate: 4, path: vec![0, 1, 2] })?;
//! assert_eq!(engine.deployment().vertices(), &[0]);
//! assert_eq!(engine.objective(), 4.0);
//!
//! // The source vertex dies: the flow is orphaned and repair
//! // re-spends the freed slot at vertex 1 (gain 1 hop).
//! engine.apply(&Event::VertexDown { vertex: 0 })?;
//! assert_eq!(engine.deployment().vertices(), &[1]);
//! assert_eq!(engine.objective(), 6.0);
//! assert_eq!(engine.degraded_count(), 0);
//!
//! engine.apply(&Event::MiddleboxRecovered { vertex: 0 })?;
//! engine.apply(&Event::FlowDeparted { key: 1 })?;
//! assert_eq!(engine.objective(), 0.0);
//! # Ok::<(), tdmd_online::OnlineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(any(debug_assertions, feature = "audit", test))]
pub mod audit;
pub mod budget;
pub mod delta;
pub mod engine;
pub mod event;
pub mod pricer;
pub mod queue;
pub mod repair;
pub mod snapshot;

pub use budget::ReconfigBudget;
pub use delta::{DeltaState, Failover};
pub use engine::{obs_keys, OnlineEngine, OnlineError};
pub use event::{events_from_spans, merge_events, Event, FlowKey, FlowSpan, TimedEvent};
pub use pricer::{HopPricer, ModelPricer, PathPricer, WeightedPathPricer};
pub use queue::LazyQueue;
pub use repair::{RepairPolicy, RepairStats};
pub use snapshot::{EngineSnapshot, SnapshotError, SnapshotFlow, SNAPSHOT_VERSION};
