//! # tdmd-online — incremental placement under streaming flow churn
//!
//! The paper solves a *static* TDMD instance; this crate maintains a
//! deployment and its flow→middlebox assignment under a stream of
//! [`Event::FlowArrived`] / [`Event::FlowDeparted`] events without
//! recomputing from scratch (the Lukovszki–Rost–Schmid incremental
//! placement setting, applied to the traffic-diminishing objective).
//!
//! * [`event`] — the churn event stream and the serializable
//!   [`FlowSpan`] records a stream is replayed from.
//! * [`pricer`] — [`PathPricer`], the streaming face of PR 1's
//!   [`CostModel`](tdmd_core::CostModel): prices one path at arrival
//!   time, so hop-count, weighted-edge and chain pricing all get
//!   incremental maintenance through the same engine.
//! * [`delta`] — [`DeltaState`], the incrementally-maintained mirror
//!   of the static CSR flow index: per-vertex flow rows with O(1)
//!   removal, per-flow assignments, and the objective as a running
//!   sum. Arrivals and departures touch only the flow's own path.
//! * [`queue`] — [`LazyQueue`], a CELF-style lazy priority queue whose
//!   cached marginal gains survive across events under epoch-stamped
//!   invalidation.
//! * [`engine`] / [`repair`] — [`OnlineEngine`] applies events and
//!   runs the pluggable [`RepairPolicy`]: greedy adds/drops, bounded
//!   swap repair, and a drift-triggered full replan against a
//!   periodically-sampled from-scratch GTP solve.

pub mod delta;
pub mod engine;
pub mod event;
pub mod pricer;
pub mod queue;
pub mod repair;

pub use delta::DeltaState;
pub use engine::{obs_keys, OnlineEngine, OnlineError};
pub use event::{events_from_spans, Event, FlowKey, FlowSpan, TimedEvent};
pub use pricer::{HopPricer, ModelPricer, PathPricer, WeightedPathPricer};
pub use queue::LazyQueue;
pub use repair::{RepairPolicy, RepairStats};
