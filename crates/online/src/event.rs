//! The churn event stream and its on-disk span representation.
//!
//! A scenario is described either directly as [`Event`]s or as a list
//! of [`FlowSpan`]s (one lifetime per flow), which
//! [`events_from_spans`] lowers to a time-ordered event stream. At
//! equal timestamps departures precede arrivals, matching the
//! half-open `[start, end)` activity convention of the timeline
//! simulator — a flow whose span ends exactly when another starts is
//! never co-active with it, and a zero-length span is never active at
//! all (it produces no events).

use serde::{Deserialize, Serialize};
use tdmd_traffic::Flow;

/// Stable identity of a flow across the stream, independent of the
/// dense slot ids the engine uses internally.
pub type FlowKey = u64;

/// One flow's lifetime.
///
/// This is the canonical span record: the timeline simulator re-exports
/// it and `tdmd stream` replays JSON lists of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpan {
    /// Arrival time (inclusive), microseconds.
    pub start_us: u64,
    /// Departure time (exclusive), microseconds.
    pub end_us: u64,
    /// The flow (its id is only meaningful within this span list).
    pub flow: Flow,
}

/// A churn or failure event.
///
/// The failure variants model *middlebox-plane* loss: a failed vertex
/// can no longer host a middlebox (and any middlebox deployed there is
/// gone), but the data plane keeps forwarding — flows whose paths cross
/// the vertex stay up and simply ride unprocessed (full rate) wherever
/// no surviving middlebox serves them. Link/route failures are out of
/// scope: paths never change.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A new flow joins the active set.
    FlowArrived {
        /// Stream-stable identity of the flow.
        key: FlowKey,
        /// Initial rate `r_f`.
        rate: u64,
        /// Path `p_f` as a vertex sequence.
        path: Vec<tdmd_graph::NodeId>,
    },
    /// An active flow leaves.
    FlowDeparted {
        /// Key the flow arrived under.
        key: FlowKey,
    },
    /// The middlebox deployed at `vertex` crashes. The vertex is
    /// marked failed (ineligible for placement) until a
    /// [`Event::MiddleboxRecovered`] names it; flows it served are
    /// re-pinned to their best surviving on-path middlebox or left
    /// degraded at full rate. Rejected when no middlebox is deployed
    /// there — use [`Event::VertexDown`] to fail an arbitrary vertex.
    MiddleboxFailed {
        /// Vertex hosting the failed middlebox.
        vertex: tdmd_graph::NodeId,
    },
    /// A failed vertex comes back: it rejoins the placement candidate
    /// pool (the repair policy decides whether to redeploy on it).
    MiddleboxRecovered {
        /// Vertex that recovered.
        vertex: tdmd_graph::NodeId,
    },
    /// The vertex itself goes down for middlebox purposes, whether or
    /// not a middlebox is deployed there. Like
    /// [`Event::MiddleboxFailed`] it orphans any served flows and
    /// blocks placement until recovery; unlike it, it is valid on
    /// undeployed vertices (pre-emptively removing them from the
    /// candidate pool).
    VertexDown {
        /// Vertex that went down.
        vertex: tdmd_graph::NodeId,
    },
}

impl Event {
    /// Ordering class at equal timestamps: departures free state
    /// first, then failures and recoveries settle the deployable set,
    /// then arrivals see the post-churn world. Used by
    /// [`events_from_spans`] and [`merge_events`].
    fn class(&self) -> u8 {
        match self {
            Event::FlowDeparted { .. } => 0,
            Event::MiddleboxFailed { .. } | Event::VertexDown { .. } => 1,
            Event::MiddleboxRecovered { .. } => 2,
            Event::FlowArrived { .. } => 3,
        }
    }
}

/// An event with its timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Event time, microseconds.
    pub time_us: u64,
    /// The event.
    pub event: Event,
}

/// Lowers spans to a time-ordered event stream.
///
/// The flow key is the span's index in `spans`. Ordering at equal
/// timestamps is departures first, then arrivals; within each class,
/// span order. Zero-length spans (`start_us == end_us`) are dropped —
/// under the half-open activity convention they are never active.
pub fn events_from_spans(spans: &[FlowSpan]) -> Vec<TimedEvent> {
    let mut out = Vec::with_capacity(2 * spans.len());
    for (i, s) in spans.iter().enumerate() {
        if s.start_us >= s.end_us {
            continue;
        }
        out.push(TimedEvent {
            time_us: s.start_us,
            event: Event::FlowArrived {
                key: i as FlowKey,
                rate: s.flow.rate,
                path: s.flow.path.clone(),
            },
        });
        out.push(TimedEvent {
            time_us: s.end_us,
            event: Event::FlowDeparted { key: i as FlowKey },
        });
    }
    // Stable sort keeps span order within a (time, class) bucket.
    out.sort_by_key(|e| (e.time_us, e.event.class()));
    out
}

/// Merges two time-ordered event streams (e.g. flow churn from
/// [`events_from_spans`] and a failure schedule) into one stream
/// ordered by `(time, class)` — at equal timestamps departures come
/// first, then failures, recoveries and arrivals, so an arrival at the
/// instant of a failure already sees the post-failure deployable set.
/// The merge is stable within a `(time, class)` bucket, `a` before
/// `b`.
pub fn merge_events(a: &[TimedEvent], b: &[TimedEvent]) -> Vec<TimedEvent> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out.sort_by_key(|e| (e.time_us, e.event.class()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, end: u64, id: u32) -> FlowSpan {
        FlowSpan {
            start_us: start,
            end_us: end,
            flow: Flow::new(id, 1, vec![0, 1]),
        }
    }

    #[test]
    fn spans_lower_to_sorted_events() {
        let evs = events_from_spans(&[span(0, 10, 0), span(5, 8, 1)]);
        let times: Vec<u64> = evs.iter().map(|e| e.time_us).collect();
        assert_eq!(times, vec![0, 5, 8, 10]);
        assert!(matches!(evs[0].event, Event::FlowArrived { key: 0, .. }));
        assert!(matches!(evs[2].event, Event::FlowDeparted { key: 1 }));
    }

    #[test]
    fn departures_precede_arrivals_at_equal_times() {
        let evs = events_from_spans(&[span(0, 5, 0), span(5, 9, 1)]);
        assert_eq!(evs[1].time_us, 5);
        assert!(matches!(evs[1].event, Event::FlowDeparted { key: 0 }));
        assert!(matches!(evs[2].event, Event::FlowArrived { key: 1, .. }));
    }

    #[test]
    fn zero_length_spans_produce_no_events() {
        let evs = events_from_spans(&[span(3, 3, 0), span(0, 1, 1)]);
        assert_eq!(evs.len(), 2);
        assert!(evs
            .iter()
            .all(|e| !matches!(e.event, Event::FlowArrived { key: 0, .. })));
    }

    #[test]
    fn span_serde_round_trip() {
        let s = span(1, 9, 3);
        let json = serde_json::to_string(&s).unwrap();
        let back: FlowSpan = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
