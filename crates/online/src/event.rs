//! The churn event stream and its on-disk span representation.
//!
//! A scenario is described either directly as [`Event`]s or as a list
//! of [`FlowSpan`]s (one lifetime per flow), which
//! [`events_from_spans`] lowers to a time-ordered event stream. At
//! equal timestamps departures precede arrivals, matching the
//! half-open `[start, end)` activity convention of the timeline
//! simulator — a flow whose span ends exactly when another starts is
//! never co-active with it, and a zero-length span is never active at
//! all (it produces no events).

use serde::{Deserialize, Serialize};
use tdmd_traffic::Flow;

/// Stable identity of a flow across the stream, independent of the
/// dense slot ids the engine uses internally.
pub type FlowKey = u64;

/// One flow's lifetime.
///
/// This is the canonical span record: the timeline simulator re-exports
/// it and `tdmd stream` replays JSON lists of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpan {
    /// Arrival time (inclusive), microseconds.
    pub start_us: u64,
    /// Departure time (exclusive), microseconds.
    pub end_us: u64,
    /// The flow (its id is only meaningful within this span list).
    pub flow: Flow,
}

/// A churn event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A new flow joins the active set.
    FlowArrived {
        /// Stream-stable identity of the flow.
        key: FlowKey,
        /// Initial rate `r_f`.
        rate: u64,
        /// Path `p_f` as a vertex sequence.
        path: Vec<tdmd_graph::NodeId>,
    },
    /// An active flow leaves.
    FlowDeparted {
        /// Key the flow arrived under.
        key: FlowKey,
    },
}

/// An event with its timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Event time, microseconds.
    pub time_us: u64,
    /// The event.
    pub event: Event,
}

/// Lowers spans to a time-ordered event stream.
///
/// The flow key is the span's index in `spans`. Ordering at equal
/// timestamps is departures first, then arrivals; within each class,
/// span order. Zero-length spans (`start_us == end_us`) are dropped —
/// under the half-open activity convention they are never active.
pub fn events_from_spans(spans: &[FlowSpan]) -> Vec<TimedEvent> {
    let mut out = Vec::with_capacity(2 * spans.len());
    for (i, s) in spans.iter().enumerate() {
        if s.start_us >= s.end_us {
            continue;
        }
        out.push(TimedEvent {
            time_us: s.start_us,
            event: Event::FlowArrived {
                key: i as FlowKey,
                rate: s.flow.rate,
                path: s.flow.path.clone(),
            },
        });
        out.push(TimedEvent {
            time_us: s.end_us,
            event: Event::FlowDeparted { key: i as FlowKey },
        });
    }
    // Stable sort keeps span order within a (time, class) bucket.
    out.sort_by_key(|e| {
        (
            e.time_us,
            match e.event {
                Event::FlowDeparted { .. } => 0u8,
                Event::FlowArrived { .. } => 1u8,
            },
        )
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, end: u64, id: u32) -> FlowSpan {
        FlowSpan {
            start_us: start,
            end_us: end,
            flow: Flow::new(id, 1, vec![0, 1]),
        }
    }

    #[test]
    fn spans_lower_to_sorted_events() {
        let evs = events_from_spans(&[span(0, 10, 0), span(5, 8, 1)]);
        let times: Vec<u64> = evs.iter().map(|e| e.time_us).collect();
        assert_eq!(times, vec![0, 5, 8, 10]);
        assert!(matches!(evs[0].event, Event::FlowArrived { key: 0, .. }));
        assert!(matches!(evs[2].event, Event::FlowDeparted { key: 1 }));
    }

    #[test]
    fn departures_precede_arrivals_at_equal_times() {
        let evs = events_from_spans(&[span(0, 5, 0), span(5, 9, 1)]);
        assert_eq!(evs[1].time_us, 5);
        assert!(matches!(evs[1].event, Event::FlowDeparted { key: 0 }));
        assert!(matches!(evs[2].event, Event::FlowArrived { key: 1, .. }));
    }

    #[test]
    fn zero_length_spans_produce_no_events() {
        let evs = events_from_spans(&[span(3, 3, 0), span(0, 1, 1)]);
        assert_eq!(evs.len(), 2);
        assert!(evs
            .iter()
            .all(|e| !matches!(e.event, Event::FlowArrived { key: 0, .. })));
    }

    #[test]
    fn span_serde_round_trip() {
        let s = span(1, 9, 3);
        let json = serde_json::to_string(&s).unwrap();
        let back: FlowSpan = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
