//! Online structural invariant auditor — the streaming half of
//! tdmd-audit.
//!
//! [`check_engine`] validates the full [`OnlineEngine`] invariant
//! stack in one call: deployment/budget/failure-mask consistency,
//! every [`crate::DeltaState`] invariant against a from-scratch
//! rebuild, and [`crate::LazyQueue`] epoch coherence against exact
//! marginal gains. It is compiled under `debug_assertions`, the
//! `audit` cargo feature (which forwards to `tdmd-core/audit`), or
//! tests; `tdmd stream run --audit` re-validates after every applied
//! event via [`OnlineEngine::enable_audit`].

pub use tdmd_core::audit::{enforce, AuditError};

use crate::engine::OnlineEngine;
use crate::pricer::PathPricer;
use tdmd_obs::Recorder;

/// Validates every engine invariant now (see [`OnlineEngine::audit_now`]).
///
/// # Errors
/// Returns the first violated check; see
/// [`DeltaState::check_invariants`](crate::DeltaState::check_invariants)
/// and [`LazyQueue::check_coherence`](crate::LazyQueue::check_coherence)
/// for the per-layer check names, plus the engine-level
/// `engine-deployment-bounds`, `engine-deployed-failed`,
/// `engine-over-budget`, `engine-failed-census` and
/// `engine-blocked-sync`.
pub fn check_engine<P: PathPricer, R: Recorder>(
    engine: &OnlineEngine<P, R>,
) -> Result<(), AuditError> {
    engine.audit_now()
}
