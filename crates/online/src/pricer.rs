//! Streaming path pricing — the online face of PR 1's [`CostModel`].
//!
//! The static engine compiles a [`CostModel`] against a whole
//! [`Instance`] at once (the CSR `FlowIndex`). A stream has no
//! instance: flows appear one at a time, so a [`PathPricer`] prices a
//! single flow's path at arrival and the engine stores the resulting
//! per-position gains for the flow's lifetime. Every [`CostModel`]
//! whose `serving_gain` depends only on the flow and its path position
//! (hop count, the chain crate's stack model, …) lifts to a pricer
//! for free through [`ModelPricer`]; graph-priced models like the
//! weighted-edges extension get a dedicated pricer that resolves edge
//! weights against the topology ([`WeightedPathPricer`]).
//!
//! A pricer also knows how to run the matching *from-scratch oracle*
//! ([`PathPricer::solve_oracle`]) on a densified snapshot of the
//! active flows — the drift-triggered full replan and the
//! objective-vs-oracle gap reporting both need the oracle to price
//! exactly like the stream does, so the two live on one trait.

use tdmd_core::algorithms::gtp::gtp_budgeted_with;
use tdmd_core::cost::EdgeWeights;
use tdmd_core::{CostModel, Deployment, HopCount, Instance, TdmdError, WeightedEdges};
use tdmd_graph::DiGraph;
use tdmd_traffic::Flow;

/// Prices one flow path and solves the matching static oracle.
///
/// # Contract
///
/// `gains` must be non-negative and non-increasing along the path
/// (Theorem 2's monotonicity, exactly as for [`CostModel`]),
/// `unprocessed_cost` must dominate every gain of the same flow, and
/// `solve_oracle` must optimize the objective induced by those gains —
/// otherwise the drift trigger compares apples to oranges.
pub trait PathPricer {
    /// Per-position serving gains of `flow` (`gains[i]` = metric
    /// credited for processing at `flow.path[i]`; length =
    /// `flow.path.len()`).
    fn gains(&self, flow: &Flow) -> Vec<f64>;

    /// Metric of the wholly unprocessed flow
    /// ([`CostModel::unprocessed_cost`] generalized).
    fn unprocessed_cost(&self, flow: &Flow) -> f64;

    /// From-scratch solve of a densified active-flow snapshot under
    /// this pricing (the drift oracle).
    ///
    /// # Errors
    /// Propagates the solver's feasibility errors
    /// ([`TdmdError::Infeasible`] when the budget cannot cover the
    /// active flows).
    fn solve_oracle(&self, instance: &Instance) -> Result<Deployment, TdmdError>;
}

/// Lifts any position-stateless [`CostModel`] to a [`PathPricer`].
///
/// Correct for models whose `serving_gain(flow, pos)` is independent
/// of the instance the model was built against — [`HopCount`] and the
/// chain stack model qualify; the instance-compiled `WeightedEdges`
/// does not (use [`WeightedPathPricer`] instead).
#[derive(Debug, Clone, Default)]
pub struct ModelPricer<M: CostModel>(pub M);

impl<M: CostModel> PathPricer for ModelPricer<M> {
    fn gains(&self, flow: &Flow) -> Vec<f64> {
        (0..flow.path.len())
            .map(|pos| self.0.serving_gain(flow, pos))
            .collect()
    }

    fn unprocessed_cost(&self, flow: &Flow) -> f64 {
        self.0.unprocessed_cost(flow)
    }

    fn solve_oracle(&self, instance: &Instance) -> Result<Deployment, TdmdError> {
        gtp_budgeted_with(instance, instance.k(), &self.0)
    }
}

/// The paper's hop-count pricing, streaming edition.
pub type HopPricer = ModelPricer<HopCount>;

/// Weighted-edge pricing resolved against the topology: a position's
/// gain is the suffix sum of edge weights downstream of it — the same
/// quantity `WeightedEdges` precomputes per instance, computed per
/// flow at arrival instead.
#[derive(Debug, Clone)]
pub struct WeightedPathPricer {
    weights: EdgeWeights,
}

impl WeightedPathPricer {
    /// Indexes the edge weights of `g` once for `O(1)` per-edge
    /// lookups.
    pub fn new(g: &DiGraph) -> Self {
        Self {
            weights: EdgeWeights::new(g),
        }
    }
}

impl PathPricer for WeightedPathPricer {
    fn gains(&self, flow: &Flow) -> Vec<f64> {
        let m = flow.path.len();
        let mut d = vec![0.0f64; m];
        for i in (0..m - 1).rev() {
            d[i] = d[i + 1] + self.weights.get(flow.path[i], flow.path[i + 1]);
        }
        d
    }

    fn unprocessed_cost(&self, flow: &Flow) -> f64 {
        // The suffix sum at the source — identical to `gains(flow)[0]`.
        flow.path
            .windows(2)
            .map(|w| self.weights.get(w[0], w[1]))
            .sum()
    }

    fn solve_oracle(&self, instance: &Instance) -> Result<Deployment, TdmdError> {
        // WeightedEdges prices suffix sums off the same graph weights,
        // so the oracle's objective matches the streamed gains.
        let model = WeightedEdges::new(instance);
        gtp_budgeted_with(instance, instance.k(), &model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_core::paper::fig1_instance;

    #[test]
    fn hop_pricer_matches_downstream_hops() {
        let f = Flow::new(0, 3, vec![5, 3, 1]);
        let g = HopPricer::default().gains(&f);
        assert_eq!(g, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn weighted_pricer_matches_instance_model_on_unit_weights() {
        let inst = fig1_instance(2);
        let pricer = WeightedPathPricer::new(inst.graph());
        let model = WeightedEdges::new(&inst);
        for f in inst.flows() {
            let gains = pricer.gains(f);
            for (pos, &g) in gains.iter().enumerate() {
                assert_eq!(g, model.serving_gain(f, pos), "flow {} pos {pos}", f.id);
            }
        }
    }

    #[test]
    fn oracle_solves_like_plain_gtp() {
        use tdmd_core::algorithms::gtp::gtp_budgeted;
        let inst = fig1_instance(2);
        let dep = HopPricer::default().solve_oracle(&inst).unwrap();
        assert_eq!(dep, gtp_budgeted(&inst, 2).unwrap());
    }
}
