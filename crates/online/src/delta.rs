//! [`DeltaState`] — the incrementally-maintained mirror of the static
//! CSR flow index.
//!
//! The static engine compiles the whole workload into one immutable
//! CSR arena; a stream cannot. `DeltaState` keeps the same
//! information — per-vertex `(flow, gain)` rows, per-flow serving
//! assignments, and the objective — under churn, with every update
//! touching only the affected flow's path:
//!
//! # Invariants
//!
//! 1. **Row mirror** — for every vertex `v`, `rows[v]` holds exactly
//!    one entry per *active* flow whose path crosses `v`, and the
//!    flow's `row_pos` back-pointers index those entries (so a
//!    departure removes its entries by `swap_remove` in O(path
//!    length) without scanning).
//! 2. **Assignment optimality** — each active flow's `assigned` is
//!    the deployed on-path vertex maximizing `(gain, smaller id)`, or
//!    `None` when no deployed vertex lies on its path; this matches
//!    the forced allocation of the static `allocate` (§3.1)
//!    deterministically, tie-break included.
//! 3. **Running objective** — `unprocessed = Σ r_f · cost(p_f)` and
//!    `saved = Σ_{assigned} r_f · (1 − λ) · gain` over active flows,
//!    so `objective() = unprocessed − saved` in O(1). `primary_load[v]`
//!    is the `saved` share of the flows assigned to `v` — an upper
//!    bound on the objective loss of undeploying `v` (flows re-home
//!    to their second-best box, recovering part of it).
//! 4. **Unserved census** — `unserved` counts exactly the active
//!    flows with `assigned == None`. Those flows ride at full rate
//!    (their whole `r_f · cost(p_f)` stays in the objective); the
//!    failure layer reads this as its degraded-flow census.
//!
//! All four are restored by every mutation (insert, remove, commit,
//! rehome/failover, rebuild); the engine's repair logic relies on
//! them.

use std::collections::HashMap;

use tdmd_core::num::{approx_f64, id32, ix};
use tdmd_core::Deployment;
use tdmd_graph::NodeId;
use tdmd_traffic::Flow;

use crate::event::FlowKey;

/// An active flow with its arrival-time pricing and current serving
/// assignment.
#[derive(Debug, Clone)]
pub struct ActiveFlow {
    /// Stream-stable key the flow arrived under.
    pub key: FlowKey,
    /// Rate `r_f`.
    pub rate: u64,
    /// Path `p_f`.
    pub path: Vec<NodeId>,
    /// Per-position serving gains (pricer output, fixed at arrival).
    pub gains: Vec<f64>,
    /// Unprocessed metric of the whole path.
    pub cost: f64,
    /// Serving middlebox and its gain, if any deployed vertex lies on
    /// the path.
    pub assigned: Option<(NodeId, f64)>,
    /// Arrival sequence number — the canonical densification order.
    pub seq: u64,
    /// `row_pos[i]` = index of this flow's entry within
    /// `rows[path[i]]`.
    row_pos: Vec<u32>,
}

/// Outcome of orphaning the flows served at a failed/undeployed
/// vertex (see [`DeltaState::fail_rehome`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Failover {
    /// Orphans re-pinned to a surviving deployed on-path vertex.
    pub reassigned: usize,
    /// Orphans left with no serving middlebox — they ride at full
    /// rate (degraded-unprocessed accounting) until repair or
    /// recovery re-covers them.
    pub degraded: usize,
    /// Vertices whose marginal gains may have changed (the full paths
    /// of every orphaned flow).
    pub dirty: Vec<NodeId>,
}

/// One per-vertex row entry: which flow slot, at which path position.
/// The gain is read through the slot (`flows[slot].gains[pos]`) so a
/// row entry never goes stale.
#[derive(Debug, Clone, Copy)]
struct RowEntry {
    slot: u32,
    pos: u32,
}

/// Incrementally-maintained flow index, assignments and objective.
#[derive(Debug, Clone)]
pub struct DeltaState {
    lambda: f64,
    /// Flow slots; `None` marks a freed slot awaiting reuse.
    flows: Vec<Option<ActiveFlow>>,
    free: Vec<u32>,
    key_to_slot: HashMap<FlowKey, u32>,
    /// Per-vertex rows — the mutable analogue of the CSR arena.
    rows: Vec<Vec<RowEntry>>,
    unprocessed: f64,
    saved: f64,
    /// Per-vertex saved share of the flows assigned there.
    primary_load: Vec<f64>,
    active: usize,
    /// Active flows with no serving middlebox (`assigned == None`) —
    /// they are accounted at full rate.
    unserved: usize,
    next_seq: u64,
}

/// `(gain, smaller id)` assignment preference (invariant 2).
#[inline]
fn better_assignment(cand: (NodeId, f64), cur: Option<(NodeId, f64)>) -> bool {
    match cur {
        None => true,
        Some((cv, cg)) => cand.1 > cg || (cand.1 == cg && cand.0 < cv),
    }
}

impl DeltaState {
    /// Empty state over a topology of `n` vertices with
    /// traffic-changing ratio `lambda`.
    pub fn new(n: usize, lambda: f64) -> Self {
        Self {
            lambda,
            flows: Vec::new(),
            free: Vec::new(),
            key_to_slot: HashMap::new(),
            rows: vec![Vec::new(); n],
            unprocessed: 0.0,
            saved: 0.0,
            primary_load: vec![0.0; n],
            active: 0,
            unserved: 0,
            next_seq: 0,
        }
    }

    /// `1 − λ`, the diminishing factor every saving is scaled by.
    #[inline]
    fn factor(&self) -> f64 {
        1.0 - self.lambda
    }

    /// Number of active flows.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Number of active flows with no serving middlebox — whether
    /// because no deployed vertex lies on their path or because a
    /// failure orphaned them. These flows are accounted at full rate.
    #[inline]
    pub fn unserved_count(&self) -> usize {
        self.unserved
    }

    /// Iterates over the active flows in unspecified order (use
    /// [`DeltaState::active_snapshot`] for the canonical arrival
    /// order). Handy for invariant checks: every `assigned` vertex
    /// must be deployed, never failed.
    pub fn active_flows(&self) -> impl Iterator<Item = &ActiveFlow> {
        self.flows.iter().filter_map(|f| f.as_ref())
    }

    /// True if `key` is currently active.
    #[inline]
    pub fn is_active(&self, key: FlowKey) -> bool {
        self.key_to_slot.contains_key(&key)
    }

    /// Running objective: unprocessed total minus savings (invariant
    /// 3). O(1), but accumulates float drift under long streams — see
    /// [`DeltaState::exact_objective`].
    #[inline]
    pub fn objective(&self) -> f64 {
        self.unprocessed - self.saved
    }

    /// The active flow stored under `key`.
    pub fn flow(&self, key: FlowKey) -> Option<&ActiveFlow> {
        let &slot = self.key_to_slot.get(&key)?;
        self.flows[ix(slot)].as_ref()
    }

    /// Per-vertex saved share (the swap-repair victim metric).
    #[inline]
    pub fn primary_load(&self, v: NodeId) -> f64 {
        self.primary_load[ix(v)]
    }

    /// Active flow slots in arrival (seq) order — the canonical
    /// densification order for oracle snapshots.
    fn slots_in_seq_order(&self) -> Vec<u32> {
        let mut slots: Vec<u32> = self
            .flows
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| id32(i)))
            .collect();
        slots.sort_by_key(|&s| self.flows[ix(s)].as_ref().expect("live slot").seq);
        slots
    }

    /// Active flows in arrival (seq) order — the canonical order
    /// engine snapshots serialize and restores replay, so both sides
    /// of a snapshot/restore round trip rebuild bitwise-identical
    /// float sums.
    pub fn flows_in_seq_order(&self) -> Vec<&ActiveFlow> {
        self.slots_in_seq_order()
            .into_iter()
            .map(|s| self.flows[ix(s)].as_ref().expect("live slot"))
            .collect()
    }

    /// Densified snapshot of the active flows (ids re-assigned
    /// `0..n` in arrival order) — the workload of the from-scratch
    /// oracle.
    pub fn active_snapshot(&self) -> Vec<Flow> {
        self.slots_in_seq_order()
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let f = self.flows[ix(s)].as_ref().expect("live slot");
                Flow::new(id32(i), f.rate, f.path.clone())
            })
            .collect()
    }

    /// Objective recomputed from scratch, flow by flow in arrival
    /// order — term-for-term the same sum as the static
    /// `FlowIndex::bandwidth_of` evaluates on the densified snapshot,
    /// so the two agree *exactly* (bitwise), not just approximately.
    pub fn exact_objective(&self) -> f64 {
        let factor = self.factor();
        self.slots_in_seq_order()
            .into_iter()
            .map(|s| {
                let f = self.flows[ix(s)].as_ref().expect("live slot");
                let full = approx_f64(f.rate) * f.cost;
                match f.assigned {
                    Some((_, g)) => full - approx_f64(f.rate) * factor * g,
                    None => full,
                }
            })
            .sum::<f64>()
            // `Sum<f64>` folds from -0.0, so a drained state would
            // otherwise report a negative zero.
            + 0.0
    }

    /// Marginal objective decrement of deploying on `v` given the
    /// current assignments — Def. 2 maintained incrementally: only
    /// `rows[v]` is scanned.
    pub fn marginal_gain(&self, v: NodeId) -> f64 {
        let factor = self.factor();
        self.rows[ix(v)]
            .iter()
            .map(|e| {
                let f = self.flows[ix(e.slot)].as_ref().expect("row entry is live");
                let g = f.gains[ix(e.pos)];
                let cur = f.assigned.map_or(0.0, |(_, cg)| cg);
                if g > cur {
                    approx_f64(f.rate) * factor * (g - cur)
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Inserts an arriving flow and computes its assignment against
    /// `deployment`. Returns the flow's path vertices (the caller
    /// dirties them). O(path length).
    ///
    /// # Panics
    /// Panics if `key` is already active or `gains` does not match the
    /// path length — the engine validates events before applying them.
    pub fn insert(
        &mut self,
        key: FlowKey,
        rate: u64,
        path: Vec<NodeId>,
        gains: Vec<f64>,
        cost: f64,
        deployment: &Deployment,
    ) -> Vec<NodeId> {
        assert!(!self.key_to_slot.contains_key(&key), "duplicate flow key");
        assert_eq!(gains.len(), path.len(), "one gain per path position");
        let factor = self.factor();
        // Best deployed on-path vertex under the (gain, smaller id)
        // preference.
        let mut assigned: Option<(NodeId, f64)> = None;
        for (pos, &v) in path.iter().enumerate() {
            if deployment.contains(v) && better_assignment((v, gains[pos]), assigned) {
                assigned = Some((v, gains[pos]));
            }
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.flows.push(None);
                id32(self.flows.len() - 1)
            }
        };
        let mut row_pos = Vec::with_capacity(path.len());
        for (pos, &v) in path.iter().enumerate() {
            let row = &mut self.rows[ix(v)];
            row_pos.push(id32(row.len()));
            row.push(RowEntry {
                slot,
                pos: id32(pos),
            });
        }
        self.unprocessed += approx_f64(rate) * cost;
        if let Some((v, g)) = assigned {
            let s = approx_f64(rate) * factor * g;
            self.saved += s;
            self.primary_load[ix(v)] += s;
        } else {
            self.unserved += 1;
        }
        let dirty = path.clone();
        self.flows[ix(slot)] = Some(ActiveFlow {
            key,
            rate,
            path,
            gains,
            cost,
            assigned,
            seq: self.next_seq,
            row_pos,
        });
        self.next_seq += 1;
        self.key_to_slot.insert(key, slot);
        self.active += 1;
        dirty
    }

    /// Removes a departing flow, subtracting its contributions and
    /// unlinking its row entries. Returns its path vertices (the
    /// caller dirties them). O(path length).
    ///
    /// # Panics
    /// Panics if `key` is not active.
    pub fn remove(&mut self, key: FlowKey) -> Vec<NodeId> {
        let slot = self
            .key_to_slot
            .remove(&key)
            .expect("departure of an unknown flow key");
        let flow = self.flows[ix(slot)].take().expect("slot is live");
        let factor = self.factor();
        self.unprocessed -= approx_f64(flow.rate) * flow.cost;
        if let Some((v, g)) = flow.assigned {
            let s = approx_f64(flow.rate) * factor * g;
            self.saved -= s;
            self.primary_load[ix(v)] -= s;
        } else {
            self.unserved -= 1;
        }
        for (pos, &v) in flow.path.iter().enumerate() {
            let idx = ix(flow.row_pos[pos]);
            let row = &mut self.rows[ix(v)];
            row.swap_remove(idx);
            if idx < row.len() {
                // Fix the back-pointer of the entry that moved into
                // `idx`. A simple path visits each vertex once, so the
                // moved entry belongs to a *different* (live) flow.
                let moved = row[idx];
                self.flows[ix(moved.slot)]
                    .as_mut()
                    .expect("moved row entry is live")
                    .row_pos[ix(moved.pos)] = id32(idx);
            }
        }
        self.free.push(slot);
        self.active -= 1;
        flow.path
    }

    /// Switches an active flow to a different route — a remove + insert
    /// that preserves the key, rate and sequence-independent identity.
    /// Used when a candidate-path re-selection (the joint solver's
    /// routing rounds) changes a flow's active path while it is live in
    /// the online engine. Returns the union of dirtied vertices: the
    /// old path and the new one.
    ///
    /// # Panics
    /// Panics if `key` is not active or `gains` does not match the new
    /// path length.
    pub fn reroute(
        &mut self,
        key: FlowKey,
        path: Vec<NodeId>,
        gains: Vec<f64>,
        cost: f64,
        deployment: &Deployment,
    ) -> Vec<NodeId> {
        let slot = *self
            .key_to_slot
            .get(&key)
            .expect("reroute of an unknown flow key");
        let rate = self.flows[ix(slot)].as_ref().expect("slot is live").rate;
        let mut dirty = self.remove(key);
        let new_dirty = self.insert(key, rate, path, gains, cost, deployment);
        for v in new_dirty {
            if !dirty.contains(&v) {
                dirty.push(v);
            }
        }
        dirty
    }

    /// Re-homes every flow whose serving gain improves under a newly
    /// deployed `v` (invariant 2 restoration after an insert into the
    /// deployment). Returns the dirtied vertices: the full paths of
    /// every re-homed flow (their marginal gains changed everywhere).
    pub fn commit(&mut self, v: NodeId) -> Vec<NodeId> {
        let factor = self.factor();
        let mut dirty = Vec::new();
        let entries: Vec<RowEntry> = self.rows[ix(v)].clone();
        for e in entries {
            let f = self.flows[ix(e.slot)].as_mut().expect("row entry is live");
            let g = f.gains[ix(e.pos)];
            if !better_assignment((v, g), f.assigned) {
                continue;
            }
            if let Some((ov, og)) = f.assigned {
                let s = approx_f64(f.rate) * factor * og;
                self.saved -= s;
                self.primary_load[ix(ov)] -= s;
            } else {
                self.unserved -= 1;
            }
            let s = approx_f64(f.rate) * factor * g;
            self.saved += s;
            self.primary_load[ix(v)] += s;
            f.assigned = Some((v, g));
            dirty.extend_from_slice(&f.path);
        }
        dirty
    }

    /// Re-homes every flow assigned to `v` after `v` was removed from
    /// `deployment` (which must no longer contain `v`). Returns the
    /// dirtied vertices. O(Σ path length of the affected flows).
    pub fn rehome_from(&mut self, v: NodeId, deployment: &Deployment) -> Vec<NodeId> {
        self.fail_rehome(v, deployment).dirty
    }

    /// Orphan reassignment after `v` stopped serving (failure or
    /// undeployment; `deployment` must no longer contain `v`): every
    /// flow assigned to `v` is re-pinned to the best surviving
    /// deployed vertex on its path under the `(gain, smaller id)`
    /// preference, or marked degraded-unprocessed (full-rate
    /// accounting, [`DeltaState::unserved_count`]) when none exists.
    /// Returns how many orphans were reassigned vs degraded alongside
    /// the dirtied vertices. O(Σ path length of the affected flows).
    pub fn fail_rehome(&mut self, v: NodeId, deployment: &Deployment) -> Failover {
        debug_assert!(!deployment.contains(v), "remove v before re-homing");
        let factor = self.factor();
        let orphans: Vec<u32> = self.rows[ix(v)]
            .iter()
            .filter(|e| {
                self.flows[ix(e.slot)]
                    .as_ref()
                    .expect("row entry is live")
                    .assigned
                    .is_some_and(|(av, _)| av == v)
            })
            .map(|e| e.slot)
            .collect();
        let mut out = Failover::default();
        for slot in orphans {
            let f = self.flows[ix(slot)].as_mut().expect("orphan is live");
            let old = f.assigned.expect("orphan was assigned").1;
            let mut next: Option<(NodeId, f64)> = None;
            for (pos, &u) in f.path.iter().enumerate() {
                if deployment.contains(u) && better_assignment((u, f.gains[pos]), next) {
                    next = Some((u, f.gains[pos]));
                }
            }
            let s_old = approx_f64(f.rate) * factor * old;
            self.saved -= s_old;
            self.primary_load[ix(v)] -= s_old;
            if let Some((nv, ng)) = next {
                let s = approx_f64(f.rate) * factor * ng;
                self.saved += s;
                self.primary_load[ix(nv)] += s;
                out.reassigned += 1;
            } else {
                self.unserved += 1;
                out.degraded += 1;
            }
            f.assigned = next;
            out.dirty.extend_from_slice(&f.path);
        }
        out
    }

    /// Exact objective increase of undeploying `v` under `deployment`
    /// (which still contains `v`): each flow assigned to `v` falls
    /// back to its second-best deployed box. Never exceeds
    /// [`DeltaState::primary_load`] of `v`.
    pub fn removal_loss(&self, v: NodeId, deployment: &Deployment) -> f64 {
        let factor = self.factor();
        let mut loss = 0.0;
        for e in &self.rows[ix(v)] {
            let f = self.flows[ix(e.slot)].as_ref().expect("row entry is live");
            let Some((av, ag)) = f.assigned else { continue };
            if av != v {
                continue;
            }
            let mut second = 0.0f64;
            for (pos, &u) in f.path.iter().enumerate() {
                if u != v && deployment.contains(u) && f.gains[pos] > second {
                    second = f.gains[pos];
                }
            }
            loss += approx_f64(f.rate) * factor * (ag - second);
        }
        loss
    }

    /// Recomputes every assignment and all running sums from scratch
    /// against `deployment` (after a full replan adopts a new
    /// deployment wholesale). Sums are rebuilt in arrival order, so
    /// the running objective coincides with
    /// [`DeltaState::exact_objective`] right after a rebuild.
    pub fn rebuild_assignments(&mut self, deployment: &Deployment) {
        let factor = self.factor();
        self.primary_load.iter_mut().for_each(|l| *l = 0.0);
        self.saved = 0.0;
        self.unprocessed = 0.0;
        self.unserved = 0;
        for slot in self.slots_in_seq_order() {
            let f = self.flows[ix(slot)].as_mut().expect("live slot");
            let mut best: Option<(NodeId, f64)> = None;
            for (pos, &u) in f.path.iter().enumerate() {
                if deployment.contains(u) && better_assignment((u, f.gains[pos]), best) {
                    best = Some((u, f.gains[pos]));
                }
            }
            f.assigned = best;
            self.unprocessed += approx_f64(f.rate) * f.cost;
            if let Some((v, g)) = best {
                let s = approx_f64(f.rate) * factor * g;
                self.saved += s;
                self.primary_load[ix(v)] += s;
            } else {
                self.unserved += 1;
            }
        }
    }
}

/// Structural auditor and corruption hooks (tdmd-audit).
///
/// [`DeltaState::check_invariants`] re-derives every documented
/// invariant from scratch and compares it against the incremental
/// bookkeeping; the `audit_*` hooks deliberately break one invariant
/// each so the corruption proptests can assert the auditor catches it.
#[cfg(any(debug_assertions, feature = "audit", test))]
impl DeltaState {
    /// Validates invariants 1–4 (module docs) against a from-scratch
    /// recomputation under `deployment`.
    ///
    /// # Errors
    /// Returns the first violated check among `delta-key-map`,
    /// `delta-flow-shape`, `delta-active-census`, `delta-row-dead-slot`,
    /// `delta-row-mirror`, `delta-row-backpointer`, `delta-assignment`,
    /// `delta-sum-unprocessed`, `delta-sum-saved`,
    /// `delta-primary-load` and `delta-unserved-census`.
    pub fn check_invariants(
        &self,
        deployment: &Deployment,
    ) -> Result<(), tdmd_core::audit::AuditError> {
        use tdmd_core::audit::AuditError;
        let err = |check: &'static str, detail: String| Err(AuditError { check, detail });
        let tol = |x: f64| 1e-6 * x.abs().max(1.0);
        // Slot table vs key map vs census.
        let mut live = 0usize;
        for (slot, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            live += 1;
            if self.key_to_slot.get(&f.key) != Some(&id32(slot)) {
                return err(
                    "delta-key-map",
                    format!("flow key {} not mapped to its slot {slot}", f.key),
                );
            }
            if f.gains.len() != f.path.len() || f.row_pos.len() != f.path.len() {
                return err(
                    "delta-flow-shape",
                    format!(
                        "flow key {}: path {}, gains {}, row_pos {}",
                        f.key,
                        f.path.len(),
                        f.gains.len(),
                        f.row_pos.len()
                    ),
                );
            }
        }
        if live != self.active || self.key_to_slot.len() != live {
            return err(
                "delta-active-census",
                format!(
                    "{live} live slots, active = {}, key map = {}",
                    self.active,
                    self.key_to_slot.len()
                ),
            );
        }
        // Invariant 1 — row mirror, both directions. Forward: every
        // row entry points at a live flow crossing this vertex, and
        // the flow's back-pointer points back at it.
        let mut total_entries = 0usize;
        for (v, row) in self.rows.iter().enumerate() {
            for (idx, e) in row.iter().enumerate() {
                let Some(f) = self.flows.get(ix(e.slot)).and_then(|f| f.as_ref()) else {
                    return err(
                        "delta-row-dead-slot",
                        format!("rows[{v}][{idx}] references dead slot {}", e.slot),
                    );
                };
                if f.path.get(ix(e.pos)) != Some(&id32(v)) {
                    return err(
                        "delta-row-mirror",
                        format!(
                            "rows[{v}][{idx}] claims position {} of flow key {}, whose path \
                             disagrees",
                            e.pos, f.key
                        ),
                    );
                }
                if f.row_pos[ix(e.pos)] != id32(idx) {
                    return err(
                        "delta-row-backpointer",
                        format!(
                            "rows[{v}][{idx}]: flow key {} back-pointer says {}",
                            f.key,
                            f.row_pos[ix(e.pos)]
                        ),
                    );
                }
                total_entries += 1;
            }
        }
        // Reverse: one entry per (active flow, path vertex). Combined
        // with the forward direction this pins the mirror 1:1.
        let path_total: usize = self.active_flows().map(|f| f.path.len()).sum();
        if total_entries != path_total {
            return err(
                "delta-row-mirror",
                format!("{total_entries} row entries for {path_total} path vertices"),
            );
        }
        // Invariant 2 — assignment optimality, recomputed per flow.
        // Gains are bitwise copies of the stored per-position gains,
        // so the comparison is exact (bit-level, not float ==).
        for f in self.active_flows() {
            let mut best: Option<(NodeId, f64)> = None;
            for (pos, &u) in f.path.iter().enumerate() {
                if deployment.contains(u) && better_assignment((u, f.gains[pos]), best) {
                    best = Some((u, f.gains[pos]));
                }
            }
            let agree = match (f.assigned, best) {
                (None, None) => true,
                (Some((av, ag)), Some((bv, bg))) => av == bv && ag.to_bits() == bg.to_bits(),
                _ => false,
            };
            if !agree {
                return err(
                    "delta-assignment",
                    format!(
                        "flow key {}: assigned {:?}, optimal {best:?}",
                        f.key, f.assigned
                    ),
                );
            }
        }
        // Invariants 3–4 — running sums and unserved census, rebuilt
        // in arrival order like `rebuild_assignments`.
        let factor = self.factor();
        let mut unprocessed = 0.0;
        let mut saved = 0.0;
        let mut primary = vec![0.0f64; self.rows.len()];
        let mut unserved = 0usize;
        for slot in self.slots_in_seq_order() {
            let f = self.flows[ix(slot)].as_ref().expect("live slot");
            unprocessed += approx_f64(f.rate) * f.cost;
            match f.assigned {
                Some((v, g)) => {
                    let s = approx_f64(f.rate) * factor * g;
                    saved += s;
                    primary[ix(v)] += s;
                }
                None => unserved += 1,
            }
        }
        if (self.unprocessed - unprocessed).abs() > tol(unprocessed) {
            return err(
                "delta-sum-unprocessed",
                format!("running {} vs rebuilt {unprocessed}", self.unprocessed),
            );
        }
        if (self.saved - saved).abs() > tol(saved) {
            return err(
                "delta-sum-saved",
                format!("running {} vs rebuilt {saved}", self.saved),
            );
        }
        for (v, (&a, &b)) in self.primary_load.iter().zip(&primary).enumerate() {
            if (a - b).abs() > tol(b) {
                return err(
                    "delta-primary-load",
                    format!("vertex {v}: running {a} vs rebuilt {b}"),
                );
            }
        }
        if self.unserved != unserved {
            return err(
                "delta-unserved-census",
                format!("running {} vs rebuilt {unserved}", self.unserved),
            );
        }
        Ok(())
    }

    /// Corruption hook: repins `key`'s assignment without fixing the
    /// running sums — breaks invariant 2 (and usually 3).
    ///
    /// # Panics
    /// Panics if `key` is not active.
    pub fn audit_force_assignment(&mut self, key: FlowKey, assigned: Option<(NodeId, f64)>) {
        let slot = self.key_to_slot[&key];
        self.flows[ix(slot)]
            .as_mut()
            .expect("slot is live")
            .assigned = assigned;
    }

    /// Corruption hook: skews the running `saved` sum — breaks
    /// invariant 3.
    pub fn audit_skew_saved(&mut self, delta: f64) {
        self.saved += delta;
    }

    /// Corruption hook: swaps the first two entries of `v`'s row
    /// without fixing the back-pointers — breaks invariant 1. Returns
    /// whether the row had two entries to swap.
    pub fn audit_swap_row_entries(&mut self, v: NodeId) -> bool {
        let row = &mut self.rows[ix(v)];
        if row.len() < 2 {
            return false;
        }
        row.swap(0, 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricer::{HopPricer, PathPricer};

    /// Inserts a flow priced by hop count.
    fn add(state: &mut DeltaState, key: FlowKey, rate: u64, path: Vec<NodeId>, dep: &Deployment) {
        let f = Flow::new(0, rate, path.clone());
        let pricer = HopPricer::default();
        let gains = pricer.gains(&f);
        let cost = pricer.unprocessed_cost(&f);
        state.insert(key, rate, path, gains, cost, dep);
    }

    #[test]
    fn objective_tracks_arrivals_and_departures() {
        let mut st = DeltaState::new(4, 0.5);
        let dep = Deployment::from_vertices(4, [1]);
        add(&mut st, 7, 2, vec![3, 2, 1, 0], &dep); // gain at v1 = 1
        assert_eq!(st.active_count(), 1);
        // unprocessed 2*3 = 6; saved 2*0.5*1 = 1.
        assert_eq!(st.objective(), 5.0);
        assert_eq!(st.exact_objective(), 5.0);
        add(&mut st, 8, 4, vec![2, 1, 0], &dep); // gain at v1 = 1
                                                 // + unprocessed 4*2 = 8, + saved 4*0.5*1 = 2.
        assert_eq!(st.objective(), 11.0);
        let dirty = st.remove(7);
        assert_eq!(dirty, vec![3, 2, 1, 0]);
        assert_eq!(st.objective(), 6.0);
        st.remove(8);
        assert_eq!(st.objective(), 0.0);
        assert_eq!(st.active_count(), 0);
        // Not the empty `Sum<f64>`'s -0.0 — a drained state must
        // format as "0.00", not "-0.00".
        assert!(st.exact_objective().is_sign_positive());
    }

    #[test]
    fn reroute_switches_path_and_preserves_identity() {
        let mut st = DeltaState::new(5, 0.5);
        let dep = Deployment::from_vertices(5, [4]);
        // Active on 0 → 1 → 2: no deployed vertex on path, unserved.
        add(&mut st, 7, 2, vec![0, 1, 2], &dep);
        assert_eq!(st.objective(), 4.0); // 2·2, nothing saved
        assert_eq!(st.unserved_count(), 1);
        // Switch to the covered candidate 0 → 4 → 2.
        let f = Flow::new(0, 2, vec![0, 4, 2]);
        let pricer = HopPricer::default();
        let (gains, cost) = (pricer.gains(&f), pricer.unprocessed_cost(&f));
        let mut dirty = st.reroute(7, vec![0, 4, 2], gains, cost, &dep);
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 1, 2, 4]); // old ∪ new path
        assert_eq!(st.active_count(), 1);
        assert_eq!(st.unserved_count(), 0);
        assert_eq!(st.flow(7).unwrap().assigned, Some((4, 1.0)));
        assert_eq!(st.objective(), 3.0); // 2·2 − 2·0.5·1
                                         // The old route's rows are fully unlinked.
        assert_eq!(st.marginal_gain(1), 0.0);
    }

    #[test]
    fn commit_rehomes_to_better_boxes() {
        let mut st = DeltaState::new(4, 0.0);
        let mut dep = Deployment::from_vertices(4, [1]);
        add(&mut st, 0, 1, vec![3, 2, 1, 0], &dep);
        assert_eq!(st.objective(), 2.0); // 3 hops − gain 1
        dep.insert(3);
        let dirty = st.commit(3);
        assert_eq!(dirty, vec![3, 2, 1, 0]);
        assert_eq!(st.objective(), 0.0); // served at the source
        assert_eq!(st.primary_load(3), 3.0);
        assert_eq!(st.primary_load(1), 0.0);
    }

    #[test]
    fn rehome_from_falls_back_to_second_best() {
        let mut st = DeltaState::new(4, 0.0);
        let mut dep = Deployment::from_vertices(4, [1, 3]);
        add(&mut st, 0, 1, vec![3, 2, 1, 0], &dep);
        assert_eq!(st.flow(0).unwrap().assigned, Some((3, 3.0)));
        assert_eq!(st.removal_loss(3, &dep), 2.0); // falls to gain 1 at v1
        dep.remove(3);
        st.rehome_from(3, &dep);
        assert_eq!(st.flow(0).unwrap().assigned, Some((1, 1.0)));
        assert_eq!(st.objective(), 2.0);
        assert!(st.primary_load(3).abs() < 1e-12);
    }

    #[test]
    fn marginal_gain_matches_def2() {
        let mut st = DeltaState::new(4, 0.5);
        let dep = Deployment::empty(4);
        add(&mut st, 0, 2, vec![3, 2, 1, 0], &dep);
        add(&mut st, 1, 4, vec![2, 1], &dep);
        // v2 (id 2): f0 gain 2, f1 gain 1 → 0.5*(2*2 + 4*1) = 4.
        assert_eq!(st.marginal_gain(2), 4.0);
        // After deploying v2, v3's marginal shrinks to the delta.
        let mut dep = dep;
        dep.insert(2);
        st.commit(2);
        // v3: f0 gain 3 vs current 2 → 0.5*2*(3−2) = 1.
        assert_eq!(st.marginal_gain(3), 1.0);
    }

    #[test]
    fn snapshot_densifies_in_arrival_order_with_slot_reuse() {
        let mut st = DeltaState::new(4, 0.5);
        let dep = Deployment::empty(4);
        add(&mut st, 10, 1, vec![0, 1], &dep);
        add(&mut st, 20, 2, vec![1, 2], &dep);
        st.remove(10);
        add(&mut st, 30, 3, vec![2, 3], &dep); // reuses slot 0 but arrives last
        let snap = st.active_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id, 0);
        assert_eq!(snap[0].rate, 2, "key 20 arrived first among survivors");
        assert_eq!(snap[1].rate, 3);
    }

    #[test]
    fn rebuild_matches_incremental_bookkeeping() {
        let mut st = DeltaState::new(5, 0.3);
        let mut dep = Deployment::empty(5);
        add(&mut st, 0, 2, vec![4, 3, 2, 1, 0], &dep);
        add(&mut st, 1, 5, vec![3, 2, 1], &dep);
        dep.insert(2);
        st.commit(2);
        dep.insert(4);
        st.commit(4);
        let incremental = st.objective();
        let mut rebuilt = st.clone();
        rebuilt.rebuild_assignments(&dep);
        assert!((rebuilt.objective() - incremental).abs() < 1e-9);
        assert_eq!(rebuilt.exact_objective(), st.exact_objective());
    }

    #[test]
    fn assignment_tiebreak_prefers_smaller_vertex() {
        // Two deployed vertices with equal gain 0 at the destination
        // never happen on simple paths under hop pricing, so force a
        // tie with λ anything and a custom gains vector.
        let mut st = DeltaState::new(3, 0.5);
        let dep = Deployment::from_vertices(3, [1, 2]);
        st.insert(0, 1, vec![2, 1, 0], vec![1.0, 1.0, 0.0], 2.0, &dep);
        assert_eq!(st.flow(0).unwrap().assigned, Some((1, 1.0)));
    }

    #[test]
    #[should_panic(expected = "duplicate flow key")]
    fn duplicate_keys_are_rejected() {
        let mut st = DeltaState::new(3, 0.5);
        let dep = Deployment::empty(3);
        add(&mut st, 0, 1, vec![0, 1], &dep);
        add(&mut st, 0, 1, vec![1, 2], &dep);
    }
}
