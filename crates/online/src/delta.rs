//! [`DeltaState`] — the incrementally-maintained mirror of the static
//! CSR flow index.
//!
//! The static engine compiles the whole workload into one immutable
//! CSR arena; a stream cannot. `DeltaState` keeps the same
//! information — per-vertex `(flow, gain)` rows, per-flow serving
//! assignments, and the objective — under churn, with every update
//! touching only the affected flow's path:
//!
//! # Invariants
//!
//! 1. **Row mirror** — for every vertex `v`, `rows[v]` holds exactly
//!    one entry per *active* flow whose path crosses `v`, and the
//!    flow's `row_pos` back-pointers index those entries (so a
//!    departure removes its entries by `swap_remove` in O(path
//!    length) without scanning).
//! 2. **Assignment optimality** — each active flow's `assigned` is
//!    the deployed on-path vertex maximizing `(gain, smaller id)`, or
//!    `None` when no deployed vertex lies on its path; this matches
//!    the forced allocation of the static `allocate` (§3.1)
//!    deterministically, tie-break included.
//! 3. **Running objective** — `unprocessed = Σ r_f · cost(p_f)` and
//!    `saved = Σ_{assigned} r_f · (1 − λ) · gain` over active flows,
//!    so `objective() = unprocessed − saved` in O(1). `primary_load[v]`
//!    is the `saved` share of the flows assigned to `v` — an upper
//!    bound on the objective loss of undeploying `v` (flows re-home
//!    to their second-best box, recovering part of it).
//! 4. **Unserved census** — `unserved` counts exactly the active
//!    flows with `assigned == None`. Those flows ride at full rate
//!    (their whole `r_f · cost(p_f)` stays in the objective); the
//!    failure layer reads this as its degraded-flow census.
//!
//! All four are restored by every mutation (insert, remove, commit,
//! rehome/failover, rebuild); the engine's repair logic relies on
//! them.

use tdmd_core::num::{approx_f64, big_ix, id32, ix, KahanSum};
use tdmd_core::Deployment;
use tdmd_graph::NodeId;
use tdmd_traffic::Flow;

use crate::event::FlowKey;

/// An active flow with its arrival-time pricing and current serving
/// assignment.
#[derive(Debug, Clone)]
pub struct ActiveFlow {
    /// Stream-stable key the flow arrived under.
    pub key: FlowKey,
    /// Rate `r_f`.
    pub rate: u64,
    /// Path `p_f`.
    pub path: Vec<NodeId>,
    /// Per-position serving gains (pricer output, fixed at arrival).
    pub gains: Vec<f64>,
    /// Unprocessed metric of the whole path.
    pub cost: f64,
    /// Serving middlebox and its gain, if any deployed vertex lies on
    /// the path.
    pub assigned: Option<(NodeId, f64)>,
    /// Arrival sequence number — the canonical densification order.
    pub seq: u64,
    /// `row_pos[i]` = index of this flow's entry within
    /// `rows[path[i]]`.
    row_pos: Vec<u32>,
}

/// Outcome of orphaning the flows served at a failed/undeployed
/// vertex (see [`DeltaState::fail_rehome`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Failover {
    /// Orphans re-pinned to a surviving deployed on-path vertex.
    pub reassigned: usize,
    /// Orphans left with no serving middlebox — they ride at full
    /// rate (degraded-unprocessed accounting) until repair or
    /// recovery re-covers them.
    pub degraded: usize,
    /// Vertices whose marginal gains may have changed (the full paths
    /// of every orphaned flow).
    pub dirty: Vec<NodeId>,
}

/// One per-vertex row entry: which flow slot, at which path position.
/// The gain is read through the slot (`flows[slot].gains[pos]`) so a
/// row entry never goes stale.
#[derive(Debug, Clone, Copy)]
struct RowEntry {
    slot: u32,
    pos: u32,
}

/// A generation-validated reference into the flow slot arena: `slot`
/// indexes `DeltaState::flows`, and the reference resolves only while
/// `gen` matches `DeltaState::gens[slot]` — freeing a slot bumps its
/// generation, so a stale reference can never silently alias the next
/// flow reusing that slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotRef {
    slot: u32,
    gen: u32,
}

/// Flat open-addressing `FlowKey → SlotRef` map — the generation-
/// indexed slot map that replaces the `HashMap` on the per-event hot
/// path. Fibonacci hashing (multiply by ⌊2⁶⁴/φ⌋, keep the top
/// log₂(capacity) bits), linear probing over a power-of-two bucket
/// array, and backward-shift deletion (Knuth 6.4 Algorithm R) instead
/// of tombstones, so probe chains stay short under churn and no
/// per-operation allocation or SipHash state is involved. Capacity
/// grows at 7/8 load, which guarantees an empty bucket always
/// terminates a probe.
#[derive(Debug, Clone, Default)]
struct KeyIndex {
    /// Power-of-two bucket array; `None` is empty (probe terminator).
    table: Vec<Option<(FlowKey, SlotRef)>>,
    len: usize,
}

impl KeyIndex {
    const MIN_CAPACITY: usize = 8;

    /// Number of mapped keys.
    #[cfg(any(debug_assertions, feature = "audit", test))]
    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    /// Home bucket of `key` in the current table.
    #[inline]
    fn home(&self, key: FlowKey) -> usize {
        debug_assert!(self.table.len().is_power_of_two());
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // The shifted value is < capacity ≤ usize::MAX, so `big_ix`
        // never panics here.
        big_ix(h >> (64 - self.table.len().trailing_zeros()))
    }

    /// Looks up `key`. O(probe chain), allocation-free.
    fn get(&self, key: FlowKey) -> Option<SlotRef> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = self.home(key);
        loop {
            match self.table[i] {
                None => return None,
                Some((k, r)) if k == key => return Some(r),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts a key the caller has verified to be absent.
    fn insert(&mut self, key: FlowKey, r: SlotRef) {
        self.grow_if_needed();
        let mask = self.table.len() - 1;
        let mut i = self.home(key);
        while let Some((k, _)) = self.table[i] {
            debug_assert_ne!(k, key, "key already present");
            i = (i + 1) & mask;
        }
        self.table[i] = Some((key, r));
        self.len += 1;
    }

    /// Removes `key`, returning its reference if it was present.
    fn remove(&mut self, key: FlowKey) -> Option<SlotRef> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut gap = self.home(key);
        let removed = loop {
            match self.table[gap] {
                None => return None,
                Some((k, r)) if k == key => break r,
                Some(_) => gap = (gap + 1) & mask,
            }
        };
        self.len -= 1;
        // Backward-shift deletion: slide the rest of the probe chain
        // left over the gap. An entry at `j` may fill the gap iff its
        // home bucket does not lie strictly between the gap and `j`
        // (otherwise the shift would strand it before its home).
        let mut j = (gap + 1) & mask;
        while let Some((k, _)) = self.table[j] {
            let home = self.home(k);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(gap) & mask) {
                self.table[gap] = self.table[j].take();
                gap = j;
            }
            j = (j + 1) & mask;
        }
        self.table[gap] = None;
        Some(removed)
    }

    /// Doubles the table before the 7/8 load factor is reached (and
    /// bootstraps the first allocation).
    fn grow_if_needed(&mut self) {
        if self.table.is_empty() {
            self.table = vec![None; Self::MIN_CAPACITY];
            return;
        }
        if (self.len + 1) * 8 < self.table.len() * 7 {
            return;
        }
        let doubled = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![None; doubled]);
        let mask = doubled - 1;
        for entry in old.into_iter().flatten() {
            let mut i = self.home(entry.0);
            while self.table[i].is_some() {
                i = (i + 1) & mask;
            }
            self.table[i] = Some(entry);
        }
    }
}

/// Incrementally-maintained flow index, assignments and objective.
#[derive(Debug, Clone)]
pub struct DeltaState {
    lambda: f64,
    /// Flow slots; `None` marks a freed slot awaiting reuse.
    flows: Vec<Option<ActiveFlow>>,
    /// Slot generations (parallel to `flows`), bumped when a slot is
    /// freed; see [`SlotRef`].
    gens: Vec<u32>,
    free: Vec<u32>,
    key_index: KeyIndex,
    /// Per-vertex rows — the mutable analogue of the CSR arena.
    rows: Vec<Vec<RowEntry>>,
    unprocessed: KahanSum,
    saved: KahanSum,
    /// Per-vertex saved share of the flows assigned there.
    primary_load: Vec<f64>,
    active: usize,
    /// Active flows with no serving middlebox (`assigned == None`) —
    /// they are accounted at full rate.
    unserved: usize,
    next_seq: u64,
    /// Reusable dirty-vertex scratch; [`DeltaState::commit`] lends it
    /// out as a slice so the hot repair path allocates nothing.
    dirty: Vec<NodeId>,
    /// Monotone census of assignment changes applied by
    /// [`DeltaState::commit`], [`DeltaState::fail_rehome`] and
    /// [`DeltaState::rebuild_assignments`] (arrival-time initial
    /// assignments are not changes). The engine reads it differentially
    /// around each repair move to price flow reassignments, so the
    /// absolute value carries no meaning and is not serialized.
    reassignments: u64,
}

/// `(gain, smaller id)` assignment preference (invariant 2).
#[inline]
fn better_assignment(cand: (NodeId, f64), cur: Option<(NodeId, f64)>) -> bool {
    match cur {
        None => true,
        Some((cv, cg)) => cand.1 > cg || (cand.1 == cg && cand.0 < cv),
    }
}

impl DeltaState {
    /// Empty state over a topology of `n` vertices with
    /// traffic-changing ratio `lambda`.
    pub fn new(n: usize, lambda: f64) -> Self {
        Self {
            lambda,
            flows: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            key_index: KeyIndex::default(),
            rows: vec![Vec::new(); n],
            unprocessed: KahanSum::default(),
            saved: KahanSum::default(),
            primary_load: vec![0.0; n],
            active: 0,
            unserved: 0,
            next_seq: 0,
            dirty: Vec::new(),
            reassignments: 0,
        }
    }

    /// Monotone count of assignment changes (see the field doc) —
    /// meaningful only as a difference across one mutation.
    #[inline]
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }

    /// Resolves `key` to its live slot, validating the generation
    /// stamp (a mismatch means the slot was freed and reused since the
    /// reference was minted — structurally impossible while the key
    /// index is maintained, hence the debug assert).
    #[inline]
    fn lookup(&self, key: FlowKey) -> Option<u32> {
        let r = self.key_index.get(key)?;
        debug_assert_eq!(self.gens[ix(r.slot)], r.gen, "stale slot reference");
        (self.gens[ix(r.slot)] == r.gen).then_some(r.slot)
    }

    /// `1 − λ`, the diminishing factor every saving is scaled by.
    #[inline]
    fn factor(&self) -> f64 {
        1.0 - self.lambda
    }

    /// Number of active flows.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Number of active flows with no serving middlebox — whether
    /// because no deployed vertex lies on their path or because a
    /// failure orphaned them. These flows are accounted at full rate.
    #[inline]
    pub fn unserved_count(&self) -> usize {
        self.unserved
    }

    /// Iterates over the active flows in unspecified order (use
    /// [`DeltaState::active_snapshot`] for the canonical arrival
    /// order). Handy for invariant checks: every `assigned` vertex
    /// must be deployed, never failed.
    pub fn active_flows(&self) -> impl Iterator<Item = &ActiveFlow> {
        self.flows.iter().filter_map(|f| f.as_ref())
    }

    /// True if `key` is currently active.
    #[inline]
    pub fn is_active(&self, key: FlowKey) -> bool {
        self.lookup(key).is_some()
    }

    /// Running objective: unprocessed total minus savings (invariant
    /// 3). O(1). Both terms are Neumaier-compensated
    /// ([`KahanSum`]), so the drift against
    /// [`DeltaState::exact_objective`] stays O(ε) per stream instead
    /// of growing with the event count.
    #[inline]
    pub fn objective(&self) -> f64 {
        self.unprocessed.value() - self.saved.value()
    }

    /// The active flow stored under `key`.
    pub fn flow(&self, key: FlowKey) -> Option<&ActiveFlow> {
        let slot = self.lookup(key)?;
        self.flows[ix(slot)].as_ref()
    }

    /// Per-vertex saved share (the swap-repair victim metric).
    #[inline]
    pub fn primary_load(&self, v: NodeId) -> f64 {
        self.primary_load[ix(v)]
    }

    /// Active flow slots in arrival (seq) order — the canonical
    /// densification order for oracle snapshots.
    fn slots_in_seq_order(&self) -> Vec<u32> {
        let mut slots: Vec<u32> = self
            .flows
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| id32(i)))
            .collect();
        slots.sort_by_key(|&s| self.flows[ix(s)].as_ref().expect("live slot").seq);
        slots
    }

    /// Active flows in arrival (seq) order — the canonical order
    /// engine snapshots serialize and restores replay, so both sides
    /// of a snapshot/restore round trip rebuild bitwise-identical
    /// float sums.
    pub fn flows_in_seq_order(&self) -> Vec<&ActiveFlow> {
        self.slots_in_seq_order()
            .into_iter()
            .map(|s| self.flows[ix(s)].as_ref().expect("live slot"))
            .collect()
    }

    /// Densified snapshot of the active flows (ids re-assigned
    /// `0..n` in arrival order) — the workload of the from-scratch
    /// oracle.
    pub fn active_snapshot(&self) -> Vec<Flow> {
        self.slots_in_seq_order()
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let f = self.flows[ix(s)].as_ref().expect("live slot");
                Flow::new(id32(i), f.rate, f.path.clone())
            })
            .collect()
    }

    /// Objective recomputed from scratch, flow by flow in arrival
    /// order — term-for-term the same sum as the static
    /// `FlowIndex::bandwidth_of` evaluates on the densified snapshot,
    /// so the two agree *exactly* (bitwise), not just approximately.
    pub fn exact_objective(&self) -> f64 {
        let factor = self.factor();
        self.slots_in_seq_order()
            .into_iter()
            .map(|s| {
                let f = self.flows[ix(s)].as_ref().expect("live slot");
                let full = approx_f64(f.rate) * f.cost;
                match f.assigned {
                    Some((_, g)) => full - approx_f64(f.rate) * factor * g,
                    None => full,
                }
            })
            .sum::<f64>()
            // `Sum<f64>` folds from -0.0, so a drained state would
            // otherwise report a negative zero.
            + 0.0
    }

    /// Marginal objective decrement of deploying on `v` given the
    /// current assignments — Def. 2 maintained incrementally: only
    /// `rows[v]` is scanned.
    pub fn marginal_gain(&self, v: NodeId) -> f64 {
        let factor = self.factor();
        self.rows[ix(v)]
            .iter()
            .map(|e| {
                let f = self.flows[ix(e.slot)].as_ref().expect("row entry is live");
                let g = f.gains[ix(e.pos)];
                let cur = f.assigned.map_or(0.0, |(_, cg)| cg);
                if g > cur {
                    approx_f64(f.rate) * factor * (g - cur)
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Inserts an arriving flow and computes its assignment against
    /// `deployment`. The caller dirties the path vertices it already
    /// holds — no copy is returned. O(path length), zero allocation
    /// beyond the flow's own storage.
    ///
    /// # Panics
    /// Panics if `key` is already active or `gains` does not match the
    /// path length — the engine validates events before applying them.
    pub fn insert(
        &mut self,
        key: FlowKey,
        rate: u64,
        path: Vec<NodeId>,
        gains: Vec<f64>,
        cost: f64,
        deployment: &Deployment,
    ) {
        assert!(self.lookup(key).is_none(), "duplicate flow key");
        assert_eq!(gains.len(), path.len(), "one gain per path position");
        let factor = self.factor();
        // Best deployed on-path vertex under the (gain, smaller id)
        // preference.
        let mut assigned: Option<(NodeId, f64)> = None;
        for (pos, &v) in path.iter().enumerate() {
            if deployment.contains(v) && better_assignment((v, gains[pos]), assigned) {
                assigned = Some((v, gains[pos]));
            }
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.flows.push(None);
                self.gens.push(0);
                id32(self.flows.len() - 1)
            }
        };
        let mut row_pos = Vec::with_capacity(path.len());
        for (pos, &v) in path.iter().enumerate() {
            let row = &mut self.rows[ix(v)];
            row_pos.push(id32(row.len()));
            row.push(RowEntry {
                slot,
                pos: id32(pos),
            });
        }
        self.unprocessed.add(approx_f64(rate) * cost);
        if let Some((v, g)) = assigned {
            let s = approx_f64(rate) * factor * g;
            self.saved.add(s);
            self.primary_load[ix(v)] += s;
        } else {
            self.unserved += 1;
        }
        self.flows[ix(slot)] = Some(ActiveFlow {
            key,
            rate,
            path,
            gains,
            cost,
            assigned,
            seq: self.next_seq,
            row_pos,
        });
        self.next_seq += 1;
        self.key_index.insert(
            key,
            SlotRef {
                slot,
                gen: self.gens[ix(slot)],
            },
        );
        self.active += 1;
    }

    /// Removes a departing flow, subtracting its contributions and
    /// unlinking its row entries. Returns its path vertices (the
    /// caller dirties them). O(path length).
    ///
    /// # Panics
    /// Panics if `key` is not active.
    pub fn remove(&mut self, key: FlowKey) -> Vec<NodeId> {
        let r = self
            .key_index
            .remove(key)
            .expect("departure of an unknown flow key");
        debug_assert_eq!(self.gens[ix(r.slot)], r.gen, "stale slot reference");
        let slot = r.slot;
        let flow = self.flows[ix(slot)].take().expect("slot is live");
        // Bump the generation so any reference minted for the departed
        // flow can never resolve against the slot's next tenant.
        self.gens[ix(slot)] = self.gens[ix(slot)].wrapping_add(1);
        let factor = self.factor();
        self.unprocessed.sub(approx_f64(flow.rate) * flow.cost);
        if let Some((v, g)) = flow.assigned {
            let s = approx_f64(flow.rate) * factor * g;
            self.saved.sub(s);
            self.primary_load[ix(v)] -= s;
        } else {
            self.unserved -= 1;
        }
        for (pos, &v) in flow.path.iter().enumerate() {
            let idx = ix(flow.row_pos[pos]);
            let row = &mut self.rows[ix(v)];
            row.swap_remove(idx);
            if idx < row.len() {
                // Fix the back-pointer of the entry that moved into
                // `idx`. A simple path visits each vertex once, so the
                // moved entry belongs to a *different* (live) flow.
                let moved = row[idx];
                self.flows[ix(moved.slot)]
                    .as_mut()
                    .expect("moved row entry is live")
                    .row_pos[ix(moved.pos)] = id32(idx);
            }
        }
        self.free.push(slot);
        self.active -= 1;
        flow.path
    }

    /// Switches an active flow to a different route — a remove + insert
    /// that preserves the key, rate and sequence-independent identity.
    /// Used when a candidate-path re-selection (the joint solver's
    /// routing rounds) changes a flow's active path while it is live in
    /// the online engine. Returns the union of dirtied vertices: the
    /// old path and the new one.
    ///
    /// # Panics
    /// Panics if `key` is not active or `gains` does not match the new
    /// path length.
    pub fn reroute(
        &mut self,
        key: FlowKey,
        path: Vec<NodeId>,
        gains: Vec<f64>,
        cost: f64,
        deployment: &Deployment,
    ) -> Vec<NodeId> {
        let slot = self.lookup(key).expect("reroute of an unknown flow key");
        let rate = self.flows[ix(slot)].as_ref().expect("slot is live").rate;
        let mut dirty = self.remove(key);
        for &v in &path {
            if !dirty.contains(&v) {
                dirty.push(v);
            }
        }
        self.insert(key, rate, path, gains, cost, deployment);
        dirty
    }

    /// Re-homes every flow whose serving gain improves under a newly
    /// deployed `v` (invariant 2 restoration after an insert into the
    /// deployment). Returns the dirtied vertices: the full paths of
    /// every re-homed flow (their marginal gains changed everywhere).
    ///
    /// The returned slice borrows an internal scratch buffer — the hot
    /// repair path neither clones the vertex row nor allocates a fresh
    /// dirty vector. The slice is valid until the next `commit`.
    pub fn commit(&mut self, v: NodeId) -> &[NodeId] {
        let factor = self.factor();
        self.dirty.clear();
        // Index-based row walk: `RowEntry` is `Copy`, so each entry is
        // read out before the flow table is borrowed mutably — no
        // snapshot clone of the row is needed, and `commit` itself
        // never mutates the row.
        for i in 0..self.rows[ix(v)].len() {
            let e = self.rows[ix(v)][i];
            let f = self.flows[ix(e.slot)].as_mut().expect("row entry is live");
            let g = f.gains[ix(e.pos)];
            if !better_assignment((v, g), f.assigned) {
                continue;
            }
            if let Some((ov, og)) = f.assigned {
                let s = approx_f64(f.rate) * factor * og;
                self.saved.sub(s);
                self.primary_load[ix(ov)] -= s;
            } else {
                self.unserved -= 1;
            }
            let s = approx_f64(f.rate) * factor * g;
            self.saved.add(s);
            self.primary_load[ix(v)] += s;
            f.assigned = Some((v, g));
            self.reassignments += 1;
            self.dirty.extend_from_slice(&f.path);
        }
        &self.dirty
    }

    /// Re-homes every flow assigned to `v` after `v` was removed from
    /// `deployment` (which must no longer contain `v`). Returns the
    /// dirtied vertices. O(Σ path length of the affected flows).
    pub fn rehome_from(&mut self, v: NodeId, deployment: &Deployment) -> Vec<NodeId> {
        self.fail_rehome(v, deployment).dirty
    }

    /// Orphan reassignment after `v` stopped serving (failure or
    /// undeployment; `deployment` must no longer contain `v`): every
    /// flow assigned to `v` is re-pinned to the best surviving
    /// deployed vertex on its path under the `(gain, smaller id)`
    /// preference, or marked degraded-unprocessed (full-rate
    /// accounting, [`DeltaState::unserved_count`]) when none exists.
    /// Returns how many orphans were reassigned vs degraded alongside
    /// the dirtied vertices. O(Σ path length of the affected flows).
    pub fn fail_rehome(&mut self, v: NodeId, deployment: &Deployment) -> Failover {
        debug_assert!(!deployment.contains(v), "remove v before re-homing");
        let factor = self.factor();
        let orphans: Vec<u32> = self.rows[ix(v)]
            .iter()
            .filter(|e| {
                self.flows[ix(e.slot)]
                    .as_ref()
                    .expect("row entry is live")
                    .assigned
                    .is_some_and(|(av, _)| av == v)
            })
            .map(|e| e.slot)
            .collect();
        let mut out = Failover::default();
        for slot in orphans {
            let f = self.flows[ix(slot)].as_mut().expect("orphan is live");
            let old = f.assigned.expect("orphan was assigned").1;
            let mut next: Option<(NodeId, f64)> = None;
            for (pos, &u) in f.path.iter().enumerate() {
                if deployment.contains(u) && better_assignment((u, f.gains[pos]), next) {
                    next = Some((u, f.gains[pos]));
                }
            }
            let s_old = approx_f64(f.rate) * factor * old;
            self.saved.sub(s_old);
            self.primary_load[ix(v)] -= s_old;
            if let Some((nv, ng)) = next {
                let s = approx_f64(f.rate) * factor * ng;
                self.saved.add(s);
                self.primary_load[ix(nv)] += s;
                out.reassigned += 1;
            } else {
                self.unserved += 1;
                out.degraded += 1;
            }
            f.assigned = next;
            self.reassignments += 1;
            out.dirty.extend_from_slice(&f.path);
        }
        out
    }

    /// Exact objective increase of undeploying `v` under `deployment`
    /// (which still contains `v`): each flow assigned to `v` falls
    /// back to its second-best deployed box. Never exceeds
    /// [`DeltaState::primary_load`] of `v`.
    pub fn removal_loss(&self, v: NodeId, deployment: &Deployment) -> f64 {
        let factor = self.factor();
        let mut loss = 0.0;
        for e in &self.rows[ix(v)] {
            let f = self.flows[ix(e.slot)].as_ref().expect("row entry is live");
            let Some((av, ag)) = f.assigned else { continue };
            if av != v {
                continue;
            }
            let mut second = 0.0f64;
            for (pos, &u) in f.path.iter().enumerate() {
                if u != v && deployment.contains(u) && f.gains[pos] > second {
                    second = f.gains[pos];
                }
            }
            loss += approx_f64(f.rate) * factor * (ag - second);
        }
        loss
    }

    /// Recomputes every assignment and all running sums from scratch
    /// against `deployment` (after a full replan adopts a new
    /// deployment wholesale). Sums are rebuilt in arrival order and
    /// adopted via [`KahanSum::reset`] (exact re-sync, zero
    /// compensation), so the running objective coincides with
    /// [`DeltaState::exact_objective`] bitwise right after a rebuild.
    pub fn rebuild_assignments(&mut self, deployment: &Deployment) {
        let factor = self.factor();
        self.primary_load.iter_mut().for_each(|l| *l = 0.0);
        let mut unprocessed = 0.0f64;
        let mut saved = 0.0f64;
        self.unserved = 0;
        for slot in self.slots_in_seq_order() {
            let f = self.flows[ix(slot)].as_mut().expect("live slot");
            let mut best: Option<(NodeId, f64)> = None;
            for (pos, &u) in f.path.iter().enumerate() {
                if deployment.contains(u) && better_assignment((u, f.gains[pos]), best) {
                    best = Some((u, f.gains[pos]));
                }
            }
            if f.assigned.map(|(v, _)| v) != best.map(|(v, _)| v) {
                self.reassignments += 1;
            }
            f.assigned = best;
            unprocessed += approx_f64(f.rate) * f.cost;
            if let Some((v, g)) = best {
                let s = approx_f64(f.rate) * factor * g;
                saved += s;
                self.primary_load[ix(v)] += s;
            } else {
                self.unserved += 1;
            }
        }
        self.unprocessed.reset(unprocessed);
        self.saved.reset(saved);
    }

    /// The objective `deployment` would yield against the current
    /// active flows, with every assignment recomputed from scratch —
    /// what cloning the state, calling
    /// [`DeltaState::rebuild_assignments`] and reading
    /// [`DeltaState::exact_objective`] would report, evaluated
    /// read-only without materializing the copy. Term-for-term the
    /// same arrival-order sum, so the agreement is bitwise.
    pub fn objective_under(&self, deployment: &Deployment) -> f64 {
        let factor = self.factor();
        self.slots_in_seq_order()
            .into_iter()
            .map(|s| {
                let f = self.flows[ix(s)].as_ref().expect("live slot");
                let mut best: Option<(NodeId, f64)> = None;
                for (pos, &u) in f.path.iter().enumerate() {
                    if deployment.contains(u) && better_assignment((u, f.gains[pos]), best) {
                        best = Some((u, f.gains[pos]));
                    }
                }
                let full = approx_f64(f.rate) * f.cost;
                match best {
                    Some((_, g)) => full - approx_f64(f.rate) * factor * g,
                    None => full,
                }
            })
            .sum::<f64>()
            // Same -0.0 normalization as `exact_objective`.
            + 0.0
    }
}

/// Structural auditor and corruption hooks (tdmd-audit).
///
/// [`DeltaState::check_invariants`] re-derives every documented
/// invariant from scratch and compares it against the incremental
/// bookkeeping; the `audit_*` hooks deliberately break one invariant
/// each so the corruption proptests can assert the auditor catches it.
#[cfg(any(debug_assertions, feature = "audit", test))]
impl DeltaState {
    /// Validates invariants 1–4 (module docs) against a from-scratch
    /// recomputation under `deployment`.
    ///
    /// # Errors
    /// Returns the first violated check among `delta-key-map`,
    /// `delta-flow-shape`, `delta-active-census`, `delta-row-dead-slot`,
    /// `delta-row-mirror`, `delta-row-backpointer`, `delta-assignment`,
    /// `delta-sum-unprocessed`, `delta-sum-saved`,
    /// `delta-primary-load` and `delta-unserved-census`.
    pub fn check_invariants(
        &self,
        deployment: &Deployment,
    ) -> Result<(), tdmd_core::audit::AuditError> {
        use tdmd_core::audit::AuditError;
        let err = |check: &'static str, detail: String| Err(AuditError { check, detail });
        let tol = |x: f64| 1e-6 * x.abs().max(1.0);
        // Slot table vs key map vs census.
        let mut live = 0usize;
        for (slot, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            live += 1;
            let expected = SlotRef {
                slot: id32(slot),
                gen: self.gens[slot],
            };
            if self.key_index.get(f.key) != Some(expected) {
                return err(
                    "delta-key-map",
                    format!(
                        "flow key {} not mapped to slot {slot} at generation {}",
                        f.key, expected.gen
                    ),
                );
            }
            if f.gains.len() != f.path.len() || f.row_pos.len() != f.path.len() {
                return err(
                    "delta-flow-shape",
                    format!(
                        "flow key {}: path {}, gains {}, row_pos {}",
                        f.key,
                        f.path.len(),
                        f.gains.len(),
                        f.row_pos.len()
                    ),
                );
            }
        }
        if live != self.active || self.key_index.len() != live {
            return err(
                "delta-active-census",
                format!(
                    "{live} live slots, active = {}, key map = {}",
                    self.active,
                    self.key_index.len()
                ),
            );
        }
        // Invariant 1 — row mirror, both directions. Forward: every
        // row entry points at a live flow crossing this vertex, and
        // the flow's back-pointer points back at it.
        let mut total_entries = 0usize;
        for (v, row) in self.rows.iter().enumerate() {
            for (idx, e) in row.iter().enumerate() {
                let Some(f) = self.flows.get(ix(e.slot)).and_then(|f| f.as_ref()) else {
                    return err(
                        "delta-row-dead-slot",
                        format!("rows[{v}][{idx}] references dead slot {}", e.slot),
                    );
                };
                if f.path.get(ix(e.pos)) != Some(&id32(v)) {
                    return err(
                        "delta-row-mirror",
                        format!(
                            "rows[{v}][{idx}] claims position {} of flow key {}, whose path \
                             disagrees",
                            e.pos, f.key
                        ),
                    );
                }
                if f.row_pos[ix(e.pos)] != id32(idx) {
                    return err(
                        "delta-row-backpointer",
                        format!(
                            "rows[{v}][{idx}]: flow key {} back-pointer says {}",
                            f.key,
                            f.row_pos[ix(e.pos)]
                        ),
                    );
                }
                total_entries += 1;
            }
        }
        // Reverse: one entry per (active flow, path vertex). Combined
        // with the forward direction this pins the mirror 1:1.
        let path_total: usize = self.active_flows().map(|f| f.path.len()).sum();
        if total_entries != path_total {
            return err(
                "delta-row-mirror",
                format!("{total_entries} row entries for {path_total} path vertices"),
            );
        }
        // Invariant 2 — assignment optimality, recomputed per flow.
        // Gains are bitwise copies of the stored per-position gains,
        // so the comparison is exact (bit-level, not float ==).
        for f in self.active_flows() {
            let mut best: Option<(NodeId, f64)> = None;
            for (pos, &u) in f.path.iter().enumerate() {
                if deployment.contains(u) && better_assignment((u, f.gains[pos]), best) {
                    best = Some((u, f.gains[pos]));
                }
            }
            let agree = match (f.assigned, best) {
                (None, None) => true,
                (Some((av, ag)), Some((bv, bg))) => av == bv && ag.to_bits() == bg.to_bits(),
                _ => false,
            };
            if !agree {
                return err(
                    "delta-assignment",
                    format!(
                        "flow key {}: assigned {:?}, optimal {best:?}",
                        f.key, f.assigned
                    ),
                );
            }
        }
        // Invariants 3–4 — running sums and unserved census, rebuilt
        // in arrival order like `rebuild_assignments`.
        let factor = self.factor();
        let mut unprocessed = 0.0;
        let mut saved = 0.0;
        let mut primary = vec![0.0f64; self.rows.len()];
        let mut unserved = 0usize;
        for slot in self.slots_in_seq_order() {
            let f = self.flows[ix(slot)].as_ref().expect("live slot");
            unprocessed += approx_f64(f.rate) * f.cost;
            match f.assigned {
                Some((v, g)) => {
                    let s = approx_f64(f.rate) * factor * g;
                    saved += s;
                    primary[ix(v)] += s;
                }
                None => unserved += 1,
            }
        }
        if (self.unprocessed.value() - unprocessed).abs() > tol(unprocessed) {
            return err(
                "delta-sum-unprocessed",
                format!(
                    "running {} vs rebuilt {unprocessed}",
                    self.unprocessed.value()
                ),
            );
        }
        if (self.saved.value() - saved).abs() > tol(saved) {
            return err(
                "delta-sum-saved",
                format!("running {} vs rebuilt {saved}", self.saved.value()),
            );
        }
        for (v, (&a, &b)) in self.primary_load.iter().zip(&primary).enumerate() {
            if (a - b).abs() > tol(b) {
                return err(
                    "delta-primary-load",
                    format!("vertex {v}: running {a} vs rebuilt {b}"),
                );
            }
        }
        if self.unserved != unserved {
            return err(
                "delta-unserved-census",
                format!("running {} vs rebuilt {unserved}", self.unserved),
            );
        }
        Ok(())
    }

    /// Corruption hook: repins `key`'s assignment without fixing the
    /// running sums — breaks invariant 2 (and usually 3).
    ///
    /// # Panics
    /// Panics if `key` is not active.
    pub fn audit_force_assignment(&mut self, key: FlowKey, assigned: Option<(NodeId, f64)>) {
        let Some(slot) = self.lookup(key) else {
            panic!("corrupting an unknown flow key")
        };
        self.flows[ix(slot)]
            .as_mut()
            .expect("slot is live")
            .assigned = assigned;
    }

    /// Corruption hook: skews the running `saved` sum — breaks
    /// invariant 3.
    pub fn audit_skew_saved(&mut self, delta: f64) {
        self.saved.add(delta);
    }

    /// Corruption hook: swaps the first two entries of `v`'s row
    /// without fixing the back-pointers — breaks invariant 1. Returns
    /// whether the row had two entries to swap.
    pub fn audit_swap_row_entries(&mut self, v: NodeId) -> bool {
        let row = &mut self.rows[ix(v)];
        if row.len() < 2 {
            return false;
        }
        row.swap(0, 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricer::{HopPricer, PathPricer};

    /// Inserts a flow priced by hop count.
    fn add(state: &mut DeltaState, key: FlowKey, rate: u64, path: Vec<NodeId>, dep: &Deployment) {
        let f = Flow::new(0, rate, path.clone());
        let pricer = HopPricer::default();
        let gains = pricer.gains(&f);
        let cost = pricer.unprocessed_cost(&f);
        state.insert(key, rate, path, gains, cost, dep);
    }

    #[test]
    fn objective_tracks_arrivals_and_departures() {
        let mut st = DeltaState::new(4, 0.5);
        let dep = Deployment::from_vertices(4, [1]);
        add(&mut st, 7, 2, vec![3, 2, 1, 0], &dep); // gain at v1 = 1
        assert_eq!(st.active_count(), 1);
        // unprocessed 2*3 = 6; saved 2*0.5*1 = 1.
        assert_eq!(st.objective(), 5.0);
        assert_eq!(st.exact_objective(), 5.0);
        add(&mut st, 8, 4, vec![2, 1, 0], &dep); // gain at v1 = 1
                                                 // + unprocessed 4*2 = 8, + saved 4*0.5*1 = 2.
        assert_eq!(st.objective(), 11.0);
        let dirty = st.remove(7);
        assert_eq!(dirty, vec![3, 2, 1, 0]);
        assert_eq!(st.objective(), 6.0);
        st.remove(8);
        assert_eq!(st.objective(), 0.0);
        assert_eq!(st.active_count(), 0);
        // Not the empty `Sum<f64>`'s -0.0 — a drained state must
        // format as "0.00", not "-0.00".
        assert!(st.exact_objective().is_sign_positive());
    }

    #[test]
    fn reroute_switches_path_and_preserves_identity() {
        let mut st = DeltaState::new(5, 0.5);
        let dep = Deployment::from_vertices(5, [4]);
        // Active on 0 → 1 → 2: no deployed vertex on path, unserved.
        add(&mut st, 7, 2, vec![0, 1, 2], &dep);
        assert_eq!(st.objective(), 4.0); // 2·2, nothing saved
        assert_eq!(st.unserved_count(), 1);
        // Switch to the covered candidate 0 → 4 → 2.
        let f = Flow::new(0, 2, vec![0, 4, 2]);
        let pricer = HopPricer::default();
        let (gains, cost) = (pricer.gains(&f), pricer.unprocessed_cost(&f));
        let mut dirty = st.reroute(7, vec![0, 4, 2], gains, cost, &dep);
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 1, 2, 4]); // old ∪ new path
        assert_eq!(st.active_count(), 1);
        assert_eq!(st.unserved_count(), 0);
        assert_eq!(st.flow(7).unwrap().assigned, Some((4, 1.0)));
        assert_eq!(st.objective(), 3.0); // 2·2 − 2·0.5·1
                                         // The old route's rows are fully unlinked.
        assert_eq!(st.marginal_gain(1), 0.0);
    }

    #[test]
    fn commit_rehomes_to_better_boxes() {
        let mut st = DeltaState::new(4, 0.0);
        let mut dep = Deployment::from_vertices(4, [1]);
        add(&mut st, 0, 1, vec![3, 2, 1, 0], &dep);
        assert_eq!(st.objective(), 2.0); // 3 hops − gain 1
        dep.insert(3);
        let dirty = st.commit(3);
        assert_eq!(dirty, vec![3, 2, 1, 0]);
        assert_eq!(st.objective(), 0.0); // served at the source
        assert_eq!(st.primary_load(3), 3.0);
        assert_eq!(st.primary_load(1), 0.0);
    }

    #[test]
    fn rehome_from_falls_back_to_second_best() {
        let mut st = DeltaState::new(4, 0.0);
        let mut dep = Deployment::from_vertices(4, [1, 3]);
        add(&mut st, 0, 1, vec![3, 2, 1, 0], &dep);
        assert_eq!(st.flow(0).unwrap().assigned, Some((3, 3.0)));
        assert_eq!(st.removal_loss(3, &dep), 2.0); // falls to gain 1 at v1
        dep.remove(3);
        st.rehome_from(3, &dep);
        assert_eq!(st.flow(0).unwrap().assigned, Some((1, 1.0)));
        assert_eq!(st.objective(), 2.0);
        assert!(st.primary_load(3).abs() < 1e-12);
    }

    #[test]
    fn marginal_gain_matches_def2() {
        let mut st = DeltaState::new(4, 0.5);
        let dep = Deployment::empty(4);
        add(&mut st, 0, 2, vec![3, 2, 1, 0], &dep);
        add(&mut st, 1, 4, vec![2, 1], &dep);
        // v2 (id 2): f0 gain 2, f1 gain 1 → 0.5*(2*2 + 4*1) = 4.
        assert_eq!(st.marginal_gain(2), 4.0);
        // After deploying v2, v3's marginal shrinks to the delta.
        let mut dep = dep;
        dep.insert(2);
        st.commit(2);
        // v3: f0 gain 3 vs current 2 → 0.5*2*(3−2) = 1.
        assert_eq!(st.marginal_gain(3), 1.0);
    }

    #[test]
    fn snapshot_densifies_in_arrival_order_with_slot_reuse() {
        let mut st = DeltaState::new(4, 0.5);
        let dep = Deployment::empty(4);
        add(&mut st, 10, 1, vec![0, 1], &dep);
        add(&mut st, 20, 2, vec![1, 2], &dep);
        st.remove(10);
        add(&mut st, 30, 3, vec![2, 3], &dep); // reuses slot 0 but arrives last
        let snap = st.active_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id, 0);
        assert_eq!(snap[0].rate, 2, "key 20 arrived first among survivors");
        assert_eq!(snap[1].rate, 3);
    }

    #[test]
    fn rebuild_matches_incremental_bookkeeping() {
        let mut st = DeltaState::new(5, 0.3);
        let mut dep = Deployment::empty(5);
        add(&mut st, 0, 2, vec![4, 3, 2, 1, 0], &dep);
        add(&mut st, 1, 5, vec![3, 2, 1], &dep);
        dep.insert(2);
        st.commit(2);
        dep.insert(4);
        st.commit(4);
        let incremental = st.objective();
        let mut rebuilt = st.clone();
        rebuilt.rebuild_assignments(&dep);
        assert!((rebuilt.objective() - incremental).abs() < 1e-9);
        assert_eq!(rebuilt.exact_objective(), st.exact_objective());
    }

    #[test]
    fn assignment_tiebreak_prefers_smaller_vertex() {
        // Two deployed vertices with equal gain 0 at the destination
        // never happen on simple paths under hop pricing, so force a
        // tie with λ anything and a custom gains vector.
        let mut st = DeltaState::new(3, 0.5);
        let dep = Deployment::from_vertices(3, [1, 2]);
        st.insert(0, 1, vec![2, 1, 0], vec![1.0, 1.0, 0.0], 2.0, &dep);
        assert_eq!(st.flow(0).unwrap().assigned, Some((1, 1.0)));
    }

    #[test]
    #[should_panic(expected = "duplicate flow key")]
    fn duplicate_keys_are_rejected() {
        let mut st = DeltaState::new(3, 0.5);
        let dep = Deployment::empty(3);
        add(&mut st, 0, 1, vec![0, 1], &dep);
        add(&mut st, 0, 1, vec![1, 2], &dep);
    }

    #[test]
    fn key_index_survives_grow_and_backward_shift_churn() {
        // Adversarial keys: multiples of the table capacity collide in
        // the low bits; Fibonacci hashing must still spread them, and
        // backward-shift deletion must keep every survivor reachable
        // across interleaved insert/remove waves that force growth.
        let mut idx = KeyIndex::default();
        for slot in 0..512u32 {
            idx.insert(u64::from(slot) * 64, SlotRef { slot, gen: 0 });
        }
        assert_eq!(idx.len(), 512);
        for slot in (0..512u32).step_by(2) {
            assert!(idx.remove(u64::from(slot) * 64).is_some());
        }
        assert_eq!(idx.len(), 256);
        for slot in 0..512u32 {
            let got = idx.get(u64::from(slot) * 64);
            if slot % 2 == 0 {
                assert_eq!(got, None, "removed key {slot} resurfaced");
            } else {
                assert_eq!(
                    got,
                    Some(SlotRef { slot, gen: 0 }),
                    "surviving key {slot} lost"
                );
            }
        }
        assert_eq!(idx.remove(9_999_999), None);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut st = DeltaState::new(4, 0.5);
        let dep = Deployment::empty(4);
        add(&mut st, 10, 1, vec![0, 1], &dep);
        st.remove(10);
        assert!(!st.is_active(10));
        assert!(st.flow(10).is_none());
        // Key 20 reuses slot 0 under a bumped generation; the old
        // key's references are dead, the new key's resolve.
        add(&mut st, 20, 2, vec![1, 2], &dep);
        assert_eq!(st.gens[0], 1);
        assert!(st.is_active(20));
        assert_eq!(st.flow(20).unwrap().rate, 2);
        assert!(st.flow(10).is_none());
    }

    #[test]
    fn commit_reuses_the_dirty_scratch_across_calls() {
        let mut st = DeltaState::new(4, 0.0);
        let mut dep = Deployment::from_vertices(4, [1]);
        add(&mut st, 0, 1, vec![3, 2, 1, 0], &dep);
        dep.insert(2);
        assert_eq!(st.commit(2), vec![3, 2, 1, 0]);
        // The second commit clears and refills the same scratch; a
        // no-improvement commit yields an empty dirty set.
        dep.insert(3);
        assert_eq!(st.commit(3), vec![3, 2, 1, 0]);
        assert_eq!(st.commit(1), &[] as &[NodeId]);
    }

    #[test]
    fn objective_under_matches_clone_rebuild_bitwise() {
        let mut st = DeltaState::new(5, 0.3);
        let dep = Deployment::empty(5);
        add(&mut st, 0, 2, vec![4, 3, 2, 1, 0], &dep);
        add(&mut st, 1, 5, vec![3, 2, 1], &dep);
        add(&mut st, 2, 3, vec![2, 1, 0], &dep);
        for probe in [
            Deployment::from_vertices(5, [2]),
            Deployment::from_vertices(5, [1, 4]),
            Deployment::from_vertices(5, [0, 2, 3]),
            Deployment::empty(5),
        ] {
            let mut cloned = st.clone();
            cloned.rebuild_assignments(&probe);
            assert_eq!(
                st.objective_under(&probe).to_bits(),
                cloned.exact_objective().to_bits(),
                "probe {probe:?}"
            );
        }
        // The read-only probe did not disturb the live state.
        st.check_invariants(&dep).unwrap();
    }

    #[test]
    fn kahan_sums_recover_exactness_after_rebuild() {
        let mut st = DeltaState::new(4, 0.5);
        let mut dep = Deployment::empty(4);
        for key in 0..64u64 {
            add(&mut st, key, 1 + key % 7, vec![3, 2, 1, 0], &dep);
        }
        for key in (0..64u64).step_by(3) {
            st.remove(key);
        }
        dep.insert(1);
        st.commit(1);
        st.rebuild_assignments(&dep);
        assert_eq!(st.objective().to_bits(), st.exact_objective().to_bits());
    }
}
