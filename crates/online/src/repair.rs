//! The pluggable repair policy and its telemetry.
//!
//! After every event the engine restores solution quality with two
//! mechanisms, both bounded per event:
//!
//! * **Local repair** — drop deployed vertices whose removal is free
//!   (zero primary load), greedily fill spare budget from the lazy
//!   queue, then apply up to [`RepairPolicy::move_budget`] improving
//!   swaps (undeploy the lightest-loaded box, deploy the queue's best
//!   candidate) — each swap is accepted only when the candidate's
//!   exact gain exceeds the victim's primary load, a conservative
//!   upper bound on the removal loss, so every accepted swap strictly
//!   improves the objective.
//! * **Drift-triggered full replan** — every
//!   [`RepairPolicy::sample_every`] events the engine runs the
//!   pricer's from-scratch oracle on a densified snapshot of the
//!   active flows. If the incremental objective exceeds the oracle's
//!   by more than a factor of `1 + drift_eps`, the oracle's
//!   deployment is adopted. With [`RepairPolicy::force_replan`] the
//!   oracle is adopted *unconditionally on every event*, which makes
//!   the engine bit-for-bit equivalent to a per-event from-scratch
//!   solve — the property tests pin that equivalence.
//!
//! Both mechanisms are additionally subject to the policy's
//! [`ReconfigBudget`]: every chargeable move
//! (greedy add, swap, adopted replan) must be admitted by the
//! migration token bucket, swaps must beat their migration cost by
//! the configured hysteresis margin, and a replan whose deployment
//! diff the bucket cannot cover is *deferred* — repair falls back to
//! budget-capped local repair instead (see [`crate::budget`]). Under
//! the default [`ReconfigBudget::unlimited`](crate::ReconfigBudget::unlimited)
//! budget no move is ever deferred and the engine is bitwise the
//! unbudgeted engine described above.
//!
//! The documented bound: at every sampled event where the replan was
//! admitted (always, under an unlimited or sufficient budget — see
//! DESIGN.md §15) the objective is within `1 + drift_eps` of the
//! from-scratch solve (exactly equal under `force_replan`); between
//! admitted samples only budget-capped local repair runs, so the
//! instantaneous gap is bounded by the drift accumulated since the
//! last admitted sample, with every deferral counted in
//! [`RepairStats::budget_deferrals`].
//!
//! # Degradation-aware repair
//!
//! Failure events get one extra mechanism. A
//! [`MiddleboxFailed`](crate::Event::MiddleboxFailed) /
//! [`VertexDown`](crate::Event::VertexDown) frees the victim's budget
//! slot, and the ordinary greedy fill immediately spends it on the
//! best surviving candidate from the cross-event CELF queue. When
//! that still leaves flows degraded (no surviving middlebox on their
//! path) and [`RepairPolicy::replan_on_degraded`] is set, the engine
//! falls back to an off-schedule drift check: the from-scratch oracle
//! is consulted right away (failed vertices stripped from its answer)
//! and adopted under the usual `1 + drift_eps` rule. Under active
//! failures the oracle-equality guarantee is relaxed to *safety*: no
//! repair mechanism ever deploys on, or leaves a flow assigned to, a
//! failed vertex.

use serde::{Deserialize, Serialize};

use crate::budget::ReconfigBudget;

/// Repair configuration of an [`OnlineEngine`](crate::OnlineEngine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairPolicy {
    /// Maximum improving swaps applied per event.
    pub move_budget: usize,
    /// Relative drift tolerance ε: a sampled incremental objective
    /// above `(1 + ε) ·` oracle triggers adoption of the oracle
    /// deployment.
    pub drift_eps: f64,
    /// Sample the from-scratch oracle every this many events
    /// (`0` disables drift sampling entirely).
    pub sample_every: u64,
    /// Adopt the oracle on every event (testing / oracle-tracking
    /// mode; equivalent to the timeline's "replanned" policy).
    pub force_replan: bool,
    /// After a failure event that leaves flows degraded (no surviving
    /// on-path middlebox) even once local repair has spent the freed
    /// budget slot, run an off-schedule drift check so a full replan
    /// can recover coverage without waiting for the next sample.
    pub replan_on_degraded: bool,
    /// Migration-cost model and amortized reconfiguration budget every
    /// chargeable repair move is admitted against (see
    /// [`crate::budget`]). The default
    /// [`ReconfigBudget::unlimited`] never defers a move.
    pub budget: ReconfigBudget,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        Self {
            move_budget: 4,
            drift_eps: 0.05,
            sample_every: 256,
            force_replan: false,
            replan_on_degraded: true,
            budget: ReconfigBudget::unlimited(),
        }
    }
}

impl RepairPolicy {
    /// Local-repair-only policy: never consults the oracle, not even
    /// after a degrading failure.
    pub fn local_only(move_budget: usize) -> Self {
        Self {
            move_budget,
            drift_eps: f64::INFINITY,
            sample_every: 0,
            force_replan: false,
            replan_on_degraded: false,
            budget: ReconfigBudget::unlimited(),
        }
    }

    /// Oracle-tracking policy: replan from scratch on every event.
    pub fn forced_replan() -> Self {
        Self {
            move_budget: 0,
            drift_eps: 0.0,
            sample_every: 1,
            force_replan: true,
            replan_on_degraded: true,
            budget: ReconfigBudget::unlimited(),
        }
    }

    /// The default policy running under `budget` — the "operating
    /// under a migration budget" configuration of the README
    /// quickstart.
    pub fn budgeted(budget: ReconfigBudget) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }
}

/// Per-engine repair telemetry.
///
/// Serializable because engine snapshots
/// ([`crate::snapshot::EngineSnapshot`]) carry it across a
/// snapshot/restore round trip: `events` drives the
/// [`RepairPolicy::sample_every`] schedule, so a restored engine must
/// resume the drift-sampling cadence exactly where the live one left
/// off. Every field is finite (`last_drift` is a ratio of finite
/// objectives, 0 when never sampled), so the JSON round trip is
/// lossless.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairStats {
    /// Events applied.
    pub events: u64,
    /// Arrival events.
    pub arrivals: u64,
    /// Departure events.
    pub departures: u64,
    /// Greedy additions committed.
    pub adds: u64,
    /// Free (zero-loss) drops.
    pub drops: u64,
    /// Improving swaps applied.
    pub swaps: u64,
    /// Oracle solves sampled.
    pub drift_samples: u64,
    /// Full replans adopted.
    pub replans: u64,
    /// Oracle solves that failed (infeasible budget).
    pub oracle_failures: u64,
    /// Failure events applied ([`MiddleboxFailed`](crate::Event::MiddleboxFailed)
    /// + [`VertexDown`](crate::Event::VertexDown)).
    pub failures: u64,
    /// Recovery events applied.
    pub recoveries: u64,
    /// Flows orphaned by failures (re-pinned or degraded).
    pub flows_orphaned: u64,
    /// Orphaned flows left degraded (no surviving on-path middlebox
    /// at the instant of the failure; repair may re-cover them later).
    pub flows_degraded: u64,
    /// Relative drift observed at the last sample
    /// (`objective / oracle − 1`; 0 when never sampled).
    pub last_drift: f64,
    /// Middleboxes deployed/undeployed by chargeable repair moves
    /// (adds, both legs of a swap, the symmetric difference of an
    /// adopted replan; free zero-load drops are exempt).
    ///
    /// The four budget fields carry `#[serde(default)]` so pre-budget
    /// snapshot documents still *parse* — restore then rejects them on
    /// the snapshot version, never silently zero-filling live budget
    /// state.
    #[serde(default)]
    pub boxes_moved: u64,
    /// Flow→middlebox assignment changes caused by chargeable repair
    /// moves (failure-induced orphaning is not charged).
    #[serde(default)]
    pub flows_reassigned: u64,
    /// Repair moves skipped because the reconfiguration token bucket
    /// could not cover their migration cost.
    #[serde(default)]
    pub budget_deferrals: u64,
    /// Total migration cost debited from the token bucket.
    #[serde(default)]
    pub budget_spent: f64,
}
