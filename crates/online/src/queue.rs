//! [`LazyQueue`] — a CELF lazy priority queue whose cached gains
//! survive across churn events.
//!
//! The static CELF greedy exploits submodularity: cached marginal
//! gains only shrink as the deployment grows, so a popped entry whose
//! refreshed gain still tops the heap is the round's true maximum.
//! Under churn the same trick works across *events* with two
//! amendments:
//!
//! * **Departures and commits** only lower gains, so existing cached
//!   entries stay valid *upper bounds* — they are merely flagged
//!   dirty and re-evaluated lazily if they ever reach the top.
//! * **Arrivals** can raise a gain, breaking the upper-bound
//!   invariant; the queue restores it by bumping the cache with the
//!   new flow's maximum possible contribution (`r · (1 − λ) · gain`
//!   at that vertex) — an optimistic bound that the next lazy
//!   re-evaluation tightens.
//!
//! * **Failures** remove a vertex from the race entirely:
//!   [`LazyQueue::block`] makes [`LazyQueue::settle`] discard the
//!   vertex's entries instead of returning them, and recovery
//!   ([`LazyQueue::unblock`]) re-enters it via [`LazyQueue::reinsert`]
//!   with an exact bound.
//!
//! Every push carries an **epoch stamp**; bumping a vertex's stamp
//! invalidates all of its older heap entries at once (they are
//! skipped on pop), so the queue never scans or rebuilds the heap to
//! invalidate. Per vertex at most one entry carries the current
//! stamp, so the heap size stays O(total pushes), and each event
//! pushes only O(path length) entries.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use tdmd_core::num::ix;
use tdmd_core::order::TotalGain;
use tdmd_core::Deployment;
use tdmd_graph::NodeId;

/// Heap entry: cached gain upper bound for a vertex at a stamp.
#[derive(Debug, Clone, Copy)]
struct QEntry {
    gain: f64,
    v: NodeId,
    stamp: u64,
}

impl QEntry {
    /// Ordering key: larger gain first ([`TotalGain`]'s total order);
    /// ties prefer the smaller vertex id, like the static greedy's
    /// ladder.
    #[inline]
    fn key(&self) -> (TotalGain, Reverse<NodeId>) {
        (TotalGain::new(self.gain), Reverse(self.v))
    }
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Lazy max-gain queue with epoch-stamped invalidation.
#[derive(Debug, Clone)]
pub struct LazyQueue {
    heap: BinaryHeap<QEntry>,
    /// Current stamp per vertex; heap entries with an older stamp are
    /// dead.
    stamp: Vec<u64>,
    /// Last known gain upper bound per vertex.
    cached: Vec<f64>,
    /// Whether the cached bound must be re-evaluated before trusting
    /// it as exact.
    dirty: Vec<bool>,
    /// Failed vertices: ineligible candidates whose entries are
    /// consumed (not returned) by [`LazyQueue::settle`]. Unblocking
    /// does not resurrect consumed entries — the caller re-enters the
    /// vertex with [`LazyQueue::reinsert`].
    blocked: Vec<bool>,
    /// Number of exact re-evaluations performed (telemetry).
    pub recomputes: u64,
}

impl LazyQueue {
    /// Empty queue over `n` vertices. Vertices enter the heap the
    /// first time a flow path touches them ([`LazyQueue::touch_up`]).
    pub fn new(n: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            stamp: vec![0; n],
            cached: vec![0.0; n],
            dirty: vec![false; n],
            blocked: vec![false; n],
            recomputes: 0,
        }
    }

    /// Marks `v` ineligible (failed): [`LazyQueue::settle`] discards
    /// its entries instead of returning them.
    pub fn block(&mut self, v: NodeId) {
        self.blocked[ix(v)] = true;
    }

    /// Lifts a [`LazyQueue::block`]. Entries discarded while blocked
    /// are gone — follow up with [`LazyQueue::reinsert`] to put the
    /// vertex back in the race.
    pub fn unblock(&mut self, v: NodeId) {
        self.blocked[ix(v)] = false;
    }

    /// Whether `v` is currently blocked.
    pub fn is_blocked(&self, v: NodeId) -> bool {
        self.blocked[ix(v)]
    }

    /// Arrival invalidation: raises `v`'s bound by `bump` (the new
    /// flow's maximum contribution at `v`) and pushes a fresh entry.
    pub fn touch_up(&mut self, v: NodeId, bump: f64) {
        let i = ix(v);
        self.cached[i] += bump;
        self.dirty[i] = true;
        self.stamp[i] += 1;
        self.heap.push(QEntry {
            gain: self.cached[i],
            v,
            stamp: self.stamp[i],
        });
    }

    /// Departure/commit invalidation: gains only shrink, so the
    /// existing entry stays a valid upper bound — just mark it for
    /// lazy re-evaluation.
    pub fn touch_down(&mut self, v: NodeId) {
        self.dirty[ix(v)] = true;
    }

    /// Re-enters a vertex that left the candidate pool (it was
    /// deployed and has now been undeployed, e.g. by a swap or a
    /// replan).
    pub fn reinsert(&mut self, v: NodeId, bound: f64) {
        let i = ix(v);
        self.cached[i] = bound;
        self.dirty[i] = true;
        self.stamp[i] += 1;
        self.heap.push(QEntry {
            gain: bound,
            v,
            stamp: self.stamp[i],
        });
    }

    /// Settles the head of the queue: skips dead and deployed
    /// entries, lazily re-evaluates dirty ones via `recompute`, and
    /// returns the vertex with the (exact) maximum gain without
    /// removing it. `None` when no candidate remains.
    pub fn settle<F: FnMut(NodeId) -> f64>(
        &mut self,
        deployment: &Deployment,
        mut recompute: F,
    ) -> Option<(NodeId, f64)> {
        loop {
            let top = *self.heap.peek()?;
            let i = ix(top.v);
            if top.stamp != self.stamp[i] || deployment.contains(top.v) || self.blocked[i] {
                self.heap.pop();
                continue;
            }
            if self.dirty[i] {
                self.heap.pop();
                let g = recompute(top.v);
                self.recomputes += 1;
                self.dirty[i] = false;
                self.cached[i] = g;
                self.stamp[i] += 1;
                self.heap.push(QEntry {
                    gain: g,
                    v: top.v,
                    stamp: self.stamp[i],
                });
                continue;
            }
            return Some((top.v, top.gain));
        }
    }

    /// Removes the settled head (call right after
    /// [`LazyQueue::settle`] returned `Some((v, _))` to consume it,
    /// typically because `v` is being deployed).
    pub fn take(&mut self, v: NodeId) {
        debug_assert_eq!(self.heap.peek().map(|e| e.v), Some(v), "take after settle");
        self.heap.pop();
    }

    /// Marks every vertex dirty (after a replan rewires assignments
    /// wholesale). Existing entries survive as stale upper bounds
    /// only if gains could not have increased; the caller must
    /// [`LazyQueue::reinsert`] vertices whose bound may have risen.
    pub fn invalidate_all(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = true);
    }

    /// Number of live + dead entries currently in the heap.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }
}

/// Structural auditor and corruption hooks (tdmd-audit).
#[cfg(any(debug_assertions, feature = "audit", test))]
impl LazyQueue {
    /// Validates epoch coherence against a from-scratch gain
    /// evaluation: per-vertex bookkeeping shapes agree, no heap entry
    /// carries a stamp from the future, at most one entry per vertex
    /// is live (stamp-current) and its gain is bitwise the cached
    /// bound, every clean cached bound equals the exact gain, every
    /// dirty bound still upper-bounds it, and every eligible vertex
    /// with a positive exact gain has a live entry (nothing silently
    /// fell out of the race).
    ///
    /// # Errors
    /// Returns the first violated check among `queue-shape`,
    /// `queue-entry-bounds`, `queue-epoch-ahead`,
    /// `queue-epoch-duplicate`, `queue-cached-mismatch`,
    /// `queue-stale-exact`, `queue-bound-violated` and
    /// `queue-missing-candidate`.
    pub fn check_coherence<F: FnMut(NodeId) -> f64>(
        &self,
        deployment: &Deployment,
        mut exact: F,
    ) -> Result<(), tdmd_core::audit::AuditError> {
        use tdmd_core::audit::AuditError;
        let err = |check: &'static str, detail: String| Err(AuditError { check, detail });
        let n = self.stamp.len();
        if self.cached.len() != n || self.dirty.len() != n || self.blocked.len() != n {
            return err(
                "queue-shape",
                format!(
                    "stamp {n}, cached {}, dirty {}, blocked {}",
                    self.cached.len(),
                    self.dirty.len(),
                    self.blocked.len()
                ),
            );
        }
        let mut live = vec![false; n];
        for e in &self.heap {
            let i = ix(e.v);
            if i >= n {
                return err(
                    "queue-entry-bounds",
                    format!("heap entry for vertex {} of {n}", e.v),
                );
            }
            if e.stamp > self.stamp[i] {
                return err(
                    "queue-epoch-ahead",
                    format!(
                        "vertex {} entry stamped {} ahead of epoch {}",
                        e.v, e.stamp, self.stamp[i]
                    ),
                );
            }
            if e.stamp == self.stamp[i] {
                if live[i] {
                    return err(
                        "queue-epoch-duplicate",
                        format!("vertex {} has two live heap entries", e.v),
                    );
                }
                live[i] = true;
                // Pushes always carry the cached bound, so a live
                // entry matches it bit for bit.
                if e.gain.to_bits() != self.cached[i].to_bits() {
                    return err(
                        "queue-cached-mismatch",
                        format!(
                            "vertex {} live entry gain {} != cached bound {}",
                            e.v, e.gain, self.cached[i]
                        ),
                    );
                }
            }
        }
        const EPS: f64 = 1e-9;
        for (i, &is_live) in live.iter().enumerate() {
            let v = tdmd_core::num::id32(i);
            if self.blocked[i] || deployment.contains(v) {
                continue;
            }
            let g = exact(v);
            if is_live {
                if self.dirty[i] {
                    if self.cached[i] + EPS < g {
                        return err(
                            "queue-bound-violated",
                            format!(
                                "vertex {v}: dirty bound {} below exact gain {g}",
                                self.cached[i]
                            ),
                        );
                    }
                } else if (self.cached[i] - g).abs() > EPS * g.abs().max(1.0) {
                    return err(
                        "queue-stale-exact",
                        format!(
                            "vertex {v}: clean bound {} != exact gain {g}",
                            self.cached[i]
                        ),
                    );
                }
            } else if g > EPS {
                return err(
                    "queue-missing-candidate",
                    format!("vertex {v} has exact gain {g} but no live heap entry"),
                );
            }
        }
        Ok(())
    }

    /// Corruption hook: bumps `v`'s epoch without pushing a fresh
    /// entry, killing its live entry — breaks the coverage invariant
    /// (`queue-missing-candidate`) or the staleness accounting.
    pub fn audit_stale_stamp(&mut self, v: NodeId) {
        self.stamp[ix(v)] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settle_returns_exact_max_after_lazy_refresh() {
        let mut q = LazyQueue::new(3);
        // Optimistic bounds: v0=5, v1=9, v2=1; true gains 4, 3, 1.
        q.touch_up(0, 5.0);
        q.touch_up(1, 9.0);
        q.touch_up(2, 1.0);
        let dep = Deployment::empty(3);
        let truth = [4.0, 3.0, 1.0];
        let (v, g) = q.settle(&dep, |v| truth[v as usize]).unwrap();
        assert_eq!((v, g), (0, 4.0));
        // v1's inflated bound forced one refresh, v0's another.
        assert!(q.recomputes >= 2);
    }

    #[test]
    fn deployed_vertices_are_skipped() {
        let mut q = LazyQueue::new(2);
        q.touch_up(0, 5.0);
        q.touch_up(1, 2.0);
        let dep = Deployment::from_vertices(2, [0]);
        let (v, _) = q.settle(&dep, |_| 2.0).unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn stale_stamps_are_dead() {
        let mut q = LazyQueue::new(2);
        q.touch_up(0, 5.0);
        q.touch_up(0, 5.0); // stamps the old entry dead, bound now 10
        let dep = Deployment::empty(2);
        let (v, g) = q.settle(&dep, |_| 7.0).unwrap();
        assert_eq!((v, g), (0, 7.0));
        q.take(0);
        assert!(q.settle(&dep, |_| 0.0).is_none(), "no duplicate survives");
    }

    #[test]
    fn touch_down_forces_reevaluation() {
        let mut q = LazyQueue::new(2);
        q.touch_up(0, 5.0);
        let dep = Deployment::empty(2);
        let (_, g) = q.settle(&dep, |_| 5.0).unwrap();
        assert_eq!(g, 5.0);
        q.touch_down(0);
        let (_, g) = q.settle(&dep, |_| 2.5).unwrap();
        assert_eq!(g, 2.5, "departure shrank the gain");
    }

    #[test]
    fn reinsert_revives_an_undeployed_vertex() {
        let mut q = LazyQueue::new(2);
        q.touch_up(0, 4.0);
        let dep = Deployment::empty(2);
        q.settle(&dep, |_| 4.0).unwrap();
        q.take(0);
        assert!(q.settle(&dep, |_| 4.0).is_none());
        q.reinsert(0, 4.0);
        let (v, g) = q.settle(&dep, |_| 3.0).unwrap();
        assert_eq!((v, g), (0, 3.0));
    }

    #[test]
    fn ties_prefer_the_smaller_vertex() {
        let mut q = LazyQueue::new(3);
        q.touch_up(2, 4.0);
        q.touch_up(1, 4.0);
        let dep = Deployment::empty(3);
        let (v, _) = q.settle(&dep, |_| 4.0).unwrap();
        assert_eq!(v, 1);
    }
}
