//! [`OnlineEngine`] — event-driven incremental placement.
//!
//! The engine owns the topology, a [`DeltaState`], a [`LazyQueue`]
//! and the current deployment, and applies churn events in
//! O(path length · log V) amortized state touches: an arrival dirties
//! only the vertices on the new flow's path; a departure subtracts
//! only the departing flow's contributions. Solution quality is
//! restored by the [`RepairPolicy`] (see [`crate::repair`]).
//!
//! The engine optimizes the diminishing objective; it does not
//! enforce the coverage constraint per event (a flow no deployed
//! vertex can profitably serve simply rides at full rate, like the
//! static best-effort baseline). The drift oracle *does* run the full
//! budgeted GTP with its feasibility guard, so adopted replans are
//! feasible whenever the budget allows.
//!
//! # Failure semantics
//!
//! [`Event::MiddleboxFailed`] and [`Event::VertexDown`] mark a vertex
//! *failed*: it is removed from the deployment (orphaning the flows it
//! served — see [`DeltaState::fail_rehome`]) and blocked out of the
//! CELF candidate pool until [`Event::MiddleboxRecovered`] lifts the
//! mark. Two invariants hold after every applied event:
//!
//! * **Deployment safety** — the deployment never contains a failed
//!   vertex, and no active flow is assigned to one.
//! * **Recovery transparency** — once every failed vertex has
//!   recovered, a forced replan ([`OnlineEngine::replan_now`]) leaves
//!   the engine bitwise identical to a from-scratch solve of the same
//!   snapshot; failures leave no residue.
//!
//! While failures are active, drift-oracle deployments are *stripped*
//! of failed vertices before evaluation/adoption and the freed budget
//! is re-spent greedily, so replans stay safe at the cost of the
//! oracle-equality guarantee (restored on full recovery).
//!
//! # Bounded reconfiguration
//!
//! Every chargeable repair move — greedy add, swap, adopted replan —
//! is admitted against the policy's
//! [`ReconfigBudget`](crate::ReconfigBudget) token bucket and charged
//! its migration cost (boxes moved plus flows reassigned); replans
//! the bucket cannot cover are deferred in favor of budget-capped
//! local repair. Under the default unlimited budget no move is ever
//! deferred and the engine behaves exactly as documented above (see
//! [`crate::budget`] for the cost model and DESIGN.md §15 for the
//! bound).

use tdmd_core::num::{approx_f64, big_ix, id32, ix, wide};
use tdmd_core::{Deployment, Instance, TdmdError};
use tdmd_graph::{DiGraph, NodeId};
use tdmd_obs::{NoopRecorder, Recorder, Stopwatch};
use tdmd_traffic::Flow;

use crate::delta::DeltaState;
use crate::event::{Event, FlowKey, TimedEvent};
use crate::pricer::PathPricer;
use crate::queue::LazyQueue;
use crate::repair::{RepairPolicy, RepairStats};
use crate::snapshot::{EngineSnapshot, SnapshotError, SnapshotFlow, SNAPSHOT_VERSION};

/// Gains below this are treated as zero by the repair loop.
const GAIN_EPS: f64 = 1e-12;

/// Errors an event stream can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// λ outside `[0, 1]`.
    BadLambda(f64),
    /// An arrival's path is degenerate, non-simple, off the topology,
    /// or its rate is zero.
    InvalidFlow {
        /// Offending flow key.
        key: FlowKey,
    },
    /// An arrival reused a key that is still active.
    DuplicateKey {
        /// Offending flow key.
        key: FlowKey,
    },
    /// A departure named a key that is not active.
    UnknownKey {
        /// Offending flow key.
        key: FlowKey,
    },
    /// A failure/recovery event named a vertex outside the topology.
    UnknownVertex {
        /// Offending vertex id.
        vertex: NodeId,
    },
    /// A failure event named a vertex that is already failed.
    AlreadyFailed {
        /// Offending vertex id.
        vertex: NodeId,
    },
    /// A recovery event named a vertex that is not failed.
    NotFailed {
        /// Offending vertex id.
        vertex: NodeId,
    },
    /// [`Event::MiddleboxFailed`] named a vertex with no deployed
    /// middlebox (use [`Event::VertexDown`] for arbitrary vertices).
    NoMiddleboxAt {
        /// Offending vertex id.
        vertex: NodeId,
    },
    /// The policy's [`ReconfigBudget`](crate::ReconfigBudget) is
    /// malformed (negative, NaN, or an infinite cost/refill/margin).
    BadBudget {
        /// Which field is malformed
        /// ([`ReconfigBudget::validate`](crate::ReconfigBudget::validate)).
        reason: &'static str,
    },
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::BadLambda(l) => write!(f, "lambda {l} outside [0, 1]"),
            OnlineError::InvalidFlow { key } => write!(f, "flow {key}: invalid path or rate"),
            OnlineError::DuplicateKey { key } => write!(f, "flow {key} is already active"),
            OnlineError::UnknownKey { key } => write!(f, "flow {key} is not active"),
            OnlineError::UnknownVertex { vertex } => {
                write!(f, "vertex {vertex} is not in the topology")
            }
            OnlineError::AlreadyFailed { vertex } => write!(f, "vertex {vertex} is already failed"),
            OnlineError::NotFailed { vertex } => write!(f, "vertex {vertex} is not failed"),
            OnlineError::NoMiddleboxAt { vertex } => {
                write!(f, "no middlebox deployed at vertex {vertex}")
            }
            OnlineError::BadBudget { reason } => {
                write!(f, "bad reconfiguration budget: {reason}")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

/// Telemetry keys the engine reports through its [`Recorder`] — the
/// stable schema of the `tdmd bench` stream JSON. Re-exported from
/// the workspace registry ([`tdmd_obs::keys`]) so the `cargo xtask
/// lint` `obs-keys` rule can check emitted keys against one source of
/// truth; kept as a module here for the crate's historical public
/// API.
pub mod obs_keys {
    pub use tdmd_obs::keys::{
        ARRIVALS, BATCHES, BATCH_APPLY_US, BOXES_MOVED, BUDGET_DEFERRALS, BUDGET_SPEND, DEPARTURES,
        EVENT_APPLY_US, FAILURES, FAILURE_REPAIR_US, FLOWS_DEGRADED, FLOWS_ORPHANED,
        FLOWS_REASSIGNED, RECOVERIES, REPAIR_US, REPLANS, REPLAN_US,
    };
}

/// Event-driven incremental placement engine, generic over the
/// pricing (and thereby over PR 1's cost models) and over the
/// telemetry [`Recorder`] — the default [`NoopRecorder`]
/// monomorphizes every recording call (and its clock reads, guarded
/// by [`Recorder::ENABLED`]) away.
pub struct OnlineEngine<P: PathPricer, R: Recorder = NoopRecorder> {
    graph: DiGraph,
    lambda: f64,
    k: usize,
    pricer: P,
    policy: RepairPolicy,
    state: DeltaState,
    queue: LazyQueue,
    deployment: Deployment,
    /// Failed-vertex mask; `deployment ∩ failed = ∅` always.
    failed: Vec<bool>,
    failed_count: usize,
    stats: RepairStats,
    /// Reconfiguration token level (`∞` under an unlimited budget,
    /// `≤ policy.budget.burst` always; may overdraw below zero by the
    /// post-hoc flow cost of the last admitted move).
    tokens: f64,
    recorder: R,
    /// Per-event auditing ([`OnlineEngine::enable_audit`]): every
    /// `apply` re-validates the full invariant stack.
    #[cfg(any(debug_assertions, feature = "audit", test))]
    audit: bool,
}

impl<P: PathPricer> OnlineEngine<P> {
    /// Creates an engine over `graph` with budget `k` and telemetry
    /// disabled.
    ///
    /// # Errors
    /// [`OnlineError::BadLambda`] if `λ ∉ [0, 1]`.
    pub fn new(
        graph: DiGraph,
        lambda: f64,
        k: usize,
        pricer: P,
        policy: RepairPolicy,
    ) -> Result<Self, OnlineError> {
        Self::with_recorder(graph, lambda, k, pricer, policy, NoopRecorder)
    }
}

impl<P: PathPricer, R: Recorder> OnlineEngine<P, R> {
    /// Creates an engine reporting per-event latency samples and
    /// counters (see [`obs_keys`]) through `recorder`.
    ///
    /// # Errors
    /// [`OnlineError::BadLambda`] if `λ ∉ [0, 1]`.
    pub fn with_recorder(
        graph: DiGraph,
        lambda: f64,
        k: usize,
        pricer: P,
        policy: RepairPolicy,
        recorder: R,
    ) -> Result<Self, OnlineError> {
        if !(0.0..=1.0).contains(&lambda) || lambda.is_nan() {
            return Err(OnlineError::BadLambda(lambda));
        }
        if let Err(reason) = policy.budget.validate() {
            return Err(OnlineError::BadBudget { reason });
        }
        let n = graph.node_count();
        Ok(Self {
            graph,
            lambda,
            k,
            pricer,
            policy,
            state: DeltaState::new(n, lambda),
            queue: LazyQueue::new(n),
            deployment: Deployment::empty(n),
            failed: vec![false; n],
            failed_count: 0,
            stats: RepairStats::default(),
            tokens: policy.budget.initial_tokens(),
            recorder,
            #[cfg(any(debug_assertions, feature = "audit", test))]
            audit: false,
        })
    }

    /// Current deployment.
    #[inline]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Running objective (O(1); see
    /// [`DeltaState::exact_objective`] for the drift-free sum).
    #[inline]
    pub fn objective(&self) -> f64 {
        self.state.objective()
    }

    /// Objective recomputed from scratch in arrival order — bitwise
    /// equal to the static CSR evaluation of the same snapshot.
    pub fn exact_objective(&self) -> f64 {
        self.state.exact_objective()
    }

    /// Number of active flows.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.state.active_count()
    }

    /// Whether `v` is currently failed (ineligible for placement).
    #[inline]
    pub fn is_failed(&self, v: NodeId) -> bool {
        self.failed[ix(v)]
    }

    /// The currently failed vertices, in ascending id order.
    pub fn failed_vertices(&self) -> Vec<NodeId> {
        self.failed
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(id32(i)))
            .collect()
    }

    /// Number of currently failed vertices.
    #[inline]
    pub fn failed_count(&self) -> usize {
        self.failed_count
    }

    /// Active flows with no serving middlebox, accounted at full
    /// rate — the degraded census the chaos harness integrates into
    /// degraded-seconds. (Includes flows that were never served
    /// because no deployed vertex lies on their path.)
    #[inline]
    pub fn degraded_count(&self) -> usize {
        self.state.unserved_count()
    }

    /// Repair telemetry.
    #[inline]
    pub fn stats(&self) -> &RepairStats {
        &self.stats
    }

    /// Current reconfiguration token level (`∞` under an unlimited
    /// budget; may be negative while an admitted move's post-hoc flow
    /// cost is being refilled — see [`crate::budget`]).
    #[inline]
    pub fn budget_tokens(&self) -> f64 {
        self.tokens
    }

    /// The maintained per-flow/assignment state.
    #[inline]
    pub fn state(&self) -> &DeltaState {
        &self.state
    }

    /// Middlebox budget `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Densified [`Instance`] of the current active-flow set — what
    /// the drift oracle solves.
    ///
    /// # Errors
    /// Propagates [`Instance::new`] validation failures (cannot occur
    /// for flows the engine accepted).
    pub fn snapshot_instance(&self) -> Result<Instance, TdmdError> {
        Instance::new(
            self.graph.clone(),
            self.state.active_snapshot(),
            self.lambda,
            self.k,
        )
    }

    /// Objective the active flows would cost under `dep` (each flow
    /// served by its best on-path vertex in `dep`), summed in arrival
    /// order like [`OnlineEngine::exact_objective`]. Evaluated
    /// read-only against the live state — no clone of the per-flow
    /// tables is materialized for the probe.
    pub fn evaluate_deployment(&self, dep: &Deployment) -> f64 {
        self.state.objective_under(dep)
    }

    /// Ingests one event — state mutation, queue dirtying, per-event
    /// counters — without running the repair policy. Shared by
    /// [`OnlineEngine::apply`] (repair after every event) and
    /// [`OnlineEngine::apply_batch`] (one repair per batch). Returns
    /// whether the event was a failure event.
    fn ingest(&mut self, event: &Event) -> Result<bool, OnlineError> {
        let mut failure = false;
        match event {
            Event::FlowArrived { key, rate, path } => {
                self.on_arrival(*key, *rate, path)?;
                self.recorder.count(obs_keys::ARRIVALS, 1);
            }
            Event::FlowDeparted { key } => {
                self.on_departure(*key)?;
                self.recorder.count(obs_keys::DEPARTURES, 1);
            }
            Event::MiddleboxFailed { vertex } => {
                self.on_failure(*vertex, true)?;
                failure = true;
            }
            Event::VertexDown { vertex } => {
                self.on_failure(*vertex, false)?;
                failure = true;
            }
            Event::MiddleboxRecovered { vertex } => {
                self.on_recovery(*vertex)?;
            }
        }
        self.stats.events += 1;
        // Amortized refill: each applied event earns migration tokens,
        // clamped at the bucket's burst capacity. Under an unlimited
        // budget the level is already `∞` and never moves.
        let budget = self.policy.budget;
        if self.tokens < budget.burst {
            self.tokens = (self.tokens + budget.refill_per_event).min(budget.burst);
        }
        Ok(failure)
    }

    /// A-priori migration cost of moving `boxes` middleboxes — the
    /// admission price of a repair move.
    #[inline]
    fn box_cost(&self, boxes: u64) -> f64 {
        self.policy.budget.box_move_cost * approx_f64(boxes)
    }

    /// Whether the token bucket admits a move of a-priori cost `cost`.
    #[inline]
    fn afford(&self, cost: f64) -> bool {
        cost <= self.tokens
    }

    /// Debits a completed move: `boxes` middleboxes deployed or
    /// undeployed and `flows` assignments changed. The flow share may
    /// overdraw the bucket (it is only known post-hoc); subsequent
    /// moves are blocked until the refill clears the debt.
    fn charge(&mut self, boxes: u64, flows: u64) {
        let budget = self.policy.budget;
        let cost = budget.box_move_cost * approx_f64(boxes)
            + budget.flow_reassign_cost * approx_f64(flows);
        if cost > 0.0 {
            self.tokens -= cost;
            self.stats.budget_spent += cost;
            self.recorder.sample(obs_keys::BUDGET_SPEND, cost);
        }
        self.stats.boxes_moved += boxes;
        self.stats.flows_reassigned += flows;
        self.recorder.count(obs_keys::BOXES_MOVED, boxes);
        self.recorder.count(obs_keys::FLOWS_REASSIGNED, flows);
    }

    /// Records a move the bucket could not admit.
    fn defer(&mut self) {
        self.stats.budget_deferrals += 1;
        self.recorder.count(obs_keys::BUDGET_DEFERRALS, 1);
    }

    /// Applies one event and repairs.
    ///
    /// # Errors
    /// Rejects malformed events ([`OnlineError`]); the engine state
    /// is unchanged on error.
    pub fn apply(&mut self, event: &Event) -> Result<(), OnlineError> {
        let sw = R::ENABLED.then(Stopwatch::start);
        let failure = self.ingest(event)?;
        self.repair(failure);
        if let Some(sw) = sw {
            self.recorder
                .sample(obs_keys::EVENT_APPLY_US, sw.elapsed_us());
        }
        #[cfg(any(debug_assertions, feature = "audit", test))]
        if self.audit {
            tdmd_core::audit::enforce(self.audit_now());
        }
        Ok(())
    }

    /// Applies `events` as one batch: every event is ingested back to
    /// back (the CELF lazy queue's dirty stamps union naturally —
    /// each touched vertex is re-settled at most once afterwards) and
    /// the repair policy runs **once** at the batch boundary instead
    /// of per event. This is the scale-tier hot path: repair cost is
    /// amortized over the batch, and a sampled policy's replan
    /// schedule is preserved by counting events, not calls — the pass
    /// is sampled iff the batch crossed a `sample_every` boundary, so
    /// a batch of one is exactly [`OnlineEngine::apply`].
    ///
    /// Under a forced-replan policy the final state is bitwise
    /// identical to applying the same events one by one (the repair
    /// ends in an oracle adoption that is a pure function of the
    /// active-flow set; property-tested over arbitrary partitions of
    /// mixed arrival/departure/failure streams).
    ///
    /// # Errors
    /// Stops at the first malformed event. The already-ingested
    /// prefix is repaired before returning, so the engine is left in
    /// the same state as applying that prefix — never with dangling
    /// unrepaired mutations.
    pub fn apply_batch(&mut self, events: &[Event]) -> Result<(), OnlineError> {
        let sw = R::ENABLED.then(Stopwatch::start);
        let events_before = self.stats.events;
        let mut failure = false;
        let mut result = Ok(());
        for ev in events {
            match self.ingest(ev) {
                Ok(f) => failure |= f,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if self.stats.events > events_before {
            let policy = self.policy;
            let sampled = policy.force_replan
                || (policy.sample_every > 0
                    && self.stats.events / policy.sample_every
                        != events_before / policy.sample_every);
            self.repair_with(failure, sampled);
            self.recorder.count(obs_keys::BATCHES, 1);
        }
        if let Some(sw) = sw {
            self.recorder
                .sample(obs_keys::BATCH_APPLY_US, sw.elapsed_us());
        }
        #[cfg(any(debug_assertions, feature = "audit", test))]
        if self.audit {
            tdmd_core::audit::enforce(self.audit_now());
        }
        result
    }

    /// Applies a whole timed stream in order.
    ///
    /// # Errors
    /// Stops at the first malformed event.
    pub fn apply_all(&mut self, events: &[TimedEvent]) -> Result<(), OnlineError> {
        for ev in events {
            self.apply(&ev.event)?;
        }
        Ok(())
    }

    fn validate_arrival(
        &self,
        key: FlowKey,
        rate: u64,
        path: &[NodeId],
    ) -> Result<(), OnlineError> {
        if self.state.is_active(key) {
            return Err(OnlineError::DuplicateKey { key });
        }
        let invalid = OnlineError::InvalidFlow { key };
        if rate == 0 || path.len() < 2 {
            return Err(invalid);
        }
        if path.iter().any(|&v| ix(v) >= self.graph.node_count()) {
            return Err(invalid);
        }
        let mut seen = path.to_vec();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(invalid);
        }
        if path.windows(2).any(|w| !self.graph.has_edge(w[0], w[1])) {
            return Err(invalid);
        }
        Ok(())
    }

    fn on_arrival(&mut self, key: FlowKey, rate: u64, path: &[NodeId]) -> Result<(), OnlineError> {
        self.validate_arrival(key, rate, path)?;
        let probe = Flow::new(0, rate, path.to_vec());
        let gains = self.pricer.gains(&probe);
        let cost = self.pricer.unprocessed_cost(&probe);
        let factor = 1.0 - self.lambda;
        // Gains can only *rise* at the new flow's own vertices; bump
        // each bound by the flow's maximum contribution there.
        for (pos, &v) in path.iter().enumerate() {
            if !self.deployment.contains(v) {
                self.queue
                    .touch_up(v, approx_f64(rate) * factor * gains[pos]);
            }
        }
        self.state
            .insert(key, rate, path.to_vec(), gains, cost, &self.deployment);
        self.stats.arrivals += 1;
        Ok(())
    }

    fn on_departure(&mut self, key: FlowKey) -> Result<(), OnlineError> {
        if !self.state.is_active(key) {
            return Err(OnlineError::UnknownKey { key });
        }
        let dirty = self.state.remove(key);
        // A departure only shrinks marginal gains: cached bounds stay
        // valid, just stale.
        for v in dirty {
            self.queue.touch_down(v);
        }
        self.stats.departures += 1;
        Ok(())
    }

    /// Marks `v` failed: blocks it out of the candidate pool and, if a
    /// middlebox was deployed there, removes it and orphans the flows
    /// it served ([`DeltaState::fail_rehome`]). With `require_box`
    /// ([`Event::MiddleboxFailed`]) the vertex must host a middlebox.
    fn on_failure(&mut self, v: NodeId, require_box: bool) -> Result<(), OnlineError> {
        if ix(v) >= self.graph.node_count() {
            return Err(OnlineError::UnknownVertex { vertex: v });
        }
        if self.failed[ix(v)] {
            return Err(OnlineError::AlreadyFailed { vertex: v });
        }
        if require_box && !self.deployment.contains(v) {
            return Err(OnlineError::NoMiddleboxAt { vertex: v });
        }
        self.failed[ix(v)] = true;
        self.failed_count += 1;
        self.queue.block(v);
        self.stats.failures += 1;
        self.recorder.count(obs_keys::FAILURES, 1);
        if self.deployment.remove(v) {
            let fo = self.state.fail_rehome(v, &self.deployment);
            let orphaned = wide(fo.reassigned + fo.degraded);
            self.stats.flows_orphaned += orphaned;
            self.stats.flows_degraded += wide(fo.degraded);
            self.recorder.count(obs_keys::FLOWS_ORPHANED, orphaned);
            self.recorder
                .count(obs_keys::FLOWS_DEGRADED, wide(fo.degraded));
            let mut dirty = fo.dirty;
            dirty.sort_unstable();
            dirty.dedup();
            for u in dirty {
                if u != v && !self.deployment.contains(u) && !self.failed[ix(u)] {
                    // Orphans lost serving quality, so gains here may
                    // have *risen*; restore the exact bound.
                    let g = self.state.marginal_gain(u);
                    self.queue.reinsert(u, g);
                }
            }
        }
        Ok(())
    }

    /// Lifts `v`'s failure mark and re-enters it in the candidate pool
    /// with an exact bound. Redeployment is the repair policy's call.
    fn on_recovery(&mut self, v: NodeId) -> Result<(), OnlineError> {
        if ix(v) >= self.graph.node_count() {
            return Err(OnlineError::UnknownVertex { vertex: v });
        }
        if !self.failed[ix(v)] {
            return Err(OnlineError::NotFailed { vertex: v });
        }
        self.failed[ix(v)] = false;
        self.failed_count -= 1;
        self.queue.unblock(v);
        self.queue.reinsert(v, self.state.marginal_gain(v));
        self.stats.recoveries += 1;
        self.recorder.count(obs_keys::RECOVERIES, 1);
        Ok(())
    }

    /// Post-event repair per the policy (see [`crate::repair`]).
    /// `failure` flags a failure event, enabling the degradation-aware
    /// off-schedule drift check and the failure-repair-latency sample.
    fn repair(&mut self, failure: bool) {
        let policy = self.policy;
        let sampled = policy.force_replan
            || (policy.sample_every > 0 && self.stats.events.is_multiple_of(policy.sample_every));
        self.repair_with(failure, sampled);
    }

    /// Repair pass with the sampling decision already made (the batch
    /// path computes it from crossed event-count boundaries rather
    /// than the current count alone).
    fn repair_with(&mut self, failure: bool, sampled: bool) {
        let sw = R::ENABLED.then(Stopwatch::start);
        let policy = self.policy;
        let replanned = sampled && self.drift_check(policy.force_replan);
        if !replanned {
            self.local_repair(policy.move_budget);
            // Degradation-aware fallback: the freed slot has been
            // re-spent, but flows are still unserved — consult the
            // oracle off-schedule rather than waiting for the next
            // sample.
            if failure && policy.replan_on_degraded && !sampled && self.state.unserved_count() > 0 {
                self.drift_check(false);
            }
        }
        if let Some(sw) = sw {
            let us = sw.elapsed_us();
            self.recorder.sample(obs_keys::REPAIR_US, us);
            if failure {
                self.recorder.sample(obs_keys::FAILURE_REPAIR_US, us);
            }
        }
    }

    /// Commits `v` into the deployment, re-homing improved flows and
    /// propagating queue invalidations.
    fn commit(&mut self, v: NodeId) {
        self.deployment.insert(v);
        for &u in self.state.commit(v) {
            self.queue.touch_down(u);
        }
    }

    /// Removes `v` from the deployment; displaced flows fall back to
    /// their second-best box, which can *raise* other vertices'
    /// gains — bounds are bumped accordingly and `v` re-enters the
    /// candidate pool.
    fn uncommit(&mut self, v: NodeId) {
        self.deployment.remove(v);
        let mut dirty = self.state.rehome_from(v, &self.deployment);
        dirty.sort_unstable();
        dirty.dedup();
        for u in dirty {
            if u != v && !self.deployment.contains(u) {
                // Re-homed flows lost serving quality, so gains here
                // may have *risen*; restore the exact bound.
                let g = self.state.marginal_gain(u);
                self.queue.reinsert(u, g);
            }
        }
        self.queue.reinsert(v, self.state.marginal_gain(v));
    }

    fn local_repair(&mut self, move_budget: usize) {
        // 1. Free drops: a deployed vertex with zero primary load
        //    loses nothing on removal; reclaim its budget slot.
        let deployed: Vec<NodeId> = self.deployment.vertices().to_vec();
        for v in deployed {
            if !self.deployment.is_empty() && self.state.primary_load(v) <= GAIN_EPS {
                self.uncommit(v);
                self.stats.drops += 1;
            }
        }
        // 2. Greedy fill: add best candidates while budget remains
        //    and gains are positive.
        self.greedy_fill();
        // 3. Bounded swap repair: replace the lightest-loaded box
        //    with the queue's best candidate when that provably
        //    improves the objective (candidate gain exceeds the
        //    victim's primary load, an upper bound on its removal
        //    loss) by more than the hysteresis share of the swap's
        //    migration cost — and the token bucket admits the move.
        for _ in 0..move_budget {
            if self.deployment.len() < self.k {
                break; // spare budget: adds already handled it
            }
            let Some((cand, gain)) = self.settle() else {
                break;
            };
            let Some((victim, load)) = self
                .deployment
                .vertices()
                .iter()
                .map(|&u| (u, self.state.primary_load(u)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
            else {
                break;
            };
            let cost = self.box_cost(2); // undeploy victim + deploy cand
            if gain <= load + self.policy.budget.hysteresis * cost + GAIN_EPS {
                break; // no improvement worth a migration left
            }
            if !self.afford(cost) {
                self.defer();
                break;
            }
            let moved_before = self.state.reassignments();
            self.queue.take(cand);
            self.uncommit(victim);
            self.commit(cand);
            self.charge(2, self.state.reassignments() - moved_before);
            self.stats.swaps += 1;
        }
    }

    /// Greedily spends spare budget on the queue's best candidates
    /// while gains stay positive (step 2 of local repair; also re-run
    /// after a replan adopted an oracle stripped of failed vertices,
    /// to spend the stripped slots on surviving candidates).
    fn greedy_fill(&mut self) {
        while self.deployment.len() < self.k {
            let Some((v, gain)) = self.settle() else {
                break;
            };
            if gain <= GAIN_EPS {
                break;
            }
            if !self.afford(self.box_cost(1)) {
                self.defer();
                break;
            }
            let moved_before = self.state.reassignments();
            self.queue.take(v);
            self.commit(v);
            self.charge(1, self.state.reassignments() - moved_before);
            self.stats.adds += 1;
        }
    }

    /// Settles the lazy queue against the live marginal-gain
    /// evaluator.
    fn settle(&mut self) -> Option<(NodeId, f64)> {
        let state = &self.state;
        self.queue
            .settle(&self.deployment, |v| state.marginal_gain(v))
    }

    /// Forces an immediate full replan: the from-scratch oracle is
    /// solved and adopted unconditionally (failed vertices stripped
    /// while failures are active). Returns `false` only when the
    /// oracle itself fails (infeasible budget) or the reconfiguration
    /// token bucket cannot cover the adoption's deployment diff (a
    /// deferral; never happens under the default unlimited
    /// [`ReconfigBudget`](crate::ReconfigBudget)). With no active
    /// failures and an admitting budget the resulting deployment is
    /// bitwise the from-scratch GTP answer — the
    /// recovery-transparency property.
    pub fn replan_now(&mut self) -> bool {
        self.drift_check(true)
    }

    /// Samples the from-scratch oracle; adopts its deployment when
    /// forced or drifted beyond ε *and* the token bucket admits the
    /// migration (the symmetric difference between the current and
    /// oracle deployments, priced per box) — otherwise the adoption is
    /// deferred and the caller falls back to budget-capped local
    /// repair. While failures are active the oracle's deployment is
    /// stripped of failed vertices before evaluation, and stripped
    /// budget is re-spent by a greedy fill after adoption. Returns
    /// whether a replan was adopted.
    fn drift_check(&mut self, force: bool) -> bool {
        self.stats.drift_samples += 1;
        let instance = match self.snapshot_instance() {
            Ok(i) => i,
            Err(_) => return false,
        };
        let sw = R::ENABLED.then(Stopwatch::start);
        let mut oracle = match self.pricer.solve_oracle(&instance) {
            Ok(dep) => dep,
            Err(_) => {
                self.stats.oracle_failures += 1;
                return false;
            }
        };
        if let Some(sw) = sw {
            self.recorder.sample(obs_keys::REPLAN_US, sw.elapsed_us());
        }
        let mut stripped = false;
        if self.failed_count > 0 {
            for v in oracle.vertices().to_vec() {
                if self.failed[ix(v)] {
                    oracle.remove(v);
                    stripped = true;
                }
            }
        }
        let oracle_obj = self.evaluate_deployment(&oracle);
        let current = self.state.objective();
        self.stats.last_drift = if oracle_obj > 0.0 {
            current / oracle_obj - 1.0
        } else {
            0.0
        };
        let drifted = current > oracle_obj * (1.0 + self.policy.drift_eps) + GAIN_EPS;
        if !(force || drifted) {
            return false;
        }
        // Bounded reconfiguration: adopting the oracle migrates the
        // symmetric difference of the two deployments. Gate on its
        // a-priori box cost; an unaffordable adoption is deferred and
        // the caller falls back to budget-capped local repair.
        let boxes = self.deployment_diff(&oracle);
        if !self.afford(self.box_cost(boxes)) {
            self.defer();
            return false;
        }
        let moved_before = self.state.reassignments();
        self.adopt(oracle);
        self.charge(boxes, self.state.reassignments() - moved_before);
        if stripped {
            // Spend the stripped slots on the best surviving
            // candidates (never engages without active failures, so
            // the bitwise oracle-tracking property is untouched).
            self.greedy_fill();
        }
        true
    }

    /// Size of the symmetric difference between the current deployment
    /// and `next` — the middleboxes an adoption would move.
    fn deployment_diff(&self, next: &Deployment) -> u64 {
        let leaving = self
            .deployment
            .vertices()
            .iter()
            .filter(|&&v| !next.contains(v))
            .count();
        let entering = next
            .vertices()
            .iter()
            .filter(|&&v| !self.deployment.contains(v))
            .count();
        wide(leaving + entering)
    }

    /// Adopts `new_dep` wholesale: rebuild assignments, then restore
    /// the queue invariant by re-entering every affected candidate
    /// with an exact bound (the replan already did strictly more
    /// work, so this does not change the asymptotics).
    fn adopt(&mut self, new_dep: Deployment) {
        let old = std::mem::replace(&mut self.deployment, new_dep);
        self.state.rebuild_assignments(&self.deployment);
        self.queue.invalidate_all();
        for v in 0..id32(self.graph.node_count()) {
            if !self.failed[ix(v)]
                && !self.deployment.contains(v)
                && (old.contains(v) || self.state.marginal_gain(v) > GAIN_EPS)
            {
                self.queue.reinsert(v, self.state.marginal_gain(v));
            }
        }
        self.stats.replans += 1;
        self.recorder.count(obs_keys::REPLANS, 1);
    }

    /// Rebuilds the delta state and the CELF queue into their
    /// canonical forms: flows re-inserted in arrival (seq) order
    /// against the current deployment, queue entries with exact
    /// marginal-gain bounds for every live candidate. Deployment,
    /// failure mask and stats are untouched, assignments are the same
    /// deterministic argmaxes, and the rebuilt queue is at least as
    /// coherent as the auditor demands — so behavior is preserved
    /// while insertion-history-dependent float-summation order is
    /// normalized (see [`crate::snapshot`]).
    fn canonicalize(&mut self) {
        let n = self.graph.node_count();
        let old = std::mem::replace(&mut self.state, DeltaState::new(n, self.lambda));
        for f in old.flows_in_seq_order() {
            self.state.insert(
                f.key,
                f.rate,
                f.path.clone(),
                f.gains.clone(),
                f.cost,
                &self.deployment,
            );
        }
        let mut queue = LazyQueue::new(n);
        for v in 0..id32(n) {
            if self.failed[ix(v)] {
                queue.block(v);
            } else if !self.deployment.contains(v) {
                let g = self.state.marginal_gain(v);
                if g > GAIN_EPS {
                    queue.reinsert(v, g);
                }
            }
        }
        self.queue = queue;
    }

    /// Captures a versioned snapshot of the replayable engine state,
    /// canonicalizing the live engine in place as it does (see
    /// [`crate::snapshot`] for the bitwise-restore contract: after
    /// this call, the engine and any [`OnlineEngine::restore`] of the
    /// returned snapshot are bitwise interchangeable under any future
    /// event stream).
    pub fn snapshot(&mut self) -> EngineSnapshot {
        self.canonicalize();
        let flows = self
            .state
            .flows_in_seq_order()
            .into_iter()
            .map(|f| SnapshotFlow {
                key: f.key,
                rate: f.rate,
                path: f.path.clone(),
                gains: f.gains.clone(),
                cost: f.cost,
            })
            .collect();
        EngineSnapshot {
            version: SNAPSHOT_VERSION,
            node_count: wide(self.graph.node_count()),
            lambda: self.lambda,
            k: wide(self.k),
            flows,
            deployment: self.deployment.vertices().to_vec(),
            failed: self.failed_vertices(),
            stats: self.stats,
            // `∞` (unlimited budget) does not survive JSON; restore
            // re-derives it from the caller-supplied policy.
            budget_tokens: if self.tokens.is_finite() {
                self.tokens
            } else {
                0.0
            },
        }
    }

    /// Rebuilds an engine from a snapshot. The topology, pricer,
    /// policy and recorder are supplied by the caller exactly as at
    /// construction — only the replayable state (flows, deployment,
    /// failure mask, stats) comes from the snapshot. The restored
    /// engine is bitwise interchangeable with the engine that took
    /// the snapshot (see [`crate::snapshot`]).
    ///
    /// # Errors
    /// Rejects version/topology mismatches and structurally invalid
    /// documents ([`SnapshotError`]).
    pub fn restore(
        graph: DiGraph,
        pricer: P,
        policy: RepairPolicy,
        recorder: R,
        snap: &EngineSnapshot,
    ) -> Result<Self, SnapshotError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: snap.version,
            });
        }
        let n = graph.node_count();
        if snap.node_count != wide(n) {
            return Err(SnapshotError::TopologyMismatch {
                expected: snap.node_count,
                found: wide(n),
            });
        }
        if !(0.0..=1.0).contains(&snap.lambda) || snap.lambda.is_nan() {
            return Err(SnapshotError::BadLambda(snap.lambda));
        }
        let k = big_ix(snap.k);
        for &v in snap.deployment.iter().chain(&snap.failed) {
            if ix(v) >= n {
                return Err(SnapshotError::BadVertex { vertex: v });
            }
        }
        if let Some(&v) = snap.deployment.iter().find(|v| snap.failed.contains(v)) {
            return Err(SnapshotError::DeployedWhileFailed { vertex: v });
        }
        if snap.deployment.len() > k {
            return Err(SnapshotError::OverBudget {
                deployed: wide(snap.deployment.len()),
                k: snap.k,
            });
        }
        if !snap.budget_tokens.is_finite() {
            return Err(SnapshotError::BadBudgetState(snap.budget_tokens));
        }
        if !snap.stats.budget_spent.is_finite() {
            return Err(SnapshotError::BadBudgetState(snap.stats.budget_spent));
        }
        let mut engine = Self::with_recorder(graph, snap.lambda, k, pricer, policy, recorder)
            .map_err(|_| SnapshotError::BadLambda(snap.lambda))?;
        engine.deployment = Deployment::from_vertices(n, snap.deployment.iter().copied());
        for &v in &snap.failed {
            engine.failed[ix(v)] = true;
            engine.failed_count += 1;
            engine.queue.block(v);
        }
        for f in &snap.flows {
            engine
                .validate_arrival(f.key, f.rate, &f.path)
                .map_err(|e| match e {
                    OnlineError::DuplicateKey { key } => SnapshotError::DuplicateKey { key },
                    _ => SnapshotError::InvalidFlow { key: f.key },
                })?;
            if f.gains.len() != f.path.len()
                || f.gains.iter().any(|g| !g.is_finite())
                || !f.cost.is_finite()
            {
                return Err(SnapshotError::InvalidFlow { key: f.key });
            }
            engine.state.insert(
                f.key,
                f.rate,
                f.path.clone(),
                f.gains.clone(),
                f.cost,
                &engine.deployment,
            );
        }
        for v in 0..id32(n) {
            if !engine.failed[ix(v)] && !engine.deployment.contains(v) {
                let g = engine.state.marginal_gain(v);
                if g > GAIN_EPS {
                    engine.queue.reinsert(v, g);
                }
            }
        }
        engine.stats = snap.stats;
        // An unlimited policy keeps the `∞` level it was constructed
        // with; a finite budget resumes the serialized level exactly
        // (bitwise restore covers the token bucket too).
        if !policy.budget.is_unlimited() {
            engine.tokens = snap.budget_tokens;
        }
        Ok(engine)
    }
}

/// Structural auditor (tdmd-audit): the engine-level invariant stack.
#[cfg(any(debug_assertions, feature = "audit", test))]
impl<P: PathPricer, R: Recorder> OnlineEngine<P, R> {
    /// Turns on per-event auditing: every [`OnlineEngine::apply`]
    /// re-validates the full invariant stack and panics with the
    /// diagnostic on the first violation (`tdmd stream run --audit`).
    pub fn enable_audit(&mut self) {
        self.audit = true;
    }

    /// Validates every engine invariant now: deployment bounds and
    /// budget, deployment ∩ failed = ∅, failure census, queue/failure
    /// block sync, every [`DeltaState`] invariant against a
    /// from-scratch rebuild, and [`LazyQueue`] epoch coherence
    /// against exact marginal gains.
    ///
    /// # Errors
    /// Returns the first violated check (see
    /// [`crate::audit::check_engine`]).
    pub fn audit_now(&self) -> Result<(), tdmd_core::audit::AuditError> {
        use tdmd_core::audit::AuditError;
        let err = |check: &'static str, detail: String| Err(AuditError { check, detail });
        let n = self.graph.node_count();
        for &v in self.deployment.vertices() {
            if ix(v) >= n {
                return err(
                    "engine-deployment-bounds",
                    format!("deployed vertex {v} out of bounds (n = {n})"),
                );
            }
            if self.failed[ix(v)] {
                return err(
                    "engine-deployed-failed",
                    format!("vertex {v} is deployed while failed"),
                );
            }
        }
        if self.deployment.len() > self.k {
            return err(
                "engine-over-budget",
                format!(
                    "{} middleboxes deployed, budget k = {}",
                    self.deployment.len(),
                    self.k
                ),
            );
        }
        let failed = self.failed.iter().filter(|&&f| f).count();
        if failed != self.failed_count {
            return err(
                "engine-failed-census",
                format!(
                    "{failed} failed vertices, census says {}",
                    self.failed_count
                ),
            );
        }
        for v in 0..id32(n) {
            if self.queue.is_blocked(v) != self.failed[ix(v)] {
                return err(
                    "engine-blocked-sync",
                    format!("vertex {v}: queue block does not mirror the failure mask"),
                );
            }
        }
        if self.tokens.is_nan() || self.tokens > self.policy.budget.burst {
            return err(
                "engine-budget-tokens",
                format!(
                    "token level {} outside (-∞, burst = {}]",
                    self.tokens, self.policy.budget.burst
                ),
            );
        }
        if !self.stats.budget_spent.is_finite() || self.stats.budget_spent < 0.0 {
            return err(
                "engine-budget-spend",
                format!(
                    "amortized spend {} is not finite non-negative",
                    self.stats.budget_spent
                ),
            );
        }
        self.state.check_invariants(&self.deployment)?;
        self.queue
            .check_coherence(&self.deployment, |v| self.state.marginal_gain(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{events_from_spans, FlowSpan};
    use crate::pricer::HopPricer;
    use tdmd_core::objective::bandwidth_of;
    use tdmd_core::paper::fig1_instance;

    fn fig1_graph() -> tdmd_graph::DiGraph {
        fig1_instance(2).graph().clone()
    }

    fn engine(k: usize, policy: RepairPolicy) -> OnlineEngine<HopPricer> {
        OnlineEngine::new(fig1_graph(), 0.5, k, HopPricer::default(), policy).unwrap()
    }

    fn arrive(key: FlowKey, rate: u64, path: Vec<NodeId>) -> Event {
        Event::FlowArrived { key, rate, path }
    }

    /// Fig. 1's four flows as arrivals (0-based vertex ids).
    fn fig1_arrivals() -> Vec<Event> {
        vec![
            arrive(1, 4, vec![4, 2, 0]),
            arrive(2, 2, vec![5, 2, 1]),
            arrive(3, 2, vec![3, 1]),
            arrive(4, 2, vec![5, 1]),
        ]
    }

    #[test]
    fn greedy_fill_matches_static_gtp_on_fig1() {
        let mut e = engine(3, RepairPolicy::local_only(0));
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        // Static GTP with k = 3 picks {3, 4, 5} for bandwidth 8.
        assert_eq!(e.deployment().vertices(), &[3, 4, 5]);
        assert_eq!(e.objective(), 8.0);
        let inst = e.snapshot_instance().unwrap();
        assert_eq!(bandwidth_of(&inst, e.deployment()), 8.0);
    }

    #[test]
    fn departures_shrink_the_objective_to_zero() {
        let mut e = engine(2, RepairPolicy::local_only(2));
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        for key in [1, 2, 3, 4] {
            e.apply(&Event::FlowDeparted { key }).unwrap();
        }
        assert_eq!(e.active_count(), 0);
        assert_eq!(e.objective(), 0.0);
        assert_eq!(e.exact_objective(), 0.0);
    }

    #[test]
    fn forced_replan_tracks_the_oracle_exactly() {
        let mut e = engine(2, RepairPolicy::forced_replan());
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        // Per-event GTP with k = 2 ends at {1, 4} (the paper's
        // feasibility-guard walk-through), bandwidth 12.
        assert_eq!(e.deployment().vertices(), &[1, 4]);
        let inst = e.snapshot_instance().unwrap();
        let oracle = HopPricer::default().solve_oracle(&inst).unwrap();
        assert_eq!(e.deployment(), &oracle);
        assert_eq!(e.exact_objective(), bandwidth_of(&inst, &oracle));
        assert_eq!(e.stats().replans, 4);
    }

    #[test]
    fn swap_repair_recovers_after_departures() {
        // Arrive fig1, then remove the two flows served at v5; the
        // engine should eventually rehome budget toward the rest.
        let mut e = engine(2, RepairPolicy::local_only(4));
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        let before = e.objective();
        e.apply(&Event::FlowDeparted { key: 1 }).unwrap();
        e.apply(&Event::FlowDeparted { key: 2 }).unwrap();
        assert!(e.objective() < before);
        // Whatever the deployment now is, the objective must match
        // its exact evaluation (invariants held through swaps).
        assert!((e.objective() - e.exact_objective()).abs() < 1e-9);
    }

    #[test]
    fn malformed_events_are_rejected_without_state_damage() {
        let mut e = engine(2, RepairPolicy::local_only(0));
        e.apply(&arrive(1, 4, vec![4, 2, 0])).unwrap();
        let obj = e.objective();
        assert_eq!(
            e.apply(&arrive(1, 1, vec![3, 1])),
            Err(OnlineError::DuplicateKey { key: 1 })
        );
        assert_eq!(
            e.apply(&arrive(9, 0, vec![3, 1])),
            Err(OnlineError::InvalidFlow { key: 9 })
        );
        assert_eq!(
            e.apply(&arrive(9, 1, vec![3, 3])),
            Err(OnlineError::InvalidFlow { key: 9 })
        );
        assert_eq!(
            e.apply(&arrive(9, 1, vec![0, 5])),
            Err(OnlineError::InvalidFlow { key: 9 }),
            "no edge 0→5 in fig1"
        );
        assert_eq!(
            e.apply(&arrive(9, 1, vec![0, 99])),
            Err(OnlineError::InvalidFlow { key: 9 })
        );
        assert_eq!(
            e.apply(&Event::FlowDeparted { key: 42 }),
            Err(OnlineError::UnknownKey { key: 42 })
        );
        assert_eq!(e.objective(), obj);
        assert_eq!(e.active_count(), 1);
    }

    #[test]
    fn span_stream_replays_end_to_end() {
        let spans = vec![
            FlowSpan {
                start_us: 0,
                end_us: 100,
                flow: Flow::new(0, 4, vec![4, 2, 0]),
            },
            FlowSpan {
                start_us: 10,
                end_us: 50,
                flow: Flow::new(1, 2, vec![5, 2, 1]),
            },
        ];
        let mut e = engine(2, RepairPolicy::default());
        e.apply_all(&events_from_spans(&spans)).unwrap();
        assert_eq!(e.active_count(), 0);
        assert_eq!(e.stats().events, 4);
        assert_eq!(e.objective(), 0.0);
    }

    #[test]
    fn recorder_sees_every_event_and_replan() {
        use tdmd_obs::StatsRecorder;
        let rec = StatsRecorder::new();
        let mut e = OnlineEngine::with_recorder(
            fig1_graph(),
            0.5,
            2,
            HopPricer::default(),
            RepairPolicy::forced_replan(),
            &rec,
        )
        .unwrap();
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        e.apply(&Event::FlowDeparted { key: 4 }).unwrap();
        assert_eq!(rec.counter(obs_keys::ARRIVALS), 4);
        assert_eq!(rec.counter(obs_keys::DEPARTURES), 1);
        assert_eq!(rec.counter(obs_keys::REPLANS), e.stats().replans);
        assert_eq!(rec.sample_count(obs_keys::EVENT_APPLY_US), 5);
        assert_eq!(rec.sample_count(obs_keys::REPAIR_US), 5);
        assert_eq!(
            rec.sample_count(obs_keys::REPLAN_US) as u64,
            e.stats().drift_samples - e.stats().oracle_failures
        );
        assert!(rec
            .sorted_samples(obs_keys::EVENT_APPLY_US)
            .iter()
            .all(|&us| us >= 0.0));
    }

    #[test]
    fn noop_recorder_engine_matches_recorded_engine() {
        use tdmd_obs::StatsRecorder;
        let rec = StatsRecorder::new();
        let mut plain = engine(3, RepairPolicy::default());
        let mut recorded = OnlineEngine::with_recorder(
            fig1_graph(),
            0.5,
            3,
            HopPricer::default(),
            RepairPolicy::default(),
            &rec,
        )
        .unwrap();
        for ev in fig1_arrivals() {
            plain.apply(&ev).unwrap();
            recorded.apply(&ev).unwrap();
        }
        assert_eq!(plain.deployment(), recorded.deployment());
        assert_eq!(plain.objective(), recorded.objective());
    }

    #[test]
    fn failure_orphans_and_repair_respends_the_slot() {
        let mut e = engine(2, RepairPolicy::local_only(0));
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        let dep_before = e.deployment().vertices().to_vec();
        assert_eq!(dep_before.len(), 2);
        let victim = dep_before[0];
        e.apply(&Event::MiddleboxFailed { vertex: victim }).unwrap();
        assert!(e.is_failed(victim));
        assert!(!e.deployment().contains(victim), "deployment ∩ failed = ∅");
        // The freed slot was re-spent on a surviving candidate.
        assert_eq!(e.deployment().len(), 2);
        assert_eq!(e.stats().failures, 1);
        assert!(e.stats().flows_orphaned >= 1);
        // No flow is assigned to the failed vertex.
        assert!(e
            .state()
            .active_flows()
            .all(|f| f.assigned.is_none_or(|(v, _)| v != victim)));
        assert!((e.objective() - e.exact_objective()).abs() < 1e-9);
    }

    #[test]
    fn vertex_down_blocks_an_undeployed_candidate() {
        let mut e = engine(2, RepairPolicy::local_only(0));
        e.apply(&Event::VertexDown { vertex: 4 }).unwrap();
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        assert!(!e.deployment().contains(4), "failed vertex never deployed");
        e.apply(&Event::MiddleboxRecovered { vertex: 4 }).unwrap();
        assert_eq!(e.failed_count(), 0);
        // After recovery the vertex is back in the race.
        e.apply(&Event::FlowDeparted { key: 3 }).unwrap();
        assert!((e.objective() - e.exact_objective()).abs() < 1e-9);
    }

    #[test]
    fn recovery_restores_bitwise_oracle_equivalence() {
        let mut e = engine(2, RepairPolicy::default());
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        let victim = e.deployment().vertices()[0];
        e.apply(&Event::MiddleboxFailed { vertex: victim }).unwrap();
        e.apply(&Event::MiddleboxRecovered { vertex: victim })
            .unwrap();
        assert!(e.replan_now());
        let inst = e.snapshot_instance().unwrap();
        let oracle = HopPricer::default().solve_oracle(&inst).unwrap();
        assert_eq!(e.deployment(), &oracle, "no failure residue");
        assert_eq!(e.exact_objective(), bandwidth_of(&inst, &oracle));
    }

    #[test]
    fn degraded_flows_ride_at_full_rate() {
        // One flow, one deployable vertex on its path deployed, then
        // failed: the flow must fall back to full-rate accounting.
        let mut e = engine(1, RepairPolicy::local_only(0));
        e.apply(&arrive(1, 4, vec![4, 2, 0])).unwrap();
        assert_eq!(e.degraded_count(), 0);
        let v = e.deployment().vertices()[0];
        // Block every other vertex so the slot cannot be re-spent.
        for u in 0..6 {
            if u != v && !e.is_failed(u) {
                e.apply(&Event::VertexDown { vertex: u }).unwrap();
            }
        }
        e.apply(&Event::MiddleboxFailed { vertex: v }).unwrap();
        assert_eq!(e.degraded_count(), 1);
        assert_eq!(e.stats().flows_degraded, 1);
        // Full rate: 4 · 2 hops, no savings.
        assert_eq!(e.objective(), 8.0);
        assert_eq!(e.exact_objective(), 8.0);
    }

    #[test]
    fn replan_on_degraded_recovers_coverage_off_schedule() {
        // sample_every = 0: scheduled sampling never fires, so only
        // the degradation-aware fallback can consult the oracle.
        let policy = RepairPolicy {
            move_budget: 0,
            drift_eps: 0.0,
            sample_every: 0,
            force_replan: false,
            replan_on_degraded: true,
            ..RepairPolicy::default()
        };
        let mut e = engine(2, policy);
        for ev in fig1_arrivals() {
            e.apply(&ev).unwrap();
        }
        let victim = e.deployment().vertices()[0];
        e.apply(&Event::MiddleboxFailed { vertex: victim }).unwrap();
        // Either local repair re-covered everything or the fallback
        // replan did; either way nothing rides degraded here.
        assert!((e.objective() - e.exact_objective()).abs() < 1e-9);
        assert!(!e.deployment().contains(victim));
    }

    #[test]
    fn malformed_failure_events_are_rejected() {
        let mut e = engine(2, RepairPolicy::local_only(0));
        e.apply(&arrive(1, 4, vec![4, 2, 0])).unwrap();
        assert_eq!(
            e.apply(&Event::MiddleboxFailed { vertex: 99 }),
            Err(OnlineError::UnknownVertex { vertex: 99 })
        );
        assert_eq!(
            e.apply(&Event::MiddleboxRecovered { vertex: 0 }),
            Err(OnlineError::NotFailed { vertex: 0 })
        );
        // v0 hosts no middlebox (only v2/v4 can serve flow 1's path
        // profitably with k = 2).
        let undeployed = (0..6)
            .find(|&v| !e.deployment().contains(v))
            .expect("some vertex is undeployed");
        assert_eq!(
            e.apply(&Event::MiddleboxFailed { vertex: undeployed }),
            Err(OnlineError::NoMiddleboxAt { vertex: undeployed })
        );
        e.apply(&Event::VertexDown { vertex: undeployed }).unwrap();
        assert_eq!(
            e.apply(&Event::VertexDown { vertex: undeployed }),
            Err(OnlineError::AlreadyFailed { vertex: undeployed })
        );
    }

    #[test]
    fn bad_lambda_is_rejected() {
        assert_eq!(
            OnlineEngine::new(
                fig1_graph(),
                1.5,
                2,
                HopPricer::default(),
                RepairPolicy::default()
            )
            .err(),
            Some(OnlineError::BadLambda(1.5))
        );
    }
}
