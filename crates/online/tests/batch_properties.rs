//! Property tests pinning `apply_batch` to the one-by-one event path:
//!
//! * under a forced-replan policy, applying a mixed
//!   arrival/departure/failure/recovery stream in **any** partition of
//!   batches ends bitwise-identical (deployment, maintained and exact
//!   objectives, active count) to applying it event by event — the
//!   batch boundary is an amortization knob, never a semantic one;
//! * a batch of one **is** [`OnlineEngine::apply`] under the default
//!   drift-sampled policy: the crossed-boundary sampling rule reduces
//!   exactly to the `is_multiple_of` rule for single events.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_graph::generators::random::erdos_renyi_connected;
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_online::{Event, FlowKey, HopPricer, OnlineEngine, RepairPolicy};

/// BFS shortest path `src → dst` (the generator guarantees
/// connectivity).
fn shortest_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let r = bfs(g, src);
    let mut path = vec![dst];
    let mut v = dst;
    while v != src {
        v = r.parent[v as usize];
        path.push(v);
    }
    path.reverse();
    path
}

/// A random mixed churn history: arrivals, departures of still-active
/// flows, and vertex failures/recoveries — with at most one vertex
/// failed at a time, so every (≥ 2-vertex) path keeps a live
/// middlebox candidate and a budget of `n` keeps the oracle feasible
/// at every prefix.
fn mixed_events(g: &DiGraph, seed: u64, len: usize) -> Vec<Event> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<FlowKey> = Vec::new();
    let mut failed: Option<NodeId> = None;
    let mut next_key: FlowKey = 0;
    let mut out = Vec::new();
    for _ in 0..len {
        let roll = rng.gen_range(0..8);
        match roll {
            0..=3 => {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n);
                while dst == src {
                    dst = rng.gen_range(0..n);
                }
                out.push(Event::FlowArrived {
                    key: next_key,
                    rate: rng.gen_range(1..=10),
                    path: shortest_path(g, src, dst),
                });
                active.push(next_key);
                next_key += 1;
            }
            4..=5 if !active.is_empty() => {
                let i = rng.gen_range(0..active.len());
                out.push(Event::FlowDeparted {
                    key: active.swap_remove(i),
                });
            }
            6 if failed.is_none() => {
                let v = rng.gen_range(0..n);
                failed = Some(v);
                out.push(Event::VertexDown { vertex: v });
            }
            7 => {
                if let Some(v) = failed.take() {
                    out.push(Event::MiddleboxRecovered { vertex: v });
                }
            }
            _ => {} // departure with nothing active / failure while failed
        }
    }
    out
}

/// Splits `events` into a random partition of non-empty batches drawn
/// from `seed` (batch lengths 1..=5).
fn random_partition(events: &[Event], seed: u64) -> Vec<&[Event]> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut rest = events;
    while !rest.is_empty() {
        let take = rng.gen_range(1..=5usize).min(rest.len());
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out
}

fn engine(g: &DiGraph, k: usize, policy: RepairPolicy) -> OnlineEngine<HopPricer> {
    OnlineEngine::new(g.clone(), 0.5, k, HopPricer::default(), policy).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `apply_batch` over any partition of a mixed event stream is
    /// bitwise-equal to the sequential `apply` of the same stream
    /// under a forced-replan policy: every repair ends by adopting
    /// the oracle of the current flow set, a pure function of state
    /// that both paths reach identically at each batch boundary.
    #[test]
    fn any_partition_matches_sequential_apply(
        seed in any::<u64>(),
        part_seed in any::<u64>(),
        n in 4usize..12,
        len in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let events = mixed_events(&g, seed ^ 0xBA7C, len);
        // Budget n: with at most one failed vertex and simple paths of
        // ≥ 2 vertices, the oracle stays feasible at every prefix.
        let k = n;
        let mut seq = engine(&g, k, RepairPolicy::forced_replan());
        for ev in &events {
            seq.apply(ev).unwrap();
        }
        let mut batched = engine(&g, k, RepairPolicy::forced_replan());
        for chunk in random_partition(&events, part_seed) {
            batched.apply_batch(chunk).unwrap();
        }
        prop_assert_eq!(seq.deployment(), batched.deployment());
        prop_assert_eq!(seq.active_count(), batched.active_count());
        prop_assert_eq!(
            seq.exact_objective().to_bits(),
            batched.exact_objective().to_bits()
        );
        prop_assert_eq!(
            seq.objective().to_bits(),
            batched.objective().to_bits()
        );
    }

    /// Batches of one are exactly `apply`, default (drift-sampled)
    /// policy included: the batch path's crossed-boundary sampling
    /// rule must collapse to the per-event `is_multiple_of` rule.
    #[test]
    fn batch_of_one_is_apply(
        seed in any::<u64>(),
        n in 4usize..12,
        len in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let events = mixed_events(&g, seed ^ 0x0B1, len);
        // A small sample_every so the stream actually crosses
        // boundaries; everything else the stock default.
        let policy = RepairPolicy { sample_every: 4, ..RepairPolicy::default() };
        let mut one_by_one = engine(&g, 3, policy);
        let mut batched = engine(&g, 3, policy);
        for ev in &events {
            one_by_one.apply(ev).unwrap();
            batched.apply_batch(std::slice::from_ref(ev)).unwrap();
            prop_assert_eq!(one_by_one.deployment(), batched.deployment());
            prop_assert_eq!(
                one_by_one.objective().to_bits(),
                batched.objective().to_bits()
            );
        }
        prop_assert_eq!(one_by_one.active_count(), batched.active_count());
        prop_assert_eq!(
            one_by_one.exact_objective().to_bits(),
            batched.exact_objective().to_bits()
        );
    }
}
