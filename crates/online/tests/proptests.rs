//! Property tests pinning the incremental engine to the static
//! solver:
//!
//! * forced replan on every event is *bit-for-bit* the from-scratch
//!   GTP — same deployment, and the maintained objective equals the
//!   static CSR evaluation exactly (not approximately);
//! * the drift-sampled policy stays within the documented
//!   `1 + drift_eps` bound of the oracle at every sampled event
//!   (here every event, `sample_every = 1`);
//! * `DeltaState`'s maintained assignments match the static
//!   `allocate` on a densified snapshot, tie-breaks included.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::algorithms::gtp::gtp_budgeted;
use tdmd_core::cost::FlowIndex;
use tdmd_core::objective::allocate;
use tdmd_core::{HopCount, Instance};
use tdmd_graph::generators::random::erdos_renyi_connected;
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_online::{Event, FlowKey, HopPricer, OnlineEngine, RepairPolicy};

/// BFS shortest path `src → dst` (both reachable: the generator
/// guarantees connectivity).
fn shortest_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let r = bfs(g, src);
    let mut path = vec![dst];
    let mut v = dst;
    while v != src {
        v = r.parent[v as usize];
        path.push(v);
    }
    path.reverse();
    path
}

/// A random churn history: interleaved arrivals (shortest-path flows)
/// and departures of still-active flows.
fn random_events(g: &DiGraph, seed: u64, len: usize) -> Vec<Event> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<FlowKey> = Vec::new();
    let mut next_key: FlowKey = 0;
    let mut out = Vec::new();
    for _ in 0..len {
        let depart = !active.is_empty() && rng.gen_range(0..10) < 4;
        if depart {
            let i = rng.gen_range(0..active.len());
            out.push(Event::FlowDeparted {
                key: active.swap_remove(i),
            });
        } else {
            let src = rng.gen_range(0..n);
            let mut dst = rng.gen_range(0..n);
            while dst == src {
                dst = rng.gen_range(0..n);
            }
            out.push(Event::FlowArrived {
                key: next_key,
                rate: rng.gen_range(1..=10),
                path: shortest_path(g, src, dst),
            });
            active.push(next_key);
            next_key += 1;
        }
    }
    out
}

fn snapshot(engine: &OnlineEngine<HopPricer>, g: &DiGraph, lambda: f64, k: usize) -> Instance {
    Instance::new(g.clone(), engine.state().active_snapshot(), lambda, k)
        .expect("engine-accepted flows form a valid instance")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forcing a full replan on every event makes the engine exactly
    /// the per-event from-scratch GTP: same deployment whenever the
    /// oracle solves, and the maintained objective equals the static
    /// CSR evaluation bitwise.
    #[test]
    fn forced_replan_is_bitwise_from_scratch_gtp(
        seed in any::<u64>(),
        n in 4usize..14,
        len in 1usize..24,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let lambda = 0.5;
        let mut engine = OnlineEngine::new(
            g.clone(), lambda, k, HopPricer::default(), RepairPolicy::forced_replan(),
        ).unwrap();
        for ev in random_events(&g, seed ^ 0xA5, len) {
            engine.apply(&ev).unwrap();
            let inst = snapshot(&engine, &g, lambda, k);
            match gtp_budgeted(&inst, k) {
                Ok(oracle) => {
                    prop_assert_eq!(engine.deployment(), &oracle);
                    let index = FlowIndex::build(&inst, &HopCount);
                    // Bitwise: both sums run per-flow in arrival order.
                    prop_assert_eq!(
                        engine.exact_objective(),
                        index.bandwidth_of(&inst, &oracle)
                    );
                    prop_assert_eq!(engine.objective(), engine.exact_objective());
                }
                Err(_) => {
                    // Budget cannot cover the active flows: the engine
                    // keeps its previous deployment. Its books must
                    // still balance.
                    prop_assert!(
                        (engine.objective() - engine.exact_objective()).abs() < 1e-9
                    );
                }
            }
        }
    }

    /// With drift sampling on every event, the maintained objective
    /// never exceeds `(1 + drift_eps) ·` the from-scratch solve at any
    /// event where the oracle is solvable — the documented bound.
    #[test]
    fn drift_sampling_enforces_the_documented_bound(
        seed in any::<u64>(),
        n in 4usize..14,
        len in 1usize..32,
        k in 1usize..4,
        eps_pct in 0u32..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let lambda = 0.5;
        let eps = eps_pct as f64 / 100.0;
        let policy = RepairPolicy {
            move_budget: 2,
            drift_eps: eps,
            sample_every: 1,
            ..RepairPolicy::default()
        };
        let mut engine = OnlineEngine::new(
            g.clone(), lambda, k, HopPricer::default(), policy,
        ).unwrap();
        for ev in random_events(&g, seed ^ 0x5A, len) {
            engine.apply(&ev).unwrap();
            let inst = snapshot(&engine, &g, lambda, k);
            if let Ok(oracle) = gtp_budgeted(&inst, k) {
                let oracle_obj = engine.evaluate_deployment(&oracle);
                prop_assert!(
                    engine.objective() <= oracle_obj * (1.0 + eps) + 1e-9,
                    "objective {} exceeds (1+{eps}) x oracle {}",
                    engine.objective(),
                    oracle_obj
                );
            }
        }
    }

    /// The incrementally maintained per-flow assignments equal the
    /// static `allocate` of the same deployment on a densified
    /// snapshot — invariant 2 of `DeltaState`, tie-breaks included.
    #[test]
    fn maintained_assignments_match_static_allocate(
        seed in any::<u64>(),
        n in 4usize..14,
        len in 1usize..32,
        k in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let lambda = 0.5;
        let mut engine = OnlineEngine::new(
            g.clone(), lambda, k, HopPricer::default(), RepairPolicy::local_only(2),
        ).unwrap();
        // Shadow the active key set in arrival order — the same order
        // the snapshot densifies to.
        let mut active: Vec<FlowKey> = Vec::new();
        for ev in random_events(&g, seed ^ 0x3C, len) {
            match &ev {
                Event::FlowArrived { key, .. } => active.push(*key),
                Event::FlowDeparted { key } => active.retain(|k2| k2 != key),
                _ => {} // random_events emits only flow churn
            }
            engine.apply(&ev).unwrap();
            let inst = snapshot(&engine, &g, lambda, k);
            let alloc = allocate(&inst, engine.deployment());
            prop_assert_eq!(alloc.assigned.len(), active.len());
            for (i, key) in active.iter().enumerate() {
                let maintained = engine
                    .state()
                    .flow(*key)
                    .expect("shadowed key is active")
                    .assigned
                    .map(|(v, _)| v);
                prop_assert_eq!(
                    maintained, alloc.assigned[i],
                    "flow {} (snapshot id {}) disagrees", key, i
                );
            }
        }
    }

    /// Over a long churn stream the Kahan-compensated running
    /// objective stays within float-ulp relative distance of the
    /// from-scratch exact sum — the accumulated error no longer grows
    /// with stream length. Exercised at both a dyadic λ (where the
    /// sums are exact and the drift must be literally zero) and a
    /// non-dyadic λ that forces the compensation term to do work.
    #[test]
    fn running_objective_does_not_drift_over_long_streams(
        seed in any::<u64>(),
        n in 4usize..12,
        len in 50usize..250,
        dyadic in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let lambda = if dyadic { 0.5 } else { 0.3 };
        let mut engine = OnlineEngine::new(
            g.clone(), lambda, 3, HopPricer::default(), RepairPolicy::local_only(2),
        ).unwrap();
        for ev in random_events(&g, seed ^ 0xD81F7, len) {
            engine.apply(&ev).unwrap();
        }
        let exact = engine.exact_objective();
        let drift = (engine.objective() - exact).abs();
        prop_assert!(
            drift <= 1e-9 * exact.abs().max(1.0),
            "drift {} vs exact {} after {} events", drift, exact, len
        );
        if dyadic {
            prop_assert_eq!(engine.objective().to_bits(), exact.to_bits());
        }
    }

    /// Departing every flow in any order drains the engine to an
    /// exactly-empty state: zero objective, zero deployment load.
    #[test]
    fn full_drain_reaches_the_empty_state(
        seed in any::<u64>(),
        n in 4usize..12,
        arrivals in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let mut engine = OnlineEngine::new(
            g.clone(), 0.5, 2, HopPricer::default(), RepairPolicy::default(),
        ).unwrap();
        let nn = g.node_count() as NodeId;
        for key in 0..arrivals as FlowKey {
            let src = rng.gen_range(0..nn);
            let mut dst = rng.gen_range(0..nn);
            while dst == src { dst = rng.gen_range(0..nn); }
            engine.apply(&Event::FlowArrived {
                key,
                rate: rng.gen_range(1..=10),
                path: shortest_path(&g, src, dst),
            }).unwrap();
        }
        let mut keys: Vec<FlowKey> = (0..arrivals as FlowKey).collect();
        // Depart in a shuffled order.
        for i in (1..keys.len()).rev() {
            keys.swap(i, rng.gen_range(0..=i));
        }
        for key in keys {
            engine.apply(&Event::FlowDeparted { key }).unwrap();
        }
        prop_assert_eq!(engine.active_count(), 0);
        prop_assert_eq!(engine.objective(), 0.0);
        prop_assert_eq!(engine.exact_objective(), 0.0);
    }
}
