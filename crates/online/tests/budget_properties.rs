//! Property tests for the bounded-reconfiguration budget
//! (`tdmd_online::budget`):
//!
//! * **Transparency** — a budget that never binds (zero costs, or a
//!   refill large enough to cover any single event's migration
//!   demand) leaves the engine *bitwise* identical to the unbudgeted
//!   default, event by event.
//! * **Constant factor** — with a sufficient budget the engine
//!   inherits the documented `1 + drift_eps` bound against the
//!   from-scratch oracle at every sampled event (the
//!   factor-of-unconstrained argument of DESIGN.md §15).
//! * **Graceful degradation** — under an arbitrarily tight budget the
//!   engine only exceeds that bound after explicitly recording a
//!   deferral; it never silently drifts.
//! * **Amortized spend** — total migration cost charged never exceeds
//!   `burst + events × refill` plus the post-hoc flow debit, for any
//!   cost configuration.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::algorithms::gtp::gtp_budgeted;
use tdmd_core::Instance;
use tdmd_graph::generators::random::erdos_renyi_connected;
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_online::{Event, FlowKey, HopPricer, OnlineEngine, ReconfigBudget, RepairPolicy};

/// BFS shortest path `src → dst` (the generator guarantees
/// connectivity).
fn shortest_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let r = bfs(g, src);
    let mut path = vec![dst];
    let mut v = dst;
    while v != src {
        v = r.parent[v as usize];
        path.push(v);
    }
    path.reverse();
    path
}

/// A random churn + failure history, valid for sequential application.
fn random_events(g: &DiGraph, seed: u64, len: usize) -> Vec<Event> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<FlowKey> = Vec::new();
    let mut failed: Vec<NodeId> = Vec::new();
    let mut next_key: FlowKey = 0;
    let mut out = Vec::new();
    for _ in 0..len {
        match rng.gen_range(0..10) {
            0..=4 => {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n);
                while dst == src {
                    dst = rng.gen_range(0..n);
                }
                out.push(Event::FlowArrived {
                    key: next_key,
                    rate: rng.gen_range(1..=10),
                    path: shortest_path(g, src, dst),
                });
                active.push(next_key);
                next_key += 1;
            }
            5..=6 if !active.is_empty() => {
                let i = rng.gen_range(0..active.len());
                out.push(Event::FlowDeparted {
                    key: active.swap_remove(i),
                });
            }
            7..=8 if (failed.len() as NodeId) + 1 < n => {
                let mut v = rng.gen_range(0..n);
                while failed.contains(&v) {
                    v = rng.gen_range(0..n);
                }
                out.push(Event::VertexDown { vertex: v });
                failed.push(v);
            }
            _ if !failed.is_empty() => {
                let i = rng.gen_range(0..failed.len());
                out.push(Event::MiddleboxRecovered {
                    vertex: failed.swap_remove(i),
                });
            }
            _ => {}
        }
    }
    out
}

/// Churn-only history (no failures): the drift-bound properties
/// compare against a from-scratch oracle that knows nothing about
/// failed vertices, so failure events would break the bound for
/// reasons unrelated to the budget.
fn random_churn_events(g: &DiGraph, seed: u64, len: usize) -> Vec<Event> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<FlowKey> = Vec::new();
    let mut next_key: FlowKey = 0;
    let mut out = Vec::new();
    for _ in 0..len {
        if !active.is_empty() && rng.gen_range(0..10) < 4 {
            let i = rng.gen_range(0..active.len());
            out.push(Event::FlowDeparted {
                key: active.swap_remove(i),
            });
        } else {
            let src = rng.gen_range(0..n);
            let mut dst = rng.gen_range(0..n);
            while dst == src {
                dst = rng.gen_range(0..n);
            }
            out.push(Event::FlowArrived {
                key: next_key,
                rate: rng.gen_range(1..=10),
                path: shortest_path(g, src, dst),
            });
            active.push(next_key);
            next_key += 1;
        }
    }
    out
}

/// Asserts two engines are bitwise interchangeable right now.
fn assert_bitwise(a: &OnlineEngine<HopPricer>, b: &OnlineEngine<HopPricer>) {
    assert_eq!(a.deployment(), b.deployment());
    assert_eq!(a.objective().to_bits(), b.objective().to_bits());
    assert_eq!(a.exact_objective().to_bits(), b.exact_objective().to_bits());
    assert_eq!(a.failed_vertices(), b.failed_vertices());
    assert_eq!(a.degraded_count(), b.degraded_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A zero-cost finite bucket and a refill that covers any single
    /// event's migration demand are both *transparent*: the budgeted
    /// engine tracks the unbudgeted default bitwise, event by event
    /// (and the zero-cost run never spends a token).
    #[test]
    fn non_binding_budgets_are_bitwise_transparent(
        seed in any::<u64>(),
        n in 4usize..14,
        len in 1usize..28,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let base = RepairPolicy::default();
        // Zero per-move cost: admission always passes, nothing is
        // ever debited.
        let zero_cost = RepairPolicy {
            budget: ReconfigBudget {
                box_move_cost: 0.0,
                flow_reassign_cost: 0.0,
                refill_per_event: 0.25,
                burst: 2.0,
                hysteresis: 0.0,
            },
            ..RepairPolicy::default()
        };
        // Generous refill: any one event's worth of adds + swaps +
        // replan costs at most O(k + move_budget) boxes, far below
        // this refill, so no move is ever deferred.
        let generous = RepairPolicy {
            budget: ReconfigBudget {
                box_move_cost: 1.0,
                flow_reassign_cost: 0.0,
                refill_per_event: 64.0 * (k as f64 + 1.0),
                burst: 64.0 * (k as f64 + 1.0),
                hysteresis: 0.0,
            },
            ..RepairPolicy::default()
        };
        let mut unbudgeted =
            OnlineEngine::new(g.clone(), 0.5, k, HopPricer::default(), base).unwrap();
        let mut free =
            OnlineEngine::new(g.clone(), 0.5, k, HopPricer::default(), zero_cost).unwrap();
        let mut rich =
            OnlineEngine::new(g.clone(), 0.5, k, HopPricer::default(), generous).unwrap();
        for ev in random_events(&g, seed ^ 0xB1, len) {
            prop_assert_eq!(unbudgeted.apply(&ev), free.apply(&ev));
            assert_bitwise(&unbudgeted, &free);
            rich.apply(&ev).unwrap();
            assert_bitwise(&unbudgeted, &rich);
        }
        prop_assert_eq!(free.stats().budget_spent.to_bits(), 0.0f64.to_bits());
        prop_assert_eq!(free.stats().budget_deferrals, 0);
        prop_assert_eq!(rich.stats().budget_deferrals, 0);
        // The transparent runs still account their moves.
        prop_assert_eq!(free.stats().boxes_moved, unbudgeted.stats().boxes_moved);
        prop_assert_eq!(rich.stats().boxes_moved, unbudgeted.stats().boxes_moved);
    }

    /// With drift sampling on every event and a budget large enough to
    /// cover each event's migration demand, the budgeted engine
    /// inherits the unbudgeted `1 + drift_eps` bound against the
    /// from-scratch oracle — the constant-factor-of-unconstrained
    /// guarantee.
    #[test]
    fn sufficient_budget_inherits_the_drift_bound(
        seed in any::<u64>(),
        n in 4usize..14,
        len in 1usize..28,
        k in 1usize..4,
        eps_pct in 0u32..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let lambda = 0.5;
        let eps = eps_pct as f64 / 100.0;
        let policy = RepairPolicy {
            move_budget: 2,
            drift_eps: eps,
            sample_every: 1,
            budget: ReconfigBudget {
                box_move_cost: 1.0,
                flow_reassign_cost: 0.0,
                // One event spends at most k adds + 2·move_budget
                // swap boxes + a 2k-box replan; 16(k+1) covers it.
                refill_per_event: 16.0 * (k as f64 + 1.0),
                burst: 16.0 * (k as f64 + 1.0),
                hysteresis: 0.0,
            },
            ..RepairPolicy::default()
        };
        let mut engine = OnlineEngine::new(
            g.clone(), lambda, k, HopPricer::default(), policy,
        ).unwrap();
        for ev in random_churn_events(&g, seed ^ 0x5A, len) {
            engine.apply(&ev).unwrap();
            let inst = Instance::new(
                g.clone(), engine.state().active_snapshot(), lambda, k,
            ).expect("engine-accepted flows form a valid instance");
            if let Ok(oracle) = gtp_budgeted(&inst, k) {
                let oracle_obj = engine.evaluate_deployment(&oracle);
                prop_assert!(
                    engine.objective() <= oracle_obj * (1.0 + eps) + 1e-9,
                    "objective {} exceeds (1+{eps}) x oracle {}",
                    engine.objective(),
                    oracle_obj
                );
            }
        }
        prop_assert_eq!(engine.stats().budget_deferrals, 0);
    }

    /// Under an arbitrarily tight budget the engine degrades
    /// *gracefully*: at any sampled event it either still meets the
    /// `1 + drift_eps` bound or has explicitly recorded a budget
    /// deferral — it never silently exceeds the bound.
    #[test]
    fn tight_budget_meets_the_bound_or_records_a_deferral(
        seed in any::<u64>(),
        n in 4usize..14,
        len in 1usize..28,
        k in 1usize..4,
        tokens_tenths in 1u32..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let lambda = 0.5;
        let eps = 0.05;
        let policy = RepairPolicy {
            move_budget: 2,
            drift_eps: eps,
            sample_every: 1,
            budget: ReconfigBudget::windowed(tokens_tenths as f64 / 10.0, 8),
            ..RepairPolicy::default()
        };
        let mut engine = OnlineEngine::new(
            g.clone(), lambda, k, HopPricer::default(), policy,
        ).unwrap();
        for ev in random_churn_events(&g, seed ^ 0x71, len) {
            engine.apply(&ev).unwrap();
            if engine.stats().budget_deferrals > 0 {
                // The budget has bound at least once: the engine is
                // allowed to lag the oracle from here on.
                continue;
            }
            let inst = Instance::new(
                g.clone(), engine.state().active_snapshot(), lambda, k,
            ).expect("engine-accepted flows form a valid instance");
            if let Ok(oracle) = gtp_budgeted(&inst, k) {
                let oracle_obj = engine.evaluate_deployment(&oracle);
                prop_assert!(
                    engine.objective() <= oracle_obj * (1.0 + eps) + 1e-9,
                    "no deferral recorded, yet objective {} exceeds \
                     (1+{eps}) x oracle {}",
                    engine.objective(),
                    oracle_obj
                );
            }
        }
    }

    /// Total migration cost charged never exceeds the bucket's
    /// amortized schedule: `burst + events × refill`, plus the
    /// post-hoc flow debit (bounded by the total reassignment cost).
    /// Tokens never exceed the burst capacity.
    #[test]
    fn spend_respects_the_amortized_schedule(
        seed in any::<u64>(),
        n in 4usize..14,
        len in 1usize..40,
        k in 1usize..4,
        refill_tenths in 0u32..30,
        burst_tenths in 1u32..50,
        flow_cost_hundredths in 0u32..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let budget = ReconfigBudget {
            box_move_cost: 1.0,
            flow_reassign_cost: flow_cost_hundredths as f64 / 100.0,
            refill_per_event: refill_tenths as f64 / 10.0,
            burst: burst_tenths as f64 / 10.0,
            hysteresis: 0.0,
        };
        let policy = RepairPolicy { budget, ..RepairPolicy::default() };
        let mut engine = OnlineEngine::new(
            g.clone(), 0.5, k, HopPricer::default(), policy,
        ).unwrap();
        let events = random_events(&g, seed ^ 0x9D, len);
        for ev in &events {
            engine.apply(ev).unwrap();
            prop_assert!(engine.budget_tokens() <= budget.burst + 1e-9);
        }
        let stats = engine.stats();
        let cap = budget.burst
            + budget.refill_per_event * events.len() as f64
            + budget.flow_reassign_cost * stats.flows_reassigned as f64;
        prop_assert!(
            stats.budget_spent <= cap + 1e-6,
            "spent {} exceeds amortized cap {}",
            stats.budget_spent,
            cap
        );
        prop_assert!(stats.budget_spent >= 0.0);
        engine.audit_now().expect("budgeted engine passes the full audit");
    }
}
