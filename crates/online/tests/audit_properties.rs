//! tdmd-audit corruption properties for the online layer.
//!
//! Two directions:
//!
//! * **Soundness** — a per-event-audited engine survives arbitrary
//!   churn + failure streams: every documented `DeltaState`,
//!   `LazyQueue` and engine invariant holds after every applied event
//!   (the auditor panics otherwise).
//! * **Completeness** — each corruption hook seeds one specific
//!   invariant break, and the auditor rejects it with the expected
//!   check name: off-path/suboptimal assignment, skewed running sums,
//!   broken row mirror, stale queue epoch.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::Deployment;
use tdmd_graph::generators::random::erdos_renyi_connected;
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_online::{
    DeltaState, Event, FlowKey, HopPricer, LazyQueue, OnlineEngine, PathPricer, RepairPolicy,
};

/// BFS shortest path `src → dst` (the generator guarantees
/// connectivity).
fn shortest_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let r = bfs(g, src);
    let mut path = vec![dst];
    let mut v = dst;
    while v != src {
        v = r.parent[v as usize];
        path.push(v);
    }
    path.reverse();
    path
}

/// A random history of arrivals, departures, vertex failures and
/// recoveries, all valid for sequential application.
fn random_events(g: &DiGraph, seed: u64, len: usize) -> Vec<Event> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<FlowKey> = Vec::new();
    let mut failed: Vec<NodeId> = Vec::new();
    let mut next_key: FlowKey = 0;
    let mut out = Vec::new();
    for _ in 0..len {
        match rng.gen_range(0..10) {
            0..=4 => {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n);
                while dst == src {
                    dst = rng.gen_range(0..n);
                }
                out.push(Event::FlowArrived {
                    key: next_key,
                    rate: rng.gen_range(1..=10),
                    path: shortest_path(g, src, dst),
                });
                active.push(next_key);
                next_key += 1;
            }
            5..=6 if !active.is_empty() => {
                let i = rng.gen_range(0..active.len());
                out.push(Event::FlowDeparted {
                    key: active.swap_remove(i),
                });
            }
            7..=8 if (failed.len() as NodeId) < n => {
                let mut v = rng.gen_range(0..n);
                while failed.contains(&v) {
                    v = rng.gen_range(0..n);
                }
                out.push(Event::VertexDown { vertex: v });
                failed.push(v);
            }
            _ if !failed.is_empty() => {
                let i = rng.gen_range(0..failed.len());
                out.push(Event::MiddleboxRecovered {
                    vertex: failed.swap_remove(i),
                });
            }
            _ => {} // nothing valid to do this tick
        }
    }
    out
}

/// A small populated state for corruption seeding: two overlapping
/// flows on a 4-line, one middlebox at vertex 1.
fn seeded_state() -> (DeltaState, Deployment) {
    let mut st = DeltaState::new(4, 0.5);
    let dep = Deployment::from_vertices(4, [1]);
    let pricer = HopPricer::default();
    for (key, rate, path) in [(7u64, 2u64, vec![3, 2, 1, 0]), (8, 4, vec![2, 1, 0])] {
        let probe = tdmd_traffic::Flow::new(0, rate, path.clone());
        let gains = pricer.gains(&probe);
        let cost = pricer.unprocessed_cost(&probe);
        st.insert(key, rate, path, gains, cost, &dep);
    }
    st.check_invariants(&dep).expect("seed state is clean");
    (st, dep)
}

#[test]
fn forced_offpath_assignment_is_rejected() {
    let (mut st, dep) = seeded_state();
    // Vertex 3 is off flow 8's path entirely; the optimality check
    // recomputes the true best and disagrees.
    st.audit_force_assignment(8, Some((3, 2.0)));
    let err = st.check_invariants(&dep).unwrap_err();
    assert_eq!(err.check, "delta-assignment", "{err}");
}

#[test]
fn dropped_assignment_breaks_the_unserved_census() {
    let (mut st, dep) = seeded_state();
    // Un-assigning without bumping `unserved` breaks invariant 2
    // first (vertex 1 is deployed and on-path, so None is not
    // optimal).
    st.audit_force_assignment(7, None);
    let err = st.check_invariants(&dep).unwrap_err();
    assert_eq!(err.check, "delta-assignment", "{err}");
    // With the box undeployed, None becomes optimal for both flows —
    // now the stale running sums are the first detectable break.
    st.audit_force_assignment(8, None);
    let empty = Deployment::empty(4);
    let err = st.check_invariants(&empty).unwrap_err();
    assert_eq!(err.check, "delta-sum-saved", "{err}");
}

#[test]
fn skewed_saved_sum_is_rejected() {
    let (mut st, dep) = seeded_state();
    st.audit_skew_saved(1.0);
    let err = st.check_invariants(&dep).unwrap_err();
    assert_eq!(err.check, "delta-sum-saved", "{err}");
}

#[test]
fn swapped_row_entries_break_the_mirror() {
    let (mut st, dep) = seeded_state();
    // Vertex 1 carries both flows: swapping its row entries without
    // fixing the back-pointers breaks invariant 1.
    assert!(st.audit_swap_row_entries(1), "vertex 1 carries two flows");
    let err = st.check_invariants(&dep).unwrap_err();
    assert_eq!(err.check, "delta-row-backpointer", "{err}");
}

#[test]
fn stale_queue_epoch_is_rejected() {
    let mut q = LazyQueue::new(3);
    q.touch_up(0, 5.0);
    q.touch_up(1, 2.0);
    let dep = Deployment::empty(3);
    let gains = [5.0, 2.0, 0.0];
    q.check_coherence(&dep, |v| gains[v as usize])
        .expect("fresh queue is coherent");
    // Bumping vertex 0's epoch without a fresh push kills its live
    // entry while its exact gain is still positive.
    q.audit_stale_stamp(0);
    let err = q.check_coherence(&dep, |v| gains[v as usize]).unwrap_err();
    assert_eq!(err.check, "queue-missing-candidate", "{err}");
}

#[test]
fn optimistic_arrival_bounds_stay_dirty_upper_bounds() {
    let mut q = LazyQueue::new(2);
    q.touch_up(0, 9.0); // optimistic bound, true gain 4
    let dep = Deployment::empty(2);
    q.check_coherence(&dep, |v| if v == 0 { 4.0 } else { 0.0 })
        .expect("dirty bound above exact gain is coherent");
    // A dirty bound *below* the exact gain breaks the CELF
    // upper-bound invariant.
    let err = q
        .check_coherence(&dep, |v| if v == 0 { 20.0 } else { 0.0 })
        .unwrap_err();
    assert_eq!(err.check, "queue-bound-violated", "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every engine invariant holds after every event of an arbitrary
    /// churn + failure stream, under both local-only repair and
    /// drift-sampled replanning (the auditor panics on violation).
    #[test]
    fn audited_engine_survives_random_streams(
        seed in any::<u64>(),
        n in 4usize..12,
        len in 1usize..40,
        k in 1usize..4,
        sampled in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let policy = if sampled {
            RepairPolicy { sample_every: 3, ..RepairPolicy::default() }
        } else {
            RepairPolicy::local_only(2)
        };
        let mut engine = OnlineEngine::new(
            g.clone(), 0.5, k, HopPricer::default(), policy,
        ).unwrap();
        engine.enable_audit();
        for ev in random_events(&g, seed ^ 0x7E, len) {
            engine.apply(&ev).unwrap();
        }
        tdmd_online::audit::check_engine(&engine).unwrap();
    }
}
