//! Property tests for the engine snapshot/restore contract
//! (`tdmd_online::snapshot`):
//!
//! * **Bitwise restore** — snapshot a live engine mid-stream, restore
//!   it, then drive both engines through the same suffix of churn +
//!   failure events: deployments, objectives (`to_bits`), stats and
//!   failure masks stay identical after *every* event, and the final
//!   snapshots are byte-for-byte equal documents.
//! * **JSON round trip** — a snapshot survives
//!   serialize → deserialize losslessly (floats bitwise), and the
//!   restored-from-JSON engine is as good as the restored-in-memory
//!   one.
//! * **Validation** — corrupt documents (bad version, wrong topology,
//!   duplicate keys, over-budget deployments, deployed-while-failed
//!   vertices) are rejected with the right error.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_graph::generators::random::erdos_renyi_connected;
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_obs::NoopRecorder;
use tdmd_online::{
    EngineSnapshot, Event, FlowKey, HopPricer, OnlineEngine, ReconfigBudget, RepairPolicy,
    SnapshotError, SNAPSHOT_VERSION,
};

/// BFS shortest path `src → dst` (the generator guarantees
/// connectivity).
fn shortest_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let r = bfs(g, src);
    let mut path = vec![dst];
    let mut v = dst;
    while v != src {
        v = r.parent[v as usize];
        path.push(v);
    }
    path.reverse();
    path
}

/// A random history of arrivals, departures, vertex failures and
/// recoveries, all valid for sequential application.
fn random_events(g: &DiGraph, seed: u64, len: usize) -> Vec<Event> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<FlowKey> = Vec::new();
    let mut failed: Vec<NodeId> = Vec::new();
    let mut next_key: FlowKey = 0;
    let mut out = Vec::new();
    for _ in 0..len {
        match rng.gen_range(0..10) {
            0..=4 => {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n);
                while dst == src {
                    dst = rng.gen_range(0..n);
                }
                out.push(Event::FlowArrived {
                    key: next_key,
                    rate: rng.gen_range(1..=10),
                    path: shortest_path(g, src, dst),
                });
                active.push(next_key);
                next_key += 1;
            }
            5..=6 if !active.is_empty() => {
                let i = rng.gen_range(0..active.len());
                out.push(Event::FlowDeparted {
                    key: active.swap_remove(i),
                });
            }
            7..=8 if (failed.len() as NodeId) < n => {
                let mut v = rng.gen_range(0..n);
                while failed.contains(&v) {
                    v = rng.gen_range(0..n);
                }
                out.push(Event::VertexDown { vertex: v });
                failed.push(v);
            }
            _ if !failed.is_empty() => {
                let i = rng.gen_range(0..failed.len());
                out.push(Event::MiddleboxRecovered {
                    vertex: failed.swap_remove(i),
                });
            }
            _ => {} // nothing valid to do this tick
        }
    }
    out
}

/// A drift-sampling policy with a short enough period that the
/// suffix replay crosses sampling boundaries — `stats.events` is
/// carried through the snapshot, so the restored engine must resume
/// the schedule in phase with the live one.
fn sampling_policy() -> RepairPolicy {
    RepairPolicy {
        move_budget: 2,
        drift_eps: 0.05,
        sample_every: 3,
        force_replan: false,
        replan_on_degraded: true,
        ..RepairPolicy::default()
    }
}

fn restore(g: &DiGraph, snap: &EngineSnapshot) -> OnlineEngine<HopPricer> {
    OnlineEngine::restore(
        g.clone(),
        HopPricer::default(),
        sampling_policy(),
        NoopRecorder,
        snap,
    )
    .expect("engine-produced snapshots restore")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot mid-stream, restore, replay the suffix on both: the
    /// engines stay bitwise interchangeable event by event, and their
    /// final snapshots are identical documents.
    #[test]
    fn restore_is_bitwise_equal_to_the_continuing_engine(
        seed in any::<u64>(),
        n in 4usize..14,
        prefix in 0usize..24,
        suffix in 1usize..24,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let mut live = OnlineEngine::new(
            g.clone(), 0.5, k, HopPricer::default(), sampling_policy(),
        ).unwrap();
        let events = random_events(&g, seed ^ 0xC3, prefix + suffix);
        for ev in &events[..prefix.min(events.len())] {
            live.apply(ev).unwrap();
        }
        let snap = live.snapshot();
        let mut restored = restore(&g, &snap);
        // Both sides start bitwise aligned...
        prop_assert_eq!(live.deployment(), restored.deployment());
        prop_assert_eq!(
            live.exact_objective().to_bits(),
            restored.exact_objective().to_bits()
        );
        // ...and stay aligned through the whole suffix.
        for ev in &events[prefix.min(events.len())..] {
            prop_assert_eq!(live.apply(ev), restored.apply(ev));
            prop_assert_eq!(live.deployment(), restored.deployment());
            prop_assert_eq!(
                live.objective().to_bits(),
                restored.objective().to_bits()
            );
            prop_assert_eq!(
                live.exact_objective().to_bits(),
                restored.exact_objective().to_bits()
            );
            prop_assert_eq!(live.stats(), restored.stats());
            prop_assert_eq!(live.failed_vertices(), restored.failed_vertices());
            prop_assert_eq!(live.degraded_count(), restored.degraded_count());
        }
        restored.audit_now().expect("restored engine passes the full audit");
        prop_assert_eq!(live.snapshot(), restored.snapshot());
    }

    /// A snapshot survives the JSON round trip losslessly (floats
    /// bitwise — `PartialEq` on `f64` fields is exact here because
    /// every serialized float is finite).
    #[test]
    fn snapshot_round_trips_through_json(
        seed in any::<u64>(),
        n in 4usize..12,
        len in 0usize..20,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let mut live = OnlineEngine::new(
            g.clone(), 0.5, k, HopPricer::default(), sampling_policy(),
        ).unwrap();
        for ev in random_events(&g, seed ^ 0x7E, len) {
            live.apply(&ev).unwrap();
        }
        let snap = live.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: EngineSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &snap);
        let restored = restore(&g, &back);
        prop_assert_eq!(live.deployment(), restored.deployment());
        prop_assert_eq!(
            live.exact_objective().to_bits(),
            restored.exact_objective().to_bits()
        );
    }
}

/// A budgeted variant of [`sampling_policy`], used to check the
/// budget state rides through snapshot/restore bitwise.
fn budgeted_policy() -> RepairPolicy {
    RepairPolicy {
        budget: ReconfigBudget::windowed(3.0, 8).with_hysteresis(0.1),
        ..sampling_policy()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The migration-budget token level survives snapshot → restore:
    /// both engines spend, defer and refill identically through the
    /// suffix, and their stats (including `budget_spent` /
    /// `budget_deferrals`) stay bitwise equal.
    #[test]
    fn budget_state_round_trips_through_snapshots(
        seed in any::<u64>(),
        n in 4usize..14,
        prefix in 0usize..24,
        suffix in 1usize..24,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let mut live = OnlineEngine::new(
            g.clone(), 0.5, k, HopPricer::default(), budgeted_policy(),
        ).unwrap();
        let events = random_events(&g, seed ^ 0xBD, prefix + suffix);
        for ev in &events[..prefix.min(events.len())] {
            live.apply(ev).unwrap();
        }
        let snap = live.snapshot();
        prop_assert!(
            snap.budget_tokens.is_finite(),
            "finite-budget snapshots persist a finite token level"
        );
        let mut restored = OnlineEngine::restore(
            g.clone(),
            HopPricer::default(),
            budgeted_policy(),
            NoopRecorder,
            &snap,
        ).expect("engine-produced snapshots restore");
        prop_assert_eq!(
            live.budget_tokens().to_bits(),
            restored.budget_tokens().to_bits()
        );
        for ev in &events[prefix.min(events.len())..] {
            prop_assert_eq!(live.apply(ev), restored.apply(ev));
            prop_assert_eq!(live.deployment(), restored.deployment());
            prop_assert_eq!(
                live.budget_tokens().to_bits(),
                restored.budget_tokens().to_bits()
            );
            prop_assert_eq!(live.stats(), restored.stats());
        }
        prop_assert_eq!(live.snapshot(), restored.snapshot());
    }
}

/// A tiny deterministic snapshot to corrupt in the validation tests.
fn small_snapshot() -> (DiGraph, EngineSnapshot) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = erdos_renyi_connected(6, 0.4, &mut rng);
    let mut e = OnlineEngine::new(
        g.clone(),
        0.5,
        2,
        HopPricer::default(),
        RepairPolicy::default(),
    )
    .unwrap();
    for ev in random_events(&g, 7, 12) {
        e.apply(&ev).unwrap();
    }
    (g, e.snapshot())
}

#[test]
fn unsupported_versions_are_rejected() {
    let (g, mut snap) = small_snapshot();
    snap.version = SNAPSHOT_VERSION + 1;
    let err = OnlineEngine::restore(
        g,
        HopPricer::default(),
        RepairPolicy::default(),
        NoopRecorder,
        &snap,
    )
    .err()
    .expect("restore must fail");
    assert_eq!(
        err,
        SnapshotError::UnsupportedVersion {
            found: SNAPSHOT_VERSION + 1
        }
    );
}

#[test]
fn pre_budget_v1_documents_are_rejected_not_silently_upgraded() {
    // A v1 document parses (the budget field is `#[serde(default)]`)
    // but must be refused at restore: silently defaulting the token
    // level would break the bitwise-restore contract for budgeted
    // engines, so `tdmd-serve` never resumes from a pre-budget
    // snapshot without an explicit re-snapshot.
    let (g, snap) = small_snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    assert!(json.contains("\"version\":2"), "{json}");
    let json = json.replacen("\"version\":2", "\"version\":1", 1);
    // Drop the budget field textually, mimicking a document written
    // before the field existed.
    let field = ",\"budget_tokens\":";
    let start = json.find(field).expect("field serialized");
    let value_len = json[start + field.len()..]
        .find([',', '}'])
        .expect("well-formed JSON");
    let json = format!(
        "{}{}",
        &json[..start],
        &json[start + field.len() + value_len..]
    );
    let v1: EngineSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(v1.version, 1);
    assert_eq!(v1.budget_tokens, 0.0, "the serde default fills the gap");
    let err = OnlineEngine::restore(
        g,
        HopPricer::default(),
        RepairPolicy::default(),
        NoopRecorder,
        &v1,
    )
    .err()
    .expect("restore must fail");
    assert_eq!(err, SnapshotError::UnsupportedVersion { found: 1 });
}

#[test]
fn non_finite_budget_state_is_rejected() {
    let (g, mut snap) = small_snapshot();
    snap.budget_tokens = f64::NAN;
    let err = OnlineEngine::restore(
        g,
        HopPricer::default(),
        RepairPolicy::default(),
        NoopRecorder,
        &snap,
    )
    .err()
    .expect("restore must fail");
    assert!(matches!(err, SnapshotError::BadBudgetState(_)));
}

#[test]
fn topology_mismatches_are_rejected() {
    let (_, snap) = small_snapshot();
    let other = DiGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
    let err = OnlineEngine::restore(
        other,
        HopPricer::default(),
        RepairPolicy::default(),
        NoopRecorder,
        &snap,
    )
    .err()
    .expect("restore must fail");
    assert_eq!(
        err,
        SnapshotError::TopologyMismatch {
            expected: snap.node_count,
            found: 3
        }
    );
}

#[test]
fn structurally_corrupt_documents_are_rejected() {
    let (g, snap) = small_snapshot();
    let restore_err = |s: &EngineSnapshot| {
        OnlineEngine::restore(
            g.clone(),
            HopPricer::default(),
            RepairPolicy::default(),
            NoopRecorder,
            s,
        )
        .err()
        .expect("restore must fail")
    };

    let mut dup = snap.clone();
    if dup.flows.len() >= 2 {
        let first = dup.flows[0].clone();
        let last = dup.flows.len() - 1;
        dup.flows[last] = first;
        assert_eq!(
            restore_err(&dup),
            SnapshotError::DuplicateKey {
                key: snap.flows[0].key
            }
        );
    }

    let mut over = snap.clone();
    over.k = 0;
    if !over.deployment.is_empty() {
        assert_eq!(
            restore_err(&over),
            SnapshotError::OverBudget {
                deployed: over.deployment.len() as u64,
                k: 0
            }
        );
    }

    let mut clash = snap.clone();
    if let Some(&v) = clash.deployment.first() {
        clash.failed.push(v);
        assert_eq!(
            restore_err(&clash),
            SnapshotError::DeployedWhileFailed { vertex: v }
        );
    }

    let mut oob = snap.clone();
    oob.failed.push(99);
    assert_eq!(restore_err(&oob), SnapshotError::BadVertex { vertex: 99 });

    let mut gains = snap.clone();
    if let Some(f) = gains.flows.first_mut() {
        let key = f.key;
        f.gains.pop();
        assert_eq!(restore_err(&gains), SnapshotError::InvalidFlow { key });
    }

    let mut lambda = snap.clone();
    lambda.lambda = 1.5;
    assert_eq!(restore_err(&lambda), SnapshotError::BadLambda(1.5));
}
