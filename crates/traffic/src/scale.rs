//! Million-flow scale-tier workload: gateway-destination gravity
//! traffic over a general topology.
//!
//! The scale benchmark needs to mint flows by the million without
//! re-running a BFS per flow, and it needs the resulting instance to
//! stay *feasible* under a small middlebox budget (a budgeted greedy
//! over a million flows with a thousand random destinations would need
//! a thousand-vertex cover). [`GatewayWorkload`] solves both at once:
//!
//! * every flow terminates at one of `G` designated **gateway**
//!   vertices (the data-center egress model — G ≪ k keeps greedy
//!   set-cover feasibility trivially cheap to certify);
//! * one BFS per gateway on the (bidirectional) topology is run
//!   eagerly at construction; a flow's path is then the reversed
//!   BFS-tree path `gateway → src`, an O(path length) slice copy with
//!   no further graph traversal.
//!
//! Rates are uniform integers in `1..=max_rate` — the scale tier
//! measures throughput, not tail-rate realism (use
//! [`crate::distribution::CaidaLike`] workloads for that).

use rand::Rng;
use tdmd_graph::traversal::{bfs, BfsResult};
use tdmd_graph::{DiGraph, NodeId};

use crate::flow::{Flow, FlowId};

/// Precomputed gateway routing state: one BFS tree per gateway.
#[derive(Debug, Clone)]
pub struct GatewayWorkload {
    gateways: Vec<NodeId>,
    trees: Vec<BfsResult>,
    max_rate: u64,
}

impl GatewayWorkload {
    /// Builds the per-gateway BFS trees. `g` must be bidirectional
    /// (every generator in [`tdmd_graph::generators`] used by the
    /// scale tier is) and connected, so every source reaches every
    /// gateway.
    ///
    /// # Panics
    /// Panics if `gateways` is empty, contains an out-of-range vertex,
    /// or `max_rate` is zero.
    pub fn new(g: &DiGraph, gateways: Vec<NodeId>, max_rate: u64) -> Self {
        assert!(!gateways.is_empty(), "need at least one gateway");
        assert!(max_rate > 0, "rates are positive integers");
        let n = g.node_count();
        for &gw in &gateways {
            assert!((gw as usize) < n, "gateway {gw} outside the graph");
        }
        let trees = gateways.iter().map(|&gw| bfs(g, gw)).collect();
        Self {
            gateways,
            trees,
            max_rate,
        }
    }

    /// The designated gateway (destination) vertices.
    pub fn gateways(&self) -> &[NodeId] {
        &self.gateways
    }

    /// Mints one flow: uniform random non-gateway-colocated source,
    /// uniform random gateway, uniform rate in `1..=max_rate`, path =
    /// the reversed BFS-tree walk (shortest by hop count).
    ///
    /// # Panics
    /// Panics if the chosen source cannot reach the chosen gateway —
    /// impossible on the connected bidirectional graphs this type is
    /// documented for.
    pub fn flow<R: Rng + ?Sized>(&self, g: &DiGraph, id: FlowId, rng: &mut R) -> Flow {
        let n = g.node_count();
        loop {
            let which = rng.gen_range(0..self.gateways.len());
            let src = rng.gen_range(0..n) as NodeId;
            if src == self.gateways[which] {
                continue;
            }
            let Some(mut path) = self.trees[which].path_to(src) else {
                panic!("scale workload requires a connected topology")
            };
            // BFS ran from the gateway, so the tree path runs
            // gateway → src; the flow travels src → gateway.
            path.reverse();
            let rate = rng.gen_range(1..=self.max_rate);
            return Flow::new(id, rate, path);
        }
    }

    /// Mints `count` flows with dense ids `first_id..`.
    ///
    /// # Panics
    /// Panics if `count` exceeds `u32::MAX` (flow ids are dense
    /// `u32`s) or the topology is not connected.
    pub fn flows<R: Rng + ?Sized>(
        &self,
        g: &DiGraph,
        first_id: FlowId,
        count: usize,
        rng: &mut R,
    ) -> Vec<Flow> {
        let Ok(count) = u32::try_from(count) else {
            panic!("flow count exceeds u32::MAX")
        };
        let mut out = Vec::with_capacity(count as usize);
        for id in first_id..first_id + count {
            out.push(self.flow(g, id, rng));
        }
        out
    }

    /// Picks `count` distinct gateway vertices uniformly at random
    /// from `0..n` — a convenience for benchmark setup.
    ///
    /// # Panics
    /// Panics if `count` is zero or exceeds `n`.
    pub fn pick_gateways<R: Rng + ?Sized>(n: usize, count: usize, rng: &mut R) -> Vec<NodeId> {
        assert!(count > 0, "need at least one gateway");
        assert!(count <= n, "more gateways than vertices");
        let mut picked: Vec<NodeId> = Vec::with_capacity(count);
        while picked.len() < count {
            let v = rng.gen_range(0..n) as NodeId;
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        picked.sort_unstable();
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdmd_graph::generators::erdos_renyi_connected;

    fn topology(seed: u64) -> DiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        erdos_renyi_connected(64, 0.05, &mut rng)
    }

    #[test]
    fn flows_are_valid_paths_ending_at_gateways() {
        let g = topology(1);
        let mut rng = StdRng::seed_from_u64(2);
        let gateways = GatewayWorkload::pick_gateways(64, 4, &mut rng);
        let w = GatewayWorkload::new(&g, gateways.clone(), 10);
        let flows = w.flows(&g, 0, 500, &mut rng);
        assert_eq!(flows.len(), 500);
        for f in &flows {
            assert!(f.path_is_valid(&g), "flow {} path invalid", f.id);
            assert!(gateways.contains(&f.dst()), "flow {} misses gateways", f.id);
            assert!((1..=10).contains(&f.rate));
        }
        // Dense ids from the requested base.
        assert!(flows.iter().enumerate().all(|(i, f)| f.id as usize == i));
    }

    #[test]
    fn paths_are_shortest_by_hops() {
        let g = topology(3);
        let mut rng = StdRng::seed_from_u64(4);
        let w = GatewayWorkload::new(&g, vec![0], 5);
        for id in 0..50 {
            let f = w.flow(&g, id, &mut rng);
            let shortest = tdmd_graph::traversal::bfs_path(&g, f.src(), f.dst()).unwrap();
            assert_eq!(f.hops() + 1, shortest.len(), "flow {id} not shortest");
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let g = topology(5);
        let w = GatewayWorkload::new(&g, vec![1, 7, 13], 10);
        let a = w.flows(&g, 100, 200, &mut StdRng::seed_from_u64(6));
        let b = w.flows(&g, 100, 200, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
    }

    #[test]
    fn pick_gateways_is_distinct_and_sorted() {
        let mut rng = StdRng::seed_from_u64(7);
        let gws = GatewayWorkload::pick_gateways(16, 8, &mut rng);
        assert_eq!(gws.len(), 8);
        assert!(gws.windows(2).all(|w| w[0] < w[1]));
        assert!(gws.iter().all(|&v| (v as usize) < 16));
    }

    #[test]
    #[should_panic(expected = "at least one gateway")]
    fn empty_gateway_set_rejected() {
        let g = topology(8);
        let _ = GatewayWorkload::new(&g, vec![], 10);
    }
}
