//! Flow-rate distributions.
//!
//! The paper samples flow sizes from "the flow size distribution of
//! the CAIDA center ... collected in a 1-hour packet trace" (§6.1).
//! That trace is not redistributable, so [`CaidaLike`] synthesizes the
//! well-documented shape of Internet backbone flow sizes: a lognormal
//! body of mice with a Pareto elephant tail (see e.g. the redundancy
//! study \[15\] the paper cites). Rates are quantized to integral rate
//! units (≥ 1) because the tree DP is pseudo-polynomial in `r_max`.

use rand::Rng;
use rand_distr::{Distribution, LogNormal, Pareto};
use serde::{Deserialize, Serialize};

/// A sampler of integral flow rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateDistribution {
    /// Every flow has the same rate (the paper's "flows have the same
    /// rate" special case, where the DP becomes polynomial).
    Constant(u64),
    /// Uniform over `lo..=hi`.
    Uniform {
        /// Smallest rate.
        lo: u64,
        /// Largest rate.
        hi: u64,
    },
    /// Heavy-tailed CAIDA-trace-like mixture.
    Caida(CaidaLike),
    /// Empirical distribution: draw uniformly from observed samples
    /// (e.g. flow sizes aggregated from a packet trace,
    /// [`crate::trace::rates_from_trace`]).
    Empirical {
        /// Observed integral rates; must be non-empty.
        samples: Vec<u64>,
    },
}

impl RateDistribution {
    /// Default stand-in for the paper's CAIDA workload.
    pub fn caida_default() -> Self {
        RateDistribution::Caida(CaidaLike::default())
    }

    /// Samples one integral rate (always ≥ 1).
    ///
    /// # Panics
    /// Panics on an inverted `Uniform` range or an `Empirical`
    /// distribution with no samples.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            RateDistribution::Constant(r) => (*r).max(1),
            RateDistribution::Uniform { lo, hi } => {
                let (lo, hi) = ((*lo).max(1), (*hi).max(1));
                assert!(lo <= hi, "uniform bounds inverted");
                rng.gen_range(lo..=hi)
            }
            RateDistribution::Caida(c) => c.sample(rng),
            RateDistribution::Empirical { samples } => {
                assert!(!samples.is_empty(), "empirical distribution needs samples");
                samples[rng.gen_range(0..samples.len())].max(1)
            }
        }
    }
}

/// Heavy-tailed flow-size model: with probability `1 - elephant_share`
/// draw from a lognormal body (mice), otherwise from a Pareto tail
/// (elephants). Results are rounded to integers, clamped to
/// `[1, max_rate]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaidaLike {
    /// Lognormal `μ` of the mice body (natural-log scale).
    pub body_mu: f64,
    /// Lognormal `σ` of the mice body.
    pub body_sigma: f64,
    /// Pareto scale (minimum elephant size).
    pub tail_scale: f64,
    /// Pareto shape `α` (smaller ⇒ heavier tail).
    pub tail_shape: f64,
    /// Fraction of flows that are elephants.
    pub elephant_share: f64,
    /// Hard cap to keep the DP's rate dimension bounded.
    pub max_rate: u64,
}

impl Default for CaidaLike {
    fn default() -> Self {
        // Median mouse ≈ e^1.0 ≈ 3 units, elephants ≥ 8 units with a
        // α = 1.5 tail capped at 64 units: a few percent of flows carry
        // most of the bytes, like the CAIDA mix.
        Self {
            body_mu: 1.0,
            body_sigma: 0.7,
            tail_scale: 8.0,
            tail_shape: 1.5,
            elephant_share: 0.1,
            max_rate: 64,
        }
    }
}

impl CaidaLike {
    /// Samples one integral rate.
    ///
    /// The fields are public (and deserializable), so degenerate
    /// parameters are reachable from user config; they are clamped to
    /// the nearest valid value rather than panicking mid-workload.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let share = if self.elephant_share.is_finite() {
            self.elephant_share.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let raw = if rng.gen_bool(share) {
            Pareto::new(
                self.tail_scale.max(f64::MIN_POSITIVE),
                self.tail_shape.max(f64::MIN_POSITIVE),
            )
            .map(|tail| tail.sample(rng))
            .unwrap_or(self.tail_scale)
        } else {
            LogNormal::new(self.body_mu, self.body_sigma.abs())
                .map(|body| body.sample(rng))
                .unwrap_or_else(|_| self.body_mu.exp())
        };
        (raw.round() as u64).clamp(1, self.max_rate.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant_and_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = RateDistribution::Constant(5);
        assert!((0..100).all(|_| d.sample(&mut rng) == 5));
        // Zero is clamped to 1 rather than producing degenerate flows.
        assert_eq!(RateDistribution::Constant(0).sample(&mut rng), 1);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = RateDistribution::Uniform { lo: 3, hi: 9 };
        for _ in 0..1000 {
            let r = d.sample(&mut rng);
            assert!((3..=9).contains(&r));
        }
    }

    #[test]
    fn caida_rates_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = CaidaLike::default();
        for _ in 0..5000 {
            let r = c.sample(&mut rng);
            assert!((1..=c.max_rate).contains(&r));
        }
    }

    #[test]
    fn caida_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = CaidaLike::default();
        let samples: Vec<u64> = (0..20_000).map(|_| c.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(
            mean > 1.3 * median,
            "mean {mean} should exceed median {median} markedly"
        );
        // Elephants exist but are rare.
        let big = samples.iter().filter(|&&r| r >= 8).count() as f64 / samples.len() as f64;
        assert!(
            (0.02..0.35).contains(&big),
            "elephant share {big} out of expected band"
        );
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let d = RateDistribution::caida_default();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let d = RateDistribution::caida_default();
        let s = serde_json::to_string(&d).unwrap();
        let e: RateDistribution = serde_json::from_str(&s).unwrap();
        assert_eq!(d, e);
    }
}
