//! The flow record.
//!
//! A flow is unsplittable (§3.1: splitting breaks TCP ordering), has
//! one valid *active* path (pre-determined in the paper; selected from
//! a [`crate::pathset::FlowPaths`] candidate set under the joint
//! routing extension), and an integer initial rate. Integer
//! rates matter: the paper's tree DP is pseudo-polynomial in the
//! largest rate, so rates are modeled in integral "rate units".

use serde::{Deserialize, Serialize};
use tdmd_graph::{DiGraph, NodeId};

/// Dense flow identifier.
pub type FlowId = u32;

/// Tenant (traffic-class) identifier. Tenant `0` is the default
/// anonymous class every single-tenant workload lives in.
pub type TenantId = u16;

/// An unsplittable flow with its currently active path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Flow id (dense, unique within a workload).
    pub id: FlowId,
    /// Initial traffic rate `r_f` in integral rate units.
    pub rate: u64,
    /// The path `p_f` as a vertex sequence `src .. dst`
    /// (length = hop count + 1).
    pub path: Vec<NodeId>,
    /// Tenant / traffic class the flow belongs to. Defaults to `0`
    /// (including when absent from serialized workloads, so pre-tenant
    /// workload files keep loading).
    #[serde(default)]
    pub tenant: TenantId,
}

impl Flow {
    /// Creates a flow (tenant `0`), validating that the path is
    /// non-degenerate.
    ///
    /// # Panics
    /// Panics if the rate is zero (the paper's flows carry positive
    /// traffic, and the tree DP's coverage accounting relies on it),
    /// if the path has fewer than 2 vertices, or if the path repeats a
    /// vertex (the paper's paths are simple).
    pub fn new(id: FlowId, rate: u64, path: Vec<NodeId>) -> Self {
        assert!(rate > 0, "flow rate must be positive");
        assert!(path.len() >= 2, "flow path must traverse at least one edge");
        let mut seen = path.clone();
        seen.sort_unstable();
        let unique = seen.windows(2).all(|w| w[0] != w[1]);
        assert!(unique, "flow path must be simple");
        Self {
            id,
            rate,
            path,
            tenant: 0,
        }
    }

    /// Tags the flow with a tenant / traffic class (builder style).
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Source vertex `src_f`.
    ///
    /// # Panics
    /// Panics on an empty path — unreachable for flows built through
    /// [`Flow::new`], which validates the path.
    #[inline]
    pub fn src(&self) -> NodeId {
        self.path[0]
    }

    /// Destination vertex `dst_f`.
    #[inline]
    pub fn dst(&self) -> NodeId {
        *self.path.last().expect("path is non-empty")
    }

    /// Number of edges `|p_f|`.
    #[inline]
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }

    /// Position of `v` on the path, if any.
    #[inline]
    pub fn position_of(&self, v: NodeId) -> Option<usize> {
        self.path.iter().position(|&x| x == v)
    }

    /// Number of path edges *downstream* of `v` — the paper's
    /// `l_v(f)` as used in Eq. (1) (see the notation fix in
    /// DESIGN.md): hops from `v` to the destination along `p_f`.
    /// `None` if `v` is not on the path.
    #[inline]
    pub fn downstream_hops(&self, v: NodeId) -> Option<usize> {
        self.position_of(v).map(|i| self.hops() - i)
    }

    /// Bandwidth consumption `r_f · |p_f|` when unprocessed.
    #[inline]
    pub fn unprocessed_bandwidth(&self) -> u64 {
        self.rate * self.hops() as u64
    }

    /// Checks that every consecutive pair of the path is a directed
    /// edge of `g`.
    pub fn path_is_valid(&self, g: &DiGraph) -> bool {
        self.path.windows(2).all(|w| g.has_edge(w[0], w[1]))
    }
}

/// Total initial load `Σ r_f · |p_f|` of a workload — the numerator of
/// the flow-density metric and the `d(∅)` baseline of Lemma 1.
pub fn total_load(flows: &[Flow]) -> u64 {
    flows.iter().map(Flow::unprocessed_bandwidth).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::GraphBuilder;

    fn line_graph(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_bidirectional(i as NodeId, (i + 1) as NodeId);
        }
        b.build()
    }

    #[test]
    fn accessors() {
        let f = Flow::new(0, 4, vec![5, 3, 1]);
        assert_eq!(f.src(), 5);
        assert_eq!(f.dst(), 1);
        assert_eq!(f.hops(), 2);
        assert_eq!(f.unprocessed_bandwidth(), 8);
    }

    #[test]
    fn downstream_hops_matches_fig1() {
        // Fig. 1: f1 from v5 via v3 to v1, rate 4, middlebox at the
        // source ⇒ l = |p| = 2 (all edges carry diminished traffic).
        let f = Flow::new(0, 4, vec![5, 3, 1]);
        assert_eq!(f.downstream_hops(5), Some(2));
        assert_eq!(f.downstream_hops(3), Some(1));
        assert_eq!(f.downstream_hops(1), Some(0));
        assert_eq!(f.downstream_hops(9), None);
    }

    #[test]
    fn position_of_finds_vertices() {
        let f = Flow::new(1, 1, vec![2, 4, 6, 8]);
        assert_eq!(f.position_of(2), Some(0));
        assert_eq!(f.position_of(8), Some(3));
        assert_eq!(f.position_of(5), None);
    }

    #[test]
    fn path_validation_against_graph() {
        let g = line_graph(4);
        assert!(Flow::new(0, 1, vec![0, 1, 2, 3]).path_is_valid(&g));
        assert!(
            Flow::new(1, 1, vec![3, 2, 1]).path_is_valid(&g),
            "links are bidirectional"
        );
        assert!(
            !Flow::new(2, 1, vec![0, 2]).path_is_valid(&g),
            "no shortcut edge"
        );
    }

    #[test]
    fn total_load_sums_rate_times_hops() {
        let flows = vec![Flow::new(0, 4, vec![0, 1, 2]), Flow::new(1, 2, vec![3, 1])];
        assert_eq!(total_load(&flows), 4 * 2 + 2);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn degenerate_path_rejected() {
        Flow::new(0, 1, vec![3]);
    }

    #[test]
    #[should_panic(expected = "simple")]
    fn looping_path_rejected() {
        Flow::new(0, 1, vec![0, 1, 0]);
    }

    #[test]
    fn serde_round_trip() {
        let f = Flow::new(7, 9, vec![1, 2, 3]).with_tenant(3);
        let s = serde_json::to_string(&f).unwrap();
        let g: Flow = serde_json::from_str(&s).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn tenant_defaults_to_zero_and_tolerates_old_documents() {
        assert_eq!(Flow::new(0, 1, vec![0, 1]).tenant, 0);
        // Pre-tenant workload files carry no `tenant` field.
        let old = r#"{"id":3,"rate":7,"path":[0,1,2]}"#;
        let f: Flow = serde_json::from_str(old).unwrap();
        assert_eq!(f, Flow::new(3, 7, vec![0, 1, 2]));
        assert_eq!(Flow::new(0, 1, vec![0, 1]).with_tenant(9).tenant, 9);
    }
}
