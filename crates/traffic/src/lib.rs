//! # tdmd-traffic — flows and workload generation
//!
//! The TDMD evaluation drives every experiment with a set of
//! unsplittable flows: each flow routes along one *active* path (drawn
//! from a candidate set, a singleton in the paper's original
//! fixed-path setting), with integer rates drawn from a CAIDA
//! 1-hour-trace-like heavy-tailed distribution, and a *flow density*
//! knob (total traffic load / total network capacity, §6.2). This
//! crate provides:
//!
//! * [`flow`] — the [`Flow`] record (one active path) and path
//!   validity checks.
//! * [`pathset`] — [`FlowPaths`], a flow with its candidate path set
//!   for the joint routing + placement extension; the singleton set
//!   recovers the paper's model.
//! * [`distribution`] — rate samplers: constant, uniform and the
//!   [`distribution::CaidaLike`] heavy-tailed mixture standing in for
//!   the (non-redistributable) CAIDA trace.
//! * [`generator`] — tree workloads (leaf sources, root destination)
//!   and general-topology workloads (random sources, designated
//!   destinations, BFS shortest paths or k-shortest candidates), both
//!   with density targeting.
//! * [`tenant`] — multi-tenant gravity-model traffic matrices:
//!   per-vertex populations, the gravity demand matrix, and
//!   tenant-tagged flow generation with per-class volume shares and
//!   rate scaling (the SOL exemplar's workload shape).
//! * [`scale`] — the million-flow scale-tier workload: gateway
//!   destinations with eagerly precomputed per-gateway BFS trees, so
//!   minting a flow is an O(path) slice copy.
//! * [`density`] — load/capacity bookkeeping.
//! * [`trace`] — synthetic packet-trace generation and aggregation
//!   back into flows (the CAIDA-like end-to-end path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod distribution;
pub mod flow;
pub mod generator;
pub mod pathset;
pub mod scale;
pub mod tenant;
pub mod trace;

pub use distribution::{CaidaLike, RateDistribution};
pub use flow::{Flow, FlowId, TenantId};
pub use generator::{
    general_workload, general_workload_multipath, general_workload_pathsets, tree_workload,
    WorkloadConfig,
};
pub use pathset::{candidate_sets, FlowPaths};
pub use scale::GatewayWorkload;
pub use tenant::{
    gravity_matrix, gravity_populations, gravity_workload, tenant_rate_totals, GravityConfig,
    TenantProfile,
};
pub use trace::{aggregate_flows, rates_from_trace, synthesize_trace, TraceConfig};

/// Convenience prelude.
pub mod prelude {
    pub use crate::density::flow_density;
    pub use crate::distribution::{CaidaLike, RateDistribution};
    pub use crate::flow::{Flow, FlowId};
    pub use crate::generator::{general_workload, tree_workload, WorkloadConfig};
    pub use crate::pathset::{candidate_sets, FlowPaths};
    pub use crate::tenant::{gravity_workload, GravityConfig, TenantProfile};
}
