//! # tdmd-traffic — flows and workload generation
//!
//! The TDMD evaluation drives every experiment with a set of
//! unsplittable flows: fixed paths, integer rates drawn from a CAIDA
//! 1-hour-trace-like heavy-tailed distribution, and a *flow density*
//! knob (total traffic load / total network capacity, §6.2). This
//! crate provides:
//!
//! * [`flow`] — the [`Flow`] record and path validity checks.
//! * [`distribution`] — rate samplers: constant, uniform and the
//!   [`distribution::CaidaLike`] heavy-tailed mixture standing in for
//!   the (non-redistributable) CAIDA trace.
//! * [`generator`] — tree workloads (leaf sources, root destination)
//!   and general-topology workloads (random sources, designated
//!   destinations, BFS shortest paths), both with density targeting.
//! * [`density`] — load/capacity bookkeeping.
//! * [`trace`] — synthetic packet-trace generation and aggregation
//!   back into flows (the CAIDA-like end-to-end path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod distribution;
pub mod flow;
pub mod generator;
pub mod trace;

pub use distribution::{CaidaLike, RateDistribution};
pub use flow::{Flow, FlowId};
pub use generator::{general_workload, general_workload_multipath, tree_workload, WorkloadConfig};
pub use trace::{aggregate_flows, rates_from_trace, synthesize_trace, TraceConfig};

/// Convenience prelude.
pub mod prelude {
    pub use crate::density::flow_density;
    pub use crate::distribution::{CaidaLike, RateDistribution};
    pub use crate::flow::{Flow, FlowId};
    pub use crate::generator::{general_workload, tree_workload, WorkloadConfig};
}
