//! Synthetic packet trace and flow aggregation.
//!
//! The paper derives its flow sizes from "a 1-hour packet trace" of
//! the CAIDA monitor. That trace cannot ship with this repository, so
//! this module synthesizes the equivalent artifact — a time-stamped
//! packet stream whose *per-flow byte totals* follow the heavy-tailed
//! [`crate::distribution::CaidaLike`] model — and provides the same
//! processing pipeline a real trace would go through: aggregate
//! packets into flows, then quantize flow sizes into the integral
//! rate units the placement algorithms consume. Workloads can then be
//! driven from the empirical distribution of an (actual or synthetic)
//! trace via [`crate::distribution::RateDistribution::Empirical`].

use crate::distribution::CaidaLike;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp in microseconds from trace start.
    pub timestamp_us: u64,
    /// Opaque flow key (stands in for the 5-tuple hash).
    pub flow_key: u64,
    /// Payload bytes.
    pub bytes: u32,
}

/// Aggregated per-flow statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The flow key.
    pub flow_key: u64,
    /// Total bytes across the trace.
    pub total_bytes: u64,
    /// Packet count.
    pub packets: u32,
    /// First packet timestamp.
    pub first_us: u64,
    /// Last packet timestamp.
    pub last_us: u64,
}

/// Parameters of the synthetic capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of distinct flows.
    pub flows: usize,
    /// Trace duration in microseconds (the paper's is one hour).
    pub duration_us: u64,
    /// Nominal packet size in bytes (packets per flow follow from the
    /// flow's total size).
    pub packet_bytes: u32,
    /// Flow-size model (total rate units per flow).
    pub size_model: CaidaLike,
    /// Bytes represented by one integral rate unit.
    pub bytes_per_unit: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            flows: 200,
            duration_us: 3_600_000_000, // one hour
            packet_bytes: 1_000,
            size_model: CaidaLike::default(),
            bytes_per_unit: 1_000,
        }
    }
}

/// Synthesizes a packet trace: each flow draws a total size from the
/// model, splits it into `packet_bytes`-sized packets and scatters
/// them uniformly over the duration. Records are returned sorted by
/// timestamp, as a capture would be.
pub fn synthesize_trace<R: Rng + ?Sized>(cfg: &TraceConfig, rng: &mut R) -> Vec<PacketRecord> {
    let mut records = Vec::new();
    for key in 0..cfg.flows as u64 {
        let units = cfg.size_model.sample(rng);
        let total_bytes = units * cfg.bytes_per_unit;
        let full = (total_bytes / cfg.packet_bytes as u64) as u32;
        let tail = (total_bytes % cfg.packet_bytes as u64) as u32;
        let n_packets = full + u32::from(tail > 0);
        for p in 0..n_packets {
            let bytes = if p == full { tail } else { cfg.packet_bytes };
            records.push(PacketRecord {
                timestamp_us: rng.gen_range(0..cfg.duration_us.max(1)),
                flow_key: key,
                bytes,
            });
        }
    }
    records.sort_unstable_by_key(|r| (r.timestamp_us, r.flow_key));
    records
}

/// Aggregates a packet stream into per-flow records (the first step
/// of any trace analysis).
pub fn aggregate_flows(records: &[PacketRecord]) -> Vec<FlowRecord> {
    let mut map: std::collections::BTreeMap<u64, FlowRecord> = std::collections::BTreeMap::new();
    for r in records {
        let e = map.entry(r.flow_key).or_insert(FlowRecord {
            flow_key: r.flow_key,
            total_bytes: 0,
            packets: 0,
            first_us: r.timestamp_us,
            last_us: r.timestamp_us,
        });
        e.total_bytes += r.bytes as u64;
        e.packets += 1;
        e.first_us = e.first_us.min(r.timestamp_us);
        e.last_us = e.last_us.max(r.timestamp_us);
    }
    map.into_values().collect()
}

/// Quantizes aggregated flow sizes into integral rate units
/// (≥ 1 each), the exact form the TDMD instances consume.
pub fn rates_from_trace(flows: &[FlowRecord], bytes_per_unit: u64) -> Vec<u64> {
    flows
        .iter()
        .map(|f| (f.total_bytes.div_ceil(bytes_per_unit)).max(1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::RateDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> TraceConfig {
        TraceConfig {
            flows: 50,
            duration_us: 1_000_000,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn trace_is_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = synthesize_trace(&small_cfg(), &mut rng);
        assert!(t.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
        assert!(t.iter().all(|r| r.timestamp_us < 1_000_000));
        assert!(t.iter().all(|r| r.bytes > 0));
    }

    #[test]
    fn aggregation_recovers_every_flow() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = small_cfg();
        let t = synthesize_trace(&cfg, &mut rng);
        let flows = aggregate_flows(&t);
        assert_eq!(flows.len(), cfg.flows);
        // Byte conservation.
        let trace_bytes: u64 = t.iter().map(|r| r.bytes as u64).sum();
        let flow_bytes: u64 = flows.iter().map(|f| f.total_bytes).sum();
        assert_eq!(trace_bytes, flow_bytes);
        // Timestamps bracket correctly.
        for f in &flows {
            assert!(f.first_us <= f.last_us);
            assert!(f.packets >= 1);
        }
    }

    #[test]
    fn rates_round_trip_the_size_model() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = small_cfg();
        let t = synthesize_trace(&cfg, &mut rng);
        let flows = aggregate_flows(&t);
        let rates = rates_from_trace(&flows, cfg.bytes_per_unit);
        assert_eq!(rates.len(), cfg.flows);
        // Every reconstructed rate is within the model's clamp range.
        assert!(rates
            .iter()
            .all(|&r| (1..=cfg.size_model.max_rate).contains(&r)));
    }

    #[test]
    fn empirical_distribution_from_trace_feeds_workloads() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = small_cfg();
        let t = synthesize_trace(&cfg, &mut rng);
        let rates = rates_from_trace(&aggregate_flows(&t), cfg.bytes_per_unit);
        let dist = RateDistribution::Empirical {
            samples: rates.clone(),
        };
        for _ in 0..100 {
            let r = dist.sample(&mut rng);
            assert!(
                rates.contains(&r),
                "empirical sampling must draw trace values"
            );
        }
    }

    #[test]
    fn zero_duration_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = TraceConfig {
            flows: 3,
            duration_us: 0,
            ..TraceConfig::default()
        };
        let t = synthesize_trace(&cfg, &mut rng);
        assert!(t.iter().all(|r| r.timestamp_us == 0));
    }

    #[test]
    fn aggregate_of_empty_trace_is_empty() {
        assert!(aggregate_flows(&[]).is_empty());
    }
}
