//! Multi-tenant gravity-model traffic matrices (the SOL workload
//! shape).
//!
//! Real multi-tenant load is well described by a *gravity model*: each
//! ingress/egress vertex carries a population, and the demand between
//! ingress `i` and egress `j` is proportional to the product of their
//! populations, scaled so the whole matrix sums to a configured total
//! volume. On top of the matrix, every demand is split across a set of
//! [`TenantProfile`]s — traffic classes with a volume share, a rate
//! multiplier and a cost weight (consumed by
//! `tdmd_core::cost::TenantCostModel`) — and each `(ingress, egress,
//! tenant)` cell becomes one [`Flow`] tagged with its
//! [`TenantId`], routed along a BFS shortest path like the paper's
//! general workload.
//!
//! Generation is seed-deterministic: populations are the only random
//! draw, and the matrix → flow lowering iterates in fixed
//! (ingress, egress, tenant) order.

use crate::flow::{Flow, TenantId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId};

/// One tenant (traffic class) riding the gravity matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantProfile {
    /// Fraction of every matrix cell's volume this tenant carries.
    /// Shares need not sum to 1 (the remainder is simply not offered).
    pub share: f64,
    /// Rate multiplier applied after the share split (premium tenants
    /// may burst above their share, best-effort ones below).
    pub rate_scale: f64,
    /// Cost-model weight for placement (`TenantCostModel`); `1.0` is
    /// the neutral weight of the paper's anonymous objective.
    pub weight: f64,
}

impl TenantProfile {
    /// Neutral profile: share `s`, no rate scaling, weight 1.
    pub fn even(s: f64) -> Self {
        Self {
            share: s,
            rate_scale: 1.0,
            weight: 1.0,
        }
    }

    /// `count` identical tenants splitting the volume evenly, all
    /// weight 1 — the multi-tenant workload that must be
    /// placement-equivalent to the anonymous one.
    ///
    /// # Panics
    /// Panics if `count` is zero.
    pub fn uniform(count: usize) -> Vec<Self> {
        assert!(count > 0, "need at least one tenant");
        vec![Self::even(1.0 / count as f64); count]
    }
}

/// Gravity-matrix generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GravityConfig {
    /// Total matrix volume in integral rate units.
    pub total_rate: u64,
    /// Traffic classes splitting every cell (at most `u16::MAX + 1`).
    pub tenants: Vec<TenantProfile>,
    /// Inclusive population range sampled per ingress/egress vertex.
    pub population_range: (u64, u64),
    /// Safety cap on the number of generated flows.
    pub max_flows: usize,
}

impl GravityConfig {
    /// SOL-exemplar defaults: populations in `[2^15, 2^18]`, a single
    /// neutral tenant, and the given total volume.
    pub fn with_total_rate(total_rate: u64) -> Self {
        Self {
            total_rate,
            tenants: TenantProfile::uniform(1),
            population_range: (1 << 15, 1 << 18),
            max_flows: 100_000,
        }
    }

    /// Replaces the tenant set (builder style).
    #[must_use]
    pub fn tenants(mut self, tenants: Vec<TenantProfile>) -> Self {
        self.tenants = tenants;
        self
    }
}

/// Samples one population per vertex from the configured range.
///
/// # Panics
/// Panics if the configured population range is not `1 ≤ lo ≤ hi`.
pub fn gravity_populations<R: Rng + ?Sized>(
    count: usize,
    cfg: &GravityConfig,
    rng: &mut R,
) -> Vec<u64> {
    let (lo, hi) = cfg.population_range;
    assert!(lo >= 1 && lo <= hi, "population range must be 1 ≤ lo ≤ hi");
    (0..count).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// The gravity matrix: `T[i][j] = round(total · pᵢ · qⱼ / (Σp · Σq))`
/// over ingress populations `p` and egress populations `q`, so the
/// row marginals track `total · pᵢ / Σp` and the column marginals
/// `total · qⱼ / Σq` within per-cell rounding.
///
/// # Panics
/// Panics if either population list is empty or contains a zero.
pub fn gravity_matrix(ingress_pops: &[u64], egress_pops: &[u64], total_rate: u64) -> Vec<Vec<u64>> {
    assert!(
        !ingress_pops.is_empty() && !egress_pops.is_empty(),
        "need at least one ingress and one egress population"
    );
    assert!(
        ingress_pops.iter().chain(egress_pops).all(|&p| p > 0),
        "populations must be positive"
    );
    let p_in: f64 = ingress_pops.iter().map(|&p| p as f64).sum();
    let p_eg: f64 = egress_pops.iter().map(|&p| p as f64).sum();
    let scale = total_rate as f64 / (p_in * p_eg);
    ingress_pops
        .iter()
        .map(|&pi| {
            egress_pops
                .iter()
                .map(|&qj| (pi as f64 * qj as f64 * scale).round() as u64)
                .collect()
        })
        .collect()
}

/// Generates a multi-tenant gravity workload: populations are sampled
/// for the `ingress` and `egress` vertex sets, the matrix is built by
/// [`gravity_matrix`], and every non-zero `(ingress, egress)` cell is
/// split across `cfg.tenants` into one tenant-tagged flow each
/// (rate `round(cell · share · rate_scale)`, zero-rate splits
/// dropped), routed along a BFS shortest path. Unreachable or
/// degenerate (`src == dst`) pairs are skipped.
///
/// Deterministic per rng stream: the only random draw is the two
/// population vectors.
///
/// # Panics
/// Panics if `ingress`/`egress`/`cfg.tenants` is empty or the tenant
/// count exceeds the [`TenantId`] range.
pub fn gravity_workload<R: Rng + ?Sized>(
    g: &DiGraph,
    ingress: &[NodeId],
    egress: &[NodeId],
    cfg: &GravityConfig,
    rng: &mut R,
) -> Vec<Flow> {
    assert!(
        !ingress.is_empty() && !egress.is_empty(),
        "need at least one ingress and one egress vertex"
    );
    assert!(!cfg.tenants.is_empty(), "need at least one tenant");
    assert!(
        cfg.tenants.len() <= usize::from(TenantId::MAX) + 1,
        "tenant count exceeds the TenantId range"
    );
    let ing_pops = gravity_populations(ingress.len(), cfg, rng);
    let eg_pops = gravity_populations(egress.len(), cfg, rng);
    let matrix = gravity_matrix(&ing_pops, &eg_pops, cfg.total_rate);
    let mut cache: Vec<Option<tdmd_graph::traversal::BfsResult>> = vec![None; g.node_count()];
    let mut flows = Vec::new();
    let mut next_id = 0u32;
    'cells: for (i, &src) in ingress.iter().enumerate() {
        for (j, &dst) in egress.iter().enumerate() {
            if src == dst || matrix[i][j] == 0 {
                continue;
            }
            let bfs_res = cache[src as usize].get_or_insert_with(|| bfs(g, src));
            let Some(path) = bfs_res.path_to(dst) else {
                continue;
            };
            for (t, prof) in cfg.tenants.iter().enumerate() {
                let rate = (matrix[i][j] as f64 * prof.share * prof.rate_scale).round() as u64;
                if rate == 0 {
                    continue;
                }
                if flows.len() >= cfg.max_flows {
                    break 'cells;
                }
                flows.push(Flow::new(next_id, rate, path.clone()).with_tenant(t as TenantId));
                next_id += 1;
            }
        }
    }
    flows
}

/// Per-tenant offered rate `Σ r_f` of a workload, indexed by tenant
/// id (length = highest tenant id + 1; empty for an empty workload).
pub fn tenant_rate_totals(flows: &[Flow]) -> Vec<u64> {
    let Some(max_t) = flows.iter().map(|f| f.tenant).max() else {
        return Vec::new();
    };
    let mut totals = vec![0u64; usize::from(max_t) + 1];
    for f in flows {
        totals[usize::from(f.tenant)] += f.rate;
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdmd_graph::generators::random::erdos_renyi_connected;

    fn fixture(seed: u64) -> DiGraph {
        erdos_renyi_connected(20, 0.2, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn matrix_sums_to_total_within_rounding() {
        let m = gravity_matrix(&[100, 200, 300], &[50, 50], 10_000);
        let total: u64 = m.iter().flatten().sum();
        assert!((total as i64 - 10_000).unsigned_abs() <= 3, "total {total}");
    }

    #[test]
    fn workload_tags_every_tenant() {
        let g = fixture(1);
        let cfg = GravityConfig::with_total_rate(50_000).tenants(TenantProfile::uniform(3));
        let flows = gravity_workload(&g, &[1, 2, 3], &[0, 4], &cfg, &mut StdRng::seed_from_u64(2));
        assert!(!flows.is_empty());
        for f in &flows {
            assert!(f.tenant < 3);
            assert!(f.path_is_valid(&g));
            assert!(f.rate > 0);
        }
        let totals = tenant_rate_totals(&flows);
        assert_eq!(totals.len(), 3);
        assert!(totals.iter().all(|&t| t > 0), "every tenant offers load");
        // Even shares → near-even totals (rounding only).
        let spread = totals.iter().max().unwrap() - totals.iter().min().unwrap();
        assert!(spread <= flows.len() as u64, "spread {spread}");
    }

    #[test]
    fn rate_scale_skews_tenants() {
        let g = fixture(3);
        let tenants = vec![
            TenantProfile {
                share: 0.5,
                rate_scale: 2.0,
                weight: 4.0,
            },
            TenantProfile::even(0.5),
        ];
        let cfg = GravityConfig::with_total_rate(40_000).tenants(tenants);
        let flows = gravity_workload(&g, &[1, 2], &[0], &cfg, &mut StdRng::seed_from_u64(4));
        let totals = tenant_rate_totals(&flows);
        assert!(
            totals[0] > totals[1],
            "scaled tenant offers more: {totals:?}"
        );
    }

    #[test]
    fn max_flows_caps_generation() {
        let g = fixture(5);
        let mut cfg = GravityConfig::with_total_rate(1_000_000);
        cfg.max_flows = 4;
        let flows = gravity_workload(
            &g,
            &[1, 2, 3, 4, 5],
            &[0, 6, 7],
            &cfg,
            &mut StdRng::seed_from_u64(6),
        );
        assert_eq!(flows.len(), 4);
    }

    #[test]
    fn tenant_totals_of_empty_workload_are_empty() {
        assert!(tenant_rate_totals(&[]).is_empty());
    }

    /// Seed-derived population vector in `[2^10, 2^18)`.
    fn pops(rng: &mut StdRng, len: usize) -> Vec<u64> {
        use rand::Rng;
        (0..len)
            .map(|_| rng.gen_range(1u64 << 10..1 << 18))
            .collect()
    }

    proptest! {
        /// Row/column marginals of the gravity matrix track the
        /// ingress/egress populations within per-cell rounding slack.
        #[test]
        fn marginals_match_populations(
            seed in any::<u64>(),
            rows in 1usize..8,
            cols in 1usize..8,
            total in 1_000u64..1_000_000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ing = pops(&mut rng, rows);
            let eg = pops(&mut rng, cols);
            let m = gravity_matrix(&ing, &eg, total);
            let p_in: f64 = ing.iter().map(|&p| p as f64).sum();
            let p_eg: f64 = eg.iter().map(|&p| p as f64).sum();
            for (i, row) in m.iter().enumerate() {
                let got: u64 = row.iter().sum();
                let want = total as f64 * ing[i] as f64 / p_in;
                let slack = 0.5 * eg.len() as f64 + 1.0;
                prop_assert!(
                    (got as f64 - want).abs() <= slack,
                    "row {i}: {got} vs {want} (slack {slack})"
                );
            }
            for j in 0..eg.len() {
                let got: u64 = m.iter().map(|row| row[j]).sum();
                let want = total as f64 * eg[j] as f64 / p_eg;
                let slack = 0.5 * ing.len() as f64 + 1.0;
                prop_assert!(
                    (got as f64 - want).abs() <= slack,
                    "col {j}: {got} vs {want} (slack {slack})"
                );
            }
        }

        /// Generation is bytewise deterministic per seed: two runs
        /// serialize to identical JSON.
        #[test]
        fn generation_is_bytewise_deterministic(seed in 0u64..1_000) {
            let g = fixture(7);
            let cfg = GravityConfig::with_total_rate(30_000)
                .tenants(TenantProfile::uniform(3));
            let ingress = [1, 2, 3];
            let egress = [0, 4];
            let a = gravity_workload(&g, &ingress, &egress, &cfg,
                &mut StdRng::seed_from_u64(seed));
            let b = gravity_workload(&g, &ingress, &egress, &cfg,
                &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
        }
    }
}
