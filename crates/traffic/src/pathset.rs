//! Candidate path sets.
//!
//! The joint routing + placement extension (Charikar et al.'s
//! multi-commodity flow with in-network processing, see PAPERS.md)
//! lets the solver choose each flow's route from a small set of
//! loopless candidates instead of committing to one path a priori.
//! [`FlowPaths`] is the workload-side record: a flow id, a rate, and
//! an ordered candidate list whose first entry (the *primary*) is the
//! path a fixed-path solver would use — so a singleton candidate set
//! degenerates to the paper's original model exactly.

use crate::flow::{Flow, FlowId};
use serde::{Deserialize, Serialize};
use tdmd_graph::kpaths::k_shortest_paths;
use tdmd_graph::{DiGraph, NodeId};

/// A flow together with its candidate path set.
///
/// All candidates share the primary's endpoints; the order is
/// significant (index 0 is the primary route, the one a fixed-path
/// run uses) and downstream indices are stable handles: the core
/// `PathSets` index and the joint solver address candidates by their
/// position in this list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowPaths {
    /// Flow id (dense, unique within a workload).
    pub id: FlowId,
    /// Initial traffic rate `r_f` in integral rate units.
    pub rate: u64,
    /// Candidate paths, each a vertex sequence `src .. dst`. Index 0
    /// is the primary (fixed-path) route.
    pub candidates: Vec<Vec<NodeId>>,
}

impl FlowPaths {
    /// Creates a candidate set, validating its shape.
    ///
    /// # Panics
    /// Panics if the rate is zero, the candidate list is empty, any
    /// candidate has fewer than 2 vertices or repeats a vertex, or a
    /// candidate's endpoints differ from the primary's.
    pub fn new(id: FlowId, rate: u64, candidates: Vec<Vec<NodeId>>) -> Self {
        assert!(rate > 0, "flow rate must be positive");
        assert!(!candidates.is_empty(), "need at least one candidate path");
        for p in &candidates {
            assert!(p.len() >= 2, "candidate path must traverse an edge");
            let mut seen = p.clone();
            seen.sort_unstable();
            assert!(
                seen.windows(2).all(|w| w[0] != w[1]),
                "candidate path must be simple"
            );
            assert_eq!(p[0], candidates[0][0], "candidates share the source");
            assert_eq!(
                p.last(),
                candidates[0].last(),
                "candidates share the destination"
            );
        }
        Self {
            id,
            rate,
            candidates,
        }
    }

    /// The singleton set: exactly the flow's own path. Feeding
    /// singletons to the core gives back the paper's fixed-path model.
    pub fn singleton(flow: &Flow) -> Self {
        Self {
            id: flow.id,
            rate: flow.rate,
            candidates: vec![flow.path.clone()],
        }
    }

    /// The primary (index-0) candidate.
    ///
    /// # Panics
    /// Panics on an empty candidate list — unreachable for sets built
    /// through [`FlowPaths::new`], which validates the shape.
    #[inline]
    pub fn primary(&self) -> &[NodeId] {
        &self.candidates[0]
    }

    /// Shared source of every candidate.
    ///
    /// # Panics
    /// Panics on an empty or zero-length primary candidate —
    /// unreachable for sets built through [`FlowPaths::new`].
    #[inline]
    pub fn src(&self) -> NodeId {
        self.candidates[0][0]
    }

    /// Shared destination of every candidate.
    ///
    /// # Panics
    /// Panics on an empty primary candidate — unreachable for sets
    /// built through [`FlowPaths::new`].
    #[inline]
    pub fn dst(&self) -> NodeId {
        *self.candidates[0].last().expect("candidate is non-empty")
    }

    /// The flow record a fixed-path solver sees: the primary route.
    ///
    /// # Panics
    /// Panics on an empty candidate list — unreachable for sets built
    /// through [`FlowPaths::new`].
    pub fn primary_flow(&self) -> Flow {
        Flow::new(self.id, self.rate, self.candidates[0].clone())
    }

    /// Augments a flow with up to `k_paths` candidates: the flow's own
    /// path stays primary, alternatives come from Yen's k-shortest
    /// loopless paths between its endpoints (duplicates of the primary
    /// are dropped). `k_paths = 1` yields the singleton set.
    pub fn augment(flow: &Flow, g: &DiGraph, k_paths: usize) -> Self {
        let want = k_paths.max(1);
        let mut candidates = vec![flow.path.clone()];
        if want > 1 {
            for p in k_shortest_paths(g, flow.src(), flow.dst(), want) {
                if candidates.len() >= want {
                    break;
                }
                if p != flow.path {
                    candidates.push(p);
                }
            }
        }
        Self {
            id: flow.id,
            rate: flow.rate,
            candidates,
        }
    }
}

/// Builds the candidate sets of a whole workload: every flow keeps its
/// drawn path as the primary and gains up to `k_paths - 1` k-shortest
/// alternatives. This is how
/// [`general_workload_multipath`](crate::generator::general_workload_multipath)
/// workloads feed the joint solver real route diversity.
pub fn candidate_sets(flows: &[Flow], g: &DiGraph, k_paths: usize) -> Vec<FlowPaths> {
    flows
        .iter()
        .map(|f| FlowPaths::augment(f, g, k_paths))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::GraphBuilder;

    /// A diamond: 0 → {1, 2} → 3, both routes two hops.
    fn diamond() -> DiGraph {
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(1, 3);
        b.add_bidirectional(0, 2);
        b.add_bidirectional(2, 3);
        b.build()
    }

    #[test]
    fn singleton_wraps_the_flow_path() {
        let f = Flow::new(0, 4, vec![0, 1, 3]);
        let s = FlowPaths::singleton(&f);
        assert_eq!(s.candidates, vec![vec![0, 1, 3]]);
        assert_eq!(s.primary_flow(), f);
        assert_eq!((s.src(), s.dst()), (0, 3));
    }

    #[test]
    fn augment_keeps_the_drawn_path_primary() {
        let g = diamond();
        let f = Flow::new(0, 2, vec![0, 2, 3]); // the lexicographically later route
        let s = FlowPaths::augment(&f, &g, 3);
        assert_eq!(s.primary(), &[0, 2, 3]);
        assert_eq!(s.candidates.len(), 2, "diamond has two simple routes");
        assert!(s.candidates.contains(&vec![0, 1, 3]));
    }

    #[test]
    fn augment_with_one_path_is_the_singleton() {
        let g = diamond();
        let f = Flow::new(1, 1, vec![0, 1, 3]);
        assert_eq!(
            FlowPaths::augment(&f, &g, 1),
            FlowPaths::singleton(&f),
            "k_paths = 1 must not consult Yen's"
        );
    }

    #[test]
    fn candidate_sets_cover_the_workload_in_order() {
        let g = diamond();
        let flows = vec![
            Flow::new(0, 1, vec![0, 1, 3]),
            Flow::new(1, 5, vec![3, 2, 0]),
        ];
        let sets = candidate_sets(&flows, &g, 2);
        assert_eq!(sets.len(), 2);
        for (f, s) in flows.iter().zip(&sets) {
            assert_eq!(s.id, f.id);
            assert_eq!(s.rate, f.rate);
            assert_eq!(s.primary(), &f.path[..]);
            assert!(s.candidates.len() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "share the destination")]
    fn mismatched_endpoints_rejected() {
        FlowPaths::new(0, 1, vec![vec![0, 1, 3], vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidate_list_rejected() {
        FlowPaths::new(0, 1, vec![]);
    }

    #[test]
    fn serde_round_trip() {
        let s = FlowPaths::new(3, 7, vec![vec![0, 1, 3], vec![0, 2, 3]]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<FlowPaths>(&json).unwrap(), s);
    }
}
