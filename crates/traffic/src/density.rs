//! Flow-density bookkeeping.
//!
//! §6.2: "The flow density is defined as the ratio of the total
//! traffic load to the total capacity of the network." Load is the
//! unprocessed bandwidth `Σ r_f · |p_f|`; capacity is `Σ_links C` with
//! a uniform nominal per-link capacity (the paper assumes
//! over-provisioned links, §6.1, so capacity never constrains
//! routing — it only calibrates the density knob).

use crate::flow::{total_load, Flow};
use tdmd_graph::DiGraph;

/// Nominal capacity of one directed link, in rate units. Chosen so the
/// paper's density range (0.3–0.8) is reachable with realistic flow
/// counts on 12–52-vertex topologies.
pub const DEFAULT_LINK_CAPACITY: u64 = 100;

/// Total network capacity: directed link count × per-link capacity.
pub fn total_capacity(g: &DiGraph, link_capacity: u64) -> u64 {
    g.edge_count() as u64 * link_capacity
}

/// Flow density of a workload: total load / total capacity.
pub fn flow_density(g: &DiGraph, flows: &[Flow], link_capacity: u64) -> f64 {
    let cap = total_capacity(g, link_capacity);
    if cap == 0 {
        return 0.0;
    }
    total_load(flows) as f64 / cap as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::{GraphBuilder, NodeId};

    fn line(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_bidirectional(i as NodeId, (i + 1) as NodeId);
        }
        b.build()
    }

    #[test]
    fn capacity_counts_directed_links() {
        let g = line(3); // 2 undirected = 4 directed links
        assert_eq!(total_capacity(&g, 100), 400);
    }

    #[test]
    fn density_is_load_over_capacity() {
        let g = line(3);
        let flows = vec![Flow::new(0, 100, vec![0, 1, 2])]; // load 200
        assert!((flow_density(&g, &flows, 100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_has_zero_density() {
        let g = line(4);
        assert_eq!(flow_density(&g, &[], 100), 0.0);
    }

    #[test]
    fn edgeless_graph_reports_zero_not_nan() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(flow_density(&g, &[], 100), 0.0);
    }
}
