//! Workload generators.
//!
//! §6.1: each flow is generated with one active path (the paper fixes
//! it a priori; the joint extension widens it into a candidate set via
//! [`general_workload_pathsets`]); under the tree topology all
//! destinations are the root; flow density is the experiment knob, and
//! flows are randomly drawn from the dataset distribution. We
//! reproduce that protocol: sample a source (a leaf for trees, any
//! vertex for general topologies), a destination (the root / a
//! designated destination), route along the unique tree path or a BFS
//! shortest path, and keep adding flows until either a fixed count or
//! a target flow density is reached.

use crate::density::{flow_density, DEFAULT_LINK_CAPACITY};
use crate::distribution::RateDistribution;
use crate::flow::Flow;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId, RootedTree};

/// How many flows to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSize {
    /// Exactly this many flows.
    Count(usize),
    /// Keep adding flows until the flow density reaches this target.
    Density(f64),
}

/// Workload generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Rate sampler.
    pub distribution: RateDistribution,
    /// Stop condition.
    pub size: WorkloadSize,
    /// Per-link nominal capacity (density denominator).
    pub link_capacity: u64,
    /// Safety cap on the number of generated flows.
    pub max_flows: usize,
}

impl WorkloadConfig {
    /// The paper's default: CAIDA-like rates at a given flow density.
    pub fn with_density(density: f64) -> Self {
        Self {
            distribution: RateDistribution::caida_default(),
            size: WorkloadSize::Density(density),
            link_capacity: DEFAULT_LINK_CAPACITY,
            max_flows: 100_000,
        }
    }

    /// Fixed flow count with CAIDA-like rates.
    pub fn with_count(n: usize) -> Self {
        Self {
            distribution: RateDistribution::caida_default(),
            size: WorkloadSize::Count(n),
            link_capacity: DEFAULT_LINK_CAPACITY,
            max_flows: 100_000,
        }
    }

    /// Replaces the rate distribution.
    pub fn distribution(mut self, d: RateDistribution) -> Self {
        self.distribution = d;
        self
    }
}

/// Generates a tree workload: sources are uniformly random leaves,
/// destination is the root, paths follow the unique leaf→root route.
///
/// # Panics
/// Panics if the tree has no leaf other than the root.
pub fn tree_workload<R: Rng + ?Sized>(
    g: &DiGraph,
    tree: &RootedTree,
    cfg: &WorkloadConfig,
    rng: &mut R,
) -> Vec<Flow> {
    let sources: Vec<NodeId> = tree
        .leaves()
        .iter()
        .copied()
        .filter(|&v| v != tree.root())
        .collect();
    assert!(
        !sources.is_empty(),
        "tree must have a non-root leaf to source flows"
    );
    let mut flows = Vec::new();
    let mut next_id = 0u32;
    loop {
        if done(g, &flows, cfg) {
            break;
        }
        let src = sources[rng.gen_range(0..sources.len())];
        let path = tree.path_to_root(src);
        let rate = cfg.distribution.sample(rng);
        flows.push(Flow::new(next_id, rate, path));
        next_id += 1;
    }
    flows
}

/// Generates a general-topology workload: each flow picks a uniformly
/// random source, a uniformly random destination from `destinations`
/// (the paper's "red nodes"), and routes along a BFS shortest path.
///
/// # Panics
/// Panics if `destinations` is empty, or some destination is
/// unreachable from every possible source.
pub fn general_workload<R: Rng + ?Sized>(
    g: &DiGraph,
    destinations: &[NodeId],
    cfg: &WorkloadConfig,
    rng: &mut R,
) -> Vec<Flow> {
    assert!(
        !destinations.is_empty(),
        "need at least one destination vertex"
    );
    let n = g.node_count();
    assert!(n >= 2, "need at least two vertices");
    // Precompute, per destination, the BFS tree of *incoming* paths by
    // searching on the reverse orientation: run BFS from the
    // destination and invert, which is valid because the paper's links
    // are bidirectional. To stay correct on general digraphs we BFS
    // from each candidate source lazily and cache.
    let mut cache: Vec<Option<tdmd_graph::traversal::BfsResult>> = vec![None; n];
    let mut flows = Vec::new();
    let mut next_id = 0u32;
    let mut attempts = 0usize;
    loop {
        if done(g, &flows, cfg) {
            break;
        }
        attempts += 1;
        assert!(
            attempts < cfg.max_flows * 10 + 1000,
            "could not generate workload: too many unreachable src/dst draws"
        );
        let src = rng.gen_range(0..n) as NodeId;
        let dst = destinations[rng.gen_range(0..destinations.len())];
        if src == dst {
            continue;
        }
        let bfs_res = cache[src as usize].get_or_insert_with(|| bfs(g, src));
        let Some(path) = bfs_res.path_to(dst) else {
            continue;
        };
        let rate = cfg.distribution.sample(rng);
        flows.push(Flow::new(next_id, rate, path));
        next_id += 1;
    }
    flows
}

/// Stop condition shared by both generators.
fn done(g: &DiGraph, flows: &[Flow], cfg: &WorkloadConfig) -> bool {
    if flows.len() >= cfg.max_flows {
        return true;
    }
    match cfg.size {
        WorkloadSize::Count(n) => flows.len() >= n,
        WorkloadSize::Density(d) => flow_density(g, flows, cfg.link_capacity) >= d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::flow_density;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdmd_graph::generators::random::erdos_renyi_connected;
    use tdmd_graph::generators::trees::random_tree;

    fn tree_fixture(n: usize, seed: u64) -> (DiGraph, RootedTree) {
        let g = random_tree(n, &mut StdRng::seed_from_u64(seed));
        let t = RootedTree::from_digraph(&g, 0).unwrap();
        (g, t)
    }

    #[test]
    fn tree_workload_count_and_structure() {
        let (g, t) = tree_fixture(22, 40);
        let cfg = WorkloadConfig::with_count(30);
        let flows = tree_workload(&g, &t, &cfg, &mut StdRng::seed_from_u64(41));
        assert_eq!(flows.len(), 30);
        for f in &flows {
            assert_eq!(f.dst(), 0, "all destinations are the root");
            assert!(t.is_leaf(f.src()), "all sources are leaves");
            assert!(f.path_is_valid(&g));
            assert!(f.rate >= 1);
        }
        // Flow ids are dense.
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.id as usize, i);
        }
    }

    #[test]
    fn tree_workload_hits_target_density() {
        let (g, t) = tree_fixture(22, 42);
        let cfg = WorkloadConfig::with_density(0.5);
        let flows = tree_workload(&g, &t, &cfg, &mut StdRng::seed_from_u64(43));
        let d = flow_density(&g, &flows, cfg.link_capacity);
        assert!(d >= 0.5, "density {d} below target");
        // One flow less must be under target (minimality).
        let d_less = flow_density(&g, &flows[..flows.len() - 1], cfg.link_capacity);
        assert!(d_less < 0.5);
    }

    #[test]
    fn general_workload_routes_shortest_paths() {
        let mut rng = StdRng::seed_from_u64(44);
        let g = erdos_renyi_connected(30, 0.15, &mut rng);
        let dests = vec![0, 5, 9];
        let cfg = WorkloadConfig::with_count(40);
        let flows = general_workload(&g, &dests, &cfg, &mut rng);
        assert_eq!(flows.len(), 40);
        for f in &flows {
            assert!(dests.contains(&f.dst()));
            assert!(f.path_is_valid(&g));
            // Shortest: hop count equals BFS distance.
            let d = tdmd_graph::traversal::bfs_distances(&g, f.src());
            assert_eq!(f.hops() as u32, d[f.dst() as usize]);
        }
    }

    #[test]
    fn general_workload_density_target() {
        let mut rng = StdRng::seed_from_u64(45);
        let g = erdos_renyi_connected(30, 0.15, &mut rng);
        let cfg = WorkloadConfig::with_density(0.4);
        let flows = general_workload(&g, &[0], &cfg, &mut rng);
        assert!(flow_density(&g, &flows, cfg.link_capacity) >= 0.4);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let (g, t) = tree_fixture(18, 46);
        let cfg = WorkloadConfig::with_count(10);
        let a = tree_workload(&g, &t, &cfg, &mut StdRng::seed_from_u64(47));
        let b = tree_workload(&g, &t, &cfg, &mut StdRng::seed_from_u64(47));
        assert_eq!(a, b);
    }

    #[test]
    fn max_flows_caps_generation() {
        let (g, t) = tree_fixture(10, 48);
        let mut cfg = WorkloadConfig::with_density(1000.0); // unreachable target
        cfg.max_flows = 25;
        let flows = tree_workload(&g, &t, &cfg, &mut StdRng::seed_from_u64(49));
        assert_eq!(flows.len(), 25);
    }

    #[test]
    #[should_panic(expected = "destination")]
    fn general_needs_destinations() {
        let mut rng = StdRng::seed_from_u64(50);
        let g = erdos_renyi_connected(5, 0.5, &mut rng);
        general_workload(&g, &[], &WorkloadConfig::with_count(1), &mut rng);
    }

    #[test]
    fn zero_count_gives_empty_workload() {
        let (g, t) = tree_fixture(12, 51);
        let flows = tree_workload(
            &g,
            &t,
            &WorkloadConfig::with_count(0),
            &mut StdRng::seed_from_u64(52),
        );
        assert!(flows.is_empty());
    }
}

/// Multipath variant of [`general_workload`]: each flow's active path
/// is drawn uniformly from its `k_paths` shortest loopless routes
/// (Yen's algorithm) instead of always the single BFS path. This
/// models ECMP-style route diversity while keeping one committed
/// route per flow; [`general_workload_pathsets`] additionally hands
/// the whole candidate set to the joint solver.
///
/// # Panics
/// Same conditions as [`general_workload`], plus `k_paths == 0`.
pub fn general_workload_multipath<R: Rng + ?Sized>(
    g: &DiGraph,
    destinations: &[NodeId],
    cfg: &WorkloadConfig,
    k_paths: usize,
    rng: &mut R,
) -> Vec<Flow> {
    assert!(k_paths > 0, "need at least one candidate path per flow");
    assert!(
        !destinations.is_empty(),
        "need at least one destination vertex"
    );
    let n = g.node_count();
    assert!(n >= 2, "need at least two vertices");
    // Cache the path sets per (src, dst) pair lazily.
    let mut cache: std::collections::HashMap<(NodeId, NodeId), Vec<Vec<NodeId>>> =
        std::collections::HashMap::new();
    let mut flows = Vec::new();
    let mut next_id = 0u32;
    let mut attempts = 0usize;
    loop {
        if done(g, &flows, cfg) {
            break;
        }
        attempts += 1;
        assert!(
            attempts < cfg.max_flows * 10 + 1000,
            "could not generate workload: too many unreachable src/dst draws"
        );
        let src = rng.gen_range(0..n) as NodeId;
        let dst = destinations[rng.gen_range(0..destinations.len())];
        if src == dst {
            continue;
        }
        let paths = cache
            .entry((src, dst))
            .or_insert_with(|| tdmd_graph::kpaths::k_shortest_paths(g, src, dst, k_paths));
        if paths.is_empty() {
            continue;
        }
        let path = paths[rng.gen_range(0..paths.len())].clone();
        let rate = cfg.distribution.sample(rng);
        flows.push(Flow::new(next_id, rate, path));
        next_id += 1;
    }
    flows
}

/// Candidate-set variant of [`general_workload_multipath`]: draws the
/// same flows (identical ids, rates and active paths for the same rng
/// stream), then widens each into a [`crate::pathset::FlowPaths`]
/// candidate set with
/// the drawn route as the primary and up to `k_paths - 1` k-shortest
/// alternatives. The fixed-path baseline solves the primaries; the
/// joint solver may re-activate any candidate.
///
/// # Panics
/// Same conditions as [`general_workload_multipath`].
pub fn general_workload_pathsets<R: Rng + ?Sized>(
    g: &DiGraph,
    destinations: &[NodeId],
    cfg: &WorkloadConfig,
    k_paths: usize,
    rng: &mut R,
) -> Vec<crate::pathset::FlowPaths> {
    let flows = general_workload_multipath(g, destinations, cfg, k_paths, rng);
    crate::pathset::candidate_sets(&flows, g, k_paths)
}

#[cfg(test)]
mod multipath_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdmd_graph::generators::random::erdos_renyi_connected;

    #[test]
    fn multipath_flows_are_valid_and_diverse() {
        let mut rng = StdRng::seed_from_u64(60);
        let g = erdos_renyi_connected(20, 0.3, &mut rng);
        let cfg = WorkloadConfig::with_count(60);
        let flows = general_workload_multipath(&g, &[0], &cfg, 3, &mut rng);
        assert_eq!(flows.len(), 60);
        for f in &flows {
            assert!(f.path_is_valid(&g));
            assert_eq!(f.dst(), 0);
        }
        // With k = 3, some flow should take a non-shortest route.
        let bfs_dist = tdmd_graph::traversal::bfs_distances(&g, 0);
        let longer = flows.iter().filter(|f| {
            // Path from src to dst 0; distance computed on the reverse
            // direction works because links are bidirectional.
            f.hops() as u32 > bfs_dist[f.src() as usize]
        });
        assert!(
            longer.count() > 0,
            "route diversity expected on a dense graph"
        );
    }

    #[test]
    fn k_one_matches_single_path_lengths() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = erdos_renyi_connected(15, 0.25, &mut rng);
        let cfg = WorkloadConfig::with_count(25);
        let flows = general_workload_multipath(&g, &[0, 1], &cfg, 1, &mut rng);
        for f in &flows {
            let d = tdmd_graph::traversal::bfs_distances(&g, f.src());
            assert_eq!(
                f.hops() as u32,
                d[f.dst() as usize],
                "k = 1 must be shortest"
            );
        }
    }

    #[test]
    fn pathsets_mirror_the_multipath_draw() {
        let g = erdos_renyi_connected(20, 0.3, &mut StdRng::seed_from_u64(63));
        let cfg = WorkloadConfig::with_count(30);
        let flows = general_workload_multipath(&g, &[0], &cfg, 3, &mut StdRng::seed_from_u64(64));
        let sets = general_workload_pathsets(&g, &[0], &cfg, 3, &mut StdRng::seed_from_u64(64));
        assert_eq!(sets.len(), flows.len());
        for (f, s) in flows.iter().zip(&sets) {
            assert_eq!((s.id, s.rate), (f.id, f.rate));
            assert_eq!(s.primary(), &f.path[..], "drawn route stays primary");
            assert!(!s.candidates.is_empty() && s.candidates.len() <= 3);
            for p in &s.candidates {
                assert!(Flow::new(s.id, s.rate, p.clone()).path_is_valid(&g));
            }
        }
        // Route diversity: at least one flow carries a real alternative.
        assert!(sets.iter().any(|s| s.candidates.len() > 1));
    }

    #[test]
    #[should_panic(expected = "at least one candidate path")]
    fn zero_k_rejected() {
        let mut rng = StdRng::seed_from_u64(62);
        let g = erdos_renyi_connected(5, 0.5, &mut rng);
        general_workload_multipath(&g, &[0], &WorkloadConfig::with_count(1), 0, &mut rng);
    }
}
