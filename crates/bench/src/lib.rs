//! Shared harness for the Criterion benchmarks.
//!
//! Every execution-time panel of the paper's Figs. 9–16 has a bench
//! target (see `benches/`); each sweeps the figure's independent
//! variable and times every algorithm of the figure's suite on a
//! deterministic pre-built instance, so `cargo bench` regenerates the
//! paper's (b)-panels. `micro` covers the primitive operations and
//! `ablation` the design alternatives called out in DESIGN.md (eager
//! vs CELF vs parallel GTP).
//!
//! Beyond the figure panels, `benches/churn.rs` measures the online
//! engine's event throughput and `benches/chaos.rs` the
//! fault-injection replay (both honor `TDMD_BENCH_SMOKE=1`, which CI
//! uses to run a shrunken scenario through the full pipeline). This
//! lib target only hosts the shared fixtures: [`BENCH_SEED`],
//! [`tree_fixture`] / [`general_fixture`], [`tuned_group`] and
//! [`bench_suite`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use criterion::{BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_core::algorithms::Algorithm;
use tdmd_core::Instance;
use tdmd_experiments::scenarios::{general_instance, tree_instance, Scenario};

/// Fixed seed so every bench run times identical instances.
pub const BENCH_SEED: u64 = 0xBE7C;

/// Deterministic tree instance for a scenario.
pub fn tree_fixture(s: Scenario) -> Instance {
    tree_instance(&mut StdRng::seed_from_u64(BENCH_SEED), s)
}

/// Deterministic general (Ark-like) instance for a scenario.
pub fn general_fixture(s: Scenario) -> Instance {
    general_instance(&mut StdRng::seed_from_u64(BENCH_SEED), s)
}

/// Criterion group tuned so the full figure suite completes in
/// minutes: small sample counts, short measurement windows.
pub fn tuned_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.nresamples(2_000);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    g
}

/// Benches each algorithm of `suite` at each `(label, instance)`
/// point — one figure's execution-time panel.
pub fn bench_suite(
    c: &mut Criterion,
    figure: &str,
    points: &[(String, Instance)],
    suite: &[Algorithm],
) {
    let mut g = tuned_group(c, figure);
    for (label, instance) in points {
        for alg in suite {
            g.bench_with_input(BenchmarkId::new(alg.name(), label), instance, |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 1);
                    alg.run(inst, &mut rng)
                        .expect("bench instances are feasible")
                })
            });
        }
    }
    g.finish();
}
