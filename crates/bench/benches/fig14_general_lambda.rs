//! Fig. 14(b): execution time vs traffic-changing ratio `λ` on the
//! general topology.

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, general_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let points: Vec<_> = [0.0, 0.3, 0.6, 0.9]
        .iter()
        .map(|&lambda| {
            (
                format!("lambda={lambda}"),
                general_fixture(Scenario {
                    lambda,
                    ..Scenario::general_default()
                }),
            )
        })
        .collect();
    bench_suite(
        c,
        "fig14_general_lambda",
        &points,
        &Algorithm::general_suite(),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
