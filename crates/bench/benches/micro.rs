//! Microbenchmarks of the primitive operations the placement
//! algorithms are built from: BFS, LCA preprocessing and queries,
//! marginal-decrement evaluation, allocation, replay, and a single
//! run of each tree algorithm at the paper's default scenario.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_bench::{tree_fixture, tuned_group, BENCH_SEED};
use tdmd_core::algorithms::dp::dp_optimal;
use tdmd_core::algorithms::gtp::gtp_budgeted;
use tdmd_core::algorithms::hat::hat;
use tdmd_core::objective::{allocate, best_hops, marginal_decrement};
use tdmd_core::Deployment;
use tdmd_experiments::scenarios::Scenario;
use tdmd_graph::generators::trees::random_tree;
use tdmd_graph::traversal::bfs;
use tdmd_graph::{Lca, RootedTree};
use tdmd_sim::replay;

fn bench_graph_primitives(c: &mut Criterion) {
    let mut g = tuned_group(c, "micro_graph");
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let topo = random_tree(512, &mut rng);
    let tree = RootedTree::from_digraph(&topo, 0).unwrap();

    g.bench_function("bfs_512", |b| b.iter(|| bfs(&topo, black_box(0))));
    g.bench_function("lca_build_512", |b| b.iter(|| Lca::new(&tree)));
    let lca = Lca::new(&tree);
    g.bench_function("lca_query", |b| {
        b.iter(|| black_box(lca.query(black_box(317), black_box(411))))
    });
    g.bench_function("rooted_tree_build_512", |b| {
        b.iter(|| RootedTree::from_digraph(&topo, 0).unwrap())
    });
    g.finish();
}

fn bench_objective(c: &mut Criterion) {
    let mut g = tuned_group(c, "micro_objective");
    let inst = tree_fixture(Scenario::tree_default());
    let dep = Deployment::from_vertices(inst.node_count(), [0, 3, 5]);
    let cur: Vec<u32> = best_hops(&inst, &dep)
        .into_iter()
        .map(|l| l.unwrap_or(0))
        .collect();

    g.bench_function("marginal_decrement", |b| {
        b.iter(|| marginal_decrement(&inst, &cur, black_box(7)))
    });
    g.bench_function("allocate", |b| b.iter(|| allocate(&inst, &dep)));
    g.bench_function("replay", |b| b.iter(|| replay(&inst, &dep)));
    g.finish();
}

fn bench_algorithms_once(c: &mut Criterion) {
    let mut g = tuned_group(c, "micro_algorithms");
    let inst = tree_fixture(Scenario::tree_default());
    g.bench_function("gtp_k8", |b| b.iter(|| gtp_budgeted(&inst, 8).unwrap()));
    g.bench_function("hat_k8", |b| b.iter(|| hat(&inst, 8).unwrap()));
    g.bench_function("dp_k8", |b| b.iter(|| dp_optimal(&inst).unwrap()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_graph_primitives, bench_objective, bench_algorithms_once
}
criterion_main!(benches);
