//! Fig. 11(b): execution time vs flow density on the tree topology.
//! The DP's runtime grows fastest because the density drives the
//! pseudo-polynomial rate dimension.

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, tree_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let points: Vec<_> = [0.3, 0.5, 0.8]
        .iter()
        .map(|&density| {
            (
                format!("density={density}"),
                tree_fixture(Scenario {
                    density,
                    ..Scenario::tree_default()
                }),
            )
        })
        .collect();
    bench_suite(c, "fig11_tree_density", &points, &Algorithm::tree_suite());
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
