//! Fig. 12(b): execution time vs topology size on the tree topology —
//! the fastest-growing sweep of the paper's four tree variables.

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, tree_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::figures::fig12::SIZES;
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let points: Vec<_> = SIZES
        .iter()
        .map(|&size| {
            (
                format!("size={size}"),
                tree_fixture(Scenario {
                    size,
                    ..Scenario::tree_default()
                }),
            )
        })
        .collect();
    bench_suite(c, "fig12_tree_size", &points, &Algorithm::tree_suite());
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
