//! Fig. 16(b): execution time vs topology size on the general
//! topology (12 to 52 vertices).

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, general_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::figures::fig16::SIZES;
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let points: Vec<_> = SIZES
        .iter()
        .map(|&size| {
            (
                format!("size={size}"),
                general_fixture(Scenario {
                    size,
                    ..Scenario::general_default()
                }),
            )
        })
        .collect();
    bench_suite(
        c,
        "fig16_general_size",
        &points,
        &Algorithm::general_suite(),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
