//! Fig. 9(b): execution time vs middlebox budget `k` on the tree
//! topology, all five algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, tree_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::figures::fig09::KS;
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let points: Vec<_> = KS
        .iter()
        .map(|&k| {
            (
                format!("k={k}"),
                tree_fixture(Scenario {
                    k,
                    ..Scenario::tree_default()
                }),
            )
        })
        .collect();
    bench_suite(c, "fig09_tree_k", &points, &Algorithm::tree_suite());
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
