//! Fig. 17: spam filters (λ = 0) — GTP's runtime over the
//! (k, density) grid on the tree and general topologies.

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, general_fixture, tree_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::figures::fig17::{GENERAL_KS, TREE_KS};
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let mut tree_points = Vec::new();
    for &k in &TREE_KS {
        for &density in &[0.4, 0.8] {
            let s = Scenario {
                lambda: 0.0,
                k,
                density,
                ..Scenario::tree_default()
            };
            tree_points.push((format!("tree k={k} d={density}"), tree_fixture(s)));
        }
    }
    bench_suite(c, "fig17_spam_tree", &tree_points, &[Algorithm::Gtp]);

    let mut gen_points = Vec::new();
    for &k in &GENERAL_KS {
        for &density in &[0.4, 0.8] {
            let s = Scenario {
                lambda: 0.0,
                k,
                density,
                ..Scenario::general_default()
            };
            gen_points.push((format!("general k={k} d={density}"), general_fixture(s)));
        }
    }
    bench_suite(c, "fig17_spam_general", &gen_points, &[Algorithm::Gtp]);
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
