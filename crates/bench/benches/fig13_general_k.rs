//! Fig. 13(b): execution time vs middlebox budget `k` on the general
//! topology, three algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, general_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::figures::fig13::KS;
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let points: Vec<_> = KS
        .iter()
        .map(|&k| {
            (
                format!("k={k}"),
                general_fixture(Scenario {
                    k,
                    ..Scenario::general_default()
                }),
            )
        })
        .collect();
    bench_suite(c, "fig13_general_k", &points, &Algorithm::general_suite());
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
