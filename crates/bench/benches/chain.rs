//! Service-chain extension benches: per-flow ordered-DP evaluation and
//! the shared-instance greedy at growing chain lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_bench::{tuned_group, BENCH_SEED};
use tdmd_chain::{chain_at_destinations, chain_gtp, evaluate_chain, ChainSpec};
use tdmd_graph::generators::trees::random_tree;
use tdmd_graph::RootedTree;
use tdmd_traffic::{tree_workload, WorkloadConfig};

fn fixture() -> (tdmd_graph::DiGraph, Vec<tdmd_traffic::Flow>) {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let g = random_tree(22, &mut rng);
    let t = RootedTree::from_digraph(&g, 0).unwrap();
    let flows = tree_workload(&g, &t, &WorkloadConfig::with_count(40), &mut rng);
    (g, flows)
}

fn chain_of(m: usize) -> ChainSpec {
    let ratios = [1.0, 0.5, 0.8, 2.0, 0.25];
    ChainSpec::new(
        (0..m)
            .map(|i| tdmd_chain::MiddleboxType {
                name: format!("t{i}"),
                lambda: ratios[i % ratios.len()],
            })
            .collect(),
    )
}

fn bench_chain(c: &mut Criterion) {
    let mut g = tuned_group(c, "chain");
    let (graph, flows) = fixture();
    for m in [1usize, 2, 4] {
        let chain = chain_of(m);
        let dep = chain_at_destinations(&graph, &flows, &chain);
        g.bench_with_input(BenchmarkId::new("evaluate", m), &m, |b, _| {
            b.iter(|| evaluate_chain(&flows, &chain, &dep))
        });
        g.bench_with_input(BenchmarkId::new("greedy_budget12", m), &m, |b, _| {
            b.iter(|| chain_gtp(&graph, &flows, &chain, 12).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_chain
}
criterion_main!(benches);
