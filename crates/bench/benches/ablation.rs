//! Ablations of the design choices DESIGN.md calls out:
//!
//! * eager vs CELF-lazy vs Rayon-parallel GTP (identical output,
//!   different cost) at growing scale;
//! * the DP's pseudo-polynomial blow-up with heavier flow rates vs
//!   the constant-rate special case the paper highlights (Thm. 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_bench::{tuned_group, BENCH_SEED};
use tdmd_core::algorithms::dp::dp_optimal;
use tdmd_core::algorithms::gtp::{gtp_budgeted, gtp_lazy, gtp_parallel};
use tdmd_core::Instance;
use tdmd_experiments::scenarios::{general_instance, Scenario};
use tdmd_graph::generators::trees::random_tree;
use tdmd_graph::RootedTree;
use tdmd_traffic::distribution::RateDistribution;
use tdmd_traffic::{tree_workload, WorkloadConfig};

fn gtp_variants(c: &mut Criterion) {
    let mut g = tuned_group(c, "ablation_gtp_variants");
    for &size in &[20usize, 36, 52] {
        let s = Scenario {
            size,
            k: 12,
            ..Scenario::general_default()
        };
        let inst = general_instance(&mut StdRng::seed_from_u64(BENCH_SEED), s);
        g.bench_with_input(BenchmarkId::new("eager", size), &inst, |b, i| {
            b.iter(|| gtp_budgeted(i, 12).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("lazy", size), &inst, |b, i| {
            b.iter(|| gtp_lazy(i, 12).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("parallel", size), &inst, |b, i| {
            b.iter(|| gtp_parallel(i, 12).unwrap())
        });
    }
    g.finish();
}

/// Tree instance with a chosen rate distribution (the DP's runtime is
/// pseudo-polynomial in the total rate).
fn rate_instance(dist: RateDistribution) -> Instance {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let g = random_tree(22, &mut rng);
    let t = RootedTree::from_digraph(&g, 0).unwrap();
    let cfg = WorkloadConfig::with_count(40).distribution(dist);
    let flows = tree_workload(&g, &t, &cfg, &mut rng);
    Instance::new(g, flows, 0.5, 8).unwrap()
}

fn dp_rate_sensitivity(c: &mut Criterion) {
    let mut g = tuned_group(c, "ablation_dp_rates");
    for (label, dist) in [
        ("constant_1", RateDistribution::Constant(1)),
        ("constant_8", RateDistribution::Constant(8)),
        ("uniform_1_16", RateDistribution::Uniform { lo: 1, hi: 16 }),
        ("caida", RateDistribution::caida_default()),
    ] {
        let inst = rate_instance(dist);
        g.bench_with_input(BenchmarkId::new("dp", label), &inst, |b, i| {
            b.iter(|| dp_optimal(i).unwrap())
        });
    }
    g.finish();
}

fn exact_solvers(c: &mut Criterion) {
    let mut g = tuned_group(c, "ablation_exact_solvers");
    // Small general instance where both exact solvers finish quickly.
    let s = Scenario {
        size: 13,
        density: 0.4,
        k: 4,
        ..Scenario::general_default()
    };
    let inst = general_instance(&mut StdRng::seed_from_u64(BENCH_SEED), s);
    g.bench_function("exhaustive", |b| {
        b.iter(|| {
            tdmd_core::algorithms::exhaustive::exhaustive_optimal(&inst, 4, u128::MAX).unwrap()
        })
    });
    g.bench_function("branch_and_bound", |b| {
        b.iter(|| {
            tdmd_core::algorithms::branch_bound::branch_and_bound(&inst, 4, u64::MAX).unwrap()
        })
    });
    g.finish();
}

fn heuristic_extensions(c: &mut Criterion) {
    let mut g = tuned_group(c, "ablation_extensions");
    let s = Scenario::general_default();
    let inst = general_instance(&mut StdRng::seed_from_u64(BENCH_SEED), s);
    g.bench_function("gtp", |b| b.iter(|| gtp_budgeted(&inst, 10).unwrap()));
    g.bench_function("gtp_local_search", |b| {
        b.iter(|| tdmd_core::algorithms::local_search::gtp_with_local_search(&inst, 10).unwrap())
    });
    g.bench_function("gtp_weighted", |b| {
        b.iter(|| tdmd_core::weighted::gtp_weighted(&inst, 10).unwrap())
    });
    // Capacity sized to the instance: twice the per-box average load.
    let cap = inst.flows().len().div_ceil(10) * 2;
    g.bench_function("gtp_capacitated", |b| {
        b.iter(|| tdmd_core::capacitated::gtp_capacitated(&inst, 10, cap).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = gtp_variants, dp_rate_sensitivity, exact_solvers, heuristic_extensions
}
criterion_main!(benches);
