//! Fault-injection throughput benchmark of the online engine.
//!
//! Replays a churn scenario through `tdmd_sim::chaos::run_chaos`
//! under both failure models — independent per-vertex MTBF/MTTR and
//! the targeted kill-the-biggest-box adversary — timing the whole
//! replay (event ingestion + orphan reassignment + degradation-aware
//! repair). The `no_failures` target replays the same spans with no
//! injection as the baseline, so the failure layer's overhead is the
//! difference.
//!
//! Smoke mode (`TDMD_BENCH_SMOKE=1`, used by CI) shrinks the scenario
//! to |V| = 60 / |F| = 150 so one iteration finishes in well under a
//! second while still exercising orphaning, degraded accounting, and
//! both schedules.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_bench::{tuned_group, BENCH_SEED};
use tdmd_graph::generators::ark::ark_like;
use tdmd_online::{FlowSpan, RepairPolicy};
use tdmd_sim::chaos::{run_chaos, ChaosConfig, ChaosMode};
use tdmd_sim::timeline::DynamicScenario;
use tdmd_traffic::{general_workload, WorkloadConfig};

/// CI smoke mode: tiny scenario, same code paths.
fn smoke() -> bool {
    std::env::var("TDMD_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

/// Builds the chaos scenario: random flow lifetimes over a fixed
/// horizon on an Ark-like topology.
fn build() -> DynamicScenario {
    let (size, flows_n, clusters, k) = if smoke() {
        (60, 150, 4, 6)
    } else {
        (400, 3_000, 10, 16)
    };
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let graph = ark_like(size, clusters, &mut rng);
    let dests: Vec<u32> = (0..3.min(clusters as u32)).collect();
    let flows = general_workload(
        &graph,
        &dests,
        &WorkloadConfig::with_count(flows_n),
        &mut rng,
    );
    let horizon = 1_000_000u64;
    let spans: Vec<FlowSpan> = flows
        .into_iter()
        .map(|flow| {
            let start_us = rng.gen_range(0..horizon);
            let hold = rng.gen_range(1..horizon / 4);
            FlowSpan {
                start_us,
                end_us: start_us + hold,
                flow,
            }
        })
        .collect();
    DynamicScenario {
        graph,
        lambda: 0.5,
        k,
        spans,
    }
}

fn bench_chaos(c: &mut Criterion) {
    let scn = build();
    let mut g = tuned_group(c, "chaos");
    let policy = RepairPolicy::default();

    // Baseline: the same replay with an MTBF far beyond the horizon,
    // i.e. no failures ever fire — isolates the injection overhead.
    g.bench_function("no_failures", |b| {
        b.iter(|| {
            run_chaos(
                &scn,
                policy,
                &ChaosConfig {
                    mode: ChaosMode::Independent {
                        mtbf_us: u64::MAX / 4,
                        mttr_us: 1,
                    },
                    seed: BENCH_SEED,
                },
            )
            .expect("valid scenario")
        })
    });

    g.bench_function("independent_mtbf", |b| {
        b.iter(|| {
            run_chaos(
                &scn,
                policy,
                &ChaosConfig {
                    mode: ChaosMode::Independent {
                        mtbf_us: 400_000,
                        mttr_us: 50_000,
                    },
                    seed: BENCH_SEED,
                },
            )
            .expect("valid scenario")
        })
    });

    g.bench_function("targeted_kills", |b| {
        b.iter(|| {
            run_chaos(
                &scn,
                policy,
                &ChaosConfig {
                    mode: ChaosMode::Targeted {
                        period_us: 50_000,
                        mttr_us: 25_000,
                    },
                    seed: BENCH_SEED,
                },
            )
            .expect("valid scenario")
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_chaos
}
criterion_main!(benches);
