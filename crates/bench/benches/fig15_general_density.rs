//! Fig. 15(b): execution time vs flow density on the general
//! topology.

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, general_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let points: Vec<_> = [0.3, 0.5, 0.8]
        .iter()
        .map(|&density| {
            (
                format!("density={density}"),
                general_fixture(Scenario {
                    density,
                    ..Scenario::general_default()
                }),
            )
        })
        .collect();
    bench_suite(
        c,
        "fig15_general_density",
        &points,
        &Algorithm::general_suite(),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
