//! Churn-throughput benchmark of the incremental placement engine.
//!
//! Full scale: an Ark-like general topology with |V| = 1000 and
//! |F| = 10000 flow spans, replaying the first 5000 churn events.
//! The `incremental` target drives the event-driven engine (bounded
//! local repair, no oracle); `forced_replan` runs the per-event
//! from-scratch GTP baseline on a small event prefix — its per-event
//! cost is scale-independent here, so events/sec can be compared
//! directly against the incremental target's.
//!
//! Smoke mode (`TDMD_BENCH_SMOKE=1`, used by CI) shrinks the scenario
//! to |V| = 100 / |F| = 300 so one iteration finishes in well under a
//! second while still exercising the whole pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_bench::{tuned_group, BENCH_SEED};
use tdmd_graph::generators::ark::ark_like;
use tdmd_graph::DiGraph;
use tdmd_online::{events_from_spans, FlowSpan, HopPricer, OnlineEngine, RepairPolicy, TimedEvent};
use tdmd_traffic::{general_workload, WorkloadConfig};

/// CI smoke mode: tiny scenario, same code paths.
fn smoke() -> bool {
    std::env::var("TDMD_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

struct Churn {
    graph: DiGraph,
    lambda: f64,
    k: usize,
    events: Vec<TimedEvent>,
}

/// Builds the churn scenario: random flow lifetimes over a fixed
/// horizon on an Ark-like topology.
fn build() -> Churn {
    let (size, flows_n, clusters, k, max_events) = if smoke() {
        (100, 300, 5, 10, 600)
    } else {
        (1000, 10_000, 20, 32, 5000)
    };
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let graph = ark_like(size, clusters, &mut rng);
    let dests: Vec<u32> = (0..3.min(clusters as u32)).collect();
    let flows = general_workload(
        &graph,
        &dests,
        &WorkloadConfig::with_count(flows_n),
        &mut rng,
    );
    let horizon = 1_000_000u64;
    let spans: Vec<FlowSpan> = flows
        .into_iter()
        .map(|flow| {
            let start_us = rng.gen_range(0..horizon);
            let hold = rng.gen_range(1..horizon / 4);
            FlowSpan {
                start_us,
                end_us: start_us + hold,
                flow,
            }
        })
        .collect();
    let mut events = events_from_spans(&spans);
    events.truncate(max_events);
    Churn {
        graph,
        lambda: 0.5,
        k,
        events,
    }
}

fn replay(churn: &Churn, policy: RepairPolicy, events: &[TimedEvent]) -> f64 {
    let mut engine = OnlineEngine::new(
        churn.graph.clone(),
        churn.lambda,
        churn.k,
        HopPricer::default(),
        policy,
    )
    .expect("valid lambda");
    for ev in events {
        engine.apply(&ev.event).expect("generated events are valid");
    }
    engine.objective()
}

fn bench_churn(c: &mut Criterion) {
    let churn = build();
    let mut g = tuned_group(c, "churn");

    // Bounded local repair only — the streaming fast path.
    g.bench_function(format!("incremental_{}ev", churn.events.len()), |b| {
        b.iter(|| replay(&churn, RepairPolicy::local_only(4), &churn.events))
    });

    // Default policy: local repair + periodic drift-sampled replans.
    g.bench_function(format!("drift_sampled_{}ev", churn.events.len()), |b| {
        b.iter(|| replay(&churn, RepairPolicy::default(), &churn.events))
    });

    // Per-event from-scratch GTP on a short prefix (its per-event
    // cost dwarfs the incremental engine's; normalize by event count
    // when comparing).
    let prefix = &churn.events[..churn.events.len().min(if smoke() { 20 } else { 64 })];
    g.bench_function(format!("forced_replan_{}ev", prefix.len()), |b| {
        b.iter(|| replay(&churn, RepairPolicy::forced_replan(), prefix))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_churn
}
criterion_main!(benches);
