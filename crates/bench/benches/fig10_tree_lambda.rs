//! Fig. 10(b): execution time vs traffic-changing ratio `λ` on the
//! tree topology. The paper finds λ barely affects the greedy
//! algorithms' runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use tdmd_bench::{bench_suite, tree_fixture};
use tdmd_core::algorithms::Algorithm;
use tdmd_experiments::scenarios::Scenario;

fn bench(c: &mut Criterion) {
    let points: Vec<_> = [0.0, 0.3, 0.6, 0.9]
        .iter()
        .map(|&lambda| {
            (
                format!("lambda={lambda}"),
                tree_fixture(Scenario {
                    lambda,
                    ..Scenario::tree_default()
                }),
            )
        })
        .collect();
    bench_suite(c, "fig10_tree_lambda", &points, &Algorithm::tree_suite());
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
