//! Crate-level property tests of the joint routing + placement solver:
//! the singleton case collapses to the legacy fixed-path GTP
//! bit-for-bit, and candidate diversity never hurts — the joint
//! objective is sandwiched between the LP lower bound and the
//! fixed-path baseline on random topologies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::algorithms::gtp::gtp_budgeted;
use tdmd_core::algorithms::joint::joint_solve;
use tdmd_core::objective::bandwidth_of;
use tdmd_core::{Instance, TdmdError};
use tdmd_graph::traversal::bfs_path;
use tdmd_graph::{DiGraph, GraphBuilder, NodeId};
use tdmd_traffic::{candidate_sets, Flow};

/// Random connected bidirectional graph: a random tree plus `n` chords
/// (chords create the route diversity Yen's enumeration feeds on).
fn random_graph(rng: &mut StdRng, n: usize) -> DiGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        b.add_bidirectional(p as NodeId, v as NodeId);
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_bidirectional(u, v);
        }
    }
    b.build()
}

/// Random flows on shortest paths between distinct endpoint pairs.
fn random_flows(rng: &mut StdRng, g: &DiGraph, n: usize, n_flows: usize) -> Vec<Flow> {
    let mut flows = Vec::new();
    let mut id = 0u32;
    while flows.len() < n_flows {
        let src = rng.gen_range(0..n) as NodeId;
        let dst = rng.gen_range(0..n) as NodeId;
        if src == dst {
            continue;
        }
        if let Some(path) = bfs_path(g, src, dst) {
            flows.push(Flow::new(id, rng.gen_range(1..=6), path));
            id += 1;
        }
    }
    flows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With singleton candidate sets the joint solver IS the legacy
    /// solver: identical deployment, identical objective, no routing
    /// activity — and both agree on infeasibility.
    #[test]
    fn singleton_joint_equals_legacy_gtp(
        seed in any::<u64>(),
        n in 4usize..14,
        n_flows in 1usize..6,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, n);
        let flows = random_flows(&mut rng, &g, n, n_flows);
        let inst = Instance::new(g, flows, 0.5, k).expect("valid instance");
        match (joint_solve(&inst), gtp_budgeted(&inst, k)) {
            (Ok(sol), Ok(legacy)) => {
                prop_assert_eq!(&sol.deployment, &legacy);
                prop_assert_eq!(sol.objective, bandwidth_of(&inst, &legacy));
                prop_assert_eq!(sol.objective, sol.fixed_objective);
                prop_assert_eq!(sol.path_switches, 0);
                prop_assert_eq!(sol.active, vec![0u32; inst.flows().len()]);
            }
            (Err(TdmdError::Infeasible { .. }), Err(TdmdError::Infeasible { .. })) => {}
            (j, l) => prop_assert!(
                false,
                "solvers disagree: joint ok = {}, legacy ok = {}",
                j.is_ok(),
                l.is_ok()
            ),
        }
    }

    /// With k ≥ 2 candidates per flow the joint objective never
    /// exceeds the fixed-path baseline (the incumbent is seeded from
    /// it), and the LP bound stays below the objective (it relaxes the
    /// joint problem). Draws where even the baseline is infeasible are
    /// skipped — a budget that cannot cover the primaries says nothing
    /// about routing.
    #[test]
    fn diverse_joint_is_sandwiched(
        seed in any::<u64>(),
        n in 5usize..14,
        n_flows in 1usize..6,
        k in 1usize..4,
        k_paths in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, n);
        let flows = random_flows(&mut rng, &g, n, n_flows);
        let sets = candidate_sets(&flows, &g, k_paths);
        let built = Instance::with_path_sets(g.clone(), sets, 0.5, k);
        prop_assume!(built.is_ok());
        let inst = built.unwrap();
        let fixed_inst = Instance::new(g, flows, 0.5, k).expect("valid instance");
        let fixed_dep = gtp_budgeted(&fixed_inst, k);
        prop_assume!(fixed_dep.is_ok());
        let fixed = bandwidth_of(&fixed_inst, &fixed_dep.unwrap());
        let sol = joint_solve(&inst).expect("joint at least matches the feasible baseline");
        prop_assert_eq!(sol.fixed_objective, fixed);
        prop_assert!(
            sol.objective <= fixed + 1e-9,
            "joint {} worse than fixed {}", sol.objective, fixed
        );
        prop_assert!(
            sol.lp_bound <= sol.objective + 1e-9,
            "lp bound {} above objective {}", sol.lp_bound, sol.objective
        );
        prop_assert!(sol.lp_bound >= 0.0);
    }
}
