//! Cost-model equivalence properties.
//!
//! The `CostModel` refactor routes every GTP variant through one
//! generic engine; these tests pin the two invariants that make the
//! refactor safe to lean on:
//!
//! 1. `WeightedEdges` over a unit-weight graph prices exactly like
//!    `HopCount` (a suffix sum of ones is the downstream hop count),
//!    so all three GTP variants must return *byte-identical*
//!    deployments — same vertices, same order, same errors.
//! 2. `gtp_capacitated` with a capacity that can never bind
//!    (`cap ≥ |F|`) reduces to plain budgeted GTP.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::algorithms::gtp::{
    gtp_budgeted, gtp_budgeted_with, gtp_lazy, gtp_lazy_with, gtp_parallel, gtp_parallel_with,
};
use tdmd_core::capacitated::gtp_capacitated;
use tdmd_core::objective::bandwidth_of;
use tdmd_core::{Instance, WeightedEdges};
use tdmd_graph::traversal::bfs_path;
use tdmd_graph::{GraphBuilder, NodeId};
use tdmd_traffic::Flow;

/// Random small connected instance whose edges all weigh 1.
fn unit_weight_instance(seed: u64, n: usize, n_flows: usize, k: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        b.add_bidirectional(p as NodeId, v as NodeId);
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_bidirectional(u, v);
        }
    }
    let g = b.build();
    let mut flows = Vec::new();
    let mut id = 0u32;
    while flows.len() < n_flows {
        let src = rng.gen_range(0..n) as NodeId;
        let dst = rng.gen_range(0..n) as NodeId;
        if src == dst {
            continue;
        }
        if let Some(path) = bfs_path(&g, src, dst) {
            flows.push(Flow::new(id, rng.gen_range(1..=6), path));
            id += 1;
        }
    }
    Instance::new(g, flows, 0.5, k).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// On unit weights, the weighted model is the hop-count model:
    /// each GTP variant must agree with its hop-count twin verbatim,
    /// deployment for deployment, error for error.
    #[test]
    fn unit_weights_reproduce_hop_count_exactly(seed in any::<u64>(),
                                                n in 3usize..14,
                                                k in 1usize..5) {
        let inst = unit_weight_instance(seed, n, 5, k);
        let model = WeightedEdges::new(&inst);
        prop_assert_eq!(gtp_budgeted(&inst, k), gtp_budgeted_with(&inst, k, &model));
        prop_assert_eq!(gtp_lazy(&inst, k), gtp_lazy_with(&inst, k, &model));
        prop_assert_eq!(gtp_parallel(&inst, k), gtp_parallel_with(&inst, k, &model));
    }

    /// The three variants agree with each other under the weighted
    /// model too (the engine's CELF and parallel reductions are
    /// model-independent).
    #[test]
    fn weighted_variants_agree(seed in any::<u64>(), n in 3usize..14, k in 1usize..5) {
        let inst = unit_weight_instance(seed, n, 5, k);
        let model = WeightedEdges::new(&inst);
        let eager = gtp_budgeted_with(&inst, k, &model);
        prop_assert_eq!(eager.clone(), gtp_lazy_with(&inst, k, &model));
        prop_assert_eq!(eager, gtp_parallel_with(&inst, k, &model));
    }

    /// A capacity that can never bind (cap ≥ |F|) makes the
    /// capacitated solver price plans exactly like plain GTP: both
    /// must agree on feasibility and on the achieved bandwidth.
    #[test]
    fn loose_capacity_matches_uncapacitated_gtp(seed in any::<u64>(),
                                                n in 3usize..12,
                                                k in 1usize..5) {
        let inst = unit_weight_instance(seed, n, 4, k);
        let cap = inst.flows().len(); // one box could host every flow
        match (gtp_budgeted(&inst, k), gtp_capacitated(&inst, k, cap)) {
            (Ok(plain), Ok((_, alloc, b_capped))) => {
                let b_plain = bandwidth_of(&inst, &plain);
                prop_assert!((b_capped - b_plain).abs() < 1e-9, "{b_capped} vs {b_plain}");
                prop_assert!(alloc.assigned.iter().all(Option::is_some),
                             "a never-binding capacity must serve every flow");
            }
            (Err(_), Err(_)) => {}
            (p, c) => prop_assert!(false, "feasibility disagrees: plain ok={} capacitated ok={}",
                                   p.is_ok(), c.is_ok()),
        }
    }
}
