//! tdmd-audit corruption properties for the static layer.
//!
//! Soundness: every randomly generated instance passes
//! [`check_instance`], and every GTP solve with its forced §3.1
//! allocation passes [`check_solution`]. Completeness: each seeded
//! corruption of the CSR flow index, the deployment or the allocation
//! is rejected with the expected check name.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::algorithms::gtp::gtp_budgeted;
use tdmd_core::audit::{check_greedy_trace, check_instance, check_solution, TraceRound};
use tdmd_core::objective::{allocate, best_hops};
use tdmd_core::{Deployment, Instance};
use tdmd_graph::traversal::bfs_path;
use tdmd_graph::{GraphBuilder, NodeId};
use tdmd_traffic::Flow;

/// Random connected instance with BFS-routed flows (same shape as the
/// solver property tests).
fn random_instance(seed: u64, n: usize, n_flows: usize, k: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        b.add_bidirectional_weighted(p as NodeId, v as NodeId, rng.gen_range(1..10));
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_bidirectional_weighted(u, v, rng.gen_range(1..10));
        }
    }
    let g = b.build();
    let mut flows = Vec::new();
    let mut id = 0u32;
    while flows.len() < n_flows {
        let src = rng.gen_range(0..n) as NodeId;
        let dst = rng.gen_range(0..n) as NodeId;
        if src == dst {
            continue;
        }
        if let Some(path) = bfs_path(&g, src, dst) {
            flows.push(Flow::new(id, rng.gen_range(1..=6), path));
            id += 1;
        }
    }
    Instance::new(g, flows, 0.5, k).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every constructed instance is well-formed, and every GTP solve
    /// with its forced allocation passes the solution auditor.
    #[test]
    fn random_instances_and_gtp_solutions_pass(
        seed in any::<u64>(), n in 3usize..14, k in 1usize..4,
    ) {
        let inst = random_instance(seed, n, 5, k);
        check_instance(&inst).unwrap();
        if let Ok(dep) = gtp_budgeted(&inst, k) {
            let alloc = allocate(&inst, &dep);
            check_solution(&inst, &dep, k, Some(&alloc)).unwrap();
        }
    }

    /// Swapping two adjacent entries inside a CSR row breaks the
    /// strict flow-id sort.
    #[test]
    fn swapped_csr_row_entries_are_rejected(
        seed in any::<u64>(), n in 3usize..14,
    ) {
        let mut inst = random_instance(seed, n, 6, 2);
        let (offsets, entries) = inst.audit_csr_mut();
        let row = offsets
            .windows(2)
            .map(|w| (w[0] as usize, w[1] as usize))
            .find(|&(lo, hi)| hi - lo >= 2);
        prop_assume!(row.is_some());
        let (lo, _) = row.unwrap();
        entries.swap(lo, lo + 1);
        let err = check_instance(&inst).unwrap_err();
        prop_assert_eq!(err.check, "csr-row-sorted", "{}", err);
    }

    /// Mislabelling a stored downstream-hop count `l_v(f)` is caught
    /// against the recomputed path position.
    #[test]
    fn mislabelled_hop_count_is_rejected(
        seed in any::<u64>(), n in 3usize..14, slot in any::<u64>(),
    ) {
        let mut inst = random_instance(seed, n, 6, 2);
        let (_, entries) = inst.audit_csr_mut();
        prop_assume!(!entries.is_empty());
        let i = (slot as usize) % entries.len();
        entries[i].1 += 1;
        let err = check_instance(&inst).unwrap_err();
        prop_assert_eq!(err.check, "csr-entry-hops", "{}", err);
    }

    /// A truncated offsets array no longer spans the entry list.
    #[test]
    fn truncated_csr_offsets_are_rejected(
        seed in any::<u64>(), n in 3usize..14,
    ) {
        let mut inst = random_instance(seed, n, 6, 2);
        let (offsets, entries) = inst.audit_csr_mut();
        prop_assume!(!entries.is_empty());
        let last = offsets.len() - 1;
        offsets[last] -= 1;
        let err = check_instance(&inst).unwrap_err();
        prop_assert_eq!(err.check, "csr-offsets-shape", "{}", err);
    }

    /// Corrupting a flow's active-candidate index out of range is
    /// caught with the exact path-set check id.
    #[test]
    fn out_of_range_active_index_is_rejected(
        seed in any::<u64>(), n in 3usize..14, slot in any::<u64>(),
    ) {
        let mut inst = random_instance(seed, n, 6, 2);
        let f = (slot as usize) % inst.flows().len();
        let bad = inst.path_sets().candidate_count(f) as u32;
        let ps = inst.audit_path_sets_mut();
        let (active, _, _) = ps.audit_parts_mut();
        active[f] = bad;
        let err = check_instance(&inst).unwrap_err();
        prop_assert_eq!(err.check, "pathset-active-range", "{}", err);
    }

    /// Mislabelling a membership record's downstream-hop count is
    /// caught against the recomputed candidate-path position.
    #[test]
    fn corrupted_membership_hops_are_rejected(
        seed in any::<u64>(), n in 3usize..14, slot in any::<u64>(),
    ) {
        let mut inst = random_instance(seed, n, 6, 2);
        let ps = inst.audit_path_sets_mut();
        let (_, members, _) = ps.audit_parts_mut();
        prop_assume!(!members.is_empty());
        let i = (slot as usize) % members.len();
        members[i].l += 1;
        let err = check_instance(&inst).unwrap_err();
        prop_assert_eq!(err.check, "pathset-member-roundtrip", "{}", err);
    }

    /// Deploying more than `k` middleboxes violates the budget.
    #[test]
    fn over_budget_deployment_is_rejected(
        seed in any::<u64>(), n in 4usize..14, k in 1usize..4,
    ) {
        let inst = random_instance(seed, n, 5, k);
        prop_assume!(k + 1 < n);
        let dep = Deployment::from_vertices(n, (0..=k).map(|v| v as NodeId));
        let err = check_solution(&inst, &dep, k, None).unwrap_err();
        prop_assert_eq!(err.check, "deployment-over-budget", "{}", err);
    }

    /// Serving a flow anywhere but the deployed on-path vertex
    /// maximizing `l_v(f)` (§3.1's forced allocation) is rejected —
    /// off-path, undeployed, suboptimal and dropped assignments each
    /// hit their own check.
    #[test]
    fn corrupted_allocations_are_rejected(
        seed in any::<u64>(), n in 4usize..14, k in 1usize..4,
    ) {
        let inst = random_instance(seed, n, 5, k);
        let dep = match gtp_budgeted(&inst, k) {
            Ok(d) if !d.is_empty() => d,
            _ => return Ok(()),
        };
        let best = best_hops(&inst, &dep);
        let clean = allocate(&inst, &dep);

        // Dropping a served flow: unserved with a deployed on-path box.
        if let Some(idx) = best.iter().position(Option::is_some) {
            let mut alloc = clean.clone();
            alloc.assigned[idx] = None;
            let err = check_solution(&inst, &dep, k, Some(&alloc)).unwrap_err();
            prop_assert_eq!(err.check, "assignment-unserved", "{}", err);
        }

        // Pointing a flow at a vertex nobody deployed.
        if let Some(v) = (0..n as NodeId).find(|&v| !dep.contains(v)) {
            let mut alloc = clean.clone();
            alloc.assigned[0] = Some(v);
            let err = check_solution(&inst, &dep, k, Some(&alloc)).unwrap_err();
            prop_assert_eq!(err.check, "assignment-undeployed", "{}", err);
        }

        // Pointing a flow at a deployed vertex its path avoids.
        let offpath = inst.flows().iter().enumerate().find_map(|(idx, f)| {
            dep.vertices()
                .iter()
                .find(|&&v| f.downstream_hops(v).is_none())
                .map(|&v| (idx, v))
        });
        if let Some((idx, v)) = offpath {
            let mut alloc = clean.clone();
            alloc.assigned[idx] = Some(v);
            let err = check_solution(&inst, &dep, k, Some(&alloc)).unwrap_err();
            prop_assert_eq!(err.check, "assignment-offpath", "{}", err);
        }

        // Serving a flow at a deployed on-path vertex with fewer
        // downstream hops than the forced optimum.
        let subopt = inst.flows().iter().enumerate().find_map(|(idx, f)| {
            let best_l = best[idx]?;
            f.path
                .iter()
                .find(|&&v| {
                    dep.contains(v)
                        && f.downstream_hops(v).is_some_and(|l| (l as u32) < best_l)
                })
                .map(|&v| (idx, v))
        });
        if let Some((idx, v)) = subopt {
            let mut alloc = clean.clone();
            alloc.assigned[idx] = Some(v);
            let err = check_solution(&inst, &dep, k, Some(&alloc)).unwrap_err();
            prop_assert_eq!(err.check, "assignment-suboptimal", "{}", err);
        }
    }
}

#[test]
fn rising_unguarded_gains_violate_submodularity() {
    let trace = [
        TraceRound {
            gain: 3.0,
            guarded: false,
        },
        TraceRound {
            gain: 1.0,
            guarded: false,
        },
        TraceRound {
            gain: 2.0,
            guarded: false,
        },
    ];
    let err = check_greedy_trace(&trace).unwrap_err();
    assert_eq!(err.check, "trace-not-monotone", "{err}");
}

#[test]
fn guard_rounds_are_exempt_from_monotonicity() {
    // A guard round may pick a low-gain forced vertex; the next
    // unguarded round compares against the last *unguarded* gain.
    let trace = [
        TraceRound {
            gain: 3.0,
            guarded: false,
        },
        TraceRound {
            gain: 0.5,
            guarded: true,
        },
        TraceRound {
            gain: 2.0,
            guarded: false,
        },
    ];
    check_greedy_trace(&trace).unwrap();
}

#[test]
fn negative_and_non_finite_gains_are_rejected() {
    let err = check_greedy_trace(&[TraceRound {
        gain: -1.0,
        guarded: false,
    }])
    .unwrap_err();
    assert_eq!(err.check, "trace-gain-negative", "{err}");
    let err = check_greedy_trace(&[TraceRound {
        gain: f64::NAN,
        guarded: true,
    }])
    .unwrap_err();
    assert_eq!(err.check, "trace-gain-finite", "{err}");
}
