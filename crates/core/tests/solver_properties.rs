//! Crate-level property tests for the extension solvers: branch and
//! bound vs exhaustive, weighted submodularity, capacitated allocation
//! exactness, local-search dominance, centrality feasibility.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_core::algorithms::branch_bound::branch_and_bound;
use tdmd_core::algorithms::centrality::centrality_placement;
use tdmd_core::algorithms::exhaustive::exhaustive_optimal;
use tdmd_core::algorithms::gtp::{gtp_budgeted, gtp_sharded_with};
use tdmd_core::algorithms::local_search::local_search;
use tdmd_core::capacitated::{allocate_capacitated, evaluate_capacitated};
use tdmd_core::cost::HopCount;
use tdmd_core::feasibility::is_feasible;
use tdmd_core::objective::bandwidth_of;
use tdmd_core::weighted::WeightedIndex;
use tdmd_core::{Deployment, Instance};
use tdmd_graph::traversal::bfs_path;
use tdmd_graph::{GraphBuilder, NodeId};
use tdmd_traffic::Flow;

/// Random small general instance with random edge weights.
fn weighted_instance(seed: u64, n: usize, n_flows: usize, k: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random connected graph with weighted bidirectional links.
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        b.add_bidirectional_weighted(p as NodeId, v as NodeId, rng.gen_range(1..10));
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_bidirectional_weighted(u, v, rng.gen_range(1..10));
        }
    }
    let g = b.build();
    let mut flows = Vec::new();
    let mut id = 0u32;
    while flows.len() < n_flows {
        let src = rng.gen_range(0..n) as NodeId;
        let dst = rng.gen_range(0..n) as NodeId;
        if src == dst {
            continue;
        }
        if let Some(path) = bfs_path(&g, src, dst) {
            flows.push(Flow::new(id, rng.gen_range(1..=6), path));
            id += 1;
        }
    }
    Instance::new(g, flows, 0.5, k).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Branch and bound returns exactly the exhaustive optimum and
    /// agrees on infeasibility.
    #[test]
    fn bnb_equals_exhaustive(seed in any::<u64>(), n in 3usize..12, k in 1usize..4) {
        let inst = weighted_instance(seed, n, 4, k);
        let bnb = branch_and_bound(&inst, k, 50_000_000);
        let ex = exhaustive_optimal(&inst, k, u128::MAX);
        match (bnb, ex) {
            (Ok((_, b, _)), Ok((_, e))) => prop_assert!((b - e).abs() < 1e-9, "{b} vs {e}"),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "solvers disagree: {:?}", other.0.is_ok()),
        }
    }

    /// Weighted marginal decrements are submodular too (the Thm. 2
    /// argument only uses monotone downstream weights).
    #[test]
    fn weighted_decrement_is_submodular(seed in any::<u64>(), n in 3usize..14) {
        let inst = weighted_instance(seed, n, 5, 3);
        let index = WeightedIndex::new(&inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let small = Deployment::from_vertices(n, (0..2).map(|_| rng.gen_range(0..n) as NodeId));
        let mut big = small.clone();
        big.insert(rng.gen_range(0..n) as NodeId);
        let cur = |d: &Deployment| -> Vec<f64> {
            index.best_down(&inst, d).into_iter().map(|w| w.unwrap_or(0.0)).collect()
        };
        let (cs, cb) = (cur(&small), cur(&big));
        for v in 0..n as NodeId {
            if big.contains(v) {
                continue;
            }
            prop_assert!(
                index.marginal_decrement(&inst, &cs, v)
                    >= index.marginal_decrement(&inst, &cb, v) - 1e-9
            );
        }
    }

    /// The capacitated evaluation with cap ≥ |F| equals the nearest-
    /// source objective, and the matching never exceeds capacities.
    #[test]
    fn capacitated_evaluation_is_consistent(seed in any::<u64>(), n in 3usize..12,
                                            cap in 1usize..5) {
        let inst = weighted_instance(seed, n, 4, 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let d = Deployment::from_vertices(n, (0..3).map(|_| rng.gen_range(0..n) as NodeId));
        // Loose capacity reduces to the unconstrained allocation.
        if let Some((_, b)) = allocate_capacitated(&inst, &d, 10) {
            prop_assert!((b - bandwidth_of(&inst, &d)).abs() < 1e-9);
        }
        // Any capacity: box loads bounded by cap; matched bounded by
        // both |F| and Σ capacities.
        let eval = evaluate_capacitated(&inst, &d, cap);
        let mut counts = std::collections::HashMap::new();
        for v in eval.allocation.assigned.iter().flatten() {
            *counts.entry(*v).or_insert(0usize) += 1;
        }
        prop_assert!(counts.values().all(|&c| c <= cap));
        prop_assert!(eval.matched <= inst.flows().len());
        prop_assert!(eval.matched <= d.len() * cap);
        // Tighter capacity never serves more flows; at equal matching
        // size the looser polytope can only improve the gain (a
        // max-matching increase may legitimately trade gain, so the
        // bandwidth comparison is only asserted at equal size).
        let looser = evaluate_capacitated(&inst, &d, cap + 1);
        prop_assert!(looser.matched >= eval.matched);
        if looser.matched == eval.matched {
            prop_assert!(looser.bandwidth <= eval.bandwidth + 1e-9);
        }
    }

    /// Sharded-parallel GTP is bitwise-equal to the sequential greedy
    /// for every shard width on weighted random instances: the shard
    /// width (and therefore the rayon split) is a pure performance
    /// knob, never an output knob.
    #[test]
    fn sharded_gtp_equals_sequential(seed in any::<u64>(), n in 3usize..14,
                                     k in 1usize..5, shard in 1usize..40) {
        let inst = weighted_instance(seed, n, 5, k);
        let eager = gtp_budgeted(&inst, k);
        let sharded = gtp_sharded_with(&inst, k, shard, &HopCount);
        match (eager, sharded) {
            (Ok(e), Ok(s)) => prop_assert_eq!(e, s),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            other => prop_assert!(false, "variants disagree on feasibility: {:?}", other),
        }
    }

    /// Local search from any feasible start never worsens and respects
    /// the start's size budget.
    #[test]
    fn local_search_is_safe(seed in any::<u64>(), n in 4usize..14) {
        let inst = weighted_instance(seed, n, 5, 4);
        let Ok(start) = gtp_budgeted(&inst, 4) else { return Ok(()) };
        let before = bandwidth_of(&inst, &start);
        let out = local_search(&inst, start.clone(), 50);
        prop_assert!(out.bandwidth <= before + 1e-9);
        prop_assert!(out.deployment.len() <= start.len());
        prop_assert!(is_feasible(&inst, &out.deployment));
    }

    /// Centrality placement is feasible whenever it succeeds, within
    /// budget, and traffic-blind (same deployment for any λ).
    #[test]
    fn centrality_placement_properties(seed in any::<u64>(), n in 4usize..14, k in 1usize..5) {
        let inst = weighted_instance(seed, n, 4, k);
        if let Ok(d) = centrality_placement(&inst, k) {
            prop_assert!(d.len() <= k);
            prop_assert!(is_feasible(&inst, &d));
            let other = centrality_placement(&inst.with_lambda(0.0), k).unwrap();
            prop_assert_eq!(d, other, "λ must not influence a traffic-blind heuristic");
        }
    }
}
