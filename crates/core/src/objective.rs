//! The TDMD objective (Eq. 1) and the decrement function (Defs. 1–2).
//!
//! Once a deployment `P` is fixed, the optimal allocation is forced
//! (§3.1): every flow uses the deployed middlebox nearest its source,
//! i.e. the one maximizing the downstream hop count `l_v(f)`, because
//! `b(f) = r_f(|p_f| − (1 − λ)·l_v(f))` strictly decreases in `l`.
//! All routines below work in terms of per-flow best-`l` vectors so
//! the greedy algorithms can maintain them incrementally.

use crate::instance::Instance;
use crate::plan::{Allocation, Deployment};
use tdmd_graph::NodeId;

/// Optimal allocation under `deployment`: each flow is served by the
/// on-path middlebox with the largest `l_v(f)` (nearest the source);
/// ties break toward the smaller vertex id. Unserved flows get `None`.
pub fn allocate(instance: &Instance, deployment: &Deployment) -> Allocation {
    // Scan only the deployed vertices' flow-index rows instead of
    // rescanning every flow path: O(Σ_{v∈P} |flows(v)|) versus
    // O(Σ_f |p_f|). Distinct on-path vertices of one flow have
    // distinct l, so the strict `>` plus the ascending vertex order
    // keeps the result deterministic.
    let mut assigned = vec![None; instance.flows().len()];
    let mut best_l = vec![0u32; instance.flows().len()];
    for &v in deployment.vertices() {
        for &(fi, l) in instance.flows_through(v) {
            let slot = fi as usize;
            if assigned[slot].is_none() || l > best_l[slot] {
                assigned[slot] = Some(v);
                best_l[slot] = l;
            }
        }
    }
    Allocation { assigned }
}

/// Per-flow best downstream hop counts under `deployment` —
/// `Some(l)` for served flows, `None` for unserved ones.
pub fn best_hops(instance: &Instance, deployment: &Deployment) -> Vec<Option<u32>> {
    let mut best = vec![None; instance.flows().len()];
    for &v in deployment.vertices() {
        for &(fi, l) in instance.flows_through(v) {
            let slot = &mut best[fi as usize];
            if slot.is_none_or(|cur| l > cur) {
                *slot = Some(l);
            }
        }
    }
    best
}

/// Total bandwidth consumption `b(P, F)` of an allocation (Eq. 1);
/// unserved flows consume their full unprocessed bandwidth.
pub fn bandwidth(instance: &Instance, alloc: &Allocation) -> f64 {
    let lambda = instance.lambda();
    instance
        .flows()
        .iter()
        .map(|f| {
            let base = f.unprocessed_bandwidth() as f64;
            match alloc.assigned[f.id as usize] {
                Some(v) => {
                    let l = f.downstream_hops(v).expect("assigned vertex is on path") as f64;
                    base - f.rate as f64 * (1.0 - lambda) * l
                }
                None => base,
            }
        })
        .sum()
}

/// Convenience: bandwidth of a deployment under its optimal
/// allocation.
pub fn bandwidth_of(instance: &Instance, deployment: &Deployment) -> f64 {
    let lambda = instance.lambda();
    let mut total = instance.unprocessed_bandwidth();
    for (f, l) in instance.flows().iter().zip(best_hops(instance, deployment)) {
        if let Some(l) = l {
            total -= f.rate as f64 * (1.0 - lambda) * l as f64;
        }
    }
    total
}

/// Decrement function `d(P) = Σ r_f|p_f| − b(P)` (Def. 1).
pub fn decrement(instance: &Instance, deployment: &Deployment) -> f64 {
    instance.unprocessed_bandwidth() - bandwidth_of(instance, deployment)
}

/// Marginal decrement `d_P({v})` (Def. 2) given the per-flow best-`l`
/// vector of the current deployment (`0` encodes "unserved" — a flow
/// served at its destination contributes the same zero decrement).
pub fn marginal_decrement(instance: &Instance, current_l: &[u32], v: NodeId) -> f64 {
    let factor = 1.0 - instance.lambda();
    let flows = instance.flows();
    instance
        .flows_through(v)
        .iter()
        .filter(|&&(fi, l)| l > current_l[fi as usize])
        .map(|&(fi, l)| {
            flows[fi as usize].rate as f64 * factor * (l - current_l[fi as usize]) as f64
        })
        .sum()
}

/// Number of currently-unserved flows that placing a middlebox on `v`
/// would newly cover. Used as the greedy tie-break that keeps GTP
/// making coverage progress even when `λ = 1` flattens the decrement.
pub fn coverage_gain(instance: &Instance, served: &[bool], v: NodeId) -> usize {
    instance
        .flows_through(v)
        .iter()
        .filter(|&&(fi, _)| !served[fi as usize])
        .count()
}

/// Lemma 1 bounds: `(min d, max d) = (0, (1 − λ) Σ r_f |p_f|)`.
pub fn lemma1_bounds(instance: &Instance) -> (f64, f64) {
    (
        0.0,
        (1.0 - instance.lambda()) * instance.unprocessed_bandwidth(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::NodeId;

    use crate::paper::fig1_instance;

    #[test]
    fn fig1_two_middlebox_optimum_is_12() {
        // Fig. 1(a): middleboxes on v5 and v2 (0-based: 4 and 1)
        // give total bandwidth 12.
        let inst = fig1_instance(2);
        let d = Deployment::from_vertices(6, [4, 1]);
        let alloc = allocate(&inst, &d);
        assert!(alloc.is_complete());
        assert_eq!(bandwidth(&inst, &alloc), 12.0);
        assert_eq!(bandwidth_of(&inst, &d), 12.0);
    }

    #[test]
    fn fig1_three_middlebox_optimum_is_8() {
        // Fig. 1(b): a middlebox on every flow source: v5, v6, v4
        // (0-based 4, 5, 3) gives the minimum 8.
        let inst = fig1_instance(3);
        let d = Deployment::from_vertices(6, [4, 5, 3]);
        assert_eq!(bandwidth_of(&inst, &d), 8.0);
        let (_, dmax) = lemma1_bounds(&inst);
        assert_eq!(
            decrement(&inst, &d),
            dmax,
            "source placement reaches Lemma 1 max"
        );
    }

    #[test]
    fn empty_deployment_consumes_everything() {
        let inst = fig1_instance(2);
        let d = Deployment::empty(6);
        assert_eq!(bandwidth_of(&inst, &d), inst.unprocessed_bandwidth());
        assert_eq!(decrement(&inst, &d), 0.0, "Lemma 1: d(∅) = 0");
        assert!(!allocate(&inst, &d).is_complete());
    }

    #[test]
    fn allocation_picks_nearest_source_box() {
        let inst = fig1_instance(2);
        // Boxes on v3 (=2) and v5 (=4): f1 must use v5 (l=2), not v3.
        let d = Deployment::from_vertices(6, [2, 4]);
        let alloc = allocate(&inst, &d);
        assert_eq!(alloc.assigned[0], Some(4));
        assert_eq!(alloc.assigned[1], Some(2));
        // f3/f4 (through v4->v2->v1... i.e. 3 -> 1 -> 0) are unserved.
        assert_eq!(alloc.assigned[2], None);
        assert!(!alloc.is_complete());
    }

    #[test]
    fn best_hops_matches_allocate() {
        let inst = fig1_instance(2);
        let d = Deployment::from_vertices(6, [2, 4, 0]);
        let alloc = allocate(&inst, &d);
        let hops = best_hops(&inst, &d);
        for (f, (a, h)) in inst.flows().iter().zip(alloc.assigned.iter().zip(hops)) {
            match (a, h) {
                (Some(v), Some(l)) => assert_eq!(f.downstream_hops(*v).unwrap() as u32, l),
                (None, None) => {}
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn marginal_decrement_matches_table2_round_one() {
        // Table 2, first row (d_∅): v3=3, v4=1, v5=4, v6=3 (1-based).
        let inst = fig1_instance(2);
        let cur = vec![0u32; 4];
        let d = |v: NodeId| marginal_decrement(&inst, &cur, v);
        assert_eq!(d(0), 0.0); // v1: only f1's destination
        assert_eq!(d(1), 0.0); // v2: f2/f3/f4 end here (l = 0)
        assert_eq!(d(2), 3.0); // v3: f1 at l=1 (2) + f2 at l=1 (1)
        assert_eq!(d(3), 1.0); // v4: f3 at l=1
        assert_eq!(d(4), 4.0); // v5: f1 at l=2
        assert_eq!(d(5), 3.0); // v6: f2 at l=2 (2) + f4 at l=1 (1)
    }

    #[test]
    fn marginal_decrement_shrinks_with_larger_deployment() {
        // Submodularity spot check: gain of v3 (id 2) drops once v5
        // (id 4) is deployed because f1 is already served earlier.
        let inst = fig1_instance(2);
        let empty = vec![0u32; 4];
        let with_v5: Vec<u32> = {
            let d = Deployment::from_vertices(6, [4]);
            best_hops(&inst, &d)
                .into_iter()
                .map(|l| l.unwrap_or(0))
                .collect()
        };
        assert!(marginal_decrement(&inst, &with_v5, 2) < marginal_decrement(&inst, &empty, 2));
    }

    #[test]
    fn coverage_gain_counts_unserved_only() {
        let inst = fig1_instance(2);
        let served = vec![false; 4];
        assert_eq!(coverage_gain(&inst, &served, 2), 2); // f1, f2 cross v3
        let served = vec![true, false, false, false];
        assert_eq!(coverage_gain(&inst, &served, 2), 1);
    }

    #[test]
    fn lambda_one_means_no_decrement() {
        let inst = fig1_instance(2).with_lambda(1.0);
        let d = Deployment::from_vertices(6, [3, 4, 5]);
        assert_eq!(decrement(&inst, &d), 0.0);
        assert_eq!(bandwidth_of(&inst, &d), inst.unprocessed_bandwidth());
    }

    #[test]
    fn lambda_zero_spam_filter_cuts_everything_at_source() {
        let inst = fig1_instance(3).with_lambda(0.0);
        let d = Deployment::from_vertices(6, [3, 4, 5]);
        assert_eq!(bandwidth_of(&inst, &d), 0.0, "spam filtered at the source");
    }
}
