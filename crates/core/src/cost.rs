//! Pluggable objective pricing: the [`CostModel`] trait and the CSR
//! [`FlowIndex`] every greedy engine iterates over.
//!
//! The paper's objective (Eq. 1) prices a flow by its *hop count* and
//! credits a serving vertex `v` with the downstream hops `l_v(f)`.
//! Theorem 2's submodularity proof never uses the fact that the
//! per-position metric is a hop count — only that it is non-negative
//! and non-increasing along the path (traffic shrinks monotonically as
//! the middlebox moves downstream). Any pricing with that shape keeps
//! `d(P)` monotone submodular, so the same `(1 − 1/e)` greedy applies.
//! A [`CostModel`] captures exactly that contract:
//!
//! * [`CostModel::serving_gain`] — the metric credited for processing
//!   a flow at a path position (Eq. 1's `l_v(f)` generalized),
//! * [`CostModel::unprocessed_cost`] — the metric of a wholly
//!   unprocessed flow (Eq. 1's `|p_f|` generalized),
//! * [`CostModel::coverage_tiebreak`] — whether newly-covered flow
//!   count joins the greedy tie-break ladder.
//!
//! Three implementations live here or nearby: [`HopCount`] (the
//! paper's Eq. 1, unit edge weights), [`WeightedEdges`] (per-edge
//! weights, the repo's priced-links extension), and the chain-aware
//! stack model in the `tdmd-chain` crate.
//!
//! A model is *compiled* into a [`FlowIndex`]: one flat CSR arena of
//! `(flow, gain)` entries grouped by vertex, replacing the old
//! `Vec<Vec<…>>` per-vertex lists (one allocation instead of `|V|`,
//! and cache-contiguous scans in the greedy inner loop).
//!
//! Models always price the **active** path of each flow. Under the
//! joint routing extension a flow's active path is one pick from its
//! [`PathSets`](crate::instance::PathSets) candidates;
//! [`Instance::set_active_paths`] rebuilds the underlying vertex →
//! `(flow, l)` index after a switch, so a [`FlowIndex`] compiled
//! before the switch is stale and must be recompiled — the joint
//! solver re-runs its placement rounds on the fresh view for exactly
//! this reason.

use tdmd_graph::{DiGraph, NodeId};
use tdmd_traffic::Flow;

use crate::instance::Instance;
use crate::plan::Deployment;

/// A pricing of flow traffic along its path.
///
/// # Contract
///
/// For Theorem 2 (and hence the `(1 − 1/e)` guarantee of GTP) to
/// carry over, `serving_gain` must be non-negative and non-increasing
/// in `pos` for every flow, and `unprocessed_cost` must dominate every
/// serving gain of the same flow. Both [`HopCount`] and
/// [`WeightedEdges`] satisfy this by construction (suffix sums of
/// non-negative edge prices).
pub trait CostModel {
    /// Metric credited for serving `flow` at path position `pos`
    /// (0 = source). Eq. (1)'s downstream hop count `l_v(f)`,
    /// generalized.
    fn serving_gain(&self, flow: &Flow, pos: usize) -> f64;

    /// Metric of the wholly unprocessed flow — the serving gain at the
    /// source, i.e. Eq. (1)'s `|p_f|`, generalized.
    fn unprocessed_cost(&self, flow: &Flow) -> f64;

    /// Whether the greedy tie-break ladder should prefer candidates
    /// covering more previously-unserved flows before falling back to
    /// the smallest vertex id. The paper's GTP does (it accelerates
    /// feasibility); models built on exact re-evaluation may opt out.
    fn coverage_tiebreak(&self) -> bool {
        true
    }
}

/// The paper's Eq. (1) pricing: every edge costs 1, so a flow's
/// metric is its hop count and a serving vertex is credited its
/// downstream hop count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopCount;

impl CostModel for HopCount {
    #[inline]
    fn serving_gain(&self, flow: &Flow, pos: usize) -> f64 {
        (flow.hops() - pos) as f64
    }

    #[inline]
    fn unprocessed_cost(&self, flow: &Flow) -> f64 {
        flow.hops() as f64
    }
}

/// Prebuilt `(u, v) → weight` lookup for a graph's directed edges.
///
/// `DiGraph` stores weights positionally (parallel to the adjacency
/// lists), so resolving one edge weight used to cost an `O(deg)`
/// neighbor scan — quadratic in degree when pricing whole paths. This
/// table is built once in `O(|E| log |E|)` and serves `O(log |E|)`
/// binary-search lookups from one contiguous, deterministically
/// ordered allocation (a `HashMap` here would be the lone
/// hash-ordered container in the solver core — see the
/// `map-iter-order` lint). With parallel edges the *first* occurrence
/// wins, matching the `position()`-based scan it replaces.
#[derive(Debug, Clone)]
pub struct EdgeWeights {
    /// `(u, v) → weight`, sorted by key, one entry per distinct edge.
    table: Vec<((NodeId, NodeId), f64)>,
}

impl EdgeWeights {
    /// Indexes every directed edge of `g`.
    pub fn new(g: &DiGraph) -> Self {
        let mut table: Vec<((NodeId, NodeId), f64)> = Vec::new();
        for u in 0..g.node_count() as NodeId {
            for (&v, &w) in g.out_neighbors(u).iter().zip(g.out_weights(u)) {
                table.push(((u, v), w as f64));
            }
        }
        // Stable sort + first-of-run dedup preserves adjacency order
        // among parallel edges, so the first occurrence's weight wins.
        table.sort_by_key(|&(key, _)| key);
        table.dedup_by_key(|&mut (key, _)| key);
        Self { table }
    }

    /// Weight of the directed edge `u → v`.
    ///
    /// # Panics
    /// Panics if the edge does not exist; callers only price edges of
    /// validated flow paths.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        let i = self
            .table
            .binary_search_by_key(&(u, v), |&(key, _)| key)
            .expect("edge weight lookup on a non-edge; flow paths are validated");
        self.table[i].1
    }
}

/// Weighted-edge pricing: each path edge costs its graph weight, and a
/// serving vertex is credited the *downstream weight* — the sum of
/// edge weights from its position to the destination (a suffix sum,
/// so the metric is non-increasing along the path as Theorem 2
/// requires).
#[derive(Debug, Clone)]
pub struct WeightedEdges {
    /// `down[f][i]` = total edge weight downstream of path position
    /// `i` of flow `f` (indexed by dense flow id).
    down: Vec<Vec<f64>>,
}

impl WeightedEdges {
    /// Prices every flow path of `instance` against its graph's edge
    /// weights. `O(|E| + Σ|p_f|)` — the old per-edge neighbor scan
    /// made this `O(Σ|p_f| · deg)`.
    pub fn new(instance: &Instance) -> Self {
        let weights = EdgeWeights::new(instance.graph());
        let mut down = Vec::with_capacity(instance.flows().len());
        for f in instance.flows() {
            let m = f.path.len();
            let mut d = vec![0.0f64; m];
            for i in (0..m - 1).rev() {
                d[i] = d[i + 1] + weights.get(f.path[i], f.path[i + 1]);
            }
            down.push(d);
        }
        Self { down }
    }
}

impl CostModel for WeightedEdges {
    #[inline]
    fn serving_gain(&self, flow: &Flow, pos: usize) -> f64 {
        self.down[flow.id as usize][pos]
    }

    #[inline]
    fn unprocessed_cost(&self, flow: &Flow) -> f64 {
        self.down[flow.id as usize][0]
    }
}

/// Per-tenant weighting adapter over any [`CostModel`]: every metric
/// of a flow is multiplied by its tenant's weight, so placement
/// optimizes *weighted* bandwidth (premium tenants pull middleboxes
/// toward their paths in proportion to their weight).
///
/// The Theorem 2 contract survives: multiplying a flow's whole gain
/// profile by one non-negative constant keeps it non-negative,
/// non-increasing along the path, and dominated by the (equally
/// scaled) unprocessed cost — so the `(1 − 1/e)` greedy guarantee
/// applies to the weighted objective unchanged.
///
/// Weights are indexed by [`Flow::tenant`]; tenants beyond the table
/// fall back to the neutral weight `1.0`. With every weight exactly
/// `1.0` the adapter is *bitwise* transparent (IEEE 754 guarantees
/// `1.0 * x == x` for every finite `x`), so single-tenant pipelines
/// can wrap unconditionally without perturbing placement.
#[derive(Debug, Clone)]
pub struct TenantCostModel<M> {
    inner: M,
    weights: Vec<f64>,
}

impl<M: CostModel> TenantCostModel<M> {
    /// Wraps `inner`, weighting tenant `t` by `weights[t]` (missing
    /// entries weigh `1.0`).
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite (the Theorem 2
    /// contract needs non-negative gains).
    pub fn new(inner: M, weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "tenant weights must be finite and non-negative"
        );
        Self { inner, weights }
    }

    /// The weight applied to `tenant`'s flows.
    #[inline]
    pub fn weight_of(&self, tenant: tdmd_traffic::TenantId) -> f64 {
        self.weights
            .get(usize::from(tenant))
            .copied()
            .unwrap_or(1.0)
    }

    /// The wrapped model.
    #[inline]
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: CostModel> CostModel for TenantCostModel<M> {
    #[inline]
    fn serving_gain(&self, flow: &Flow, pos: usize) -> f64 {
        self.weight_of(flow.tenant) * self.inner.serving_gain(flow, pos)
    }

    #[inline]
    fn unprocessed_cost(&self, flow: &Flow) -> f64 {
        self.weight_of(flow.tenant) * self.inner.unprocessed_cost(flow)
    }

    #[inline]
    fn coverage_tiebreak(&self) -> bool {
        self.inner.coverage_tiebreak()
    }
}

/// A [`CostModel`] compiled against one [`Instance`]: for every vertex,
/// the flows crossing it with their serving gains, stored as one flat
/// CSR arena (`offsets[v] .. offsets[v + 1]` slices `entries`).
///
/// Entry order within a vertex follows ascending flow id (flows are
/// indexed in order, and each visits a vertex at most once), which
/// pins the floating-point summation order of every aggregate below —
/// the greedy engines rely on this for reproducible tie-breaking.
#[derive(Debug, Clone)]
pub struct FlowIndex {
    /// CSR row offsets, length `node_count + 1`.
    offsets: Vec<u32>,
    /// `(flow id, serving gain)` entries grouped by vertex.
    entries: Vec<(u32, f64)>,
    /// Per-flow unprocessed cost, indexed by dense flow id.
    path_cost: Vec<f64>,
}

impl FlowIndex {
    /// Compiles `model` against `instance` in two passes: a counting
    /// pass sizing each CSR row, then a fill pass walking flows in id
    /// order with per-vertex write cursors.
    pub fn build<M: CostModel + ?Sized>(instance: &Instance, model: &M) -> Self {
        let n = instance.node_count();
        let flows = instance.flows();
        let mut offsets = vec![0u32; n + 1];
        for f in flows {
            for &v in &f.path {
                offsets[v as usize + 1] += 1;
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut entries = vec![(0u32, 0.0f64); offsets[n] as usize];
        let mut path_cost = Vec::with_capacity(flows.len());
        for f in flows {
            path_cost.push(model.unprocessed_cost(f));
            for (pos, &v) in f.path.iter().enumerate() {
                let slot = &mut cursor[v as usize];
                entries[*slot as usize] = (f.id, model.serving_gain(f, pos));
                *slot += 1;
            }
        }
        Self {
            offsets,
            entries,
            path_cost,
        }
    }

    /// Flows crossing `v` with their serving gains at that position.
    #[inline]
    pub fn flows_through(&self, v: NodeId) -> &[(u32, f64)] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Unprocessed cost of flow `f` (the model's `|p_f|` analogue).
    #[inline]
    pub fn path_cost(&self, f: u32) -> f64 {
        self.path_cost[f as usize]
    }

    /// Number of flows indexed.
    #[inline]
    pub fn flow_count(&self) -> usize {
        self.path_cost.len()
    }

    /// Total cost with no middleboxes: `Σ r_f · cost(p_f)`.
    pub fn unprocessed(&self, instance: &Instance) -> f64 {
        instance
            .flows()
            .iter()
            .map(|f| f.rate as f64 * self.path_cost[f.id as usize])
            .sum()
    }

    /// Best (largest) serving gain each flow attains over the
    /// deployment, or `None` for unserved flows.
    pub fn best_down(&self, deployment: &Deployment) -> Vec<Option<f64>> {
        let mut best: Vec<Option<f64>> = vec![None; self.path_cost.len()];
        for &v in deployment.vertices() {
            for &(fi, g) in self.flows_through(v) {
                let slot = &mut best[fi as usize];
                if slot.is_none_or(|b| g > b) {
                    *slot = Some(g);
                }
            }
        }
        best
    }

    /// Total cost under `deployment`: each served flow saves
    /// `r_f · (1 − λ) · gain` off its unprocessed cost.
    pub fn bandwidth_of(&self, instance: &Instance, deployment: &Deployment) -> f64 {
        let factor = 1.0 - instance.lambda();
        let best = self.best_down(deployment);
        instance
            .flows()
            .iter()
            .map(|f| {
                let full = f.rate as f64 * self.path_cost[f.id as usize];
                match best[f.id as usize] {
                    Some(g) => full - f.rate as f64 * factor * g,
                    None => full,
                }
            })
            .sum()
    }

    /// Marginal decrement of adding `v` when each flow's best gain so
    /// far is `current[f]` (0.0 for unserved flows): Def. 2
    /// generalized to the compiled model.
    pub fn marginal_decrement(&self, instance: &Instance, current: &[f64], v: NodeId) -> f64 {
        let factor = 1.0 - instance.lambda();
        self.flows_through(v)
            .iter()
            .filter(|&&(fi, g)| g > current[fi as usize])
            .map(|&(fi, g)| {
                let f = &instance.flows()[fi as usize];
                f.rate as f64 * factor * (g - current[fi as usize])
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::fig1_instance;

    #[test]
    fn hop_count_matches_flow_hops() {
        let inst = fig1_instance(2);
        for f in inst.flows() {
            assert_eq!(HopCount.unprocessed_cost(f), f.hops() as f64);
            for pos in 0..f.path.len() {
                assert_eq!(HopCount.serving_gain(f, pos), (f.hops() - pos) as f64);
            }
        }
    }

    #[test]
    fn neutral_tenant_weights_are_bitwise_transparent() {
        let inst = fig1_instance(2);
        let model = TenantCostModel::new(HopCount, vec![1.0; 4]);
        for f in inst.flows() {
            assert_eq!(
                model.unprocessed_cost(f).to_bits(),
                HopCount.unprocessed_cost(f).to_bits()
            );
            for pos in 0..f.path.len() {
                assert_eq!(
                    model.serving_gain(f, pos).to_bits(),
                    HopCount.serving_gain(f, pos).to_bits(),
                    "flow {} pos {pos}",
                    f.id
                );
            }
        }
        assert!(model.coverage_tiebreak());
    }

    #[test]
    fn missing_tenants_fall_back_to_weight_one() {
        let model = TenantCostModel::new(HopCount, vec![2.0]);
        assert_eq!(model.weight_of(0), 2.0);
        assert_eq!(model.weight_of(7), 1.0);
        let f = Flow::new(0, 3, vec![0, 1, 2]).with_tenant(7);
        assert_eq!(
            model.serving_gain(&f, 0).to_bits(),
            HopCount.serving_gain(&f, 0).to_bits()
        );
    }

    #[test]
    fn tenant_weights_scale_the_metric() {
        let model = TenantCostModel::new(HopCount, vec![1.0, 3.0]);
        let f = Flow::new(0, 2, vec![0, 1, 2]).with_tenant(1);
        assert_eq!(model.unprocessed_cost(&f), 6.0);
        assert_eq!(model.serving_gain(&f, 1), 3.0);
        assert_eq!(model.inner().serving_gain(&f, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tenant_weights_are_rejected() {
        TenantCostModel::new(HopCount, vec![1.0, -0.5]);
    }

    #[test]
    fn unit_weight_edges_price_like_hops() {
        // fig1's builder uses unit weights, so the weighted suffix
        // sums must coincide with downstream hop counts exactly.
        let inst = fig1_instance(2);
        let weighted = WeightedEdges::new(&inst);
        for f in inst.flows() {
            for pos in 0..f.path.len() {
                assert_eq!(
                    weighted.serving_gain(f, pos),
                    HopCount.serving_gain(f, pos),
                    "flow {} pos {pos}",
                    f.id
                );
            }
        }
    }

    #[test]
    fn csr_index_matches_instance_index() {
        // The f64 CSR compiled from HopCount must mirror the u32 hop
        // index stored on the instance, entry for entry.
        let inst = fig1_instance(2);
        let index = FlowIndex::build(&inst, &HopCount);
        for v in 0..inst.node_count() as NodeId {
            let ours = index.flows_through(v);
            let theirs = inst.flows_through(v);
            assert_eq!(ours.len(), theirs.len(), "vertex {v}");
            for (&(fi, g), &(fj, l)) in ours.iter().zip(theirs) {
                assert_eq!(fi, fj);
                assert_eq!(g, l as f64);
            }
        }
    }

    #[test]
    fn bandwidth_of_matches_hop_objective() {
        let inst = fig1_instance(2);
        let index = FlowIndex::build(&inst, &HopCount);
        let dep = Deployment::from_vertices(inst.node_count(), [4, 1]);
        assert_eq!(index.bandwidth_of(&inst, &dep), 12.0);
        assert_eq!(
            index.unprocessed(&inst),
            inst.unprocessed_bandwidth(),
            "empty deployment degenerates to the raw load"
        );
    }

    #[test]
    fn edge_weights_resolve_in_constant_time_tables() {
        let inst = fig1_instance(2);
        let w = EdgeWeights::new(inst.graph());
        for f in inst.flows() {
            for pair in f.path.windows(2) {
                assert_eq!(w.get(pair[0], pair[1]), 1.0, "fig1 uses unit weights");
            }
        }
    }

    #[test]
    fn marginal_decrement_matches_table2() {
        // Table 2 of the paper, λ = 0.5: first-round marginals.
        let inst = fig1_instance(2);
        let index = FlowIndex::build(&inst, &HopCount);
        let cur = vec![0.0; inst.flows().len()];
        let expected = [0.0, 0.0, 3.0, 1.0, 4.0, 3.0];
        for (v, &want) in expected.iter().enumerate() {
            assert_eq!(index.marginal_decrement(&inst, &cur, v as NodeId), want);
        }
    }

    mod tenant_props {
        use super::*;
        use crate::algorithms::gtp::gtp_lazy_with;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use tdmd_graph::generators::random::erdos_renyi_connected;
        use tdmd_traffic::tenant::{gravity_workload, GravityConfig, TenantProfile};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Satellite pin: with every tenant weighted `1.0`, the
            /// wrapped model compiles to a bitwise-identical CSR and
            /// GTP picks the identical deployment on the default
            /// (gravity) multi-tenant workload.
            #[test]
            fn weight_one_model_is_bitwise_equal_on_gravity_workload(seed in any::<u64>()) {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = erdos_renyi_connected(16, 0.25, &mut rng);
                let cfg = GravityConfig::with_total_rate(20_000)
                    .tenants(TenantProfile::uniform(3));
                let flows =
                    gravity_workload(&g, &[1, 2, 3, 5], &[0, 4], &cfg, &mut rng);
                prop_assume!(!flows.is_empty());
                let inst = Instance::new(g, flows, 0.5, 3).expect("gravity flows are valid");
                let neutral = TenantCostModel::new(HopCount, vec![1.0; 3]);
                let a = FlowIndex::build(&inst, &HopCount);
                let b = FlowIndex::build(&inst, &neutral);
                for v in 0..inst.node_count() as NodeId {
                    let (xs, ys) = (a.flows_through(v), b.flows_through(v));
                    prop_assert_eq!(xs.len(), ys.len());
                    for (&(fi, gi), &(fj, gj)) in xs.iter().zip(ys) {
                        prop_assert_eq!(fi, fj);
                        prop_assert_eq!(gi.to_bits(), gj.to_bits(), "vertex {}", v);
                    }
                }
                let plain = gtp_lazy_with(&inst, 3, &HopCount);
                let wrapped = gtp_lazy_with(&inst, 3, &neutral);
                match (plain, wrapped) {
                    (Ok(p), Ok(w)) => prop_assert_eq!(p.vertices(), w.vertices()),
                    (Err(_), Err(_)) => {}
                    (p, w) => prop_assert!(false, "feasibility diverged: {:?} vs {:?}", p, w),
                }
            }
        }
    }
}
