//! # tdmd-core — the TDMD problem and its placement algorithms
//!
//! Implements the paper's contribution end to end:
//!
//! * [`instance`] — a TDMD problem [`Instance`]: topology + flows +
//!   traffic-changing ratio `λ` + middlebox budget `k`, with the
//!   per-vertex flow index the algorithms share. Each flow carries a
//!   candidate [`PathSets`] entry (a singleton for classic fixed-path
//!   instances); the index always reflects the *active* selection.
//! * [`cost`] — the [`CostModel`] trait generalizing Eq. (1)'s
//!   pricing ([`HopCount`], [`WeightedEdges`], chain-aware models),
//!   compiled into the CSR [`FlowIndex`] the greedy engine scans.
//! * [`objective`] — Eq. (1): flow allocation, bandwidth consumption
//!   `b(P)`, the decrement function `d(P)` (Def. 1) and marginal
//!   decrements `d_P(v)` (Def. 2), plus the Lemma-1 envelope.
//! * [`feasibility`] — coverage checks and a greedy set-cover bound
//!   (feasibility itself is NP-hard in general topologies, Thm. 1).
//! * [`plan`] — deployments, allocations and evaluation reports.
//! * [`algorithms`] — GTP (Alg. 1, eager/lazy/parallel), the tree DP
//!   (Eqs. 7–10), HAT (Alg. 2), the paper's Random and Best-effort
//!   baselines, an exhaustive optimum for small instances, and the
//!   [`algorithms::joint`] routing + placement solver over candidate
//!   path sets with its LP-relaxation optimality certificate.
//!
//! # Example
//!
//! Build an instance by hand and solve it with GTP under the default
//! hop-count cost model:
//!
//! ```
//! use tdmd_core::algorithms::gtp::gtp_budgeted_with;
//! use tdmd_core::objective::bandwidth_of;
//! use tdmd_core::{HopCount, Instance};
//! use tdmd_graph::DiGraph;
//! use tdmd_traffic::Flow;
//!
//! // A 3-vertex path 0 → 1 → 2 carrying two flows.
//! let graph = DiGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
//! let flows = vec![
//!     Flow::new(0, 5, vec![0, 1, 2]), // rate 5, two hops
//!     Flow::new(1, 3, vec![1, 2]),    // rate 3, one hop
//! ];
//! let inst = Instance::new(graph, flows, 0.5, 1)?; // λ = 0.5, k = 1
//!
//! // With one box, only vertex 1 covers both flows; the feasibility
//! // guard steers GTP there. Unprocessed cost is 5·2 + 3·1 = 13 and
//! // the box saves (1 − λ)·(5·1 + 3·1) = 4 downstream units.
//! let plan = gtp_budgeted_with(&inst, 1, &HopCount)?;
//! assert_eq!(plan.vertices(), &[1]);
//! assert_eq!(bandwidth_of(&inst, &plan), 9.0);
//! # Ok::<(), tdmd_core::TdmdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
#[cfg(any(debug_assertions, feature = "audit", test))]
pub mod audit;
pub mod capacitated;
pub mod cost;
pub mod error;
pub mod feasibility;
pub mod instance;
pub mod num;
pub mod objective;
pub mod obs;
pub mod order;
pub mod paper;
pub mod plan;
pub mod weighted;

pub use cost::{CostModel, FlowIndex, HopCount, TenantCostModel, WeightedEdges};
pub use error::TdmdError;
pub use instance::{Instance, PathMember, PathSets};
pub use order::TotalGain;
pub use plan::{Allocation, Deployment, PlanReport};

/// Convenience prelude.
pub mod prelude {
    pub use crate::algorithms::{
        best_effort::best_effort,
        branch_bound::branch_and_bound,
        dp::{dp_optimal, DpSolution},
        exhaustive::exhaustive_optimal,
        gtp::{gtp_budgeted, gtp_derive_k, gtp_lazy, gtp_parallel, gtp_sharded},
        hat::hat,
        joint::{joint_solve, joint_solve_with, JointConfig, JointSolution},
        local_search::{gtp_with_local_search, local_search},
        random::random_feasible,
        Algorithm,
    };
    pub use crate::error::TdmdError;
    pub use crate::instance::Instance;
    pub use crate::objective::{allocate, bandwidth, decrement};
    pub use crate::plan::{Allocation, Deployment, PlanReport};
}
