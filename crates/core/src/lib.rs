//! # tdmd-core — the TDMD problem and its placement algorithms
//!
//! Implements the paper's contribution end to end:
//!
//! * [`instance`] — a TDMD problem [`Instance`]: topology + flows +
//!   traffic-changing ratio `λ` + middlebox budget `k`, with the
//!   per-vertex flow index the algorithms share.
//! * [`cost`] — the [`CostModel`] trait generalizing Eq. (1)'s
//!   pricing ([`HopCount`], [`WeightedEdges`], chain-aware models),
//!   compiled into the CSR [`FlowIndex`] the greedy engine scans.
//! * [`objective`] — Eq. (1): flow allocation, bandwidth consumption
//!   `b(P)`, the decrement function `d(P)` (Def. 1) and marginal
//!   decrements `d_P(v)` (Def. 2), plus the Lemma-1 envelope.
//! * [`feasibility`] — coverage checks and a greedy set-cover bound
//!   (feasibility itself is NP-hard in general topologies, Thm. 1).
//! * [`plan`] — deployments, allocations and evaluation reports.
//! * [`algorithms`] — GTP (Alg. 1, eager/lazy/parallel), the tree DP
//!   (Eqs. 7–10), HAT (Alg. 2), the paper's Random and Best-effort
//!   baselines, and an exhaustive optimum for small instances.

pub mod algorithms;
pub mod capacitated;
pub mod cost;
pub mod error;
pub mod feasibility;
pub mod instance;
pub mod objective;
pub mod obs;
pub mod paper;
pub mod plan;
pub mod weighted;

pub use cost::{CostModel, FlowIndex, HopCount, WeightedEdges};
pub use error::TdmdError;
pub use instance::Instance;
pub use plan::{Allocation, Deployment, PlanReport};

/// Convenience prelude.
pub mod prelude {
    pub use crate::algorithms::{
        best_effort::best_effort,
        branch_bound::branch_and_bound,
        dp::{dp_optimal, DpSolution},
        exhaustive::exhaustive_optimal,
        gtp::{gtp_budgeted, gtp_derive_k, gtp_lazy, gtp_parallel},
        hat::hat,
        local_search::{gtp_with_local_search, local_search},
        random::random_feasible,
        Algorithm,
    };
    pub use crate::error::TdmdError;
    pub use crate::instance::Instance;
    pub use crate::objective::{allocate, bandwidth, decrement};
    pub use crate::plan::{Allocation, Deployment, PlanReport};
}
