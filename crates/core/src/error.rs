//! Error type shared by the TDMD algorithms.

/// Errors surfaced by instance validation and the placement
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum TdmdError {
    /// `λ` is outside `[0, 1]` — the paper only treats
    /// traffic-diminishing middleboxes.
    BadLambda(f64),
    /// A flow's path uses an edge missing from the topology.
    InvalidPath {
        /// Offending flow id.
        flow: u32,
    },
    /// No deployment within the budget can cover every flow (or the
    /// algorithm could not find one — feasibility is NP-hard to decide
    /// in general topologies, Thm. 1).
    Infeasible {
        /// The budget that was insufficient.
        budget: usize,
    },
    /// A tree algorithm was invoked on an instance that is not a tree
    /// rooted at the flows' common destination with leaf sources.
    NotATreeInstance(String),
    /// An API that needs at least one flow was given an empty
    /// workload (e.g. [`dp_tables`](crate::algorithms::dp::dp_tables)
    /// has nothing to tabulate). Distinct from
    /// [`TdmdError::NotATreeInstance`]: the topology may be a
    /// perfectly good tree.
    EmptyWorkload {
        /// What the caller asked for of the empty workload.
        operation: &'static str,
    },
    /// A failure/recovery event named a vertex the stream layer
    /// rejects (outside the topology, already failed, not failed, or
    /// hosting no middlebox) — see `tdmd_online::OnlineError` for the
    /// fine-grained cause.
    FailedVertex {
        /// Offending vertex id.
        vertex: u32,
    },
    /// The exhaustive search space exceeds the configured cap.
    SearchSpaceTooLarge {
        /// Number of candidate subsets that would be enumerated.
        subsets: u128,
        /// The configured cap.
        cap: u128,
    },
    /// A reconfiguration-budget configuration is malformed (negative,
    /// NaN, or an infinite cost/refill/margin) — see
    /// `tdmd_online::ReconfigBudget::validate` for the field rules.
    BadReconfigBudget {
        /// Which field is malformed.
        reason: &'static str,
    },
}

impl std::fmt::Display for TdmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdmdError::BadLambda(l) => write!(f, "traffic-changing ratio {l} outside [0, 1]"),
            TdmdError::InvalidPath { flow } => write!(f, "flow {flow} has an invalid path"),
            TdmdError::Infeasible { budget } => {
                write!(
                    f,
                    "no feasible deployment with {budget} middleboxes was found"
                )
            }
            TdmdError::NotATreeInstance(why) => write!(f, "not a tree instance: {why}"),
            TdmdError::EmptyWorkload { operation } => {
                write!(f, "empty workload: no flows to {operation}")
            }
            TdmdError::FailedVertex { vertex } => {
                write!(f, "invalid failure/recovery event at vertex {vertex}")
            }
            TdmdError::SearchSpaceTooLarge { subsets, cap } => {
                write!(
                    f,
                    "exhaustive search over {subsets} subsets exceeds cap {cap}"
                )
            }
            TdmdError::BadReconfigBudget { reason } => {
                write!(f, "bad reconfiguration budget: {reason}")
            }
        }
    }
}

impl std::error::Error for TdmdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(TdmdError::BadLambda(1.5).to_string().contains("1.5"));
        assert!(TdmdError::Infeasible { budget: 3 }
            .to_string()
            .contains('3'));
        assert!(TdmdError::NotATreeInstance("cycle".into())
            .to_string()
            .contains("cycle"));
        assert!(TdmdError::EmptyWorkload {
            operation: "tabulate"
        }
        .to_string()
        .contains("tabulate"));
        assert!(TdmdError::FailedVertex { vertex: 7 }
            .to_string()
            .contains('7'));
        let e = TdmdError::SearchSpaceTooLarge {
            subsets: 10,
            cap: 5,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));
    }
}
