//! Structural invariant auditor — the runtime half of tdmd-audit.
//!
//! The static lint pass (`cargo xtask lint`) keeps *code* honest; this
//! module keeps *data* honest. Each `check_*` function validates one
//! layer of the solver's structural invariants and returns a
//! [`AuditError`] naming the violated check with a `file:line`-style
//! diagnostic detail, so corruption tests can assert on the exact
//! failure mode:
//!
//! * [`check_instance`] — the [`Instance`] CSR flow index is
//!   well-formed (offsets monotone, rows sorted and deduped, entries
//!   in bounds) and *bijective* with the flow paths: entry `(f, l)` at
//!   vertex `v` exists iff `v` sits on `p_f` with `l = l_v(f)`
//!   downstream hops (the paper's §3.1 scoring quantity). Paths must
//!   be simple and edge-connected on the topology.
//! * [`check_solution`] — a deployment respects the budget `k`
//!   (Eq. 3's constraint), every assignment is an on-path deployed
//!   vertex with the maximal `l_v(f)` (the forced optimal allocation
//!   of §3.1), and the decrement `d(P)` is non-negative (Lemma 1's
//!   lower bound).
//! * [`check_greedy_trace`] — the greedy's per-round marginal gains
//!   are non-negative and monotone non-increasing across unguarded
//!   rounds: a live submodularity witness for Thm. 2. Guard rounds
//!   (the tight-budget feasibility rule) restrict the candidate set
//!   and are exempt from the monotone comparison.
//!
//! The module is compiled under `debug_assertions`, the `audit` cargo
//! feature, or tests; release builds without the feature pay nothing.
//! Solver seams call [`enforce`] which panics with the diagnostic.

use std::fmt;

use crate::instance::Instance;
use crate::plan::{Allocation, Deployment};

/// A violated structural invariant.
///
/// `check` is a stable machine-matchable name (corruption tests match
/// on it); `detail` is the human diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// Stable name of the violated check, e.g. `"csr-row-sorted"`.
    pub check: &'static str,
    /// Human-readable description of the violation site.
    pub detail: String,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

impl std::error::Error for AuditError {}

/// Shorthand for building an `Err(AuditError)`.
macro_rules! fail {
    ($check:expr, $($arg:tt)*) => {
        return Err(AuditError {
            check: $check,
            detail: format!($($arg)*),
        })
    };
}

/// Panics with the audit diagnostic on a failed check. Solver seams
/// route through this so a corrupted structure aborts loudly instead
/// of producing a silently wrong placement.
///
/// # Panics
/// Panics iff `result` is an `Err`.
pub fn enforce(result: Result<(), AuditError>) {
    if let Err(e) = result {
        panic!("tdmd audit failure: {e}");
    }
}

/// Validates the instance: simple connected flow paths and a CSR flow
/// index bijective with them.
///
/// # Errors
/// Returns the first violated check among `lambda-range`,
/// `flow-id-dense`, `flow-rate-positive`, `path-vertex-bounds`,
/// `path-simple`, `path-connected`, `csr-offsets-shape`,
/// `csr-offsets-monotone`, `csr-entry-bounds`, `csr-row-sorted`,
/// `csr-entry-offpath`, `csr-entry-hops`, `csr-bijective`, and the
/// candidate-path-set checks `pathset-shape`, `pathset-active-range`,
/// `pathset-active-mirror`, `pathset-endpoints` and
/// `pathset-member-roundtrip`.
pub fn check_instance(instance: &Instance) -> Result<(), AuditError> {
    let graph = instance.graph();
    let n = graph.node_count();
    let flows = instance.flows();
    let lambda = instance.lambda();
    if !(0.0..=1.0).contains(&lambda) || lambda.is_nan() {
        fail!("lambda-range", "λ = {lambda} outside [0, 1]");
    }
    // Flow paths: dense ids, positive rates, simple, edge-connected.
    let mut seen_round = vec![usize::MAX; n];
    for (idx, f) in flows.iter().enumerate() {
        if f.id as usize != idx {
            fail!("flow-id-dense", "flow at index {idx} carries id {}", f.id);
        }
        if f.rate == 0 {
            fail!("flow-rate-positive", "flow {idx} has zero rate");
        }
        if f.path.is_empty() {
            fail!("path-vertex-bounds", "flow {idx} has an empty path");
        }
        for (pos, &v) in f.path.iter().enumerate() {
            if (v as usize) >= n {
                fail!(
                    "path-vertex-bounds",
                    "flow {idx} path[{pos}] = {v} out of bounds (n = {n})"
                );
            }
            if seen_round[v as usize] == idx {
                fail!("path-simple", "flow {idx} visits vertex {v} twice");
            }
            seen_round[v as usize] = idx;
        }
        for w in f.path.windows(2) {
            if !graph.has_edge(w[0], w[1]) {
                fail!(
                    "path-connected",
                    "flow {idx} uses missing edge {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }
    // CSR shape: offsets are a monotone prefix-sum fence.
    let (offsets, entries) = instance.audit_csr();
    if offsets.len() != n + 1 {
        fail!(
            "csr-offsets-shape",
            "offsets length {} != node_count + 1 = {}",
            offsets.len(),
            n + 1
        );
    }
    if offsets[0] != 0 {
        fail!("csr-offsets-shape", "offsets[0] = {} != 0", offsets[0]);
    }
    if offsets[n] as usize != entries.len() {
        fail!(
            "csr-offsets-shape",
            "offsets[n] = {} != entries length {}",
            offsets[n],
            entries.len()
        );
    }
    for v in 0..n {
        if offsets[v] > offsets[v + 1] {
            fail!(
                "csr-offsets-monotone",
                "offsets decrease across vertex {v}: {} > {}",
                offsets[v],
                offsets[v + 1]
            );
        }
    }
    // Rows: sorted strictly by flow id (sorted + deduped), entries in
    // bounds, and every entry's l equal to the flow's true downstream
    // hop count at that vertex (no off-path or mislabeled entries).
    let mut per_flow = vec![0usize; flows.len()];
    for v in 0..n {
        let row = &entries[offsets[v] as usize..offsets[v + 1] as usize];
        let mut prev: Option<u32> = None;
        for &(fi, l) in row {
            if let Some(p) = prev {
                if fi <= p {
                    fail!(
                        "csr-row-sorted",
                        "vertex {v} row not strictly sorted: flow {fi} after {p}"
                    );
                }
            }
            prev = Some(fi);
            let Some(f) = flows.get(fi as usize) else {
                fail!(
                    "csr-entry-bounds",
                    "vertex {v} row references flow {fi} of {}",
                    flows.len()
                );
            };
            let Some(true_l) = f.downstream_hops(v as tdmd_graph::NodeId) else {
                fail!(
                    "csr-entry-offpath",
                    "vertex {v} row lists flow {fi}, whose path avoids it"
                );
            };
            if l as usize != true_l {
                fail!(
                    "csr-entry-hops",
                    "vertex {v} flow {fi}: stored l = {l}, true l_v(f) = {true_l}"
                );
            }
            per_flow[fi as usize] += 1;
        }
    }
    // Bijectivity: each flow contributes exactly one entry per path
    // vertex. Combined with the per-entry checks above (on-path,
    // correct l, deduped rows) this pins entries <-> path vertices 1:1.
    for (idx, f) in flows.iter().enumerate() {
        if per_flow[idx] != f.path.len() {
            fail!(
                "csr-bijective",
                "flow {idx}: {} index entries for {} path vertices",
                per_flow[idx],
                f.path.len()
            );
        }
    }
    check_path_sets(instance)
}

/// Validates the candidate path sets and their two-level membership
/// CSR (called from [`check_instance`]): every flow has an in-range
/// active candidate mirrored by its `Flow::path`, every candidate
/// connects the flow's `(src, dst)` over existing edges, and the
/// membership index round-trips the candidate vertices exactly.
fn check_path_sets(instance: &Instance) -> Result<(), AuditError> {
    let graph = instance.graph();
    let n = graph.node_count();
    let flows = instance.flows();
    let ps = instance.path_sets();
    if ps.flow_count() != flows.len() {
        fail!(
            "pathset-shape",
            "{} candidate sets for {} flows",
            ps.flow_count(),
            flows.len()
        );
    }
    for (idx, f) in flows.iter().enumerate() {
        if ps.candidate_count(idx) == 0 {
            fail!("pathset-shape", "flow {idx} has no candidate paths");
        }
        let active = ps.active(idx);
        if active as usize >= ps.candidate_count(idx) {
            fail!(
                "pathset-active-range",
                "flow {idx}: active candidate {active} of {}",
                ps.candidate_count(idx)
            );
        }
        if ps.path(idx, active as usize) != f.path {
            fail!(
                "pathset-active-mirror",
                "flow {idx}: Flow::path differs from active candidate {active}"
            );
        }
        for j in 0..ps.candidate_count(idx) {
            let p = ps.path(idx, j);
            if p.len() < 2 || p[0] != f.src() || *p.last().expect("non-empty") != f.dst() {
                fail!(
                    "pathset-endpoints",
                    "flow {idx} candidate {j} does not connect ({}, {})",
                    f.src(),
                    f.dst()
                );
            }
            for w in p.windows(2) {
                if w[0] as usize >= n || w[1] as usize >= n || !graph.has_edge(w[0], w[1]) {
                    fail!(
                        "pathset-endpoints",
                        "flow {idx} candidate {j} uses missing edge {} -> {}",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }
    // Round-trip: every membership record points at an on-path vertex
    // with the true downstream hop count, and every candidate vertex
    // is covered exactly once.
    let mut per_path = vec![0usize; ps.total_paths()];
    for v in 0..n as tdmd_graph::NodeId {
        for m in ps.memberships_through(v) {
            if m.flow as usize >= flows.len()
                || m.path as usize >= ps.candidate_count(m.flow as usize)
            {
                fail!(
                    "pathset-member-roundtrip",
                    "vertex {v} lists candidate ({}, {}) out of range",
                    m.flow,
                    m.path
                );
            }
            let p = ps.path(m.flow as usize, m.path as usize);
            let hops = (p.len() - 1) as u32;
            match p.iter().position(|&x| x == v) {
                Some(pos) if hops - pos as u32 == m.l => {}
                _ => fail!(
                    "pathset-member-roundtrip",
                    "vertex {v}: flow {} candidate {} stored l = {} disagrees with the path",
                    m.flow,
                    m.path,
                    m.l
                ),
            }
            per_path[ps.global_id(m.flow as usize, m.path as usize)] += 1;
        }
    }
    for f in 0..flows.len() {
        for j in 0..ps.candidate_count(f) {
            let want = ps.path(f, j).len();
            let got = per_path[ps.global_id(f, j)];
            if got != want {
                fail!(
                    "pathset-member-roundtrip",
                    "flow {f} candidate {j}: {got} membership records for {want} vertices"
                );
            }
        }
    }
    Ok(())
}

/// Validates a deployment (and optionally an allocation) against the
/// instance: budget, vertex bounds, on-path assignments matching the
/// forced optimal allocation, and a non-negative decrement.
///
/// `budget` is the round limit the solver ran under — `instance.k()`
/// for the standard solvers, the derived budget for derive-`k` runs.
///
/// # Errors
/// Returns the first violated check among `deployment-bounds`,
/// `deployment-over-budget`, `assignment-shape`,
/// `assignment-undeployed`, `assignment-offpath`,
/// `assignment-suboptimal`, `assignment-unserved` and
/// `decrement-negative`.
pub fn check_solution(
    instance: &Instance,
    deployment: &Deployment,
    budget: usize,
    alloc: Option<&Allocation>,
) -> Result<(), AuditError> {
    let n = instance.node_count();
    for &v in deployment.vertices() {
        if (v as usize) >= n {
            fail!("deployment-bounds", "deployed vertex {v} out of bounds");
        }
        if !deployment.contains(v) {
            fail!(
                "deployment-bounds",
                "vertex list and membership bitmap disagree on {v}"
            );
        }
    }
    if deployment.len() > budget {
        fail!(
            "deployment-over-budget",
            "{} middleboxes deployed, budget k = {budget}",
            deployment.len()
        );
    }
    if let Some(alloc) = alloc {
        if alloc.assigned.len() != instance.flows().len() {
            fail!(
                "assignment-shape",
                "{} assignment slots for {} flows",
                alloc.assigned.len(),
                instance.flows().len()
            );
        }
        let best = crate::objective::best_hops(instance, deployment);
        for (idx, (f, a)) in instance.flows().iter().zip(&alloc.assigned).enumerate() {
            match *a {
                Some(v) => {
                    if !deployment.contains(v) {
                        fail!(
                            "assignment-undeployed",
                            "flow {idx} assigned to undeployed vertex {v}"
                        );
                    }
                    let Some(l) = f.downstream_hops(v) else {
                        fail!(
                            "assignment-offpath",
                            "flow {idx} assigned to off-path vertex {v}"
                        );
                    };
                    // §3.1: the optimal allocation is forced — the
                    // deployed on-path vertex maximizing l_v(f).
                    if Some(l as u32) != best[idx] {
                        fail!(
                            "assignment-suboptimal",
                            "flow {idx} served at l = {l}, best deployed l = {:?}",
                            best[idx]
                        );
                    }
                }
                None => {
                    if best[idx].is_some() {
                        fail!(
                            "assignment-unserved",
                            "flow {idx} unserved but a deployed vertex sits on its path"
                        );
                    }
                }
            }
        }
    }
    let d = crate::objective::decrement(instance, deployment);
    if d < -DECREMENT_EPS {
        fail!("decrement-negative", "d(P) = {d} < 0 violates Lemma 1");
    }
    Ok(())
}

/// Tolerance for floating-point accumulation error in the decrement
/// and trace-monotonicity checks.
const DECREMENT_EPS: f64 = 1e-9;

/// One committed greedy round, as recorded by the solver seam.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRound {
    /// Marginal decrement gain of the committed vertex.
    pub gain: f64,
    /// Whether the tight-budget feasibility guard restricted this
    /// round's candidates (guard rounds may pick a non-maximal
    /// vertex, so they are exempt from the monotone comparison).
    pub guarded: bool,
}

/// Validates a greedy trace: gains are finite and non-negative, and
/// monotone non-increasing across unguarded rounds — the live
/// submodularity witness for Thm. 2 (each vertex's marginal decrement
/// only shrinks as `P` grows, so the per-round maximum does too).
///
/// # Errors
/// Returns the first violated check among `trace-gain-finite`,
/// `trace-gain-negative` and `trace-not-monotone`.
pub fn check_greedy_trace(trace: &[TraceRound]) -> Result<(), AuditError> {
    let mut last_unguarded: Option<(usize, f64)> = None;
    for (round, r) in trace.iter().enumerate() {
        if !r.gain.is_finite() {
            fail!(
                "trace-gain-finite",
                "round {round} committed a non-finite gain {}",
                r.gain
            );
        }
        if r.gain < -DECREMENT_EPS {
            fail!(
                "trace-gain-negative",
                "round {round} committed negative gain {}",
                r.gain
            );
        }
        if r.guarded {
            continue;
        }
        if let Some((prev_round, prev)) = last_unguarded {
            if r.gain > prev + DECREMENT_EPS {
                fail!(
                    "trace-not-monotone",
                    "round {round} gain {} exceeds round {prev_round} gain {prev} \
                     (submodularity witness, Thm. 2)",
                    r.gain
                );
            }
        }
        last_unguarded = Some((round, r.gain));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::fig1_instance;

    #[test]
    fn clean_instance_passes() {
        check_instance(&fig1_instance(2)).unwrap();
    }

    #[test]
    fn swapped_csr_entries_are_caught() {
        let mut inst = fig1_instance(2);
        {
            let (offsets, entries) = inst.audit_csr_mut();
            // Swapping two entries *within* a row breaks the
            // sorted-by-flow-id invariant.
            let lo = offsets
                .windows(2)
                .map(|w| (w[0] as usize, w[1] as usize))
                .find(|&(lo, hi)| hi - lo >= 2)
                .expect("fig1 has a multi-flow row")
                .0;
            entries.swap(lo, lo + 1);
        }
        let err = check_instance(&inst).unwrap_err();
        assert_eq!(err.check, "csr-row-sorted", "{err}");
    }

    #[test]
    fn mislabeled_hop_count_is_caught() {
        let mut inst = fig1_instance(2);
        inst.audit_csr_mut().1[0].1 += 1;
        let err = check_instance(&inst).unwrap_err();
        assert_eq!(err.check, "csr-entry-hops", "{err}");
    }

    #[test]
    fn corrupted_active_index_is_caught() {
        let mut inst = fig1_instance(2);
        inst.audit_path_sets_mut().audit_parts_mut().0[0] = 7;
        let err = check_instance(&inst).unwrap_err();
        assert_eq!(err.check, "pathset-active-range", "{err}");
    }

    #[test]
    fn corrupted_membership_hops_are_caught() {
        let mut inst = fig1_instance(2);
        inst.audit_path_sets_mut().audit_parts_mut().1[0].l += 1;
        let err = check_instance(&inst).unwrap_err();
        assert_eq!(err.check, "pathset-member-roundtrip", "{err}");
    }

    #[test]
    fn corrupted_candidate_endpoint_is_caught() {
        // Diamond 0 → {1, 2} → 3 with two candidates; corrupt the
        // *inactive* candidate's destination so the active mirror
        // stays intact and the endpoints check must fire.
        let mut b = tdmd_graph::GraphBuilder::new(4);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(1, 3);
        b.add_bidirectional(0, 2);
        b.add_bidirectional(2, 3);
        let sets = vec![tdmd_traffic::FlowPaths::new(
            0,
            2,
            vec![vec![0, 1, 3], vec![0, 2, 3]],
        )];
        let mut inst = Instance::with_path_sets(b.build(), sets, 0.5, 1).unwrap();
        check_instance(&inst).unwrap();
        // Arena layout: [0,1,3, 0,2,3]; slot 5 is candidate 1's dst.
        inst.audit_path_sets_mut().audit_parts_mut().2[5] = 1;
        let err = check_instance(&inst).unwrap_err();
        assert_eq!(err.check, "pathset-endpoints", "{err}");
    }

    #[test]
    fn solution_checks_pass_on_the_paper_optimum() {
        let inst = fig1_instance(2);
        let d = Deployment::from_vertices(6, [4, 1]);
        let alloc = crate::objective::allocate(&inst, &d);
        check_solution(&inst, &d, 2, Some(&alloc)).unwrap();
    }

    #[test]
    fn over_budget_and_offpath_assignments_are_caught() {
        let inst = fig1_instance(2);
        let d = Deployment::from_vertices(6, [4, 1, 0]);
        let err = check_solution(&inst, &d, 2, None).unwrap_err();
        assert_eq!(err.check, "deployment-over-budget", "{err}");

        // Boxes on v3 (=2) and v5 (=4): both sit on f1's path, but
        // v3 serves it at l = 1 instead of the optimal l = 2.
        let d = Deployment::from_vertices(6, [2, 4]);
        let mut alloc = crate::objective::allocate(&inst, &d);
        alloc.assigned[0] = Some(2);
        let err = check_solution(&inst, &d, 2, Some(&alloc)).unwrap_err();
        assert_eq!(err.check, "assignment-suboptimal", "{err}");

        alloc.assigned[0] = Some(1); // vertex 1 is off f1's path entirely
        let d3 = Deployment::from_vertices(6, [1, 2, 4]);
        let err = check_solution(&inst, &d3, 3, Some(&alloc)).unwrap_err();
        assert_eq!(err.check, "assignment-offpath", "{err}");
    }

    #[test]
    fn trace_monotonicity_is_enforced_outside_guard_rounds() {
        let ok = [
            TraceRound {
                gain: 4.0,
                guarded: false,
            },
            TraceRound {
                gain: 1.0,
                guarded: true,
            },
            TraceRound {
                gain: 3.0,
                guarded: false,
            },
        ];
        check_greedy_trace(&ok).unwrap();
        let bad = [
            TraceRound {
                gain: 2.0,
                guarded: false,
            },
            TraceRound {
                gain: 3.0,
                guarded: false,
            },
        ];
        let err = check_greedy_trace(&bad).unwrap_err();
        assert_eq!(err.check, "trace-not-monotone", "{err}");
    }

    #[test]
    #[should_panic(expected = "tdmd audit failure")]
    fn enforce_panics_with_the_diagnostic() {
        enforce(Err(AuditError {
            check: "example",
            detail: "boom".into(),
        }));
    }
}
