//! Feasibility of deployments (Thm. 1 territory).
//!
//! A deployment is feasible when every flow crosses at least one
//! middlebox. Verifying a given plan is `O(|F|)`; *deciding* whether a
//! feasible plan with `k` boxes exists is NP-hard in general
//! topologies (set-cover reduction, Thm. 1), so we also provide the
//! standard greedy set-cover routine both as a constructive upper
//! bound and as the feasibility fallback the budgeted algorithms use.

use crate::instance::Instance;
use crate::plan::Deployment;
use tdmd_graph::NodeId;

/// True if every flow is covered by `deployment`.
pub fn is_feasible(instance: &Instance, deployment: &Deployment) -> bool {
    crate::objective::best_hops(instance, deployment)
        .iter()
        .all(Option::is_some)
}

/// Greedy set cover over the *unserved* flows: repeatedly picks the
/// vertex covering the most still-uncovered flows (ties toward the
/// smaller id). Returns the chosen vertices, or `None` if some flow
/// cannot be covered at all (impossible for valid paths, kept for
/// robustness). The result size is a `(ln |F| + 1)`-approximation of
/// the minimum cover — a usable lower-bound hint on the feasible `k`.
pub fn greedy_cover(instance: &Instance, already_served: &[bool]) -> Option<Vec<NodeId>> {
    let n_flows = instance.flows().len();
    debug_assert_eq!(already_served.len(), n_flows);
    let mut served = already_served.to_vec();
    let mut remaining = served.iter().filter(|&&s| !s).count();
    let mut chosen = Vec::new();
    while remaining > 0 {
        let mut best: Option<(usize, NodeId)> = None;
        for v in 0..instance.node_count() as NodeId {
            let gain = crate::objective::coverage_gain(instance, &served, v);
            if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, v));
            }
        }
        let (gain, v) = best?;
        chosen.push(v);
        for &(fi, _) in instance.flows_through(v) {
            served[fi as usize] = true;
        }
        remaining -= gain;
    }
    Some(chosen)
}

/// Size of the greedy cover starting from nothing — a quick upper
/// bound on the minimum number of middleboxes needed for feasibility.
pub fn greedy_cover_size(instance: &Instance) -> usize {
    greedy_cover(instance, &vec![false; instance.flows().len()]).map_or(usize::MAX, |c| c.len())
}

/// Vertices that individually cover *all* currently-unserved flows —
/// the candidates the paper's GTP walk-through falls back to when only
/// one middlebox of budget remains (it picks `v2` in Fig. 1, k=2).
pub fn full_cover_vertices(instance: &Instance, served: &[bool]) -> Vec<NodeId> {
    let unserved = served.iter().filter(|&&s| !s).count();
    (0..instance.node_count() as NodeId)
        .filter(|&v| crate::objective::coverage_gain(instance, served, v) == unserved)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::fig1_instance;

    #[test]
    fn fig1_feasibility() {
        let inst = fig1_instance(2);
        assert!(is_feasible(&inst, &Deployment::from_vertices(6, [4, 1])));
        assert!(is_feasible(&inst, &Deployment::from_vertices(6, [3, 4, 5])));
        assert!(
            !is_feasible(&inst, &Deployment::from_vertices(6, [4, 5])),
            "f3 unserved"
        );
        assert!(!is_feasible(&inst, &Deployment::empty(6)));
    }

    #[test]
    fn greedy_cover_covers_everything() {
        let inst = fig1_instance(2);
        let cover = greedy_cover(&inst, &[false; 4]).unwrap();
        let d = Deployment::from_vertices(6, cover.iter().copied());
        assert!(is_feasible(&inst, &d));
        // Minimum cover of Fig. 1 is 2 ({v2, v5} or {v2, v3}); greedy
        // finds one of size <= 3.
        assert!(cover.len() <= 3);
    }

    #[test]
    fn greedy_cover_respects_already_served() {
        let inst = fig1_instance(2);
        // f1 and f2 already served: v2 (id 1) alone finishes the job.
        let cover = greedy_cover(&inst, &[true, true, false, false]).unwrap();
        assert_eq!(cover.len(), 1);
    }

    #[test]
    fn greedy_cover_of_served_instance_is_empty() {
        let inst = fig1_instance(2);
        assert_eq!(
            greedy_cover(&inst, &[true; 4]).unwrap(),
            Vec::<NodeId>::new()
        );
    }

    #[test]
    fn full_cover_vertices_match_fig1_walkthrough() {
        let inst = fig1_instance(2);
        // After {v5}: f1 served; f2, f3, f4 remain. Only v2 (id 1)
        // covers all three — the paper's forced pick.
        let served = [true, false, false, false];
        assert_eq!(full_cover_vertices(&inst, &served), vec![1]);
    }

    #[test]
    fn full_cover_empty_when_no_single_vertex_suffices() {
        let inst = fig1_instance(2);
        // All four flows share no common vertex.
        assert!(full_cover_vertices(&inst, &[false; 4]).is_empty());
    }
}
