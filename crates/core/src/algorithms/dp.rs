//! Optimal dynamic program for tree networks (§5.1, Eqs. 7–10).
//!
//! State: `P(v, q, b)` = minimum total occupied bandwidth on the edges
//! *inside* the subtree `T_v` when at most `q` middleboxes are placed
//! in `T_v` and flows with total rate exactly `b` are processed at or
//! below `v`. `F(v, q) = P(v, q, tot(v))` is the fully-served value
//! (Eq. 7's left-hand side). Children are folded in one at a time with
//! a `(q, b)` knapsack, which generalizes the paper's binary-tree
//! formulation to arbitrary branching; sources may sit at any non-root
//! vertex (the paper's leaf-sources setting is the special case where
//! internal local rates are zero).
//!
//! The child-edge cost is the paper's: a child subtree `c` with `b_c`
//! processed rate sends `λ·b_c + (tot(c) − b_c)` over the uplink
//! `c → v`. Placing a box on `v` lifts the processed rate to `tot(v)`
//! without changing the inside bandwidth (Fig. 3(b)).
//!
//! The rate dimension makes the DP pseudo-polynomial in `Σ r_f`
//! exactly as Thm. 5 states; rates are integral by construction
//! (`tdmd-traffic`).

use crate::error::TdmdError;
use crate::instance::Instance;
use crate::num::{approx_f64, big_ix, id16, id32, ix, usize_f64, wide};
use crate::plan::Deployment;
use tdmd_graph::tree::RootedTree;
use tdmd_graph::NodeId;

const INF: f64 = f64::INFINITY;

/// Result of the DP: an optimal deployment and its total bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// Optimal deployment plan (size ≤ k).
    pub deployment: Deployment,
    /// Optimal total bandwidth consumption.
    pub bandwidth: f64,
}

/// The full DP tables, exposed for the Fig. 5–7 walk-through example.
#[derive(Debug, Clone)]
pub struct DpTables {
    /// Root vertex (the flows' common destination).
    pub root: NodeId,
    /// Per-vertex total subtree rate `tot(v)`.
    pub tot: Vec<u64>,
    /// `p[v][q][b]` = `P(v, q, b)` (`∞` when unreachable).
    pub p: Vec<Vec<Vec<f64>>>,
    /// `f[v][q]` = `F(v, q)` = `P(v, q, tot(v))`.
    pub f: Vec<Vec<f64>>,
}

/// Per-vertex DP storage, kept for plan recovery.
struct VertexDp {
    /// Flattened `P` table: index `q * (tot + 1) + b`.
    p: Vec<f64>,
    tot: u64,
    /// For `b = tot`: `Some(b_pre)` when the optimum at budget `q`
    /// places a box on `v` on top of a child state with processed rate
    /// `b_pre`.
    box_choice: Vec<Option<u64>>,
    /// Per-child backpointers for the knapsack folds: entry
    /// `q * (cap_after + 1) + b` = `(q_child, b_child)`.
    child_backs: Vec<Vec<(u16, u32)>>,
    /// Accumulated `b` capacity after folding each child.
    child_caps: Vec<u64>,
}

/// Validates the tree setting and returns the rooted tree plus the
/// per-vertex locally-sourced rate.
pub(crate) fn validate_tree_instance(
    instance: &Instance,
) -> Result<(RootedTree, Vec<u64>), TdmdError> {
    let flows = instance.flows();
    let root = match flows.first() {
        Some(f) => f.dst(),
        None => {
            return Err(TdmdError::NotATreeInstance(
                "a tree instance needs at least one flow to fix the root".to_string(),
            ))
        }
    };
    if let Some(f) = flows.iter().find(|f| f.dst() != root) {
        return Err(TdmdError::NotATreeInstance(format!(
            "flow {} ends at {} but the common destination is {root}",
            f.id,
            f.dst()
        )));
    }
    let tree = RootedTree::from_digraph(instance.graph(), root)
        .map_err(|e| TdmdError::NotATreeInstance(e.to_string()))?;
    let mut local = vec![0u64; instance.node_count()];
    for f in flows {
        local[ix(f.src())] += f.rate;
    }
    Ok((tree, local))
}

/// Runs the DP and recovers an optimal plan for the instance's budget.
///
/// # Errors
/// * [`TdmdError::NotATreeInstance`] if the topology is not a tree or
///   flows disagree on the destination.
/// * [`TdmdError::Infeasible`] if `k = 0` while flows exist.
pub fn dp_optimal(instance: &Instance) -> Result<DpSolution, TdmdError> {
    if instance.flows().is_empty() {
        return Ok(DpSolution {
            deployment: Deployment::empty(instance.node_count()),
            bandwidth: 0.0,
        });
    }
    if instance.k() == 0 {
        return Err(TdmdError::Infeasible { budget: 0 });
    }
    let (tree, local) = validate_tree_instance(instance)?;
    let kmax = instance.k().min(instance.node_count());
    let tables = run_dp(instance, &tree, &local, kmax);
    let root = ix(tree.root());
    let tot_root = tables[root].tot;
    let best = tables[root].p[kmax * (big_ix(tot_root) + 1) + big_ix(tot_root)];
    debug_assert!(
        best.is_finite(),
        "a box on the root always serves everything"
    );
    let mut chosen = Vec::new();
    recover(&tables, &tree, tree.root(), kmax, tot_root, &mut chosen);
    let deployment = Deployment::from_vertices(instance.node_count(), chosen);
    Ok(DpSolution {
        bandwidth: best,
        deployment,
    })
}

/// Computes the DP tables for the walk-through / inspection API.
///
/// # Errors
/// Same conditions as [`dp_optimal`], plus
/// [`TdmdError::EmptyWorkload`] for an empty flow set (there is
/// nothing to tabulate — the topology may still be a valid tree, so
/// this is *not* [`TdmdError::NotATreeInstance`]).
pub fn dp_tables(instance: &Instance) -> Result<DpTables, TdmdError> {
    if instance.flows().is_empty() {
        return Err(TdmdError::EmptyWorkload {
            operation: "tabulate",
        });
    }
    let (tree, local) = validate_tree_instance(instance)?;
    let kmax = instance.k().min(instance.node_count()).max(1);
    let tables = run_dp(instance, &tree, &local, kmax);
    let n = instance.node_count();
    let mut p = Vec::with_capacity(n);
    let mut f = Vec::with_capacity(n);
    let mut tot = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // v is a vertex id, not just an index
    for v in 0..n {
        let t = &tables[v];
        let width = big_ix(t.tot) + 1;
        let mut pv = Vec::with_capacity(kmax + 1);
        let mut fv = Vec::with_capacity(kmax + 1);
        for q in 0..=kmax {
            pv.push(t.p[q * width..(q + 1) * width].to_vec());
            fv.push(t.p[q * width + big_ix(t.tot)]);
        }
        p.push(pv);
        f.push(fv);
        tot.push(t.tot);
    }
    Ok(DpTables {
        root: tree.root(),
        tot,
        p,
        f,
    })
}

/// Bottom-up table computation over the postorder (unit edge costs).
fn run_dp(instance: &Instance, tree: &RootedTree, local: &[u64], kmax: usize) -> Vec<VertexDp> {
    run_dp_weighted(instance, tree, local, kmax, &|_, _| 1.0)
}

/// Bottom-up table computation with an arbitrary per-edge cost on the
/// uplinks (`edge_w(child, parent)`); the hop-counting DP is the
/// `w ≡ 1` special case. The recurrences are unchanged except that the
/// uplink term is scaled by the edge's cost, so optimality carries
/// over verbatim.
fn run_dp_weighted(
    instance: &Instance,
    tree: &RootedTree,
    local: &[u64],
    kmax: usize,
    edge_w: &dyn Fn(NodeId, NodeId) -> f64,
) -> Vec<VertexDp> {
    let lambda = instance.lambda();
    let n = instance.node_count();
    let mut tables: Vec<Option<VertexDp>> = (0..n).map(|_| None).collect();
    for &v in &tree.postorder() {
        let children = tree.children(v);
        // Fold children into the accumulator.
        let mut cap = 0u64; // current b capacity of the accumulator
        let mut acc = vec![0.0f64; kmax + 1]; // A[q][0] = 0
        let mut child_backs = Vec::with_capacity(children.len());
        let mut child_caps = Vec::with_capacity(children.len());
        for &c in children {
            let ct = tables[ix(c)].as_ref().expect("postorder: child done");
            let w_up = edge_w(c, v);
            let cw = big_ix(ct.tot) + 1;
            let new_cap = cap + ct.tot;
            let new_w = big_ix(new_cap) + 1;
            let mut next = vec![INF; (kmax + 1) * new_w];
            let mut back = vec![(0u16, 0u32); (kmax + 1) * new_w];
            let old_w = big_ix(cap) + 1;
            for q in 0..=kmax {
                for qc in 0..=q {
                    let qa = q - qc;
                    for bc in 0..cw {
                        let pc = ct.p[qc * cw + bc];
                        if pc == INF {
                            continue;
                        }
                        // Uplink c -> v: processed rate bc rides at λ,
                        // the rest of tot(c) at full rate, priced by
                        // the uplink's edge cost.
                        let g =
                            pc + w_up * (lambda * usize_f64(bc) + approx_f64(ct.tot - wide(bc)));
                        for ba in 0..old_w {
                            let a = acc[qa * old_w + ba];
                            if a == INF {
                                continue;
                            }
                            let b = ba + bc;
                            let slot = q * new_w + b;
                            let val = a + g;
                            if val < next[slot] {
                                next[slot] = val;
                                back[slot] = (id16(qc), id32(bc));
                            }
                        }
                    }
                }
            }
            acc = next;
            cap = new_cap;
            child_backs.push(back);
            child_caps.push(new_cap);
        }
        // Lift to the vertex table: b range extends to tot(v) =
        // cap + local(v); a box on v reaches exactly b = tot(v).
        let tot = cap + local[ix(v)];
        let width = big_ix(tot) + 1;
        let mut p = vec![INF; (kmax + 1) * width];
        let old_w = big_ix(cap) + 1;
        for q in 0..=kmax {
            for b in 0..old_w {
                p[q * width + b] = acc[q * old_w + b];
            }
        }
        let mut box_choice = vec![None; kmax + 1];
        for q in 1..=kmax {
            // Best child state regardless of processed amount; the box
            // on v finishes the job.
            let mut best = INF;
            let mut best_b = 0u64;
            for b in 0..old_w {
                let val = acc[(q - 1) * old_w + b];
                if val < best {
                    best = val;
                    best_b = wide(b);
                }
            }
            let slot = q * width + big_ix(tot);
            if best < p[slot] {
                p[slot] = best;
                box_choice[q] = Some(best_b);
            }
        }
        tables[ix(v)] = Some(VertexDp {
            p,
            tot,
            box_choice,
            child_backs,
            child_caps,
        });
    }
    tables
        .into_iter()
        .map(|t| t.expect("all vertices computed"))
        .collect()
}

/// Optimal tree DP under the weighted-edge objective
/// ([`crate::weighted`]): identical recurrences with uplink terms
/// scaled by the topology's edge weights. Certified by tests against
/// weighted exhaustive search; reduces to [`dp_optimal`] on unit
/// weights.
///
/// # Errors
/// Same conditions as [`dp_optimal`].
pub fn dp_optimal_weighted(instance: &Instance) -> Result<DpSolution, TdmdError> {
    if instance.flows().is_empty() {
        return Ok(DpSolution {
            deployment: Deployment::empty(instance.node_count()),
            bandwidth: 0.0,
        });
    }
    if instance.k() == 0 {
        return Err(TdmdError::Infeasible { budget: 0 });
    }
    let (tree, local) = validate_tree_instance(instance)?;
    let kmax = instance.k().min(instance.node_count());
    let weights = crate::cost::EdgeWeights::new(instance.graph());
    let lookup = |u: NodeId, v: NodeId| -> f64 { weights.get(u, v) };
    let tables = run_dp_weighted(instance, &tree, &local, kmax, &lookup);
    let root = ix(tree.root());
    let tot_root = tables[root].tot;
    let best = tables[root].p[kmax * (big_ix(tot_root) + 1) + big_ix(tot_root)];
    debug_assert!(
        best.is_finite(),
        "a box on the root always serves everything"
    );
    let mut chosen = Vec::new();
    recover(&tables, &tree, tree.root(), kmax, tot_root, &mut chosen);
    let deployment = Deployment::from_vertices(instance.node_count(), chosen);
    Ok(DpSolution {
        bandwidth: best,
        deployment,
    })
}

/// Walks the backpointers to emit an optimal vertex set for state
/// `(v, q, b)`.
fn recover(
    tables: &[VertexDp],
    tree: &RootedTree,
    v: NodeId,
    q: usize,
    b: u64,
    out: &mut Vec<NodeId>,
) {
    let t = &tables[ix(v)];
    let width = big_ix(t.tot) + 1;
    debug_assert!(
        t.p[q * width + big_ix(b)].is_finite(),
        "recovering unreachable state"
    );
    let (mut q_cur, mut b_cur) = (q, b);
    if b == t.tot {
        if let Some(b_pre) = t.box_choice[q] {
            // Check the box option actually realizes the optimum (the
            // no-box path may tie; box_choice is only set when it is
            // strictly better or equal-at-assignment).
            out.push(v);
            q_cur = q - 1;
            b_cur = b_pre;
        }
    }
    let children = tree.children(v);
    for (i, &c) in children.iter().enumerate().rev() {
        let cap = big_ix(t.child_caps[i]);
        let back = &t.child_backs[i];
        let (qc, bc) = back[q_cur * (cap + 1) + big_ix(b_cur)];
        recover(tables, tree, c, usize::from(qc), u64::from(bc), out);
        q_cur -= usize::from(qc);
        b_cur -= u64::from(bc);
    }
    debug_assert_eq!(b_cur, 0, "all processed rate must be attributed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use crate::instance::Instance;
    use crate::objective::bandwidth_of;
    use crate::paper::{fig5_graph, fig5_instance};
    use tdmd_traffic::Flow;

    #[test]
    fn fig5_optimal_values_for_all_k() {
        // The paper's F(v1, k): 24, 16.5, 13.5, 12 for k = 1..4.
        for (k, expect) in [(1, 24.0), (2, 16.5), (3, 13.5), (4, 12.0)] {
            let inst = fig5_instance(k);
            let sol = dp_optimal(&inst).unwrap();
            assert_eq!(sol.bandwidth, expect, "k={k}");
            // The recovered plan must actually achieve the value.
            assert!(is_feasible(&inst, &sol.deployment));
            assert_eq!(bandwidth_of(&inst, &sol.deployment), expect, "k={k}");
            assert!(sol.deployment.len() <= k);
        }
    }

    #[test]
    fn fig5_k1_plan_is_the_root() {
        let sol = dp_optimal(&fig5_instance(1)).unwrap();
        assert_eq!(sol.deployment.vertices(), &[0]);
    }

    #[test]
    fn fig5_k4_plan_is_all_sources() {
        let sol = dp_optimal(&fig5_instance(4)).unwrap();
        assert_eq!(sol.deployment.vertices(), &[3, 4, 6, 7]);
    }

    #[test]
    fn extra_budget_beyond_sources_changes_nothing() {
        let sol = dp_optimal(&fig5_instance(8)).unwrap();
        assert_eq!(sol.bandwidth, 12.0);
        assert!(sol.deployment.len() <= 4);
    }

    #[test]
    fn k0_with_flows_is_infeasible() {
        assert_eq!(
            dp_optimal(&fig5_instance(0)).unwrap_err(),
            TdmdError::Infeasible { budget: 0 }
        );
    }

    #[test]
    fn empty_flow_set_is_trivial() {
        let g = fig5_graph();
        let inst = Instance::new(g, vec![], 0.5, 2).unwrap();
        let sol = dp_optimal(&inst).unwrap();
        assert_eq!(sol.bandwidth, 0.0);
        assert!(sol.deployment.is_empty());
    }

    #[test]
    fn empty_flow_set_tables_report_empty_workload_not_tree_shape() {
        // fig5 *is* a tree, so the old NotATreeInstance classification
        // was a lie; the error must name the actual problem.
        let g = fig5_graph();
        let inst = Instance::new(g, vec![], 0.5, 2).unwrap();
        assert_eq!(
            dp_tables(&inst).unwrap_err(),
            TdmdError::EmptyWorkload {
                operation: "tabulate"
            }
        );
    }

    #[test]
    fn mismatched_destinations_rejected() {
        let g = fig5_graph();
        let flows = vec![
            Flow::new(0, 1, vec![3, 1, 0]),
            Flow::new(1, 1, vec![6, 5, 2]),
        ];
        let inst = Instance::new(g, flows, 0.5, 2).unwrap();
        assert!(matches!(
            dp_optimal(&inst).unwrap_err(),
            TdmdError::NotATreeInstance(_)
        ));
    }

    #[test]
    fn non_tree_topology_rejected() {
        let inst = crate::paper::fig1_instance(2); // Fig. 1 has a cycle
        assert!(matches!(
            dp_optimal(&inst).unwrap_err(),
            TdmdError::NotATreeInstance(_)
        ));
    }

    #[test]
    fn internal_source_is_supported() {
        // A flow sourced at the internal vertex v3 (id 2).
        let g = fig5_graph();
        let flows = vec![
            Flow::new(0, 3, vec![2, 0]),
            Flow::new(1, 5, vec![6, 5, 2, 0]),
        ];
        let inst = Instance::new(g, flows, 0.5, 2).unwrap();
        let sol = dp_optimal(&inst).unwrap();
        assert!(is_feasible(&inst, &sol.deployment));
        // Optimal: boxes at v7 (covers f1 at its source) and v3:
        // f1 (rate 5): 2.5*3 = 7.5; f0 (rate 3): 1.5. Total 9.
        assert_eq!(sol.bandwidth, 9.0);
        assert_eq!(bandwidth_of(&inst, &sol.deployment), 9.0);
    }

    #[test]
    fn dp_tables_match_paper_fig6() {
        let inst = fig5_instance(4);
        let t = dp_tables(&inst).unwrap();
        assert_eq!(t.root, 0);
        assert_eq!(t.tot[0], 9);
        // F(v1, k) row of Fig. 6 (0-based v = 0).
        assert_eq!(t.f[0][1], 24.0);
        assert_eq!(t.f[0][2], 16.5);
        assert_eq!(t.f[0][3], 13.5);
        assert_eq!(t.f[0][4], 12.0);
        // F(v2, ·) = 3, 1.5 (v2 = id 1, tot 3).
        assert_eq!(t.tot[1], 3);
        assert_eq!(t.f[1][1], 3.0);
        assert_eq!(t.f[1][2], 1.5);
        // F(v6, ·) = 6, 3 (v6 = id 5, tot 6).
        assert_eq!(t.f[5][1], 6.0);
        assert_eq!(t.f[5][2], 3.0);
        // Leaves: F = 0 with any budget ≥ 1.
        for leaf in [3usize, 4, 6, 7] {
            assert_eq!(t.f[leaf][1], 0.0);
        }
        // Unserved leaves are infinite at q = 0.
        assert!(t.f[3][0].is_infinite());
    }

    #[test]
    fn dp_tables_partial_states_match_fig7() {
        let inst = fig5_instance(4);
        let t = dp_tables(&inst).unwrap();
        // P(v6, k, b) (0-based id 5, children v7 rate 5 / v8 rate 1):
        // k=0, b=0 → 6 (both uplinks unprocessed).
        assert_eq!(t.p[5][0][0], 6.0);
        // k=1, b=1 → 5.5 (box at v8), b=5 → 3.5 (box at v7).
        assert_eq!(t.p[5][1][1], 5.5);
        assert_eq!(t.p[5][1][5], 3.5);
        // k=2, b=6 → 3 (boxes at both leaves).
        assert_eq!(t.p[5][2][6], 3.0);
        // P(v3, ·) (id 2, single child v6): k=0,b=0 → 12; k=1,b=5 → 7;
        // k=1,b=1 → 11; k=2,b=6 → 6.
        assert_eq!(t.p[2][0][0], 12.0);
        assert_eq!(t.p[2][1][5], 7.0);
        assert_eq!(t.p[2][1][1], 11.0);
        assert_eq!(t.p[2][2][6], 6.0);
    }

    #[test]
    fn lambda_zero_spam_filter_dp() {
        let inst = fig5_instance(4).with_lambda(0.0);
        let sol = dp_optimal(&inst).unwrap();
        assert_eq!(
            sol.bandwidth, 0.0,
            "filters at every source kill all traffic"
        );
    }

    #[test]
    fn lambda_one_any_feasible_plan_is_optimal() {
        let inst = fig5_instance(2).with_lambda(1.0);
        let sol = dp_optimal(&inst).unwrap();
        assert_eq!(sol.bandwidth, inst.unprocessed_bandwidth());
        assert!(is_feasible(&inst, &sol.deployment));
    }
}

#[cfg(test)]
mod weighted_tests {
    use super::*;
    use crate::instance::Instance;
    use crate::weighted::WeightedIndex;
    use tdmd_graph::GraphBuilder;
    use tdmd_traffic::Flow;

    /// Weighted star: leaves 1..4 with uplink costs 1, 2, 5, 10 and a
    /// flow of rate 1 at each leaf.
    fn weighted_star(k: usize) -> Instance {
        let mut b = GraphBuilder::new(5);
        for (leaf, w) in [(1u32, 1u64), (2, 2), (3, 5), (4, 10)] {
            b.add_bidirectional_weighted(0, leaf, w);
        }
        let g = b.build();
        let flows = (1..=4u32)
            .map(|v| Flow::new(v - 1, 1, vec![v, 0]))
            .collect();
        Instance::new(g, flows, 0.5, k).unwrap()
    }

    #[test]
    fn weighted_dp_reduces_to_unweighted_on_unit_weights() {
        for k in 1..=4 {
            let inst = crate::paper::fig5_instance(k);
            let w = dp_optimal_weighted(&inst).unwrap();
            let u = dp_optimal(&inst).unwrap();
            assert_eq!(w.bandwidth, u.bandwidth, "k={k}");
        }
    }

    #[test]
    fn weighted_dp_prioritizes_expensive_uplinks() {
        // Budget for two leaf boxes + the root is forced anyway? With
        // k = 3 the optimum serves the 10- and 5-cost leaves at their
        // sources and parks the third box on the root for the rest.
        let inst = weighted_star(3);
        let sol = dp_optimal_weighted(&inst).unwrap();
        assert!(sol.deployment.contains(4), "leaf with cost-10 uplink first");
        assert!(sol.deployment.contains(3), "leaf with cost-5 uplink second");
        // Bandwidth: halved on leaves 3, 4; full on 1, 2 unless the
        // root... root box gives l = 0. b = 0.5*10 + 0.5*5 + 1 + 2 = 10.5.
        assert_eq!(sol.bandwidth, 10.5);
    }

    #[test]
    fn weighted_dp_matches_weighted_exhaustive() {
        // Brute force over all deployments of size <= k using the
        // weighted objective.
        for k in 1..=3 {
            let inst = weighted_star(k);
            let index = WeightedIndex::new(&inst);
            let n = inst.node_count();
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << n) {
                if (mask.count_ones() as usize) > k {
                    continue;
                }
                let d = crate::plan::Deployment::from_vertices(
                    n,
                    (0..n as u32).filter(|&v| mask & (1 << v) != 0),
                );
                if !crate::feasibility::is_feasible(&inst, &d) {
                    continue;
                }
                best = best.min(index.bandwidth_of(&inst, &d));
            }
            let sol = dp_optimal_weighted(&inst).unwrap();
            assert_eq!(sol.bandwidth, best, "k={k}");
            assert_eq!(index.bandwidth_of(&inst, &sol.deployment), best, "k={k}");
        }
    }

    #[test]
    fn weighted_dp_monotone_in_k() {
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let b = dp_optimal_weighted(&weighted_star(k)).unwrap().bandwidth;
            assert!(b <= prev + 1e-12, "k={k}");
            prev = b;
        }
    }
}
