//! Exhaustive optimum for small instances.
//!
//! Enumerates every deployment of at most `k` middleboxes over the
//! candidate vertices (those on some flow path) with branch-and-bound
//! pruning, returning the true optimum. Used by tests to certify the
//! tree DP and to measure the heuristics' optimality gaps; guarded by
//! a subset-count cap because the problem is NP-hard (Thm. 1).

use crate::error::TdmdError;
use crate::instance::Instance;
use crate::objective::bandwidth_of;
use crate::plan::Deployment;
use tdmd_graph::NodeId;

/// Default cap on the number of enumerated subsets.
pub const DEFAULT_SUBSET_CAP: u128 = 20_000_000;

/// Number of subsets of size ≤ k from n candidates.
fn subset_count(n: usize, k: usize) -> u128 {
    let mut total: u128 = 0;
    let mut level: u128 = 1; // C(n, 0)
    for i in 0..=k.min(n) {
        total = total.saturating_add(level);
        level = level.saturating_mul(u128::from(crate::num::wide(n - i)))
            / (u128::from(crate::num::wide(i)) + 1);
    }
    total
}

/// Finds the optimal feasible deployment with at most `k` boxes by
/// exhaustive enumeration.
///
/// # Errors
/// * [`TdmdError::SearchSpaceTooLarge`] when the enumeration would
///   exceed `cap` subsets (use [`DEFAULT_SUBSET_CAP`]).
/// * [`TdmdError::Infeasible`] when no subset of size ≤ `k` covers all
///   flows.
pub fn exhaustive_optimal(
    instance: &Instance,
    k: usize,
    cap: u128,
) -> Result<(Deployment, f64), TdmdError> {
    if instance.flows().is_empty() {
        return Ok((Deployment::empty(instance.node_count()), 0.0));
    }
    let cands = instance.candidate_vertices();
    let subsets = subset_count(cands.len(), k);
    if subsets > cap {
        return Err(TdmdError::SearchSpaceTooLarge { subsets, cap });
    }
    let mut best: Option<(Vec<NodeId>, f64)> = None;
    let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
    search(instance, &cands, 0, k, &mut chosen, &mut best);
    match best {
        Some((vs, b)) => Ok((Deployment::from_vertices(instance.node_count(), vs), b)),
        None => Err(TdmdError::Infeasible { budget: k }),
    }
}

/// Depth-first enumeration of candidate subsets.
fn search(
    instance: &Instance,
    cands: &[NodeId],
    from: usize,
    slots_left: usize,
    chosen: &mut Vec<NodeId>,
    best: &mut Option<(Vec<NodeId>, f64)>,
) {
    // Evaluate the current subset.
    let d = Deployment::from_vertices(instance.node_count(), chosen.iter().copied());
    if crate::feasibility::is_feasible(instance, &d) {
        let b = bandwidth_of(instance, &d);
        if best.as_ref().is_none_or(|(_, bb)| b < *bb) {
            *best = Some((chosen.clone(), b));
        }
    }
    if slots_left == 0 || from >= cands.len() {
        return;
    }
    for i in from..cands.len() {
        chosen.push(cands[i]);
        search(instance, cands, i + 1, slots_left - 1, chosen, best);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::dp::dp_optimal;
    use crate::paper::{fig1_instance, fig5_instance};

    #[test]
    fn subset_count_is_correct() {
        assert_eq!(subset_count(4, 2), 1 + 4 + 6);
        assert_eq!(subset_count(5, 0), 1);
        assert_eq!(subset_count(3, 5), 8);
    }

    #[test]
    fn fig1_optima_match_the_paper() {
        let inst = fig1_instance(2);
        let (_, b2) = exhaustive_optimal(&inst, 2, DEFAULT_SUBSET_CAP).unwrap();
        assert_eq!(b2, 12.0);
        let (_, b3) = exhaustive_optimal(&inst, 3, DEFAULT_SUBSET_CAP).unwrap();
        assert_eq!(b3, 8.0);
    }

    #[test]
    fn matches_dp_on_fig5() {
        for k in 1..=4 {
            let inst = fig5_instance(k);
            let (_, b) = exhaustive_optimal(&inst, k, DEFAULT_SUBSET_CAP).unwrap();
            assert_eq!(b, dp_optimal(&inst).unwrap().bandwidth, "k={k}");
        }
    }

    #[test]
    fn infeasible_budget_detected_exactly() {
        let inst = fig1_instance(1);
        assert_eq!(
            exhaustive_optimal(&inst, 1, DEFAULT_SUBSET_CAP).unwrap_err(),
            TdmdError::Infeasible { budget: 1 }
        );
    }

    #[test]
    fn cap_is_enforced() {
        let inst = fig5_instance(4);
        let err = exhaustive_optimal(&inst, 4, 5).unwrap_err();
        assert!(matches!(err, TdmdError::SearchSpaceTooLarge { .. }));
    }
}
