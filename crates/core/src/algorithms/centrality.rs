//! Centrality placement baseline.
//!
//! The folk heuristic: put middleboxes on the topologically central
//! vertices (highest betweenness) regardless of the actual traffic.
//! It is traffic-oblivious, so it brackets the baselines from the
//! other side: Random ignores structure *and* traffic, Best-effort
//! sees traffic volume but not position, GTP sees both. Useful as an
//! extra comparison line and as a zero-knowledge fallback when no
//! traffic matrix is available.

use crate::error::TdmdError;
use crate::feasibility::is_feasible;
use crate::instance::Instance;
use crate::plan::Deployment;
use tdmd_graph::centrality::by_betweenness;
use tdmd_graph::NodeId;

/// Places middleboxes on the `k` highest-betweenness vertices. If the
/// pure top-k set strands flows, the lowest-ranked picks are swapped
/// for greedy-cover vertices until feasible (or the budget proves
/// insufficient).
///
/// # Errors
/// [`TdmdError::Infeasible`] if no repaired top-k deployment covers
/// all flows.
pub fn centrality_placement(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    let order = by_betweenness(instance.graph());
    let take = k.min(order.len());
    let mut deployment =
        Deployment::from_vertices(instance.node_count(), order[..take].iter().copied());
    if is_feasible(instance, &deployment) {
        return Ok(deployment);
    }
    // Repair: replace the least-central choices with coverage picks.
    let served: Vec<bool> = crate::objective::best_hops(instance, &deployment)
        .iter()
        .map(Option::is_some)
        .collect();
    let cover = crate::feasibility::greedy_cover(instance, &served)
        .ok_or(TdmdError::Infeasible { budget: k })?;
    let missing: Vec<NodeId> = cover
        .into_iter()
        .filter(|&v| !deployment.contains(v))
        .collect();
    if missing.len() > take {
        return Err(TdmdError::Infeasible { budget: k });
    }
    // Drop from the tail of the centrality ranking.
    for &v in order[..take].iter().rev().take(missing.len()) {
        deployment.remove(v);
    }
    for v in missing {
        deployment.insert(v);
    }
    if deployment.len() > k || !is_feasible(instance, &deployment) {
        return Err(TdmdError::Infeasible { budget: k });
    }
    Ok(deployment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::gtp::gtp_budgeted;
    use crate::objective::bandwidth_of;
    use crate::paper::{fig1_instance, fig5_instance};

    #[test]
    fn tree_centrality_picks_internal_vertices() {
        let inst = fig5_instance(3);
        let d = centrality_placement(&inst, 3).unwrap();
        assert!(is_feasible(&inst, &d));
        // The root (v1) and spine (v3, v6) dominate betweenness on the
        // Fig. 5 tree; the root must be among them.
        assert!(d.contains(0));
    }

    #[test]
    fn never_beats_gtp_on_the_paper_examples() {
        for k in 2..=4 {
            let inst = fig1_instance(k);
            let Ok(c) = centrality_placement(&inst, k) else {
                continue;
            };
            let g = gtp_budgeted(&inst, k).unwrap();
            assert!(
                bandwidth_of(&inst, &c) >= bandwidth_of(&inst, &g) - 1e-9,
                "k={k}"
            );
        }
    }

    #[test]
    fn repair_keeps_feasibility() {
        // Fig. 1's most central vertices may miss f3 (v4 -> v2); the
        // repair must still produce a feasible plan at k = 2.
        let inst = fig1_instance(2);
        let d = centrality_placement(&inst, 2).unwrap();
        assert!(is_feasible(&inst, &d));
        assert!(d.len() <= 2);
    }

    #[test]
    fn infeasible_budget_is_reported() {
        let inst = fig1_instance(1);
        assert!(centrality_placement(&inst, 1).is_err());
    }

    #[test]
    fn k_zero_with_flows_fails() {
        let inst = fig5_instance(0);
        assert!(centrality_placement(&inst, 0).is_err());
    }
}
