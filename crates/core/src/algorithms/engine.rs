//! The generic greedy engine behind every objective variant.
//!
//! One `Ctx` pairs an [`Instance`] with a compiled
//! [`FlowIndex`], and the three GTP drivers
//! (`eager`, `lazy`, `parallel`) run the paper's Alg. 1 against
//! it — the cost model is already baked into the index, so hop-count,
//! weighted-edge, and chain-stack pricing all share this single loop
//! (Thm. 2's submodularity argument only needs the per-flow metric to
//! be monotone along the path, which [`CostModel`](crate::cost::CostModel)
//! implementations guarantee).
//!
//! The tight-budget **feasibility guard** (the paper's "can only
//! deploy on v2" rule, generalized) lives here once as
//! `guard_candidates` and is shared by the GTP drivers, the
//! capacitated greedy, and the best-effort baseline — it used to be
//! duplicated in each.
//!
//! [`run_move_greedy`] is the engine's second face: a budgeted
//! best-move loop over an arbitrary [`MoveGreedy`] driver, used by the
//! chain crate's prefix-stack greedy where a "move" deploys several
//! middlebox instances at once.

use std::cmp::{Ordering, Reverse};

use rayon::prelude::*;
use tdmd_graph::NodeId;

use crate::cost::FlowIndex;
use crate::error::TdmdError;
use crate::feasibility::greedy_cover;
use crate::instance::Instance;
use crate::num::ix;
use crate::objective::coverage_gain;
use crate::order::TotalGain;
use crate::plan::Deployment;

/// Lexicographic greedy score: decrement gain, then coverage, then
/// smaller vertex id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Score {
    pub gain: f64,
    pub coverage: usize,
    pub v: NodeId,
}

impl Score {
    /// The full tie-break ladder as one comparable key; `Reverse` on
    /// the vertex id makes the *smaller* id the larger key.
    #[inline]
    fn key(&self) -> (TotalGain, usize, Reverse<NodeId>) {
        (TotalGain::new(self.gain), self.coverage, Reverse(self.v))
    }

    #[inline]
    pub fn better_than(&self, other: &Score) -> bool {
        self.key() > other.key()
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// An instance with its compiled cost model.
#[derive(Clone, Copy)]
pub(crate) struct Ctx<'a> {
    pub instance: &'a Instance,
    pub index: &'a FlowIndex,
    /// Whether newly-covered flows join the tie-break ladder
    /// ([`CostModel::coverage_tiebreak`](crate::cost::CostModel::coverage_tiebreak)).
    pub coverage_ties: bool,
}

/// Mutable greedy state shared by the GTP variants.
pub(crate) struct State {
    pub deployment: Deployment,
    /// Best serving gain per flow so far (0.0 = unserved or served at
    /// the destination — both contribute zero decrement).
    pub cur: Vec<f64>,
    /// Coverage flags per flow.
    pub served: Vec<bool>,
}

impl State {
    pub fn new(ctx: &Ctx<'_>) -> Self {
        Self {
            deployment: Deployment::empty(ctx.instance.node_count()),
            cur: vec![0.0; ctx.index.flow_count()],
            served: vec![false; ctx.index.flow_count()],
        }
    }

    pub fn all_served(&self) -> bool {
        self.served.iter().all(|&s| s)
    }

    pub fn score(&self, ctx: &Ctx<'_>, v: NodeId) -> Score {
        crate::obs::ENGINE.gain_evals.incr();
        Score {
            gain: ctx.index.marginal_decrement(ctx.instance, &self.cur, v),
            coverage: if ctx.coverage_ties {
                coverage_gain(ctx.instance, &self.served, v)
            } else {
                0
            },
            v,
        }
    }

    pub fn commit(&mut self, ctx: &Ctx<'_>, v: NodeId) {
        self.deployment.insert(v);
        for &(fi, g) in ctx.index.flows_through(v) {
            let fi = ix(fi);
            self.served[fi] = true;
            if g > self.cur[fi] {
                self.cur[fi] = g;
            }
        }
    }
}

/// Candidates not yet deployed.
fn open_candidates(instance: &Instance, deployment: &Deployment) -> Vec<NodeId> {
    instance
        .candidate_vertices()
        .into_iter()
        .filter(|&v| !deployment.contains(v))
        .collect()
}

/// Size of the greedy cover of the flows that would remain unserved
/// after additionally deploying on `extra`.
pub(crate) fn cover_after(instance: &Instance, served: &[bool], extra: NodeId) -> usize {
    let mut served = served.to_vec();
    for &(fi, _) in instance.flows_through(extra) {
        served[ix(fi)] = true;
    }
    greedy_cover(instance, &served).map_or(usize::MAX, |c| c.len())
}

/// The tight-budget feasibility guard shared by every budgeted greedy.
///
/// With some flows still unserved and `remaining` rounds left:
///
/// * uncoverable, or a greedy cover needs *more* than `remaining`
///   boxes → [`TdmdError::Infeasible`];
/// * a cover needs *exactly* `remaining` boxes → `Ok(Some(allowed))`,
///   the open candidates whose deployment keeps the rest coverable
///   (the paper's "we can only deploy a middlebox on v2" rule,
///   generalized);
/// * otherwise (slack budget, or everything already served) →
///   `Ok(None)`: pick freely.
pub(crate) fn guard_candidates(
    instance: &Instance,
    served: &[bool],
    deployment: &Deployment,
    remaining: usize,
) -> Result<Option<Vec<NodeId>>, TdmdError> {
    crate::obs::ENGINE.guard_checks.incr();
    if served.iter().all(|&s| s) {
        return Ok(None);
    }
    let cover =
        greedy_cover(instance, served).ok_or(TdmdError::Infeasible { budget: remaining })?;
    if cover.len() > remaining {
        return Err(TdmdError::Infeasible { budget: remaining });
    }
    if cover.len() == remaining {
        crate::obs::ENGINE.guard_activations.incr();
        let allowed = open_candidates(instance, deployment)
            .into_iter()
            .filter(|&v| cover_after(instance, served, v) < remaining)
            .collect();
        return Ok(Some(allowed));
    }
    Ok(None)
}

/// A round's committed choice, with the audit-trace metadata the
/// submodularity witness needs ([`crate::audit::check_greedy_trace`]).
struct Picked {
    v: NodeId,
    // Only the cfg-gated trace reads these two; without the auditor
    // compiled in they are write-only.
    #[cfg_attr(not(any(debug_assertions, feature = "audit", test)), allow(dead_code))]
    gain: f64,
    /// Whether the feasibility guard restricted this round.
    #[cfg_attr(not(any(debug_assertions, feature = "audit", test)), allow(dead_code))]
    guarded: bool,
}

/// One guarded greedy round; returns the pick to deploy or an error.
fn pick<F>(ctx: &Ctx<'_>, state: &State, remaining: usize, best_of: F) -> Result<Picked, TdmdError>
where
    F: FnOnce(&State, &[NodeId]) -> Option<Score>,
{
    if state.all_served() {
        let cands = open_candidates(ctx.instance, &state.deployment);
        return best_of(state, &cands)
            .filter(|s| s.gain > 0.0)
            .map(|s| Picked {
                v: s.v,
                gain: s.gain,
                guarded: false,
            })
            .ok_or(TdmdError::Infeasible { budget: remaining }); // caller stops on this
    }
    match guard_candidates(ctx.instance, &state.served, &state.deployment, remaining)? {
        Some(feasible) => best_of(state, &feasible)
            .map(|s| Picked {
                v: s.v,
                gain: s.gain,
                guarded: true,
            })
            .ok_or(TdmdError::Infeasible { budget: remaining }),
        None => {
            let cands = open_candidates(ctx.instance, &state.deployment);
            best_of(state, &cands)
                .map(|s| Picked {
                    v: s.v,
                    gain: s.gain,
                    guarded: false,
                })
                .ok_or(TdmdError::Infeasible { budget: remaining })
        }
    }
}

/// Core loop shared by the eager variants.
fn run_greedy<F>(
    ctx: &Ctx<'_>,
    budget: Option<usize>,
    mut best_of: F,
) -> Result<Deployment, TdmdError>
where
    F: FnMut(&State, &[NodeId]) -> Option<Score>,
{
    #[cfg(any(debug_assertions, feature = "audit", test))]
    crate::audit::enforce(crate::audit::check_instance(ctx.instance));
    #[cfg(any(debug_assertions, feature = "audit", test))]
    let mut trace: Vec<crate::audit::TraceRound> = Vec::new();
    let mut state = State::new(ctx);
    let limit = budget.unwrap_or(ctx.instance.node_count());
    for round in 0..limit {
        let remaining = limit - round;
        match pick(ctx, &state, remaining, &mut best_of) {
            Ok(p) => {
                #[cfg(any(debug_assertions, feature = "audit", test))]
                trace.push(crate::audit::TraceRound {
                    gain: p.gain,
                    guarded: p.guarded,
                });
                state.commit(ctx, p.v);
            }
            // No useful vertex left and everything served: done early.
            Err(_) if state.all_served() => break,
            Err(e) => return Err(e),
        }
        if budget.is_none() && state.all_served() {
            break;
        }
    }
    if !state.all_served() {
        return Err(TdmdError::Infeasible { budget: limit });
    }
    #[cfg(any(debug_assertions, feature = "audit", test))]
    {
        crate::audit::enforce(crate::audit::check_greedy_trace(&trace));
        crate::audit::enforce(crate::audit::check_solution(
            ctx.instance,
            &state.deployment,
            limit,
            None,
        ));
    }
    Ok(state.deployment)
}

/// Eager sequential scoring.
fn eager_best<'c>(ctx: &'c Ctx<'c>) -> impl Fn(&State, &[NodeId]) -> Option<Score> + 'c {
    move |state, cands| {
        let mut best: Option<Score> = None;
        for &v in cands {
            let s = state.score(ctx, v);
            if best.as_ref().is_none_or(|b| s.better_than(b)) {
                best = Some(s);
            }
        }
        best
    }
}

/// Eager greedy; `budget = None` derives `k` (stop at full coverage).
pub(crate) fn eager(ctx: &Ctx<'_>, budget: Option<usize>) -> Result<Deployment, TdmdError> {
    run_greedy(ctx, budget, eager_best(ctx))
}

/// Rayon-parallel candidate scoring; identical output to [`eager`].
pub(crate) fn parallel(ctx: &Ctx<'_>, k: usize) -> Result<Deployment, TdmdError> {
    run_greedy(ctx, Some(k), |state, cands| {
        cands
            .par_iter()
            .map(|&v| state.score(ctx, v))
            .reduce_with(|a, b| if b.better_than(&a) { b } else { a })
    })
}

/// Sharded rayon-parallel candidate scoring; identical output to
/// [`eager`] — bitwise, not merely same-argmax. The scale-tier
/// variant of [`parallel`]: candidates split into contiguous shards
/// of `shard` vertices, each shard scored *sequentially* inside one
/// rayon task (so every per-vertex marginal-gain accumulation walks
/// its CSR row in the exact eager order and produces the same bits),
/// then the per-shard winners are collected back **in shard order**
/// (rayon's indexed collect) and merged by a sequential left fold.
/// [`Score::better_than`] is a strict total order with the vertex id
/// in the key, so the round's maximum is unique and the merged winner
/// is independent of the shard size — property-tested against the
/// sequential path.
///
/// Versus [`parallel`], this amortizes task-scheduling overhead over
/// `shard` gain evaluations and replaces the unordered tree reduction
/// with a deterministic merge, which is what makes the
/// bitwise-equality contract auditable rather than incidental.
pub(crate) fn sharded(ctx: &Ctx<'_>, k: usize, shard: usize) -> Result<Deployment, TdmdError> {
    let shard = shard.max(1);
    run_greedy(ctx, Some(k), move |state, cands| {
        cands
            .par_chunks(shard)
            .map(|chunk| {
                let mut best: Option<Score> = None;
                for &v in chunk {
                    let s = state.score(ctx, v);
                    if best.as_ref().is_none_or(|b| s.better_than(b)) {
                        best = Some(s);
                    }
                }
                best
            })
            .collect::<Vec<Option<Score>>>()
            .into_iter()
            .flatten()
            .reduce(|a, b| if b.better_than(&a) { b } else { a })
    })
}

/// CELF lazy evaluation; identical output to [`eager`]. Marginal
/// decrements and coverage gains are both monotone non-increasing in
/// `P` (Thm. 2), so a popped entry whose refreshed score still
/// dominates the next heap top is safely optimal for the round.
pub(crate) fn lazy(ctx: &Ctx<'_>, k: usize) -> Result<Deployment, TdmdError> {
    use std::collections::BinaryHeap;

    /// Heap entry ordered by the lexicographic score (the
    /// [`TotalGain`]-backed `Ord` on [`Score`]).
    struct Entry {
        score: Score,
        round: usize,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.score == other.score
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.score.cmp(&other.score)
        }
    }

    #[cfg(any(debug_assertions, feature = "audit", test))]
    crate::audit::enforce(crate::audit::check_instance(ctx.instance));
    #[cfg(any(debug_assertions, feature = "audit", test))]
    let mut trace: Vec<crate::audit::TraceRound> = Vec::new();
    let mut state = State::new(ctx);
    let mut heap: BinaryHeap<Entry> = ctx
        .instance
        .candidate_vertices()
        .into_iter()
        .map(|v| Entry {
            score: state.score(ctx, v),
            round: 0,
        })
        .collect();
    let mut round = 0usize;
    let mut feasible_early_exit = false;
    'rounds: while round < k {
        let remaining = k - round;
        // The feasibility guard must run eagerly; a tight round is
        // delegated to the eager picker so lazy output stays
        // identical.
        let p = match guard_candidates(ctx.instance, &state.served, &state.deployment, remaining)? {
            Some(_) => pick(ctx, &state, remaining, eager_best(ctx))?,
            None => {
                // CELF pop-refresh loop.
                loop {
                    crate::obs::ENGINE.lazy_pops.incr();
                    let Some(top) = heap.pop() else {
                        if state.all_served() {
                            feasible_early_exit = true;
                            break 'rounds;
                        }
                        return Err(TdmdError::Infeasible { budget: remaining });
                    };
                    if state.deployment.contains(top.score.v) {
                        continue;
                    }
                    if top.round == round {
                        if top.score.gain <= 0.0 && state.all_served() {
                            feasible_early_exit = true;
                            break 'rounds;
                        }
                        break Picked {
                            v: top.score.v,
                            gain: top.score.gain,
                            guarded: false,
                        };
                    }
                    crate::obs::ENGINE.lazy_stale_refreshes.incr();
                    let fresh = Entry {
                        score: state.score(ctx, top.score.v),
                        round,
                    };
                    let dominates = heap
                        .peek()
                        .is_none_or(|next| !next.score.better_than(&fresh.score));
                    if dominates {
                        if fresh.score.gain <= 0.0 && state.all_served() {
                            feasible_early_exit = true;
                            break 'rounds;
                        }
                        break Picked {
                            v: fresh.score.v,
                            gain: fresh.score.gain,
                            guarded: false,
                        };
                    }
                    heap.push(fresh);
                }
            }
        };
        #[cfg(any(debug_assertions, feature = "audit", test))]
        trace.push(crate::audit::TraceRound {
            gain: p.gain,
            guarded: p.guarded,
        });
        state.commit(ctx, p.v);
        round += 1;
        // Scores of other vertices only decrease; stale entries are
        // refreshed on pop. Nothing to push.
    }
    if !feasible_early_exit && !state.all_served() {
        return Err(TdmdError::Infeasible { budget: k });
    }
    #[cfg(any(debug_assertions, feature = "audit", test))]
    {
        crate::audit::enforce(crate::audit::check_greedy_trace(&trace));
        crate::audit::enforce(crate::audit::check_solution(
            ctx.instance,
            &state.deployment,
            k,
            None,
        ));
    }
    Ok(state.deployment)
}

/// A stateful driver for [`run_move_greedy`]: moves priced by exact
/// re-evaluation, each consuming one or more units of budget.
///
/// Used by the chain crate's prefix-stack greedy, where one move
/// deploys every missing type of a chain prefix at a vertex.
pub trait MoveGreedy {
    /// A candidate move.
    type Move;
    /// The comparison key of an evaluated move.
    type Key;

    /// Budget units already spent by the current solution.
    fn spent(&self) -> usize;

    /// Candidate moves affordable within `slack` remaining units, in
    /// deterministic tie-break order (earlier wins on equal keys).
    fn moves(&self, slack: usize) -> Vec<Self::Move>;

    /// Scores a move against the current solution; `None` when the
    /// move does not improve it.
    fn evaluate(&mut self, m: &Self::Move) -> Option<Self::Key>;

    /// Whether `candidate` strictly beats `incumbent`.
    fn better(&self, candidate: &Self::Key, incumbent: &Self::Key) -> bool;

    /// Commits a move to the current solution.
    fn apply(&mut self, m: &Self::Move);
}

/// Budgeted best-move greedy: each round evaluates every affordable
/// move, applies the best improving one, and stops when the budget is
/// exhausted or no move improves the solution.
pub fn run_move_greedy<D: MoveGreedy>(driver: &mut D, budget: usize) {
    while driver.spent() < budget {
        let slack = budget - driver.spent();
        let mut best: Option<(D::Key, D::Move)> = None;
        for m in driver.moves(slack) {
            if let Some(key) = driver.evaluate(&m) {
                if best.as_ref().is_none_or(|(bk, _)| driver.better(&key, bk)) {
                    best = Some((key, m));
                }
            }
        }
        let Some((_, m)) = best else { break };
        driver.apply(&m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_ladder_orders_lexicographically() {
        let a = Score {
            gain: 2.0,
            coverage: 0,
            v: 9,
        };
        let b = Score {
            gain: 1.0,
            coverage: 7,
            v: 0,
        };
        assert!(a.better_than(&b), "gain dominates coverage");
        let c = Score {
            gain: 2.0,
            coverage: 1,
            v: 9,
        };
        assert!(c.better_than(&a), "coverage breaks gain ties");
        let d = Score {
            gain: 2.0,
            coverage: 1,
            v: 3,
        };
        assert!(d.better_than(&c), "smaller vertex id breaks full ties");
        assert!(!c.better_than(&d));
        assert!(!d.better_than(&d), "strict: equal scores never beat");
    }

    #[test]
    fn score_ladder_handles_negative_zero_and_infinities() {
        let neg_zero = Score {
            gain: -0.0,
            coverage: 0,
            v: 0,
        };
        let pos_zero = Score {
            gain: 0.0,
            coverage: 0,
            v: 0,
        };
        // total_cmp: -0.0 < +0.0, matching the old match-ladder.
        assert!(pos_zero.better_than(&neg_zero));
        let inf = Score {
            gain: f64::INFINITY,
            coverage: 0,
            v: 5,
        };
        assert!(inf.better_than(&pos_zero));
    }

    /// Toy driver: items with (value, cost); budgeted knapsack-greedy.
    struct Toy {
        items: Vec<(f64, usize)>,
        taken: Vec<usize>,
        spent: usize,
    }

    impl MoveGreedy for Toy {
        type Move = usize;
        type Key = f64;

        fn spent(&self) -> usize {
            self.spent
        }

        fn moves(&self, slack: usize) -> Vec<usize> {
            (0..self.items.len())
                .filter(|i| !self.taken.contains(i) && self.items[*i].1 <= slack)
                .collect()
        }

        fn evaluate(&mut self, &i: &usize) -> Option<f64> {
            let (value, _) = self.items[i];
            (value > 0.0).then_some(value)
        }

        fn better(&self, a: &f64, b: &f64) -> bool {
            a > b
        }

        fn apply(&mut self, &i: &usize) {
            self.spent += self.items[i].1;
            self.taken.push(i);
        }
    }

    #[test]
    fn move_greedy_respects_budget_and_stops_when_dry() {
        let mut toy = Toy {
            items: vec![(5.0, 2), (3.0, 1), (-1.0, 1), (4.0, 3)],
            taken: vec![],
            spent: 0,
        };
        run_move_greedy(&mut toy, 3);
        // Round 1 takes item 0 (value 5, cost 2); round 2 has slack 1,
        // so only item 1 fits; item 2 never improves.
        assert_eq!(toy.taken, vec![0, 1]);
        assert_eq!(toy.spent, 3);
    }
}
