//! Placement algorithms.
//!
//! * [`engine`] — the generic greedy core every objective variant
//!   shares: cost-model-agnostic GTP drivers, the tight-budget
//!   feasibility guard, and a budgeted best-move loop.
//! * [`gtp`] — Alg. 1, the `(1 − 1/e)` submodular greedy for general
//!   topologies, in eager, lazy (CELF) and Rayon-parallel variants.
//! * [`dp`] — the optimal tree DP of §5.1 (Eqs. 7–10), generalized to
//!   arbitrary branching and to sources at any non-root vertex.
//! * [`hat`] — Alg. 2, the agglomerative leaf-merging heuristic.
//! * [`best_effort`] and [`random`] — the paper's two baselines.
//! * [`exhaustive`] — brute-force optimum for small instances (used to
//!   certify the DP and to measure heuristic gaps).
//! * [`joint`] — alternating joint routing + placement over candidate
//!   path sets, with an LP-relaxation lower bound on the optimum.

pub mod best_effort;
pub mod branch_bound;
pub mod centrality;
pub mod dp;
pub mod engine;
pub mod exhaustive;
pub mod gtp;
pub mod hat;
pub mod joint;
pub mod local_search;
pub mod random;

use crate::error::TdmdError;
use crate::instance::Instance;
use crate::plan::Deployment;
use rand::Rng;

/// Uniform handle over all placement algorithms, used by the
/// experiment runner to sweep the paper's five-algorithm comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Random feasible `k`-subset (baseline).
    Random,
    /// Volume-greedy baseline (see module docs for the
    /// interpretation).
    BestEffort,
    /// Alg. 1 budgeted greedy (eager marginal decrements).
    Gtp,
    /// Alg. 1 with CELF lazy evaluation (identical output).
    GtpLazy,
    /// Alg. 1 with Rayon-parallel candidate scoring (identical
    /// output).
    GtpParallel,
    /// Alg. 2 tree heuristic.
    Hat,
    /// Optimal tree dynamic program.
    Dp,
    /// GTP followed by 1-swap/1-drop local search (extension).
    GtpLs,
    /// Traffic-oblivious top-betweenness placement (extension
    /// baseline).
    Centrality,
}

impl Algorithm {
    /// Paper-facing display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Random => "Random",
            Algorithm::BestEffort => "Best-effort",
            Algorithm::Gtp => "GTP",
            Algorithm::GtpLazy => "GTP-lazy",
            Algorithm::GtpParallel => "GTP-par",
            Algorithm::Hat => "HAT",
            Algorithm::Dp => "DP",
            Algorithm::GtpLs => "GTP+LS",
            Algorithm::Centrality => "Centrality",
        }
    }

    /// True if the algorithm requires a tree instance.
    pub fn tree_only(&self) -> bool {
        matches!(self, Algorithm::Hat | Algorithm::Dp)
    }

    /// Runs the algorithm with the instance's budget `k`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        rng: &mut R,
    ) -> Result<Deployment, TdmdError> {
        let k = instance.k();
        match self {
            Algorithm::Random => random::random_feasible(instance, k, rng, 1000),
            Algorithm::BestEffort => best_effort::best_effort(instance, k),
            Algorithm::Gtp => gtp::gtp_budgeted(instance, k),
            Algorithm::GtpLazy => gtp::gtp_lazy(instance, k),
            Algorithm::GtpParallel => gtp::gtp_parallel(instance, k),
            Algorithm::Hat => hat::hat(instance, k),
            Algorithm::Dp => dp::dp_optimal(instance).map(|s| s.deployment),
            Algorithm::GtpLs => local_search::gtp_with_local_search(instance, k),
            Algorithm::Centrality => centrality::centrality_placement(instance, k),
        }
    }

    /// The paper's tree-topology line-up (Figs. 9–12).
    pub fn tree_suite() -> [Algorithm; 5] {
        [
            Algorithm::Random,
            Algorithm::BestEffort,
            Algorithm::Gtp,
            Algorithm::Hat,
            Algorithm::Dp,
        ]
    }

    /// The paper's general-topology line-up (Figs. 13–16).
    pub fn general_suite() -> [Algorithm; 3] {
        [Algorithm::Random, Algorithm::BestEffort, Algorithm::Gtp]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::Gtp.name(), "GTP");
        assert_eq!(Algorithm::Dp.name(), "DP");
        assert_eq!(Algorithm::BestEffort.name(), "Best-effort");
    }

    #[test]
    fn suites_match_the_paper() {
        assert_eq!(Algorithm::tree_suite().len(), 5);
        assert_eq!(Algorithm::general_suite().len(), 3);
        assert!(Algorithm::general_suite().iter().all(|a| !a.tree_only()));
    }
}
