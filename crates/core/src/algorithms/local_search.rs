//! Swap-based local search post-optimization.
//!
//! A natural strengthening the paper leaves on the table: take any
//! feasible deployment and hill-climb over single swaps (replace one
//! deployed vertex with one undeployed vertex) and single drops,
//! accepting only feasible strictly-improving moves. Submodular
//! maximization theory gives 1-swap local optima their own guarantee
//! (≥ 1/2 of optimal decrement under a cardinality constraint), and in
//! practice `GTP + local search` closes most of the gap to DP on
//! trees. Used as the `GtpLs` ablation.

use crate::cost::{CostModel, FlowIndex, HopCount};
use crate::error::TdmdError;
use crate::feasibility::is_feasible;
use crate::instance::Instance;
use crate::plan::Deployment;
use tdmd_graph::NodeId;

/// Result of a local-search run.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSearchOutcome {
    /// The (possibly improved) deployment.
    pub deployment: Deployment,
    /// Its bandwidth (priced by the cost model the search ran under).
    pub bandwidth: f64,
    /// Number of improving moves applied.
    pub moves: usize,
}

/// Hill-climbs `initial` with 1-swaps and 1-drops until no move
/// improves the `model`-priced objective or `max_moves` is reached.
///
/// # Panics
/// Panics if `initial` is infeasible — local search preserves
/// feasibility and needs a feasible start.
pub fn local_search_with<M: CostModel>(
    instance: &Instance,
    model: &M,
    initial: Deployment,
    max_moves: usize,
) -> LocalSearchOutcome {
    assert!(
        is_feasible(instance, &initial),
        "local search needs a feasible start"
    );
    let index = FlowIndex::build(instance, model);
    let bandwidth_of = |d: &Deployment| index.bandwidth_of(instance, d);
    let mut current = initial;
    let mut best_b = bandwidth_of(&current);
    let mut moves = 0usize;
    let candidates: Vec<NodeId> = instance.candidate_vertices();
    while moves < max_moves {
        let mut improved = false;
        // Try drops first (they free budget at zero cost when a vertex
        // is redundant — its flows re-home to other boxes).
        let deployed: Vec<NodeId> = current.vertices().to_vec();
        for &out in &deployed {
            let mut trial = current.clone();
            trial.remove(out);
            if !is_feasible(instance, &trial) {
                continue;
            }
            let b = bandwidth_of(&trial);
            if b < best_b - 1e-12 || (b <= best_b + 1e-12 && trial.len() < current.len()) {
                current = trial;
                best_b = b;
                moves += 1;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        // 1-swaps: best-improvement over all (out, in) pairs.
        let deployed: Vec<NodeId> = current.vertices().to_vec();
        let mut best_swap: Option<(f64, NodeId, NodeId)> = None;
        for &out in &deployed {
            for &inn in &candidates {
                if current.contains(inn) {
                    continue;
                }
                let mut trial = current.clone();
                trial.remove(out);
                trial.insert(inn);
                if !is_feasible(instance, &trial) {
                    continue;
                }
                let b = bandwidth_of(&trial);
                if b < best_b - 1e-12 && best_swap.as_ref().is_none_or(|&(bb, _, _)| b < bb) {
                    best_swap = Some((b, out, inn));
                }
            }
        }
        match best_swap {
            Some((b, out, inn)) => {
                current.remove(out);
                current.insert(inn);
                best_b = b;
                moves += 1;
            }
            None => break,
        }
    }
    LocalSearchOutcome {
        deployment: current,
        bandwidth: best_b,
        moves,
    }
}

/// Hill-climbs `initial` under the paper's hop-count pricing.
///
/// # Panics
/// Panics if `initial` is infeasible — local search preserves
/// feasibility and needs a feasible start.
pub fn local_search(
    instance: &Instance,
    initial: Deployment,
    max_moves: usize,
) -> LocalSearchOutcome {
    local_search_with(instance, &HopCount, initial, max_moves)
}

/// GTP followed by local search under an arbitrary cost model.
///
/// # Errors
/// Same feasibility conditions as
/// [`crate::algorithms::gtp::gtp_budgeted_with`].
pub fn gtp_with_local_search_with<M: CostModel>(
    instance: &Instance,
    k: usize,
    model: &M,
) -> Result<Deployment, TdmdError> {
    let start = crate::algorithms::gtp::gtp_budgeted_with(instance, k, model)?;
    Ok(local_search_with(instance, model, start, 10 * instance.node_count().max(8)).deployment)
}

/// GTP followed by local search — the strongest polynomial heuristic
/// in this repository for general topologies.
///
/// # Errors
/// Same feasibility conditions as
/// [`crate::algorithms::gtp::gtp_budgeted`].
pub fn gtp_with_local_search(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    gtp_with_local_search_with(instance, k, &HopCount)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::dp::dp_optimal;
    use crate::algorithms::exhaustive::{exhaustive_optimal, DEFAULT_SUBSET_CAP};
    use crate::objective::bandwidth_of;
    use crate::paper::{fig1_instance, fig5_instance};

    #[test]
    fn never_worse_than_the_start() {
        let inst = fig5_instance(2);
        // Deliberately poor but feasible start: root + a useless leaf.
        let start = Deployment::from_vertices(8, [0, 3]);
        let out = local_search(&inst, start.clone(), 100);
        assert!(out.bandwidth <= bandwidth_of(&inst, &start) + 1e-9);
        assert!(is_feasible(&inst, &out.deployment));
        assert!(out.deployment.len() <= 2);
    }

    #[test]
    fn reaches_the_optimum_on_fig5_from_a_bad_start() {
        let inst = fig5_instance(2);
        let start = Deployment::from_vertices(8, [0, 3]); // b = 22
        let out = local_search(&inst, start, 100);
        assert_eq!(out.bandwidth, dp_optimal(&inst).unwrap().bandwidth);
        assert!(out.moves >= 1);
    }

    #[test]
    fn fixed_point_when_already_optimal() {
        let inst = fig5_instance(3);
        let opt = dp_optimal(&inst).unwrap();
        let out = local_search(&inst, opt.deployment.clone(), 100);
        assert_eq!(out.bandwidth, opt.bandwidth);
    }

    #[test]
    fn gtp_ls_is_at_least_as_good_as_gtp() {
        for k in 2..=4 {
            let inst = fig1_instance(k);
            let gtp = crate::algorithms::gtp::gtp_budgeted(&inst, k).unwrap();
            let ls = gtp_with_local_search(&inst, k).unwrap();
            assert!(
                bandwidth_of(&inst, &ls) <= bandwidth_of(&inst, &gtp) + 1e-9,
                "k={k}"
            );
        }
    }

    #[test]
    fn gtp_ls_matches_exhaustive_on_fig1() {
        for k in 2..=3 {
            let inst = fig1_instance(k);
            let ls = gtp_with_local_search(&inst, k).unwrap();
            let (_, opt) = exhaustive_optimal(&inst, k, DEFAULT_SUBSET_CAP).unwrap();
            assert_eq!(bandwidth_of(&inst, &ls), opt, "k={k}");
        }
    }

    #[test]
    fn drops_remove_redundant_boxes() {
        let inst = fig5_instance(4);
        // Root is redundant once every source has a box.
        let start = Deployment::from_vertices(8, [0, 3, 4, 6, 7]);
        let out = local_search(&inst, start, 100);
        assert!(out.deployment.len() <= 4, "redundant root must be dropped");
        assert_eq!(out.bandwidth, 12.0);
    }

    #[test]
    #[should_panic(expected = "feasible start")]
    fn infeasible_start_is_rejected() {
        let inst = fig5_instance(2);
        local_search(&inst, Deployment::empty(8), 10);
    }

    #[test]
    fn move_budget_is_respected() {
        let inst = fig5_instance(2);
        let start = Deployment::from_vertices(8, [0, 3]);
        let out = local_search(&inst, start, 1);
        assert!(out.moves <= 1);
    }
}
