//! Best-effort baseline.
//!
//! §6.2 describes it as "deploys one middlebox on the vertex which can
//! reduce the bandwidth of flows mostly, until it deploys k
//! middleboxes". We interpret this as the natural *volume-greedy*
//! baseline: each round picks the vertex through which the most
//! still-unserved traffic passes (`Σ r_f (1 − λ)` over unserved flows
//! crossing `v`), ignoring *where* on the path the vertex sits. That
//! is exactly the "reduce the most flow bandwidth" intuition without
//! GTP's positional marginal-decrement scoring — and it reproduces the
//! paper's ordering (Best-effort between GTP and Random on trees,
//! close to GTP on general topologies), because high-volume vertices
//! cluster near destinations where the per-edge saving is small.
//!
//! Ties break by the positional decrement under the active cost
//! model, then by smaller id. The same tight-budget feasibility guard
//! as GTP applies (shared via
//! [`engine::guard_candidates`](super::engine); the paper only
//! evaluates feasible plans).

use super::engine::guard_candidates;
use crate::cost::{CostModel, FlowIndex, HopCount};
use crate::error::TdmdError;
use crate::feasibility::is_feasible;
use crate::instance::Instance;
use crate::num::ix;
use crate::plan::Deployment;
use tdmd_graph::NodeId;

/// Volume-greedy Best-effort under an arbitrary cost model: volume
/// scoring is model-independent (raw unserved traffic), only the
/// tie-breaking decrement is priced by `model`.
///
/// # Errors
/// [`TdmdError::Infeasible`] when the guard cannot keep the plan
/// coverable within the budget.
pub fn best_effort_with<M: CostModel>(
    instance: &Instance,
    k: usize,
    model: &M,
) -> Result<Deployment, TdmdError> {
    let index = FlowIndex::build(instance, model);
    let mut deployment = Deployment::empty(instance.node_count());
    let mut served = vec![false; instance.flows().len()];
    let mut cur = vec![0.0f64; instance.flows().len()];
    let flows = instance.flows();

    for round in 0..k {
        let remaining = k - round;
        let all_served = served.iter().all(|&s| s);
        let allowed = guard_candidates(instance, &served, &deployment, remaining)?;
        let cands: Vec<NodeId> = match allowed {
            Some(list) => list,
            None => instance
                .candidate_vertices()
                .into_iter()
                .filter(|&v| !deployment.contains(v))
                .collect(),
        };
        // Volume score: unserved traffic through v (λ-independent so
        // coverage still progresses when λ = 1 zeroes all savings).
        let mut best: Option<(u64, f64, NodeId)> = None;
        for v in cands {
            let volume: u64 = instance
                .flows_through(v)
                .iter()
                .filter(|&&(fi, _)| !served[ix(fi)])
                .map(|&(fi, _)| flows[ix(fi)].rate)
                .sum();
            let tie = index.marginal_decrement(instance, &cur, v);
            let better = match &best {
                None => true,
                Some((bv, bt, bid)) => {
                    volume > *bv || (volume == *bv && (tie > *bt || (tie == *bt && v < *bid)))
                }
            };
            if better {
                best = Some((volume, tie, v));
            }
        }
        let Some((volume, tie, v)) = best else { break };
        if all_served && volume == 0 && tie <= 0.0 {
            break; // nothing left to improve
        }
        deployment.insert(v);
        for &(fi, g) in index.flows_through(v) {
            served[ix(fi)] = true;
            if g > cur[ix(fi)] {
                cur[ix(fi)] = g;
            }
        }
    }
    if !is_feasible(instance, &deployment) {
        return Err(TdmdError::Infeasible { budget: k });
    }
    Ok(deployment)
}

/// Runs the volume-greedy Best-effort baseline with budget `k` under
/// the paper's hop-count pricing.
///
/// # Errors
/// [`TdmdError::Infeasible`] when the guard cannot keep the plan
/// coverable within the budget.
pub fn best_effort(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    best_effort_with(instance, k, &HopCount)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::gtp::gtp_budgeted;
    use crate::objective::bandwidth_of;
    use crate::paper::{fig1_instance, fig5_instance};

    #[test]
    fn produces_feasible_plans() {
        for k in 2..=4 {
            let inst = fig1_instance(k);
            let d = best_effort(&inst, k).unwrap();
            assert!(is_feasible(&inst, &d));
            assert!(d.len() <= k);
        }
    }

    #[test]
    fn volume_greedy_prefers_shared_vertices() {
        // In Fig. 1, v2 (id 1) carries flows f2+f3+f4 (volume 6·0.5)
        // vs v3 (id 2) carrying f1+f2 (volume 6·0.5 too) — tie broken
        // by positional decrement: v3 wins (3 > 0).
        let inst = fig1_instance(2);
        let d = best_effort(&inst, 2).unwrap();
        assert!(d.contains(2) || d.contains(1));
    }

    #[test]
    fn never_better_than_gtp_on_fig5() {
        for k in 1..=4 {
            let inst = fig5_instance(k);
            let be = best_effort(&inst, k).unwrap();
            let gtp = gtp_budgeted(&inst, k).unwrap();
            assert!(
                bandwidth_of(&inst, &be) >= bandwidth_of(&inst, &gtp) - 1e-9,
                "k={k}"
            );
        }
    }

    #[test]
    fn infeasible_budget_errors() {
        let inst = fig1_instance(1);
        assert!(best_effort(&inst, 1).is_err());
    }

    #[test]
    fn k1_on_tree_places_the_root() {
        let inst = fig5_instance(1);
        let d = best_effort(&inst, 1).unwrap();
        assert_eq!(d.vertices(), &[0]);
    }

    #[test]
    fn weighted_model_still_feasible() {
        use crate::cost::WeightedEdges;
        for k in 2..=4 {
            let inst = fig1_instance(k);
            let d = best_effort_with(&inst, k, &WeightedEdges::new(&inst)).unwrap();
            assert!(is_feasible(&inst, &d));
        }
    }
}
