//! Branch-and-bound exact solver for general topologies.
//!
//! The plain exhaustive search enumerates every ≤ k-subset; this
//! solver prunes with a submodularity-based bound: from a partial
//! deployment `P`, the decrement of any completion with `m` more boxes
//! is at most `d(P)` plus the sum of the `m` largest *current*
//! marginal decrements (each marginal only shrinks as `P` grows,
//! Thm. 2). It returns exactly the same optimum as
//! [`crate::algorithms::exhaustive`] while visiting a fraction of the
//! tree, which pushes the certified-optimal frontier from ~15 to ~40
//! vertices at small `k`.

use crate::error::TdmdError;
use crate::instance::Instance;
use crate::num::{approx_f64, ix};
use crate::objective::{coverage_gain, marginal_decrement};
use crate::plan::Deployment;
use tdmd_graph::NodeId;

/// Search statistics, returned alongside the optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnbStats {
    /// Nodes of the search tree expanded.
    pub expanded: u64,
    /// Nodes pruned by the submodular bound.
    pub pruned: u64,
}

struct Search<'a> {
    instance: &'a Instance,
    cands: Vec<NodeId>,
    k: usize,
    best_decrement: f64,
    best: Option<Vec<NodeId>>,
    stats: BnbStats,
    node_budget: u64,
}

impl Search<'_> {
    /// Depth-first over candidate indices with the submodular bound.
    fn recurse(
        &mut self,
        from: usize,
        chosen: &mut Vec<NodeId>,
        cur_l: &mut Vec<u32>,
        served: &mut Vec<bool>,
        decrement: f64,
    ) -> Result<(), TdmdError> {
        self.stats.expanded += 1;
        if self.stats.expanded > self.node_budget {
            return Err(TdmdError::SearchSpaceTooLarge {
                subsets: u128::from(self.stats.expanded),
                cap: u128::from(self.node_budget),
            });
        }
        let feasible = served.iter().all(|&s| s);
        if feasible && (decrement > self.best_decrement || self.best.is_none()) {
            self.best_decrement = decrement;
            self.best = Some(chosen.clone());
        }
        let slots = self.k - chosen.len();
        if slots == 0 || from >= self.cands.len() {
            return Ok(());
        }
        // Submodular upper bound: current decrement + top `slots`
        // marginals among the remaining candidates (valid because
        // d(P ∪ S) ≤ d(P) + Σ_{v ∈ S} d_P(v), Thm. 2).
        let mut gains: Vec<(f64, usize)> = self.cands[from..]
            .iter()
            .map(|&v| {
                (
                    marginal_decrement(self.instance, cur_l, v),
                    coverage_gain(self.instance, served, v),
                )
            })
            .collect();
        gains.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        let bound: f64 = decrement + gains.iter().take(slots).map(|&(g, _)| g).sum::<f64>();
        let coverable: usize = gains.iter().map(|&(_, c)| c).sum();
        let unserved = served.iter().filter(|&&s| !s).count();
        if (self.best.is_some() && bound <= self.best_decrement + 1e-12) || coverable < unserved {
            self.stats.pruned += 1;
            return Ok(());
        }
        // Branch in candidate order (include / skip each).
        for i in from..self.cands.len() {
            let v = self.cands[i];
            // Record deltas to undo after the recursive call.
            let mut touched: Vec<(usize, u32, bool)> = Vec::new();
            let mut gain = 0.0;
            let factor = 1.0 - self.instance.lambda();
            for &(fi, l) in self.instance.flows_through(v) {
                let fi = ix(fi);
                if l > cur_l[fi] {
                    gain += approx_f64(self.instance.flows()[fi].rate)
                        * factor
                        * f64::from(l - cur_l[fi]);
                }
                touched.push((fi, cur_l[fi], served[fi]));
                served[fi] = true;
                cur_l[fi] = cur_l[fi].max(l);
            }
            chosen.push(v);
            self.recurse(i + 1, chosen, cur_l, served, decrement + gain)?;
            chosen.pop();
            for (fi, old_l, old_s) in touched.into_iter().rev() {
                cur_l[fi] = old_l;
                served[fi] = old_s;
            }
        }
        Ok(())
    }
}

/// Exact optimum with at most `k` middleboxes via branch and bound.
/// `node_budget` caps the number of expanded search nodes.
///
/// # Errors
/// * [`TdmdError::Infeasible`] if no ≤ k deployment covers all flows.
/// * [`TdmdError::SearchSpaceTooLarge`] if the node budget trips.
pub fn branch_and_bound(
    instance: &Instance,
    k: usize,
    node_budget: u64,
) -> Result<(Deployment, f64, BnbStats), TdmdError> {
    if instance.flows().is_empty() {
        return Ok((
            Deployment::empty(instance.node_count()),
            0.0,
            BnbStats {
                expanded: 0,
                pruned: 0,
            },
        ));
    }
    let mut search = Search {
        instance,
        cands: instance.candidate_vertices(),
        k,
        best_decrement: f64::NEG_INFINITY,
        best: None,
        stats: BnbStats {
            expanded: 0,
            pruned: 0,
        },
        node_budget,
    };
    let mut chosen = Vec::with_capacity(k);
    let mut cur_l = vec![0u32; instance.flows().len()];
    let mut served = vec![false; instance.flows().len()];
    search.recurse(0, &mut chosen, &mut cur_l, &mut served, 0.0)?;
    match search.best {
        Some(vs) => {
            let d = Deployment::from_vertices(instance.node_count(), vs);
            let b = instance.unprocessed_bandwidth() - search.best_decrement;
            Ok((d, b, search.stats))
        }
        None => Err(TdmdError::Infeasible { budget: k }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::{exhaustive_optimal, DEFAULT_SUBSET_CAP};
    use crate::paper::{fig1_instance, fig5_instance};

    #[test]
    fn matches_exhaustive_on_the_paper_examples() {
        for k in 2..=4 {
            let inst = fig1_instance(k);
            let (_, b, _) = branch_and_bound(&inst, k, 1_000_000).unwrap();
            let (_, e) = exhaustive_optimal(&inst, k, DEFAULT_SUBSET_CAP).unwrap();
            assert_eq!(b, e, "fig1 k={k}");
        }
        for k in 1..=4 {
            let inst = fig5_instance(k);
            let (_, b, _) = branch_and_bound(&inst, k, 1_000_000).unwrap();
            let (_, e) = exhaustive_optimal(&inst, k, DEFAULT_SUBSET_CAP).unwrap();
            assert_eq!(b, e, "fig5 k={k}");
        }
    }

    #[test]
    fn detects_infeasibility() {
        let inst = fig1_instance(1);
        assert_eq!(
            branch_and_bound(&inst, 1, 1_000_000).unwrap_err(),
            TdmdError::Infeasible { budget: 1 }
        );
    }

    #[test]
    fn prunes_something_nontrivial() {
        let inst = fig5_instance(4);
        let (_, _, stats) = branch_and_bound(&inst, 4, 1_000_000).unwrap();
        assert!(stats.pruned > 0, "the bound should fire on fig5");
    }

    #[test]
    fn node_budget_trips() {
        let inst = fig5_instance(4);
        assert!(matches!(
            branch_and_bound(&inst, 4, 2).unwrap_err(),
            TdmdError::SearchSpaceTooLarge { .. }
        ));
    }

    #[test]
    fn empty_flows_are_trivial() {
        let g = crate::paper::fig5_graph();
        let inst = Instance::new(g, vec![], 0.5, 2).unwrap();
        let (d, b, _) = branch_and_bound(&inst, 2, 100).unwrap();
        assert!(d.is_empty());
        assert_eq!(b, 0.0);
    }
}
