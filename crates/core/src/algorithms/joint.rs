//! Joint routing + middlebox placement over candidate path sets.
//!
//! The paper places middleboxes on *fixed* flow paths; Charikar et
//! al.'s multi-commodity flow with in-network processing (PAPERS.md)
//! shows that choosing routes and processing sites jointly is
//! strictly better. This module implements the alternation scheme on
//! top of the candidate sets in [`Instance::path_sets`]:
//!
//! 1. **Placement round** — run budgeted GTP (Alg. 1) on the current
//!    active-path view.
//! 2. **Re-selection round** — given the deployment, every flow
//!    re-prices its candidates (`r_f · (|p| − (1 − λ) · best l)`,
//!    read off the two-level membership CSR) and activates the
//!    cheapest; ties keep the current route, then prefer covered
//!    candidates, then the lower index. Switches are applied in one
//!    [`Instance::set_active_paths`] batch.
//!
//! The loop runs twice: once warm-started from the instance's own
//! active paths (so round 1 *is* the legacy fixed-path GTP, and the
//! singleton case degenerates to it exactly), and once from an
//! **optimistic placement** that scores each vertex by the best gain
//! over *any* candidate — the escape hatch for the chicken-and-egg
//! local optimum where no single flow benefits from moving until the
//! box moves, and vice versa. The incumbent across both chains only
//! ever improves on the fixed-path objective.
//!
//! The reported bound is an **LP-relaxation certificate** computed on
//! the [`tdmd_graph::flownet`] min-cost-flow substrate: for a
//! Lagrangian price `μ ≥ 0` on the budget, the relaxed decrement
//!
//! ```text
//! D(μ) = μ·k + max Σ_{f,v} x_{f,v} · (g*_{f,v} − μ / |F_v|)
//! ```
//!
//! (per-flow ≤ 1, per-vertex ≤ |F_v| — a transportation problem) is
//! an upper bound on any true solution's decrement, because a real
//! deployment `P` serves at most `|F_v|` flows at each `v ∈ P` and
//! `Σ_{v∈P} served_v / |F_v| ≤ |P| ≤ k`. Minimizing over a `μ` grid
//! and subtracting from the best-candidate base cost gives a valid
//! lower bound on the joint optimum, reported next to the solved
//! objective as `lp_bound ≤ optimum ≤ objective`.

use crate::algorithms::gtp::gtp_budgeted;
use crate::error::TdmdError;
use crate::instance::{Instance, PathSets};
use crate::num::{approx_f64, id32, ix, usize_f64, wide};
use crate::objective::bandwidth_of;
use crate::plan::Deployment;
use tdmd_graph::flownet::FlowNetwork;
use tdmd_graph::NodeId;
use tdmd_obs::keys::{JOINT_ROUNDS, LP_BOUND_US, PATH_SWITCHES};
use tdmd_obs::{NoopRecorder, Recorder, Stopwatch};

/// Float tolerance for objective comparisons.
const EPS: f64 = 1e-9;

/// Fixed-point scale (`2^20`) of the flownet gain costs (gains are
/// `f64`, arc costs are `i64`; ceiling the scaled gain keeps the
/// bound valid).
const LP_SCALE: f64 = 1_048_576.0;

/// Knobs of the alternation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointConfig {
    /// Maximum GTP placement rounds per warm-start chain.
    pub max_rounds: usize,
    /// Grid points for the Lagrangian price `μ` of the LP bound
    /// (besides `μ = 0`).
    pub lp_mu_grid: usize,
}

impl Default for JointConfig {
    fn default() -> Self {
        Self {
            max_rounds: 8,
            lp_mu_grid: 16,
        }
    }
}

/// Result of a joint solve.
#[derive(Debug, Clone, PartialEq)]
pub struct JointSolution {
    /// The incumbent deployment.
    pub deployment: Deployment,
    /// Active candidate index per flow under the incumbent routing.
    pub active: Vec<u32>,
    /// Total bandwidth of the incumbent (Eq. 1 on its routing).
    pub objective: f64,
    /// Bandwidth of plain GTP on the instance's original active paths
    /// — the fixed-path baseline (`objective ≤ fixed_objective`).
    pub fixed_objective: f64,
    /// LP-relaxation lower bound on the joint optimum.
    pub lp_bound: f64,
    /// GTP placement rounds run (across both warm-start chains).
    pub rounds: usize,
    /// Active-path switches applied (across both chains).
    pub path_switches: u64,
}

/// Joint solve with default knobs and no telemetry.
///
/// # Errors
/// [`TdmdError::Infeasible`] if no routing reachable by the
/// alternation admits a feasible placement within the budget.
pub fn joint_solve(instance: &Instance) -> Result<JointSolution, TdmdError> {
    joint_solve_with(instance, &JointConfig::default(), &NoopRecorder)
}

/// Joint solve recording `joint_rounds`, `path_switches` and
/// `lp_bound_us` telemetry.
///
/// # Errors
/// See [`joint_solve`].
pub fn joint_solve_with<R: Recorder>(
    instance: &Instance,
    cfg: &JointConfig,
    recorder: &R,
) -> Result<JointSolution, TdmdError> {
    let sw = Stopwatch::start();
    let lp_bound = lp_lower_bound(instance, cfg.lp_mu_grid);
    recorder.sample(LP_BOUND_US, sw.elapsed_us());

    let mut rounds = 0usize;
    let mut switches = 0u64;
    let mut best: Incumbent = None;
    let mut first_err: Option<TdmdError> = None;

    // Seed the incumbent with the fixed-path baseline: plain GTP on
    // the instance's own active paths. Chains may only *strictly*
    // improve on it, so `objective ≤ fixed_objective` holds by
    // construction and the singleton case returns this deployment
    // bit-for-bit.
    let mut fixed_objective = f64::INFINITY;
    match gtp_budgeted(instance, instance.k()) {
        Ok(dep) => {
            let obj = bandwidth_of(instance, &dep);
            fixed_objective = obj;
            best = Some((dep, instance.path_sets().actives().to_vec(), obj));
        }
        Err(e) => first_err = Some(e),
    }

    // Chain A: warm start from the instance's own active paths (its
    // first placement round re-derives the baseline; later rounds
    // explore the routing neighborhood around it).
    let mut work = instance.clone();
    if let Some(e) = run_chain(
        &mut work,
        cfg,
        recorder,
        &mut rounds,
        &mut switches,
        &mut best,
    ) {
        first_err.get_or_insert(e);
    }

    // Chain B: optimistic warm start — place against the best gain
    // over *any* candidate, let flows re-route toward it, then refine.
    let mut work = instance.clone();
    let opt = optimistic_deployment(&work);
    let pre = reselect(&work, &opt);
    if !pre.is_empty() {
        let moved = wide(work.set_active_paths(&pre));
        if moved > 0 {
            recorder.count(PATH_SWITCHES, moved);
            switches += moved;
        }
    }
    if let Some(e) = run_chain(
        &mut work,
        cfg,
        recorder,
        &mut rounds,
        &mut switches,
        &mut best,
    ) {
        first_err.get_or_insert(e);
    }

    let Some((deployment, active, objective)) = best else {
        return Err(first_err.unwrap_or(TdmdError::Infeasible {
            budget: instance.k(),
        }));
    };
    if !fixed_objective.is_finite() {
        fixed_objective = objective;
    }
    Ok(JointSolution {
        deployment,
        active,
        objective,
        fixed_objective,
        lp_bound,
        rounds,
        path_switches: switches,
    })
}

/// The best (deployment, active indices, objective) seen so far.
type Incumbent = Option<(Deployment, Vec<u32>, f64)>;

/// One warm-start chain: alternate GTP and re-selection until no flow
/// switches, the round budget is exhausted, or placement fails.
/// Updates the shared incumbent; returns the placement error (if any)
/// so the caller can surface it when *no* chain produced a solution.
fn run_chain<R: Recorder>(
    inst: &mut Instance,
    cfg: &JointConfig,
    recorder: &R,
    rounds: &mut usize,
    switches: &mut u64,
    best: &mut Incumbent,
) -> Option<TdmdError> {
    for round in 0..cfg.max_rounds {
        *rounds += 1;
        recorder.count(JOINT_ROUNDS, 1);
        let dep = match gtp_budgeted(inst, inst.k()) {
            Ok(d) => d,
            Err(e) => return Some(e),
        };
        let obj = bandwidth_of(inst, &dep);
        // Strict improvement only: on ties the earlier incumbent wins,
        // which pins the singleton case to the legacy GTP deployment.
        if best.as_ref().is_none_or(|b| obj < b.2 - EPS) {
            *best = Some((dep.clone(), inst.path_sets().actives().to_vec(), obj));
        }
        if round + 1 == cfg.max_rounds {
            break;
        }
        let sel = reselect(inst, &dep);
        if sel.is_empty() {
            break;
        }
        let moved = wide(inst.set_active_paths(&sel));
        if moved == 0 {
            break;
        }
        recorder.count(PATH_SWITCHES, moved);
        *switches += moved;
    }
    None
}

/// Per-candidate serving statistics under a deployment: whether any
/// deployed vertex covers the candidate, and the best downstream hop
/// count among deployed on-path vertices.
fn candidate_cover(ps: &PathSets, dep: &Deployment) -> (Vec<bool>, Vec<u32>) {
    let mut covered = vec![false; ps.total_paths()];
    let mut best_l = vec![0u32; ps.total_paths()];
    for &v in dep.vertices() {
        for m in ps.memberships_through(v) {
            let gid = ps.global_id(ix(m.flow), ix(m.path));
            covered[gid] = true;
            if m.l > best_l[gid] {
                best_l[gid] = m.l;
            }
        }
    }
    (covered, best_l)
}

/// Re-selection round: each flow activates its cheapest candidate
/// under `dep`. Returns the switches (current selections are never
/// re-emitted), so an empty result means the routing is stable.
fn reselect(inst: &Instance, dep: &Deployment) -> Vec<(u32, u32)> {
    let ps = inst.path_sets();
    let lambda = inst.lambda();
    let (covered, best_l) = candidate_cover(ps, dep);
    let mut out = Vec::new();
    for (f, flow) in inst.flows().iter().enumerate() {
        let active = ix(ps.active(f));
        let cost = |j: usize| {
            let gid = ps.global_id(f, j);
            let hops = usize_f64(ps.path(f, j).len() - 1);
            approx_f64(flow.rate) * (hops - (1.0 - lambda) * f64::from(best_l[gid]))
        };
        let mut pick = active;
        let mut pick_cost = cost(active);
        for j in 0..ps.candidate_count(f) {
            if j == active {
                continue;
            }
            let c = cost(j);
            let better = c < pick_cost - EPS
                || ((c - pick_cost).abs() <= EPS
                    && covered[ps.global_id(f, j)]
                    && !covered[ps.global_id(f, pick)]);
            if better {
                pick = j;
                pick_cost = c;
            }
        }
        if pick != active {
            out.push((id32(f), id32(pick)));
        }
    }
    out
}

/// Optimistic greedy placement: score each vertex by the marginal
/// best-candidate gain `Σ_f max(0, g*_{f,v} − cur_f)` (with the GTP
/// coverage tie-break over *any*-candidate coverage) and take `k`.
/// This is greedy max-coverage on the LP relaxation's gains — only a
/// warm start; exact GTP rounds refine it on the routed view.
fn optimistic_deployment(inst: &Instance) -> Deployment {
    let ps = inst.path_sets();
    let n = inst.node_count();
    let factor = 1.0 - inst.lambda();
    let flows = inst.flows();
    // g*_{f,v}: best gain over f's candidates through v, per vertex row.
    let star = |v: NodeId| {
        let mut acc: Vec<(u32, f64)> = Vec::new();
        for m in ps.memberships_through(v) {
            let g = approx_f64(flows[ix(m.flow)].rate) * factor * f64::from(m.l);
            match acc.last_mut() {
                Some(last) if last.0 == m.flow => last.1 = last.1.max(g),
                _ => acc.push((m.flow, g)),
            }
        }
        acc
    };
    let mut dep = Deployment::empty(n);
    let mut cur = vec![0.0f64; flows.len()];
    let mut served = vec![false; flows.len()];
    for _ in 0..inst.k() {
        let mut pick: Option<(f64, usize, NodeId)> = None;
        for v in 0..id32(n) {
            if dep.contains(v) {
                continue;
            }
            let row = star(v);
            if row.is_empty() {
                continue;
            }
            let gain: f64 = row.iter().map(|&(f, g)| (g - cur[ix(f)]).max(0.0)).sum();
            let coverage = row.iter().filter(|&&(f, _)| !served[ix(f)]).count();
            let better = match pick {
                None => true,
                Some((bg, bc, bv)) => {
                    gain > bg + EPS
                        || ((gain - bg).abs() <= EPS
                            && (coverage > bc || (coverage == bc && v < bv)))
                }
            };
            if better {
                pick = Some((gain, coverage, v));
            }
        }
        let Some((gain, coverage, v)) = pick else {
            break;
        };
        if gain <= EPS && coverage == 0 {
            break;
        }
        dep.insert(v);
        for (f, g) in star(v) {
            cur[ix(f)] = cur[ix(f)].max(g);
            served[ix(f)] = true;
        }
    }
    dep
}

/// LP-relaxation lower bound on the joint optimum's bandwidth.
///
/// `max(λ · Σ_f r_f · minlen_f, Σ_f r_f · minlen_f − min_μ D(μ))`
/// where `D(μ)` prices the budget Lagrangian via one min-cost-flow
/// transportation solve per grid point (see the module docs for the
/// validity argument). Both terms hold for *every* candidate routing
/// and deployment within budget, so the max does too.
pub fn lp_lower_bound(inst: &Instance, mu_grid: usize) -> f64 {
    let ps = inst.path_sets();
    let flows = inst.flows();
    if flows.is_empty() {
        return 0.0;
    }
    let factor = 1.0 - inst.lambda();
    let base: f64 = flows
        .iter()
        .enumerate()
        .map(|(f, flow)| approx_f64(flow.rate) * f64::from(ps.min_hops(f)))
        .sum();
    let lb_lambda = inst.lambda() * base;

    // Serving options: per (flow, vertex), the best candidate gain
    // g*_{f,v}; per vertex, the distinct-flow capacity |F_v|.
    let n = inst.node_count();
    let mut options: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    let mut g_max = 0.0f64;
    for v in 0..id32(n) {
        let mut acc: Vec<(u32, f64)> = Vec::new();
        for m in ps.memberships_through(v) {
            let g = approx_f64(flows[ix(m.flow)].rate) * factor * f64::from(m.l);
            match acc.last_mut() {
                Some(last) if last.0 == m.flow => last.1 = last.1.max(g),
                _ => acc.push((m.flow, g)),
            }
        }
        for &(_, g) in &acc {
            g_max = g_max.max(g);
        }
        options.push(acc);
    }
    if g_max <= 0.0 {
        // No deployment can decrement anything (λ = 1 or degenerate
        // paths): the base cost itself is the bound.
        return base.max(lb_lambda).max(0.0);
    }

    let k = inst.k();
    let f_count = flows.len();
    // Node layout: 0 = source, 1..=F flows, F+1..F+n vertices, last = sink.
    let s = 0usize;
    let voff = 1 + f_count;
    let t = voff + n;
    let mut d_ub = f64::INFINITY;
    for i in 0..=mu_grid {
        let mu = g_max * usize_f64(i) / usize_f64(mu_grid.max(1));
        let mut net = FlowNetwork::new(t + 1);
        for f in 0..f_count {
            net.add_arc(s, 1 + f, 1, 0);
            // Staying unserved is free — the transportation solve
            // must never be forced into a paying assignment.
            net.add_arc(1 + f, t, 1, 0);
        }
        for (v, row) in options.iter().enumerate() {
            if row.is_empty() {
                continue;
            }
            let cap = row.len();
            net.add_arc(voff + v, t, i64::from(id32(cap)), 0);
            for &(f, g) in row {
                let surplus = g - mu / usize_f64(cap);
                if surplus > 0.0 {
                    let cost = -(surplus * LP_SCALE).ceil() as i64;
                    net.add_arc(1 + ix(f), voff + v, 1, cost);
                }
            }
        }
        let (_, cost) = net.min_cost_flow(s, t, i64::from(id32(f_count)));
        // All serving arcs have cost ≤ 0 and the escape arc is free, so
        // the optimal cost is ≤ 0 and `-cost` fits a `u64`.
        let a_mu = approx_f64(u64::try_from(-cost).unwrap_or(0)) / LP_SCALE;
        d_ub = d_ub.min(mu * usize_f64(k) + a_mu);
    }
    (base - d_ub).max(lb_lambda).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::fig1_instance;
    use tdmd_graph::GraphBuilder;
    use tdmd_traffic::{Flow, FlowPaths};

    /// Two flows with disjoint two-hop shortest paths that share an
    /// equal-length alternative through `c`: fixed-path GTP with
    /// `k = 1` can only cover both at the sink (zero gain), while
    /// joint routing funnels both through `c` for a strict win.
    ///
    /// Vertices: 0 = s1, 1 = s2, 2 = a, 3 = b, 4 = c, 5 = t.
    fn funnel_instance() -> Instance {
        let mut b = GraphBuilder::new(6);
        b.add_bidirectional(0, 2);
        b.add_bidirectional(2, 5);
        b.add_bidirectional(1, 3);
        b.add_bidirectional(3, 5);
        b.add_bidirectional(0, 4);
        b.add_bidirectional(1, 4);
        b.add_bidirectional(4, 5);
        let g = b.build();
        let sets = vec![
            FlowPaths::new(0, 4, vec![vec![0, 2, 5], vec![0, 4, 5]]),
            FlowPaths::new(1, 4, vec![vec![1, 3, 5], vec![1, 4, 5]]),
        ];
        Instance::with_path_sets(g, sets, 0.5, 1).unwrap()
    }

    #[test]
    fn joint_escapes_the_fixed_path_local_optimum() {
        let inst = funnel_instance();
        let sol = joint_solve(&inst).unwrap();
        // Fixed: both flows covered at t, no decrement: 2 · 4 · 2 = 16.
        assert_eq!(sol.fixed_objective, 16.0);
        // Joint: both via c, box at c (l = 1): 16 − 2 · 4 · 0.5 = 12.
        assert_eq!(sol.objective, 12.0);
        assert_eq!(sol.deployment.vertices(), &[4]);
        assert_eq!(sol.active, vec![1, 1]);
        assert!(sol.path_switches >= 2);
        assert!(sol.rounds >= 2);
        assert!(
            sol.lp_bound <= sol.objective + EPS,
            "bound {} above objective {}",
            sol.lp_bound,
            sol.objective
        );
        assert!(sol.lp_bound >= 8.0 - EPS, "λ·base floor");
    }

    #[test]
    fn singleton_sets_degenerate_to_legacy_gtp() {
        for k in [2, 3] {
            let inst = fig1_instance(k);
            let sol = joint_solve(&inst).unwrap();
            let legacy = gtp_budgeted(&inst, k).unwrap();
            assert_eq!(sol.deployment, legacy, "k = {k}");
            assert_eq!(sol.objective, bandwidth_of(&inst, &legacy));
            assert_eq!(sol.objective, sol.fixed_objective);
            assert_eq!(sol.path_switches, 0);
            assert_eq!(sol.active, vec![0; inst.flows().len()]);
        }
    }

    #[test]
    fn solution_is_internally_consistent() {
        let inst = funnel_instance();
        let sol = joint_solve(&inst).unwrap();
        let mut routed = inst.clone();
        let switches: Vec<(u32, u32)> = sol
            .active
            .iter()
            .enumerate()
            .map(|(f, &j)| (f as u32, j))
            .collect();
        routed.set_active_paths(&switches);
        assert_eq!(bandwidth_of(&routed, &sol.deployment), sol.objective);
        crate::audit::check_instance(&routed).unwrap();
        let alloc = crate::objective::allocate(&routed, &sol.deployment);
        crate::audit::check_solution(&routed, &sol.deployment, routed.k(), Some(&alloc)).unwrap();
    }

    #[test]
    fn lp_bound_is_sandwiched_on_fig1() {
        let inst = fig1_instance(2);
        let sol = joint_solve(&inst).unwrap();
        assert!(sol.lp_bound >= 0.0);
        assert!(sol.lp_bound <= sol.objective + EPS);
        // λ = 0.5 floor: every edge still carries half the traffic.
        assert!(sol.lp_bound >= 0.5 * inst.unprocessed_bandwidth() - EPS);
    }

    #[test]
    fn infeasible_budget_errors_like_the_legacy_solver() {
        // Two flows with no common vertex on any candidate and k = 1.
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(2, 3);
        let g = b.build();
        let flows = vec![Flow::new(0, 1, vec![0, 1]), Flow::new(1, 1, vec![2, 3])];
        let inst = Instance::new(g, flows, 0.5, 1).unwrap();
        assert!(matches!(
            joint_solve(&inst),
            Err(TdmdError::Infeasible { budget: 1 })
        ));
    }

    #[test]
    fn recorder_sees_rounds_and_switches() {
        let inst = funnel_instance();
        let rec = tdmd_obs::StatsRecorder::new();
        let sol = joint_solve_with(&inst, &JointConfig::default(), &rec).unwrap();
        assert_eq!(rec.counter(JOINT_ROUNDS), sol.rounds as u64);
        assert_eq!(rec.counter(PATH_SWITCHES), sol.path_switches);
        assert_eq!(rec.sample_count(LP_BOUND_US), 1);
    }
}
