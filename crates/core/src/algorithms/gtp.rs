//! GTP — General Topology Placement (Alg. 1).
//!
//! The decrement function `d(P)` is monotone submodular (Thm. 2), so
//! greedily adding the vertex with the largest marginal decrement
//! `d_P(v)` achieves `(1 − 1/e)` of the maximum decrement (Thm. 3).
//! Three variants produce *identical* deployments:
//!
//! * [`gtp_budgeted`] / [`gtp_derive_k`] — eager evaluation;
//! * [`gtp_lazy`] — CELF lazy evaluation, valid because marginal
//!   decrements only shrink as `P` grows;
//! * [`gtp_parallel`] — Rayon-parallel candidate scoring.
//!
//! **Tie-breaking** is `(marginal decrement, newly-covered flows,
//! smaller vertex id)` lexicographically. The coverage component keeps
//! the greedy making feasibility progress even when `λ = 1` flattens
//! every decrement, and reproduces the paper's Fig. 1 walk-through.
//!
//! **Feasibility guard.** With a hard budget `k`, pure decrement-greedy
//! can strand flows (the paper's `k = 2` walk-through: after `{v5}`
//! the best marginal pick is `v6`, but only `v2` still covers all
//! remaining flows — so GTP "can only deploy on v2"). We reproduce
//! that rule, generalized: while the remaining budget exceeds the
//! greedy-set-cover size of the unserved flows, pick freely; once they
//! are equal, follow the cover (max coverage first). Deciding exact
//! feasibility is NP-hard (Thm. 1), so when the guard fails we return
//! [`TdmdError::Infeasible`] and the experiment protocol resamples the
//! workload, exactly like §6.1.

use crate::error::TdmdError;
use crate::feasibility::greedy_cover;
use crate::instance::Instance;
use crate::objective::{coverage_gain, marginal_decrement};
use crate::plan::Deployment;
use rayon::prelude::*;
use tdmd_graph::NodeId;

/// Lexicographic greedy score: decrement gain, then coverage, then
/// smaller vertex id.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Score {
    gain: f64,
    coverage: usize,
    v: NodeId,
}

impl Score {
    fn better_than(&self, other: &Score) -> bool {
        match self.gain.total_cmp(&other.gain) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.coverage.cmp(&other.coverage) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => self.v < other.v,
            },
        }
    }
}

/// Mutable greedy state shared by the GTP variants.
struct State {
    deployment: Deployment,
    /// Best downstream hops per flow so far (0 = unserved or served at
    /// the destination — both contribute zero decrement).
    cur_l: Vec<u32>,
    /// Coverage flags per flow.
    served: Vec<bool>,
}

impl State {
    fn new(instance: &Instance) -> Self {
        Self {
            deployment: Deployment::empty(instance.node_count()),
            cur_l: vec![0; instance.flows().len()],
            served: vec![false; instance.flows().len()],
        }
    }

    fn all_served(&self) -> bool {
        self.served.iter().all(|&s| s)
    }

    fn score(&self, instance: &Instance, v: NodeId) -> Score {
        Score {
            gain: marginal_decrement(instance, &self.cur_l, v),
            coverage: coverage_gain(instance, &self.served, v),
            v,
        }
    }

    fn commit(&mut self, instance: &Instance, v: NodeId) {
        self.deployment.insert(v);
        for &(fi, l) in instance.flows_through(v) {
            let fi = fi as usize;
            self.served[fi] = true;
            if l > self.cur_l[fi] {
                self.cur_l[fi] = l;
            }
        }
    }
}

/// Candidates not yet deployed.
fn open_candidates(instance: &Instance, state: &State) -> Vec<NodeId> {
    instance
        .candidate_vertices()
        .into_iter()
        .filter(|&v| !state.deployment.contains(v))
        .collect()
}

/// Size of the greedy cover of the flows that would remain unserved
/// after additionally deploying on `extra`.
fn cover_after(instance: &Instance, state: &State, extra: NodeId) -> usize {
    let mut served = state.served.clone();
    for &(fi, _) in instance.flows_through(extra) {
        served[fi as usize] = true;
    }
    greedy_cover(instance, &served).map_or(usize::MAX, |c| c.len())
}

/// One guarded greedy round; returns the vertex to deploy or an error.
fn pick<F>(
    instance: &Instance,
    state: &State,
    remaining: usize,
    best_of: F,
) -> Result<NodeId, TdmdError>
where
    F: FnOnce(&State, &[NodeId]) -> Option<Score>,
{
    let cands = open_candidates(instance, state);
    if state.all_served() {
        return best_of(state, &cands)
            .filter(|s| s.gain > 0.0)
            .map(|s| s.v)
            .ok_or(TdmdError::Infeasible { budget: remaining }); // caller stops on this
    }
    let cover =
        greedy_cover(instance, &state.served).ok_or(TdmdError::Infeasible { budget: remaining })?;
    if cover.len() > remaining {
        return Err(TdmdError::Infeasible { budget: remaining });
    }
    if cover.len() == remaining {
        // Tight budget: only picks that keep the rest coverable with
        // the remaining boxes are allowed (the paper's "we can only
        // deploy a middlebox on v2" rule, generalized).
        let feasible: Vec<NodeId> = cands
            .iter()
            .copied()
            .filter(|&v| cover_after(instance, state, v) < remaining)
            .collect();
        return best_of(state, &feasible)
            .map(|s| s.v)
            .ok_or(TdmdError::Infeasible { budget: remaining });
    }
    best_of(state, &cands)
        .map(|s| s.v)
        .ok_or(TdmdError::Infeasible { budget: remaining })
}

/// Core loop shared by the eager variants.
fn run_greedy<F>(
    instance: &Instance,
    budget: Option<usize>,
    mut best_of: F,
) -> Result<Deployment, TdmdError>
where
    F: FnMut(&State, &[NodeId]) -> Option<Score>,
{
    let mut state = State::new(instance);
    let limit = budget.unwrap_or(instance.node_count());
    for round in 0..limit {
        let remaining = limit - round;
        match pick(instance, &state, remaining, &mut best_of) {
            Ok(v) => state.commit(instance, v),
            // No useful vertex left and everything served: done early.
            Err(_) if state.all_served() => break,
            Err(e) => return Err(e),
        }
        if budget.is_none() && state.all_served() {
            break;
        }
    }
    if !state.all_served() {
        return Err(TdmdError::Infeasible { budget: limit });
    }
    Ok(state.deployment)
}

/// Eager sequential scoring.
fn eager_best(instance: &Instance) -> impl Fn(&State, &[NodeId]) -> Option<Score> + '_ {
    move |state, cands| {
        let mut best: Option<Score> = None;
        for &v in cands {
            let s = state.score(instance, v);
            if best.as_ref().is_none_or(|b| s.better_than(b)) {
                best = Some(s);
            }
        }
        best
    }
}

/// GTP in the Thm. 3 setting: keep placing middleboxes until every
/// flow is served; `k` is *derived* as the size of the result.
pub fn gtp_derive_k(instance: &Instance) -> Result<Deployment, TdmdError> {
    run_greedy(instance, None, eager_best(instance))
}

/// GTP with a hard budget of `k` middleboxes (the paper's evaluation
/// setting). Uses all `k` boxes unless no vertex still improves the
/// objective.
pub fn gtp_budgeted(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    run_greedy(instance, Some(k), eager_best(instance))
}

/// GTP with Rayon-parallel candidate scoring; identical output to
/// [`gtp_budgeted`].
pub fn gtp_parallel(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    run_greedy(instance, Some(k), |state, cands| {
        cands
            .par_iter()
            .map(|&v| state.score(instance, v))
            .reduce_with(|a, b| if b.better_than(&a) { b } else { a })
    })
}

/// GTP with CELF lazy evaluation; identical output to
/// [`gtp_budgeted`]. Marginal decrements and coverage gains are both
/// monotone non-increasing in `P` (Thm. 2), so a popped entry whose
/// refreshed score still dominates the next heap top is safely
/// optimal for the round.
pub fn gtp_lazy(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    use std::collections::BinaryHeap;

    /// Heap entry ordered by the lexicographic score.
    struct Entry {
        score: Score,
        round: usize,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.score == other.score
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            if self.score.better_than(&other.score) {
                std::cmp::Ordering::Greater
            } else if other.score.better_than(&self.score) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }
    }

    let mut state = State::new(instance);
    let mut heap: BinaryHeap<Entry> = instance
        .candidate_vertices()
        .into_iter()
        .map(|v| Entry {
            score: state.score(instance, v),
            round: 0,
        })
        .collect();
    let mut round = 0usize;
    while round < k {
        let remaining = k - round;
        // The feasibility guard must run eagerly.
        let picked = if !state.all_served() {
            let cover = greedy_cover(instance, &state.served)
                .ok_or(TdmdError::Infeasible { budget: remaining })?;
            if cover.len() > remaining {
                return Err(TdmdError::Infeasible { budget: remaining });
            }
            if cover.len() == remaining {
                // Tight budget: delegate the constrained round to the
                // eager picker so lazy output stays identical.
                Some(pick(instance, &state, remaining, eager_best(instance))?)
            } else {
                None
            }
        } else {
            None
        };
        let v = match picked {
            Some(v) => v,
            None => {
                // CELF pop-refresh loop.
                loop {
                    let Some(top) = heap.pop() else {
                        if state.all_served() {
                            return Ok(state.deployment);
                        }
                        return Err(TdmdError::Infeasible { budget: remaining });
                    };
                    if state.deployment.contains(top.score.v) {
                        continue;
                    }
                    if top.round == round {
                        if top.score.gain <= 0.0 && state.all_served() {
                            return Ok(state.deployment);
                        }
                        break top.score.v;
                    }
                    let fresh = Entry {
                        score: state.score(instance, top.score.v),
                        round,
                    };
                    let dominates = heap
                        .peek()
                        .is_none_or(|next| !next.score.better_than(&fresh.score));
                    if dominates {
                        if fresh.score.gain <= 0.0 && state.all_served() {
                            return Ok(state.deployment);
                        }
                        break fresh.score.v;
                    }
                    heap.push(fresh);
                }
            }
        };
        state.commit(instance, v);
        round += 1;
        // Scores of other vertices only decrease; stale entries are
        // refreshed on pop. Nothing to push.
    }
    if !state.all_served() {
        return Err(TdmdError::Infeasible { budget: k });
    }
    Ok(state.deployment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::bandwidth_of;
    use crate::paper::{fig1_instance, fig5_instance};

    #[test]
    fn fig1_walkthrough_k3() {
        // Paper: rounds pick v5, v6, v4 (0-based 4, 5, 3).
        let inst = fig1_instance(3);
        let d = gtp_budgeted(&inst, 3).unwrap();
        assert_eq!(d.vertices(), &[3, 4, 5]);
        assert_eq!(bandwidth_of(&inst, &d), 8.0);
    }

    #[test]
    fn fig1_walkthrough_k2_feasibility_fallback() {
        // Paper: after {v5} the guard forces v2 → plan {v2, v5}.
        let inst = fig1_instance(2);
        let d = gtp_budgeted(&inst, 2).unwrap();
        assert_eq!(d.vertices(), &[1, 4]);
        assert_eq!(bandwidth_of(&inst, &d), 12.0);
    }

    #[test]
    fn derive_k_serves_everything() {
        let inst = fig1_instance(0);
        let d = gtp_derive_k(&inst).unwrap();
        assert!(crate::feasibility::is_feasible(&inst, &d));
        // Greedy picks v5 (4), v6 (3), v4 (1), then must still cover
        // f3... f3 is v4→v2; v4 covers it. All covered with 3.
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn k1_must_cover_all_or_fail() {
        let inst = fig1_instance(1);
        // No single vertex covers all four flows of Fig. 1.
        assert_eq!(
            gtp_budgeted(&inst, 1).unwrap_err(),
            TdmdError::Infeasible { budget: 1 }
        );
    }

    #[test]
    fn tree_instance_k1_places_root() {
        let inst = fig5_instance(1);
        let d = gtp_budgeted(&inst, 1).unwrap();
        assert_eq!(d.vertices(), &[0], "only the root covers all tree flows");
        assert_eq!(bandwidth_of(&inst, &d), 24.0);
    }

    #[test]
    fn lazy_and_parallel_match_eager() {
        for k in 1..=5 {
            let inst = fig5_instance(k);
            let eager = gtp_budgeted(&inst, k).unwrap();
            assert_eq!(gtp_lazy(&inst, k).unwrap(), eager, "k={k}");
            assert_eq!(gtp_parallel(&inst, k).unwrap(), eager, "k={k}");
        }
    }

    #[test]
    fn budget_larger_than_useful_stops_early() {
        let inst = fig1_instance(6);
        let d = gtp_budgeted(&inst, 6).unwrap();
        // Only source placements help; 4 sources exist but two flows
        // share v6 — gains vanish after v5, v6, v4 (+ anything with
        // positive gain like v3 for nothing... v3 gains 0 once f1, f2
        // served at sources).
        assert!(d.len() <= 4);
        assert_eq!(bandwidth_of(&inst, &d), 8.0, "reaches the Lemma-1 minimum");
    }

    #[test]
    fn lambda_one_still_achieves_coverage() {
        let inst = fig1_instance(3).with_lambda(1.0);
        let d = gtp_budgeted(&inst, 3).unwrap();
        assert!(crate::feasibility::is_feasible(&inst, &d));
    }

    #[test]
    fn monotone_in_k() {
        // More budget never hurts the objective.
        let mut prev = f64::INFINITY;
        for k in 2..=5 {
            let inst = fig5_instance(k);
            let d = gtp_budgeted(&inst, k).unwrap();
            let b = bandwidth_of(&inst, &d);
            assert!(b <= prev + 1e-9, "k={k}: {b} > {prev}");
            prev = b;
        }
    }
}
