//! GTP — General Topology Placement (Alg. 1).
//!
//! The decrement function `d(P)` is monotone submodular (Thm. 2), so
//! greedily adding the vertex with the largest marginal decrement
//! `d_P(v)` achieves `(1 − 1/e)` of the maximum decrement (Thm. 3).
//! Three variants produce *identical* deployments:
//!
//! * [`gtp_budgeted`] / [`gtp_derive_k`] — eager evaluation;
//! * [`gtp_lazy`] — CELF lazy evaluation, valid because marginal
//!   decrements only shrink as `P` grows;
//! * [`gtp_parallel`] — Rayon-parallel candidate scoring;
//! * [`gtp_sharded`] — Rayon-parallel scoring over fixed-size vertex
//!   shards with a deterministic sequential merge, the scale-tier
//!   variant (bitwise-equal output regardless of shard size or worker
//!   count, because each per-vertex score is computed by the same
//!   sequential row scan and the round maximum is unique).
//!
//! Every variant is a thin wrapper over the generic engine in
//! [`super::engine`] instantiated with the paper's
//! [`HopCount`] pricing; the `*_with` versions accept any
//! [`CostModel`] (Thm. 2 only needs the per-flow metric to be
//! monotone along the path, so the guarantee carries over).
//!
//! **Tie-breaking** is `(marginal decrement, newly-covered flows,
//! smaller vertex id)` lexicographically. The coverage component keeps
//! the greedy making feasibility progress even when `λ = 1` flattens
//! every decrement, and reproduces the paper's Fig. 1 walk-through.
//!
//! **Feasibility guard.** With a hard budget `k`, pure decrement-greedy
//! can strand flows (the paper's `k = 2` walk-through: after `{v5}`
//! the best marginal pick is `v6`, but only `v2` still covers all
//! remaining flows — so GTP "can only deploy on v2"). We reproduce
//! that rule, generalized: while the remaining budget exceeds the
//! greedy-set-cover size of the unserved flows, pick freely; once they
//! are equal, follow the cover (max coverage first). Deciding exact
//! feasibility is NP-hard (Thm. 1), so when the guard fails we return
//! [`TdmdError::Infeasible`] and the experiment protocol resamples the
//! workload, exactly like §6.1.

use super::engine::{self, Ctx};
use crate::cost::{CostModel, FlowIndex, HopCount};
use crate::error::TdmdError;
use crate::instance::Instance;
use crate::plan::Deployment;

fn with_ctx<M, R>(instance: &Instance, model: &M, run: impl FnOnce(&Ctx<'_>) -> R) -> R
where
    M: CostModel,
{
    let index = FlowIndex::build(instance, model);
    let ctx = Ctx {
        instance,
        index: &index,
        coverage_ties: model.coverage_tiebreak(),
    };
    run(&ctx)
}

/// GTP in the Thm. 3 setting under an arbitrary cost model: keep
/// placing middleboxes until every flow is served; `k` is *derived*
/// as the size of the result.
pub fn gtp_derive_k_with<M: CostModel>(
    instance: &Instance,
    model: &M,
) -> Result<Deployment, TdmdError> {
    with_ctx(instance, model, |ctx| engine::eager(ctx, None))
}

/// GTP with a hard budget of `k` middleboxes under an arbitrary cost
/// model.
pub fn gtp_budgeted_with<M: CostModel>(
    instance: &Instance,
    k: usize,
    model: &M,
) -> Result<Deployment, TdmdError> {
    with_ctx(instance, model, |ctx| engine::eager(ctx, Some(k)))
}

/// Rayon-parallel GTP under an arbitrary cost model; identical output
/// to [`gtp_budgeted_with`].
pub fn gtp_parallel_with<M: CostModel>(
    instance: &Instance,
    k: usize,
    model: &M,
) -> Result<Deployment, TdmdError> {
    with_ctx(instance, model, |ctx| engine::parallel(ctx, k))
}

/// Default shard width for [`gtp_sharded`]: aim for roughly four
/// chunks per rayon worker (good load balance without drowning the
/// scheduler in tiny tasks), floored at 32 vertices so small instances
/// degenerate to near-sequential scoring instead of per-vertex tasks.
///
/// The choice only affects wall-clock, never the result — see
/// [`engine::sharded`] for the bitwise-determinism argument.
fn default_shard(candidates: usize) -> usize {
    (candidates / (rayon::current_num_threads().max(1) * 4)).max(32)
}

/// Sharded-parallel GTP under an arbitrary cost model: candidate
/// scores are accumulated rayon-parallel per `shard`-sized vertex
/// chunk and merged by a deterministic sequential fold. Identical
/// (bitwise) output to [`gtp_budgeted_with`] for every shard size.
pub fn gtp_sharded_with<M: CostModel>(
    instance: &Instance,
    k: usize,
    shard: usize,
    model: &M,
) -> Result<Deployment, TdmdError> {
    with_ctx(instance, model, |ctx| engine::sharded(ctx, k, shard))
}

/// CELF lazy GTP under an arbitrary cost model; identical output to
/// [`gtp_budgeted_with`].
pub fn gtp_lazy_with<M: CostModel>(
    instance: &Instance,
    k: usize,
    model: &M,
) -> Result<Deployment, TdmdError> {
    with_ctx(instance, model, |ctx| engine::lazy(ctx, k))
}

/// GTP in the Thm. 3 setting: keep placing middleboxes until every
/// flow is served; `k` is *derived* as the size of the result.
pub fn gtp_derive_k(instance: &Instance) -> Result<Deployment, TdmdError> {
    gtp_derive_k_with(instance, &HopCount)
}

/// GTP with a hard budget of `k` middleboxes (the paper's evaluation
/// setting). Uses all `k` boxes unless no vertex still improves the
/// objective.
pub fn gtp_budgeted(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    gtp_budgeted_with(instance, k, &HopCount)
}

/// GTP with Rayon-parallel candidate scoring; identical output to
/// [`gtp_budgeted`].
pub fn gtp_parallel(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    gtp_parallel_with(instance, k, &HopCount)
}

/// GTP with CELF lazy evaluation; identical output to
/// [`gtp_budgeted`].
pub fn gtp_lazy(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    gtp_lazy_with(instance, k, &HopCount)
}

/// GTP with sharded-parallel gain accumulation and a deterministic
/// merge (the million-flow scale-tier variant); identical output to
/// [`gtp_budgeted`]. The shard width is derived from the rayon pool
/// size; use [`gtp_sharded_with`] to pin it explicitly.
pub fn gtp_sharded(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    gtp_sharded_with(instance, k, default_shard(instance.node_count()), &HopCount)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::bandwidth_of;
    use crate::paper::{fig1_instance, fig5_instance};

    #[test]
    fn fig1_walkthrough_k3() {
        // Paper: rounds pick v5, v6, v4 (0-based 4, 5, 3).
        let inst = fig1_instance(3);
        let d = gtp_budgeted(&inst, 3).unwrap();
        assert_eq!(d.vertices(), &[3, 4, 5]);
        assert_eq!(bandwidth_of(&inst, &d), 8.0);
    }

    #[test]
    fn fig1_walkthrough_k2_feasibility_fallback() {
        // Paper: after {v5} the guard forces v2 → plan {v2, v5}.
        let inst = fig1_instance(2);
        let d = gtp_budgeted(&inst, 2).unwrap();
        assert_eq!(d.vertices(), &[1, 4]);
        assert_eq!(bandwidth_of(&inst, &d), 12.0);
    }

    #[test]
    fn derive_k_serves_everything() {
        let inst = fig1_instance(0);
        let d = gtp_derive_k(&inst).unwrap();
        assert!(crate::feasibility::is_feasible(&inst, &d));
        // Greedy picks v5 (4), v6 (3), v4 (1), then must still cover
        // f3... f3 is v4→v2; v4 covers it. All covered with 3.
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn k1_must_cover_all_or_fail() {
        let inst = fig1_instance(1);
        // No single vertex covers all four flows of Fig. 1.
        assert_eq!(
            gtp_budgeted(&inst, 1).unwrap_err(),
            TdmdError::Infeasible { budget: 1 }
        );
    }

    #[test]
    fn tree_instance_k1_places_root() {
        let inst = fig5_instance(1);
        let d = gtp_budgeted(&inst, 1).unwrap();
        assert_eq!(d.vertices(), &[0], "only the root covers all tree flows");
        assert_eq!(bandwidth_of(&inst, &d), 24.0);
    }

    #[test]
    fn lazy_and_parallel_match_eager() {
        for k in 1..=5 {
            let inst = fig5_instance(k);
            let eager = gtp_budgeted(&inst, k).unwrap();
            assert_eq!(gtp_lazy(&inst, k).unwrap(), eager, "k={k}");
            assert_eq!(gtp_parallel(&inst, k).unwrap(), eager, "k={k}");
        }
    }

    #[test]
    fn sharded_matches_eager_for_any_shard_size() {
        // The shard width must be a pure performance knob: every width
        // (including degenerate 1-vertex shards and a single shard
        // covering the whole candidate set) yields the eager plan.
        for k in 1..=5 {
            let inst = fig5_instance(k);
            let eager = gtp_budgeted(&inst, k).unwrap();
            assert_eq!(gtp_sharded(&inst, k).unwrap(), eager, "k={k} default shard");
            for shard in [1usize, 2, 3, 7, 64] {
                assert_eq!(
                    gtp_sharded_with(&inst, k, shard, &HopCount).unwrap(),
                    eager,
                    "k={k} shard={shard}"
                );
            }
        }
    }

    #[test]
    fn budget_larger_than_useful_stops_early() {
        let inst = fig1_instance(6);
        let d = gtp_budgeted(&inst, 6).unwrap();
        // Only source placements help; 4 sources exist but two flows
        // share v6 — gains vanish after v5, v6, v4 (+ anything with
        // positive gain like v3 for nothing... v3 gains 0 once f1, f2
        // served at sources).
        assert!(d.len() <= 4);
        assert_eq!(bandwidth_of(&inst, &d), 8.0, "reaches the Lemma-1 minimum");
    }

    #[test]
    fn lambda_one_still_achieves_coverage() {
        let inst = fig1_instance(3).with_lambda(1.0);
        let d = gtp_budgeted(&inst, 3).unwrap();
        assert!(crate::feasibility::is_feasible(&inst, &d));
    }

    #[test]
    fn monotone_in_k() {
        // More budget never hurts the objective.
        let mut prev = f64::INFINITY;
        for k in 2..=5 {
            let inst = fig5_instance(k);
            let d = gtp_budgeted(&inst, k).unwrap();
            let b = bandwidth_of(&inst, &d);
            assert!(b <= prev + 1e-9, "k={k}: {b} > {prev}");
            prev = b;
        }
    }

    #[test]
    fn explicit_hop_count_model_is_the_default() {
        // The wrapper and the generic entry point are the same code
        // path; this guards against the wrappers drifting.
        for k in 1..=4 {
            let inst = fig1_instance(k);
            assert_eq!(
                gtp_budgeted(&inst, k).ok(),
                gtp_budgeted_with(&inst, k, &HopCount).ok(),
                "k={k}"
            );
        }
    }
}
