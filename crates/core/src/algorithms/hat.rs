//! HAT — Heuristic Algorithm for Trees (Alg. 2).
//!
//! Start with a middlebox on every flow source (the bandwidth-minimal
//! deployment: every flow is diminished from its first edge), then
//! repeatedly *merge* the pair of middleboxes whose replacement by a
//! single box on their LCA raises the total bandwidth the least, until
//! only `k` middleboxes remain. A min-heap over pair costs `Δb(i, j)`
//! drives the merges, giving the paper's `O(|V|² log |V|)` complexity.
//!
//! Two pragmatic refinements over the paper's sketch (both strictly
//! improve accuracy at the same complexity):
//!
//! * the paper initializes with a box on *every leaf*; we use every
//!   *source* vertex — identical bandwidth (leaves without flows
//!   contribute nothing) and it also supports flows sourced at
//!   internal vertices;
//! * `Δb(i, j)` is recomputed against the *current* deployment when a
//!   heap entry is popped stale (merges elsewhere can change where the
//!   affected flows re-home), instead of trusting the stale key.

use crate::algorithms::dp::validate_tree_instance;
use crate::error::TdmdError;
use crate::instance::Instance;
use crate::num::{approx_f64, id32, ix};
use crate::order::TotalGain;
use crate::plan::Deployment;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tdmd_graph::{Lca, NodeId};

/// Mutable merge state.
struct MergeState<'a> {
    instance: &'a Instance,
    /// Deployment bitmap (kept separate from `Deployment` for cheap
    /// temporary flips while evaluating a merge).
    member: Vec<bool>,
    /// Live middlebox vertices.
    live: Vec<NodeId>,
    /// Per-flow current best downstream hops under `member`.
    best_l: Vec<u32>,
}

impl MergeState<'_> {
    /// Best downstream hops of flow `fi` under the current bitmap.
    fn flow_best(&self, fi: usize) -> u32 {
        let f = &self.instance.flows()[fi];
        let hops = id32(f.hops());
        let mut best = 0;
        for (pos, &v) in f.path.iter().enumerate() {
            if self.member[ix(v)] {
                best = best.max(hops - id32(pos));
                break; // first on-path box from the source is the max l
            }
        }
        best
    }

    /// Flows whose serving box could change when `{i, j}` merge into
    /// `lca`: everything crossing `i`, `j` or `lca`.
    fn affected(&self, i: NodeId, j: NodeId, lca: NodeId) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .instance
            .flows_through(i)
            .iter()
            .chain(self.instance.flows_through(j))
            .chain(self.instance.flows_through(lca))
            .map(|&(fi, _)| fi)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Exact `Δb(i, j)`: bandwidth change of merging `i, j → lca`
    /// against the current deployment (positive = worse).
    fn delta_b(&mut self, i: NodeId, j: NodeId, lca: NodeId) -> f64 {
        let factor = 1.0 - self.instance.lambda();
        let affected = self.affected(i, j, lca);
        // `member` mirrors `live` outside the flip window, so the
        // pre-flip bit is exactly `live.contains(&lca)` — saving it
        // avoids an O(|live|) scan per candidate evaluation.
        let lca_was_member = self.member[ix(lca)];
        self.flip(i, j, lca);
        let mut delta = 0.0;
        for &fi in &affected {
            let fi = ix(fi);
            let new_l = self.flow_best(fi);
            let old_l = self.best_l[fi];
            delta += approx_f64(self.instance.flows()[fi].rate)
                * factor
                * (f64::from(old_l) - f64::from(new_l));
        }
        self.unflip(i, j, lca, lca_was_member);
        delta
    }

    fn flip(&mut self, i: NodeId, j: NodeId, lca: NodeId) {
        self.member[ix(i)] = false;
        self.member[ix(j)] = false;
        self.member[ix(lca)] = true;
    }

    fn unflip(&mut self, i: NodeId, j: NodeId, lca: NodeId, lca_was_member: bool) {
        self.member[ix(lca)] = lca_was_member;
        self.member[ix(i)] = true;
        self.member[ix(j)] = true;
    }

    /// Commits the merge and refreshes per-flow assignments.
    fn commit(&mut self, i: NodeId, j: NodeId, lca: NodeId) {
        let affected = self.affected(i, j, lca);
        self.member[ix(i)] = false;
        self.member[ix(j)] = false;
        self.member[ix(lca)] = true;
        self.live.retain(|&v| v != i && v != j);
        if !self.live.contains(&lca) {
            self.live.push(lca);
        }
        for &fi in &affected {
            let fi = ix(fi);
            self.best_l[fi] = self.flow_best(fi);
        }
    }
}

/// Runs HAT with budget `k`.
///
/// # Errors
/// * [`TdmdError::NotATreeInstance`] on non-tree instances.
/// * [`TdmdError::Infeasible`] when `k = 0` while flows exist.
pub fn hat(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    let n = instance.node_count();
    if instance.flows().is_empty() {
        return Ok(Deployment::empty(n));
    }
    if k == 0 {
        return Err(TdmdError::Infeasible { budget: 0 });
    }
    let (tree, _local) = validate_tree_instance(instance)?;
    let lca = Lca::new(&tree);

    // Initial deployment: one box per distinct source.
    let mut sources: Vec<NodeId> = instance.flows().iter().map(|f| f.src()).collect();
    sources.sort_unstable();
    sources.dedup();

    let mut member = vec![false; n];
    for &s in &sources {
        member[ix(s)] = true;
    }
    let best_l = instance.flows().iter().map(|f| id32(f.hops())).collect();
    let mut state = MergeState {
        instance,
        member,
        live: sources.clone(),
        best_l,
    };

    // Version-stamped lazy min-heap of merge candidates.
    let mut version = 0usize;
    let mut heap: BinaryHeap<Reverse<(TotalGain, NodeId, NodeId, usize)>> = BinaryHeap::new();
    for a in 0..sources.len() {
        for b in (a + 1)..sources.len() {
            let (i, j) = (sources[a], sources[b]);
            let anc = lca.query(i, j);
            let d = state.delta_b(i, j, anc);
            heap.push(Reverse((TotalGain::new(d), i, j, version)));
        }
    }

    while state.live.len() > k {
        let Some(Reverse((_, i, j, stamp))) = heap.pop() else {
            // Cannot merge further (single box can't pair) — only
            // possible when k == 0, which we rejected above.
            return Err(TdmdError::Infeasible { budget: k });
        };
        if !state.member[ix(i)] || !state.member[ix(j)] {
            continue; // endpoint already merged away
        }
        let anc = lca.query(i, j);
        if stamp != version {
            // Stale: refresh the cost at the current deployment.
            let d = state.delta_b(i, j, anc);
            heap.push(Reverse((TotalGain::new(d), i, j, version)));
            continue;
        }
        state.commit(i, j, anc);
        version += 1;
        // New candidate pairs involving the merged box.
        for &other in state.live.clone().iter() {
            if other == anc {
                continue;
            }
            let a2 = lca.query(anc, other);
            let d = state.delta_b(anc, other, a2);
            heap.push(Reverse((TotalGain::new(d), anc, other, version)));
        }
        // Refresh surviving pairs lazily: stale stamps are corrected
        // on pop.
    }
    Ok(Deployment::from_vertices(n, state.live.iter().copied()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::dp::dp_optimal;
    use crate::feasibility::is_feasible;
    use crate::objective::bandwidth_of;
    use crate::paper::fig5_instance;

    #[test]
    fn fig5_k4_keeps_all_sources() {
        // |sources| = 4 ≤ k: no merging happens.
        let inst = fig5_instance(4);
        let d = hat(&inst, 4).unwrap();
        assert_eq!(d.vertices(), &[3, 4, 6, 7]);
        assert_eq!(bandwidth_of(&inst, &d), 12.0);
    }

    #[test]
    fn fig5_k3_merges_v4_v5_into_v2() {
        // Paper: Δb(4,5) = 1.5 is the cheapest pair → P = {v2, v7, v8}.
        let inst = fig5_instance(3);
        let d = hat(&inst, 3).unwrap();
        assert_eq!(d.vertices(), &[1, 6, 7]);
        assert_eq!(bandwidth_of(&inst, &d), 13.5);
    }

    #[test]
    fn fig5_k2_matches_paper_outcome() {
        // Paper: second merge ties Δb(2,8) = Δb(7,8) = 3 → {v2, v6} or
        // {v1, v7}; both cost 16.5.
        let inst = fig5_instance(2);
        let d = hat(&inst, 2).unwrap();
        let b = bandwidth_of(&inst, &d);
        assert_eq!(b, 16.5);
        assert!(is_feasible(&inst, &d));
    }

    #[test]
    fn fig5_k1_collapses_to_root() {
        let inst = fig5_instance(1);
        let d = hat(&inst, 1).unwrap();
        assert_eq!(d.vertices(), &[0]);
        assert_eq!(bandwidth_of(&inst, &d), 24.0);
    }

    #[test]
    fn hat_never_beats_dp() {
        for k in 1..=4 {
            let inst = fig5_instance(k);
            let h = bandwidth_of(&inst, &hat(&inst, k).unwrap());
            let d = dp_optimal(&inst).unwrap().bandwidth;
            assert!(h >= d - 1e-9, "k={k}: HAT {h} beat DP {d}");
        }
    }

    #[test]
    fn hat_matches_dp_on_fig5() {
        // On this example HAT happens to be optimal for every k.
        for k in 1..=4 {
            let inst = fig5_instance(k);
            let h = bandwidth_of(&inst, &hat(&inst, k).unwrap());
            assert_eq!(h, dp_optimal(&inst).unwrap().bandwidth, "k={k}");
        }
    }

    #[test]
    fn candidate_evaluation_leaves_state_intact() {
        // `delta_b` must restore `member` exactly — including when the
        // candidate pair's LCA is already a live box (the k=1 collapse
        // revisits the root repeatedly). Together with the pinned
        // deployments above this guards the saved-bit `unflip`.
        for k in 1..=4 {
            let inst = fig5_instance(k);
            assert_eq!(hat(&inst, k).unwrap(), hat(&inst, k).unwrap(), "k={k}");
        }
    }

    #[test]
    fn k0_with_flows_is_infeasible() {
        let inst = fig5_instance(0);
        assert_eq!(
            hat(&inst, 0).unwrap_err(),
            TdmdError::Infeasible { budget: 0 }
        );
    }

    #[test]
    fn non_tree_rejected() {
        let inst = crate::paper::fig1_instance(2);
        assert!(matches!(
            hat(&inst, 2).unwrap_err(),
            TdmdError::NotATreeInstance(_)
        ));
    }

    #[test]
    fn plans_are_always_feasible() {
        for k in 1..=4 {
            let inst = fig5_instance(k);
            let d = hat(&inst, k).unwrap();
            assert!(is_feasible(&inst, &d), "k={k}");
            assert!(d.len() <= k);
        }
    }
}
