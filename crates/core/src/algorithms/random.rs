//! Random baseline: "randomly deploys middleboxes until it deploys k
//! middleboxes" (§6.2), retried until the deployment is feasible (the
//! paper only evaluates feasible plans).

use crate::error::TdmdError;
use crate::feasibility::is_feasible;
use crate::instance::Instance;
use crate::num::id32;
use crate::plan::Deployment;
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples uniform `k`-subsets of the vertices until one covers every
/// flow, up to `max_tries` attempts.
///
/// # Errors
/// [`TdmdError::Infeasible`] if no sampled subset is feasible — the
/// experiment protocol then resamples the workload.
pub fn random_feasible<R: Rng + ?Sized>(
    instance: &Instance,
    k: usize,
    rng: &mut R,
    max_tries: usize,
) -> Result<Deployment, TdmdError> {
    let n = instance.node_count();
    let k_eff = k.min(n);
    let mut vertices: Vec<u32> = (0..id32(n)).collect();
    for _ in 0..max_tries {
        vertices.shuffle(rng);
        let d = Deployment::from_vertices(n, vertices[..k_eff].iter().copied());
        if is_feasible(instance, &d) {
            return Ok(d);
        }
    }
    Err(TdmdError::Infeasible { budget: k })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{fig1_instance, fig5_instance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_feasible_subsets() {
        let inst = fig1_instance(3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let d = random_feasible(&inst, 3, &mut rng, 500).unwrap();
            assert_eq!(d.len(), 3);
            assert!(is_feasible(&inst, &d));
        }
    }

    #[test]
    fn infeasible_budget_errors() {
        // k = 1 can never cover Fig. 1's four flows.
        let inst = fig1_instance(1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            random_feasible(&inst, 1, &mut rng, 200).unwrap_err(),
            TdmdError::Infeasible { budget: 1 }
        );
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let inst = fig5_instance(20);
        let mut rng = StdRng::seed_from_u64(3);
        let d = random_feasible(&inst, 20, &mut rng, 10).unwrap();
        assert_eq!(d.len(), 8, "every vertex deployed");
    }

    #[test]
    fn deterministic_under_seed() {
        let inst = fig5_instance(3);
        let a = random_feasible(&inst, 3, &mut StdRng::seed_from_u64(7), 100).unwrap();
        let b = random_feasible(&inst, 3, &mut StdRng::seed_from_u64(7), 100).unwrap();
        assert_eq!(a, b);
    }
}
