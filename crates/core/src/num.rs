//! Explicit numeric conversions for the index-heavy engine paths.
//!
//! The greedy engines juggle three integer domains: dense `u32` ids
//! (flow ids, [`NodeId`](tdmd_graph::NodeId)s, CSR offsets), `usize`
//! slice indices, and `f64` metric space. Bare `as` casts blur the
//! three — a silent truncation in a narrowing cast corrupts an index
//! without a diagnostic. The `tdmd-audit` lint (`cargo xtask lint`,
//! rule `as-cast`) therefore bans `as` numeric casts inside
//! `crates/core/src/algorithms/` and `crates/online/src/`; these
//! helpers are the sanctioned replacements, each encoding its
//! direction and failure mode in its name:
//!
//! * [`ix`] — lossless `u32 → usize` widening (indexing);
//! * [`id32`] / [`id16`] — checked `usize → u32`/`u16` narrowing
//!   (panics on overflow, which no supported instance size reaches);
//! * [`big_ix`] / [`wide`] — checked `u64 → usize` and lossless
//!   `usize → u64` for the pseudo-polynomial DP's rate-indexed tables;
//! * [`approx_f64`] — `u64 → f64` for rate arithmetic (exact below
//!   2⁵³, the IEEE double integer range; rates live far below it);
//! * [`usize_f64`] — `usize → f64` for averaging counts.
//!
//! `u32 → f64` needs no helper: `f64::from` is lossless and explicit.

// `ix` relies on usize being at least 32 bits; every tier-1 target
// (x86-64, aarch64) satisfies this, and the assert turns a hypothetical
// 16-bit port into a compile error instead of silent truncation.
const _: () = assert!(std::mem::size_of::<usize>() >= std::mem::size_of::<u32>());

/// Widens a dense `u32` id (flow id, vertex id, CSR offset) to a slice
/// index. Lossless on every supported target (see the module const
/// assert).
#[inline(always)]
#[allow(clippy::cast_possible_truncation)] // guarded by the const assert above
pub fn ix(id: u32) -> usize {
    id as usize
}

/// Narrows a slice index to a dense `u32` id.
///
/// # Panics
/// Panics if `i` exceeds `u32::MAX`. Instances are bounded far below
/// 2³² vertices/flows (the CSR arena itself is `u32`-offset), so a hit
/// means an upstream accounting bug, not big data.
#[inline]
pub fn id32(i: usize) -> u32 {
    match u32::try_from(i) {
        Ok(v) => v,
        Err(_) => panic!("index {i} exceeds the u32 id space"),
    }
}

/// Narrows a slice index to a `u16` (DP knapsack backpointers, where
/// the budget dimension is bounded by the vertex count of practical
/// tree instances).
///
/// # Panics
/// Panics if `i` exceeds `u16::MAX`; the DP tables would not fit in
/// memory long before a 65 536-box budget, so a hit is a logic bug.
#[inline]
pub fn id16(i: usize) -> u16 {
    match u16::try_from(i) {
        Ok(v) => v,
        Err(_) => panic!("index {i} exceeds the u16 backpointer space"),
    }
}

/// Narrows a `u64` rate total to a table index.
///
/// # Panics
/// Panics if `x` exceeds `usize::MAX`. The DP allocates `O(x)` table
/// slots for such totals, so any value that trips this could never
/// have been tabulated anyway.
#[inline]
pub fn big_ix(x: u64) -> usize {
    match usize::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("rate total {x} exceeds the index space"),
    }
}

/// Widens a slice index to a `u64` rate total. Lossless on every
/// supported target (usize ≤ 64 bits).
///
/// # Panics
/// Never on supported targets; the error arm exists only for a
/// hypothetical >64-bit `usize` platform.
#[inline]
pub fn wide(i: usize) -> u64 {
    match u64::try_from(i) {
        Ok(v) => v,
        Err(_) => unreachable!("usize wider than 64 bits"),
    }
}

/// `u64 → f64` for rate arithmetic. Exact for values below 2⁵³; flow
/// rates are user-scale integers far below that, so the conversion is
/// exact in practice and monotone always.
#[inline(always)]
#[allow(clippy::cast_precision_loss)] // rates ≪ 2^53; documented above
pub fn approx_f64(x: u64) -> f64 {
    x as f64
}

/// `usize → f64` for count/length arithmetic (averages, percentages).
/// Exact below 2⁵³ like [`approx_f64`].
#[inline(always)]
#[allow(clippy::cast_precision_loss)] // counts ≪ 2^53
pub fn usize_f64(x: usize) -> f64 {
    x as f64
}

/// Neumaier-compensated running sum for long-lived float accumulators
/// (the online engine's running objective terms).
///
/// A plain `f64 += / -=` accumulator drifts under long churn streams:
/// every update rounds, and cancellation between large insertions and
/// later removals amplifies the residue. This variant of Kahan
/// summation carries the rounding error of each update in a separate
/// compensation term, keeping the error of [`KahanSum::value`] at
/// O(ε) *per stream* instead of O(ε·n).
///
/// Two properties the online engine relies on:
///
/// * **Exactness preservation** — while every update is exactly
///   representable (integer rates × dyadic gains, the proptest
///   regime), the compensation stays `0.0` and `value()` is bitwise
///   the naive sum.
/// * **Exact re-sync** — [`KahanSum::reset`] adopts an externally
///   recomputed exact total with zero compensation, so a rebuild in
///   canonical order restores bitwise agreement with the from-scratch
///   sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Adopts an exactly-known total, clearing the compensation.
    #[inline]
    pub fn reset(&mut self, exact: f64) {
        self.sum = exact;
        self.compensation = 0.0;
    }

    /// Adds `x` with Neumaier compensation (which, unlike classic
    /// Kahan, also survives `|x|` exceeding `|sum|`).
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Subtracts `x` (adds its negation).
    #[inline]
    pub fn sub(&mut self, x: f64) {
        self.add(-x);
    }

    /// The compensated running total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ix_round_trips_with_id32() {
        for v in [0u32, 1, 7, u32::MAX] {
            assert_eq!(id32(ix(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 id space")]
    #[cfg(target_pointer_width = "64")]
    fn id32_rejects_overflow() {
        let _ = id32(u32::MAX as usize + 1);
    }

    #[test]
    fn float_conversions_are_exact_in_range() {
        assert_eq!(approx_f64(12345), 12345.0);
        assert_eq!(usize_f64(0), 0.0);
        assert_eq!(usize_f64(1 << 20), 1048576.0);
    }
}
